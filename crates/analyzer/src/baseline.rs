//! The findings baseline: `lint-baseline.json`.
//!
//! The gate is "no *new* findings", enforced from day one without first
//! burning down every historical violation. Each finding is fingerprinted
//! as `(rule, path, fnv1a64(trimmed line text))` — line *content*, not
//! line *number*, so unrelated edits above a baselined site do not churn
//! the file. Identical lines collapse into one entry with a count; a diff
//! fails only where the current count exceeds the baselined one.
//!
//! The JSON here is read and written by the tiny parser at the bottom of
//! this module: the analyzer is zero-dependency by design, and the subset
//! it needs (objects, arrays, strings, u64s) is small enough to own.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fingerprint key for one group of identical findings.
pub type Key = (String, String, String); // (rule, path, hash)

/// A parsed baseline: fingerprint → allowed count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Allowed occurrences per fingerprint.
    pub allowed: BTreeMap<Key, u64>,
}

/// FNV-1a 64-bit, rendered as 16 hex digits. Stable across platforms and
/// releases (the baseline file is checked in).
pub fn fnv1a64(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Groups findings into fingerprint counts.
pub fn group(findings: &[Finding]) -> BTreeMap<Key, u64> {
    let mut m = BTreeMap::new();
    for f in findings {
        let key = (f.rule.to_string(), f.path.clone(), fnv1a64(&f.snippet));
        *m.entry(key).or_insert(0) += 1;
    }
    m
}

impl Baseline {
    /// Builds a baseline that blesses exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Self {
        Baseline {
            allowed: group(findings),
        }
    }

    /// Returns the findings not covered by this baseline: for each
    /// fingerprint, the `current - allowed` newest occurrences.
    pub fn new_findings<'f>(&self, findings: &'f [Finding]) -> Vec<&'f Finding> {
        let mut used: BTreeMap<Key, u64> = BTreeMap::new();
        let mut out = Vec::new();
        for f in findings {
            let key = (f.rule.to_string(), f.path.clone(), fnv1a64(&f.snippet));
            let seen = used.entry(key.clone()).or_insert(0);
            *seen += 1;
            let allowed = self.allowed.get(&key).copied().unwrap_or(0);
            if *seen > allowed {
                out.push(f);
            }
        }
        out
    }

    /// Counts baseline entries that no longer match any current finding
    /// (stale debt that could be re-baselined away).
    pub fn stale_entries(&self, findings: &[Finding]) -> usize {
        let current = group(findings);
        self.allowed
            .iter()
            .filter(|(k, _)| !current.contains_key(*k))
            .count()
    }

    /// Serializes to the checked-in JSON format (sorted, stable).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 1,\n  \"entries\": [\n");
        let mut first = true;
        for ((rule, path, hash), count) in &self.allowed {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"hash\": \"{}\", \"count\": {}}}",
                escape(rule),
                escape(path),
                escape(hash),
                count
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Parses the checked-in JSON format.
    ///
    /// # Errors
    /// Returns a description of the first syntax or shape problem; a
    /// malformed baseline must fail the gate loudly, not pass it quietly.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        let obj = v.as_object().ok_or("baseline root must be an object")?;
        let entries = obj
            .iter()
            .find(|(k, _)| k == "entries")
            .map(|(_, v)| v)
            .ok_or("baseline missing \"entries\"")?;
        let arr = entries.as_array().ok_or("\"entries\" must be an array")?;
        let mut allowed = BTreeMap::new();
        for (i, e) in arr.iter().enumerate() {
            let eo = e
                .as_object()
                .ok_or_else(|| format!("entry {i} must be an object"))?;
            let get_s = |name: &str| -> Result<String, String> {
                eo.iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("entry {i} missing string \"{name}\""))
            };
            let count = eo
                .iter()
                .find(|(k, _)| k == "count")
                .and_then(|(_, v)| v.as_u64())
                .ok_or_else(|| format!("entry {i} missing numeric \"count\""))?;
            allowed.insert((get_s("rule")?, get_s("path")?, get_s("hash")?), count);
        }
        Ok(Baseline { allowed })
    }
}

/// JSON string escaping, shared with the engine's `--format json` renderer.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON value for the baseline file. Not general-purpose: no
/// floats (counts are u64), but strings handle the full escape set so
/// paths survive round-trips.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (all the baseline needs).
    Num(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered pairs (duplicate keys preserved, first wins via
    /// `find`).
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self) -> Option<&Vec<(String, Json)>> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    /// Returns a message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut obj = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(obj));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at offset {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                obj.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(obj));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }
        Some(c) => Err(format!("unexpected byte {c:#x} at offset {pos}")),
    }
}

fn lit(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = Vec::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0C),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {pos}"))?;
                        let ch = char::from_u32(hex)
                            .ok_or_else(|| format!("bad \\u scalar at offset {pos}"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn f(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line: 1,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let fs = vec![
            f("RR001", "crates/a/src/x.rs", "x.unwrap();"),
            f("RR001", "crates/a/src/x.rs", "x.unwrap();"),
            f("RR005", "crates/b/src/\"odd\".rs", "pub fn f()"),
        ];
        let b = Baseline::from_findings(&fs);
        let back = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(b, back);
        assert_eq!(
            back.allowed
                .get(&(
                    "RR001".into(),
                    "crates/a/src/x.rs".into(),
                    fnv1a64("x.unwrap();")
                ))
                .copied(),
            Some(2)
        );
    }

    #[test]
    fn diff_flags_only_the_excess() {
        let old = vec![f("RR001", "p.rs", "x.unwrap();")];
        let b = Baseline::from_findings(&old);
        // Same set: clean.
        assert!(b.new_findings(&old).is_empty());
        // A second identical occurrence: exactly one new finding.
        let now = vec![
            f("RR001", "p.rs", "x.unwrap();"),
            f("RR001", "p.rs", "x.unwrap();"),
        ];
        assert_eq!(b.new_findings(&now).len(), 1);
        // A different line: new.
        let other = vec![f("RR001", "p.rs", "y.unwrap();")];
        assert_eq!(b.new_findings(&other).len(), 1);
    }

    #[test]
    fn line_moves_do_not_churn() {
        let mut a = f("RR001", "p.rs", "x.unwrap();");
        a.line = 10;
        let b = Baseline::from_findings(&[a.clone()]);
        a.line = 999; // file shifted underneath
        assert!(b.new_findings(&[a]).is_empty());
    }

    #[test]
    fn stale_entries_counted() {
        let b = Baseline::from_findings(&[f("RR001", "p.rs", "x.unwrap();")]);
        assert_eq!(b.stale_entries(&[]), 1);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        for bad in [
            "",
            "[]",
            "{\"entries\": 3}",
            "{\"entries\": [{\"rule\": 1}]}",
            "{\"entries\": [",
            "{} trailing",
        ] {
            assert!(Baseline::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn json_parser_handles_escapes() {
        let v = Json::parse(r#"{"k": "a\n\"bA"}"#).unwrap();
        match v {
            Json::Obj(o) => assert_eq!(o[0].1, Json::Str("a\n\"bA".into())),
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn empty_baseline_serializes_and_parses() {
        let b = Baseline::default();
        let back = Baseline::from_json(&b.to_json()).unwrap();
        assert!(back.allowed.is_empty());
    }
}
