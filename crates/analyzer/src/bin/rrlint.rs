//! The `rrlint` command-line front end.
//!
//! Exit codes: `0` clean, `1` new findings (the gate), `2` usage or I/O
//! error. Everything interesting lives in the `analyzer` library; this
//! file only parses flags and prints.

use analyzer::baseline::Baseline;
use analyzer::engine::{self, EngineError};
use analyzer::rules::{self, Finding};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("rrlint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "check" => check(&args[1..]),
        "baseline" => baseline_cmd(&args[1..]),
        "explain" => explain(&args[1..]),
        "rules" => {
            for r in rules::RULES {
                println!("{}  {:<28} {}", r.id, r.name, r.summary);
            }
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}` (try `rrlint help`)")),
    }
}

fn print_usage() {
    eprintln!(
        "rrlint — workspace static analysis for the Ratio Rules reproduction

USAGE:
    rrlint check    [--root DIR] [--baseline FILE] [--format text|json|github]
                    [--deny-stale]                   gate: fail on new findings
                                                     (--deny-stale also fails on
                                                     stale baseline entries)
    rrlint baseline [--root DIR] [--baseline FILE] --write
                                                     re-bless current findings
    rrlint explain <RRNNN>                           rationale for one rule
    rrlint rules                                     list the catalogue

Suppress a finding in code (reason mandatory):
    // rrlint-allow: RR002 exact zero is the QL deflation sentinel

Rules are documented in docs/LINTS.md."
    );
}

/// Output shape for `rrlint check`.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    /// Human-readable report (default).
    Text,
    /// Machine-readable JSON for CI artifacts.
    Json,
    /// GitHub Actions `::error`/`::warning` annotations.
    Github,
}

/// Everything the subcommands share, parsed from flags.
struct Flags {
    root: PathBuf,
    baseline: PathBuf,
    write: bool,
    format: Format,
    deny_stale: bool,
}

/// Parses common flags with defaults; rejects stray args.
fn common_flags(args: &[String]) -> Result<Flags, String> {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut write = false;
    let mut format = Format::Text;
    let mut deny_stale = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                root = PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                );
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline needs a file argument")?,
                ));
            }
            "--write" => write = true,
            "--deny-stale" => deny_stale = true,
            "--format" => {
                format = match it
                    .next()
                    .ok_or("--format needs text, json, or github")?
                    .as_str()
                {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "github" => Format::Github,
                    other => {
                        return Err(format!(
                            "unknown format `{other}` (expected text, json, or github)"
                        ))
                    }
                };
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let root = find_workspace_root(&root)?;
    let baseline = baseline.unwrap_or_else(|| root.join(engine::BASELINE_PATH));
    Ok(Flags {
        root,
        baseline,
        write,
        format,
        deny_stale,
    })
}

/// Walks up from `start` to the directory containing the workspace
/// `Cargo.toml` (identified by a `[workspace]` table), so `rrlint check`
/// works from any subdirectory.
fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let abs = start
        .canonicalize()
        .map_err(|e| format!("cannot resolve root {}: {e}", start.display()))?;
    let mut dir = abs.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            // No workspace marker above: lint the given tree as-is.
            return Ok(abs);
        }
    }
}

fn check(args: &[String]) -> Result<ExitCode, String> {
    let flags = common_flags(args)?;
    // rrlint-allow: RR003 wall time only annotates the report footer, never results
    let start = std::time::Instant::now();
    let report =
        engine::run_check(&flags.root, &flags.baseline).map_err(render_engine_err)?;
    let elapsed = start.elapsed();
    let stale_fails = flags.deny_stale && report.stale > 0;
    let pass = report.clean() && !stale_fails;
    match flags.format {
        Format::Json => print!("{}", engine::render_json(&report)),
        Format::Github => print!("{}", engine::render_github(&report)),
        Format::Text => {
            if !report.had_baseline {
                eprintln!(
                    "rrlint: note: no baseline at {} — every finding counts as new \
                     (run `rrlint baseline --write` to bless the current state)",
                    flags.baseline.display()
                );
            }
            for f in &report.new {
                print_finding(f);
            }
            for n in &report.dead_names {
                println!(
                    "warning: dead metric name: `{n}` is registered in {} but never \
                     emitted by any producer",
                    engine::REGISTRY_PATH
                );
            }
            let status = if pass { "OK" } else { "FAIL" };
            println!(
                "rrlint check: {status} — {} files, {} findings ({} baselined, {} new, {} stale baseline entries, {} dead names) in {:.0?}",
                report.files,
                report.findings.len(),
                report.findings.len() - report.new.len(),
                report.new.len(),
                report.stale,
                report.dead_names.len(),
                elapsed
            );
        }
    }
    if pass {
        Ok(ExitCode::SUCCESS)
    } else {
        if !report.clean() {
            eprintln!(
                "rrlint: {} new finding(s). Fix them, suppress with a reason \
                 (see docs/LINTS.md), or re-bless via `rrlint baseline --write`.",
                report.new.len()
            );
        }
        if stale_fails {
            eprintln!(
                "rrlint: {} stale baseline entr{} and --deny-stale is set; run \
                 `rrlint baseline --write` to re-bless the shrunken baseline.",
                report.stale,
                if report.stale == 1 { "y" } else { "ies" }
            );
        }
        Ok(ExitCode::FAILURE)
    }
}

fn print_finding(f: &Finding) {
    println!("{}:{}: {} {}", f.path, f.line, f.rule, f.message);
    if !f.snippet.is_empty() {
        println!("    | {}", f.snippet);
    }
}

fn baseline_cmd(args: &[String]) -> Result<ExitCode, String> {
    let flags = common_flags(args)?;
    let baseline_path = &flags.baseline;
    let findings = engine::collect_findings(&flags.root).map_err(render_engine_err)?;
    let blessed = Baseline::from_findings(&findings);
    if flags.write {
        std::fs::write(baseline_path, blessed.to_json())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "rrlint baseline: wrote {} entries to {}",
            blessed.allowed.len(),
            baseline_path.display()
        );
    } else {
        print!("{}", blessed.to_json());
        eprintln!(
            "rrlint baseline: {} entries (dry run; pass --write to save)",
            blessed.allowed.len()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn explain(args: &[String]) -> Result<ExitCode, String> {
    let Some(id) = args.first() else {
        return Err("explain needs a rule id, e.g. `rrlint explain RR002`".into());
    };
    let id = id.to_uppercase();
    let Some(r) = rules::rule_info(&id) else {
        return Err(format!(
            "unknown rule `{id}`; `rrlint rules` lists the catalogue"
        ));
    };
    println!("{} — {}\n", r.id, r.name);
    println!("{}\n", r.summary);
    println!("Why: {}\n", r.rationale);
    println!("Bad:\n    {}\n", r.bad.replace('\n', "\n    "));
    println!("Good:\n    {}\n", r.good.replace('\n', "\n    "));
    println!(
        "Suppress (reason mandatory):\n    // rrlint-allow: {} <why this occurrence is safe>",
        r.id
    );
    Ok(ExitCode::SUCCESS)
}

fn render_engine_err(e: EngineError) -> String {
    e.to_string()
}
