//! Intra-workspace call-graph approximation, keyed by fn/method name.
//!
//! `rrlint` has no type information, so calls resolve by name: a call to
//! `tree_merge` from crate `core` first looks for fns named `tree_merge`
//! in `core`, then falls back to the whole workspace. Two guards keep
//! the approximation honest instead of fully connected:
//!
//! * a **stoplist** of ubiquitous names (`new`, `len`, `get`, `push`,
//!   `iter`, …) that would otherwise wire every fn to every other; and
//! * an **ambiguity cap**: a name defined in more than
//!   [`AMBIGUITY_CAP`] places resolves to nothing (better a false
//!   negative on one edge than a false positive everywhere).
//!
//! The graph over-approximates within those limits — exactly the right
//! bias for RR012/RR013, which reason about what *could* be reached.

use crate::index::FileIndex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A fn identity: `(file index, fn index within the file)`.
pub type FnId = (usize, usize);

/// Method/fn names too common to resolve by name alone.
pub const STOPLIST: &[&str] = &[
    "new", "default", "build", "len", "is_empty", "get", "get_mut", "push",
    "pop", "insert", "remove", "clear", "clone", "iter", "iter_mut",
    "into_iter", "next", "collect", "map", "filter", "fold", "for_each",
    "unwrap", "expect", "unwrap_or", "unwrap_or_else", "unwrap_or_default",
    "ok", "err", "ok_or", "ok_or_else", "and_then", "or_else", "as_ref",
    "as_mut", "as_str", "as_slice", "as_bytes", "to_string", "to_vec",
    "to_owned", "from", "into", "try_from", "try_into", "fmt", "eq", "ne",
    "cmp", "partial_cmp", "hash", "drop", "min", "max", "abs", "sqrt",
    "powi", "powf", "exp", "ln", "floor", "ceil", "round", "sum", "product",
    "extend", "contains", "contains_key", "keys", "values", "sort",
    "sort_by", "sort_by_key", "sort_unstable", "binary_search", "split",
    "join", "write", "read", "lock", "send", "recv", "name", "kind", "index",
    "with_capacity", "capacity", "resize", "reserve", "chunks", "windows",
    "enumerate", "zip", "rev", "take", "skip", "count", "position", "find",
    "any", "all", "last", "first", "nth", "flat_map", "flatten", "chain",
    "cloned", "copied", "starts_with", "ends_with", "trim", "parse",
    "matches", "replace", "lines", "chars", "bytes", "path", "line", "id",
    "value", "set", "add", "run", "call", "apply", "finish", "start", "stop",
    "init", "is_some", "is_none", "is_ok", "is_err",
    // Atomics: `flag.load(Ordering::…)` must not resolve to every fn
    // named `load` in the workspace (ditto store/swap/fetch_*).
    "load", "store", "swap", "compare_exchange", "compare_exchange_weak",
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
];

/// A name defined in more places than this resolves to nothing.
pub const AMBIGUITY_CAP: usize = 6;

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    edges: BTreeMap<FnId, Vec<FnId>>,
    reverse: BTreeMap<FnId, Vec<FnId>>,
}

impl CallGraph {
    /// Builds the graph. `files[i]` is `(crate name, index)` for the
    /// file with [`FnId`] file-component `i`.
    pub fn build(files: &[(String, &FileIndex)]) -> CallGraph {
        // Definitions by bare name and by (crate, name).
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_crate: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        for (fi, (krate, idx)) in files.iter().enumerate() {
            for (fj, f) in idx.fns.iter().enumerate() {
                by_name.entry(&f.name).or_default().push((fi, fj));
                by_crate
                    .entry((krate, &f.name))
                    .or_default()
                    .push((fi, fj));
            }
        }
        let mut edges: BTreeMap<FnId, Vec<FnId>> = BTreeMap::new();
        let mut reverse: BTreeMap<FnId, Vec<FnId>> = BTreeMap::new();
        for (fi, (krate, idx)) in files.iter().enumerate() {
            for (fj, f) in idx.fns.iter().enumerate() {
                let id = (fi, fj);
                let mut out: BTreeSet<FnId> = BTreeSet::new();
                for call in &f.calls {
                    let name = call.name.as_str();
                    if STOPLIST.contains(&name) {
                        continue;
                    }
                    let same_crate = by_crate.get(&(krate.as_str(), name));
                    let candidates = match same_crate {
                        Some(c) if !c.is_empty() => c,
                        _ => match by_name.get(name) {
                            Some(c) => c,
                            None => continue,
                        },
                    };
                    if candidates.len() > AMBIGUITY_CAP {
                        continue;
                    }
                    for &c in candidates {
                        if c != id {
                            out.insert(c);
                        }
                    }
                }
                for &c in &out {
                    reverse.entry(c).or_default().push(id);
                }
                edges.insert(id, out.into_iter().collect());
            }
        }
        CallGraph { edges, reverse }
    }

    /// Direct callees of `id` (empty when unknown).
    pub fn callees(&self, id: FnId) -> &[FnId] {
        self.edges.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Direct callers of `id` (empty when unknown).
    pub fn callers(&self, id: FnId) -> &[FnId] {
        self.reverse.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Forward closure from `roots`, roots included. `barrier` fns are
    /// entered but not expanded (their callees stay unreached through
    /// them).
    pub fn reachable(
        &self,
        roots: &[FnId],
        barrier: &dyn Fn(FnId) -> bool,
    ) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut queue: VecDeque<FnId> = roots.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            if !seen.insert(id) {
                continue;
            }
            if barrier(id) {
                continue;
            }
            for &c in self.callees(id) {
                if !seen.contains(&c) {
                    queue.push_back(c);
                }
            }
        }
        seen
    }

    /// Shortest call path `from → … → to` (BFS, not expanding through
    /// `barrier` fns), as a list of [`FnId`]s including both endpoints.
    pub fn path(
        &self,
        from: FnId,
        goal: &dyn Fn(FnId) -> bool,
        barrier: &dyn Fn(FnId) -> bool,
    ) -> Option<Vec<FnId>> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        queue.push_back(from);
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        seen.insert(from);
        while let Some(id) = queue.pop_front() {
            if id != from && goal(id) {
                let mut path = vec![id];
                let mut cur = id;
                while let Some(&p) = parent.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            if id != from && barrier(id) {
                continue;
            }
            for &c in self.callees(id) {
                if seen.insert(c) {
                    parent.insert(c, id);
                    queue.push_back(c);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use std::path::Path;

    fn idx(path: &str, src: &str) -> FileIndex {
        FileIndex::build(&FileCtx::new(Path::new(path), src))
    }

    #[test]
    fn same_crate_resolution_wins() {
        let a = idx("crates/core/src/a.rs", "fn caller() { target(); }\nfn target() {}\n");
        let b = idx("crates/linalg/src/b.rs", "fn target() {}\n");
        let files = vec![("core".to_string(), &a), ("linalg".to_string(), &b)];
        let g = CallGraph::build(&files);
        // caller is (0,0); same-crate target (0,1) only.
        assert_eq!(g.callees((0, 0)), &[(0, 1)]);
    }

    #[test]
    fn cross_crate_fallback_when_local_missing() {
        let a = idx("crates/core/src/a.rs", "fn caller() { remote_leaf(); }\n");
        let b = idx("crates/linalg/src/b.rs", "fn remote_leaf() {}\n");
        let files = vec![("core".to_string(), &a), ("linalg".to_string(), &b)];
        let g = CallGraph::build(&files);
        assert_eq!(g.callees((0, 0)), &[(1, 0)]);
    }

    #[test]
    fn stoplist_names_resolve_to_nothing() {
        let a = idx("crates/core/src/a.rs", "fn caller(v: &[u8]) { v.len(); new(); }\nfn len() {}\nfn new() {}\n");
        let files = vec![("core".to_string(), &a)];
        let g = CallGraph::build(&files);
        assert!(g.callees((0, 0)).is_empty());
    }

    #[test]
    fn reachable_respects_barriers() {
        let a = idx(
            "crates/core/src/a.rs",
            "fn root() { shield(); }\nfn shield() { let _ = catch_unwind(|| risky_leaf()); }\nfn risky_leaf() {}\n",
        );
        let files = vec![("core".to_string(), &a)];
        let g = CallGraph::build(&files);
        let barrier = |id: FnId| files[id.0].1.fns[id.1].has_catch_unwind;
        let r = g.reachable(&[(0, 0)], &barrier);
        assert!(r.contains(&(0, 1)), "barrier fn itself is reached");
        assert!(!r.contains(&(0, 2)), "but not expanded through");
    }

    #[test]
    fn path_reconstruction() {
        let a = idx(
            "crates/core/src/a.rs",
            "fn entry() { middle(); }\nfn middle() { leaf_panics(); }\nfn leaf_panics() { x.unwrap(); }\n",
        );
        let files = vec![("core".to_string(), &a)];
        let g = CallGraph::build(&files);
        let goal = |id: FnId| !files[id.0].1.fns[id.1].panics.is_empty();
        let p = g.path((0, 0), &goal, &|_| false).unwrap();
        assert_eq!(p, vec![(0, 0), (0, 1), (0, 2)]);
    }
}
