//! Per-file analysis context: token stream, `cfg(test)` regions, file
//! classification, and suppression comments.
//!
//! Rules never re-lex or re-scan for structure; they interrogate a
//! [`FileCtx`] built once per file. The two structural facts rules care
//! about are *"is this byte offset inside test-only code?"* (attribute
//! region tracking below) and *"what kind of file is this?"* (library
//! source vs. binary vs. integration test, from the path shape).

use crate::lexer::{self, Tok, TokKind};
use std::path::Path;

/// Coarse classification from the path, following Cargo's layout rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` of some crate (or the workspace root package).
    Lib,
    /// `src/bin/**` or `src/main.rs`: an executable entry point.
    Bin,
    /// Under `tests/`, `benches/`, or `examples/`: test-only by location.
    TestFile,
}

/// A suppression parsed from an `rrlint-allow` comment: the marker, a
/// colon, one or more rule ids, and a mandatory reason.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule ids this comment waives, e.g. `["RR002"]`.
    pub rules: Vec<String>,
    /// The mandatory free-text justification.
    pub reason: String,
    /// Line the comment sits on; the waiver covers this line and the next.
    pub line: u32,
}

/// A malformed suppression comment (missing reason / bad rule id).
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// Line of the offending comment.
    pub line: u32,
    /// Why it was rejected.
    pub why: String,
}

/// Everything the rules need to know about one source file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Raw source text.
    pub src: &'a str,
    /// Full token stream, comments included.
    pub toks: Vec<Tok<'a>>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items (merged,
    /// sorted). A whole-file `#![cfg(test)]` yields one full range.
    pub test_regions: Vec<(usize, usize)>,
    /// Path-derived classification.
    pub kind: FileKind,
    /// Name of the owning crate (`linalg`, `obs`, …); the workspace root
    /// package is `"."`.
    pub crate_name: String,
    /// Valid suppressions found in the file.
    pub suppressions: Vec<Suppression>,
    /// Rejected suppression comments (surfaced as RR009 findings).
    pub bad_suppressions: Vec<BadSuppression>,
}

impl<'a> FileCtx<'a> {
    /// Builds the context for one file. `rel_path` must be
    /// workspace-relative (used for classification and reporting).
    pub fn new(rel_path: &Path, src: &'a str) -> Self {
        let path = rel_path
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let toks = lexer::tokenize(src);
        let kind = classify(&path);
        let crate_name = crate_of(&path);
        let test_regions = find_test_regions(src, &toks);
        let (suppressions, bad_suppressions) = scan_suppressions(&toks);
        FileCtx {
            path,
            src,
            toks,
            test_regions,
            kind,
            crate_name,
            suppressions,
            bad_suppressions,
        }
    }

    /// Is the byte offset inside test-only code (or is the whole file a
    /// test file)?
    pub fn in_test(&self, offset: usize) -> bool {
        self.kind == FileKind::TestFile
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Is a finding of `rule` on `line` waived by a suppression comment
    /// (same line or the line directly above)?
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions.iter().any(|s| {
            (s.line == line || s.line + 1 == line) && s.rules.iter().any(|r| r == rule)
        })
    }

    /// The 1-based source line, trimmed, for finding snippets.
    pub fn line_text(&self, line: u32) -> &str {
        self.src
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
    }

    /// Indices of non-comment tokens, for structural scans.
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.toks.len())
            .filter(|&i| !self.toks[i].is_comment())
            .collect()
    }
}

fn classify(path: &str) -> FileKind {
    let parts: Vec<&str> = path.split('/').collect();
    let in_dir = |d: &str| parts.iter().any(|p| *p == d);
    if in_dir("tests") || in_dir("benches") || in_dir("examples") {
        return FileKind::TestFile;
    }
    if path.ends_with("src/main.rs") || path.contains("src/bin/") {
        return FileKind::Bin;
    }
    FileKind::Lib
}

fn crate_of(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        ".".to_string()
    }
}

/// Scans the token stream for `#[cfg(test)]`-like attributes and returns
/// the byte ranges of the items they gate.
///
/// Recognized as test-gating: `#[test]`, `#[bench]`, and any `#[cfg(…)]`
/// whose argument list mentions the bare ident `test` (covers
/// `cfg(test)`, `cfg(all(test, feature = "x"))`, `cfg(any(test, …))`).
/// An inner `#![cfg(test)]` marks the whole file.
fn find_test_regions(src: &str, toks: &[Tok<'_>]) -> Vec<(usize, usize)> {
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut ci = 0usize;
    while ci < code.len() {
        let i = code[ci];
        if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
            let inner = matches!(code.get(ci + 1), Some(&j) if toks[j].text == "!");
            let open = if inner { ci + 2 } else { ci + 1 };
            if matches!(code.get(open), Some(&j) if toks[j].text == "[") {
                let (attr_end_ci, is_test) = scan_attr(toks, &code, open);
                if is_test {
                    if inner {
                        // #![cfg(test)] — whole file is test code.
                        return vec![(0, src.len())];
                    }
                    let start = toks[i].start;
                    let end = item_end(toks, &code, attr_end_ci, src.len());
                    regions.push((start, end));
                }
                ci = attr_end_ci;
                continue;
            }
        }
        ci += 1;
    }
    merge(regions)
}

/// From the `[` at code-index `open`, scans to the matching `]`.
/// Returns (code-index just past `]`, whether the attribute gates tests).
fn scan_attr(toks: &[Tok<'_>], code: &[usize], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut saw_cfg = false;
    let mut saw_test_ident = false;
    let mut first_ident: Option<&str> = None;
    let mut ci = open;
    while ci < code.len() {
        let t = &toks[code[ci]];
        match (t.kind, t.text) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    ci += 1;
                    break;
                }
            }
            (TokKind::Ident, text) => {
                if first_ident.is_none() {
                    first_ident = Some(text);
                }
                if text == "cfg" {
                    saw_cfg = true;
                }
                if text == "test" {
                    saw_test_ident = true;
                }
            }
            _ => {}
        }
        ci += 1;
    }
    let is_test = matches!(first_ident, Some("test") | Some("bench"))
        || (saw_cfg && saw_test_ident);
    (ci, is_test)
}

/// Byte offset where the item starting at code-index `ci` ends.
///
/// Skips any further attributes, then walks to the first of:
/// * a `;` at brace depth 0 (`use`/`const`/declarations), or
/// * the close of the first top-level `{ … }` block — plus a trailing
///   `;` if one follows directly (struct-literal initializers).
fn item_end(toks: &[Tok<'_>], code: &[usize], mut ci: usize, eof: usize) -> usize {
    // Skip stacked attributes: #[…] #[…] item
    while ci + 1 < code.len()
        && toks[code[ci]].text == "#"
        && toks[code[ci + 1]].text == "["
    {
        let (next, _) = scan_attr(toks, code, ci + 1);
        ci = next;
    }
    let mut brace = 0i32;
    let mut entered = false;
    while ci < code.len() {
        let t = &toks[code[ci]];
        if t.kind == TokKind::Punct {
            match t.text {
                "{" => {
                    brace += 1;
                    entered = true;
                }
                "}" => {
                    brace -= 1;
                    if entered && brace == 0 {
                        let close_end = t.start + 1;
                        // `const X: T = T { … };` — include the trailing
                        // semicolon so the whole item is covered.
                        if let Some(&j) = code.get(ci + 1) {
                            if toks[j].text == ";" {
                                return toks[j].start + 1;
                            }
                        }
                        return close_end;
                    }
                }
                ";" if brace == 0 => return t.start + 1,
                _ => {}
            }
        }
        ci += 1;
    }
    eof
}

fn merge(mut regions: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    regions.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(regions.len());
    for (s, e) in regions {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Marker that starts a suppression comment.
pub const ALLOW_MARKER: &str = "rrlint-allow:";

fn scan_suppressions(toks: &[Tok<'_>]) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        let Some(at) = t.text.find(ALLOW_MARKER) else {
            continue;
        };
        let rest = t.text[at + ALLOW_MARKER.len()..]
            .trim_end_matches("*/")
            .trim();
        // Grammar: RRNNN[,RRNNN…] <reason…>
        let mut rules: Vec<String> = Vec::new();
        let mut reason = "";
        if let Some((head, tail)) = rest.split_once(char::is_whitespace) {
            rules = head.split(',').map(str::to_string).collect();
            reason = tail.trim();
        } else if !rest.is_empty() {
            rules = rest.split(',').map(str::to_string).collect();
        }
        let malformed_rule = rules.is_empty()
            || rules
                .iter()
                .any(|r| r.len() != 5 || !r.starts_with("RR") || !r[2..].chars().all(|c| c.is_ascii_digit()));
        if malformed_rule {
            bad.push(BadSuppression {
                line: t.line,
                why: format!("expected `{ALLOW_MARKER} RRNNN <reason>`, got `{rest}`"),
            });
        } else if reason.len() < 3 {
            bad.push(BadSuppression {
                line: t.line,
                why: format!(
                    "suppression of {} needs a reason string (why is this safe?)",
                    rules.join(",")
                ),
            });
        } else {
            good.push(Suppression {
                rules,
                reason: reason.to_string(),
                line: t.line,
            });
        }
    }
    (good, bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn ctx<'a>(path: &str, src: &'a str) -> FileCtx<'a> {
        FileCtx::new(Path::new(path), src)
    }

    #[test]
    fn classification_follows_cargo_layout() {
        assert_eq!(ctx("crates/linalg/src/svd.rs", "").kind, FileKind::Lib);
        assert_eq!(ctx("crates/cli/src/main.rs", "").kind, FileKind::Bin);
        assert_eq!(ctx("crates/bench/src/bin/x.rs", "").kind, FileKind::Bin);
        assert_eq!(ctx("tests/proptests.rs", "").kind, FileKind::TestFile);
        assert_eq!(ctx("crates/core/benches/b.rs", "").kind, FileKind::TestFile);
        assert_eq!(ctx("crates/linalg/src/svd.rs", "").crate_name, "linalg");
        assert_eq!(ctx("src/lib.rs", "").crate_name, ".");
    }

    #[test]
    fn cfg_test_module_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let c = ctx("crates/x/src/lib.rs", src);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(c.in_test(unwrap_at));
        assert!(!c.in_test(src.find("live").unwrap()));
        assert!(!c.in_test(src.find("after").unwrap()));
    }

    #[test]
    fn test_attribute_on_fn() {
        let src = "#[test]\nfn check() { panic!(); }\nfn real() {}\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert!(c.in_test(src.find("panic").unwrap()));
        assert!(!c.in_test(src.find("real").unwrap()));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod t { fn f() {} }\nfn g() {}\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert!(c.in_test(src.find("fn f").unwrap()));
        assert!(!c.in_test(src.find("fn g").unwrap()));
    }

    #[test]
    fn cfg_feature_does_not_count() {
        let src = "#[cfg(feature = \"fast\")]\nfn f() {}\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert!(!c.in_test(src.find("fn f").unwrap()));
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\nfn anything() { x.unwrap(); }\n";
        let c = ctx("crates/x/src/extra.rs", src);
        assert!(c.in_test(src.find("unwrap").unwrap()));
    }

    #[test]
    fn stacked_attributes_before_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn f() {} }\nfn g() {}\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert!(c.in_test(src.find("fn f").unwrap()));
        assert!(!c.in_test(src.find("fn g").unwrap()));
    }

    #[test]
    fn semicolon_item_region() {
        let src = "#[cfg(test)]\nuse std::mem;\nfn g() {}\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert!(c.in_test(src.find("std::mem").unwrap()));
        assert!(!c.in_test(src.find("fn g").unwrap()));
    }

    #[test]
    fn braces_in_strings_do_not_break_regions() {
        let src = "#[cfg(test)]\nmod t { const S: &str = \"}}}{\"; fn f() {} }\nfn g() {}\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert!(c.in_test(src.find("fn f").unwrap()));
        assert!(!c.in_test(src.find("fn g").unwrap()));
    }

    #[test]
    fn suppressions_parse_and_apply() {
        let src = "// rrlint-allow: RR002 exact zero is the algorithm's sentinel\nlet a = x == 0.0;\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert_eq!(c.suppressions.len(), 1);
        assert!(c.suppressed("RR002", 2));
        assert!(!c.suppressed("RR001", 2));
        assert!(!c.suppressed("RR002", 3));
    }

    #[test]
    fn suppression_without_reason_is_rejected() {
        let src = "// rrlint-allow: RR002\nlet a = x == 0.0;\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert!(c.suppressions.is_empty());
        assert_eq!(c.bad_suppressions.len(), 1);
        assert!(c.bad_suppressions[0].why.contains("reason"));
    }

    #[test]
    fn suppression_with_bad_rule_id_is_rejected() {
        let src = "// rrlint-allow: RRX bogus reason here\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert!(c.suppressions.is_empty());
        assert_eq!(c.bad_suppressions.len(), 1);
    }

    #[test]
    fn multi_rule_suppression() {
        let src = "// rrlint-allow: RR002,RR007 trusted hot-loop sentinel comparison\nassert!(x == 0.0);\n";
        let c = ctx("crates/core/src/covariance.rs", src);
        assert!(c.suppressed("RR002", 2));
        assert!(c.suppressed("RR007", 2));
    }
}
