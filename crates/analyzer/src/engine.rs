//! Workspace driver: find the files, build contexts, run rules, diff
//! against the baseline.
//!
//! The engine is deliberately a plain library API (no process exit, no
//! printing) so the same code path serves the `rrlint` binary, the
//! in-repo integration tests, and the injected-violation e2e check in
//! `scripts/verify.sh`.

use crate::baseline::{escape, Baseline};
use crate::context::FileCtx;
use crate::index::FileIndex;
use crate::rules::{self, Finding};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Errors from the engine (I/O and configuration, never findings).
#[derive(Debug)]
pub enum EngineError {
    /// Reading a file or directory failed.
    Io(PathBuf, std::io::Error),
    /// The baseline file exists but does not parse.
    BadBaseline(PathBuf, String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            EngineError::BadBaseline(p, why) => {
                write!(f, "baseline {} is malformed: {why}", p.display())
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Where the obs name registry lives, relative to the workspace root.
pub const REGISTRY_PATH: &str = "crates/obs/src/names.rs";

/// Default baseline location, relative to the workspace root.
pub const BASELINE_PATH: &str = "lint-baseline.json";

/// Outcome of one full `check` run.
pub struct Report {
    /// Every finding in the workspace, baselined or not.
    pub findings: Vec<Finding>,
    /// The subset not covered by the baseline (what fails the gate).
    pub new: Vec<Finding>,
    /// Baseline entries matching nothing anymore (burn-down progress).
    pub stale: usize,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Whether a baseline file was found and applied.
    pub had_baseline: bool,
    /// Registry constants in `names.rs` that no producer ever emits
    /// (the RR004 inverse: registered but dead). Warning-only.
    pub dead_names: Vec<String>,
}

impl Report {
    /// Gate verdict: true when no un-baselined findings exist.
    pub fn clean(&self) -> bool {
        self.new.is_empty()
    }
}

/// Collects every workspace `.rs` file under `root`, sorted for
/// deterministic reports. Skips `target`, hidden directories, and
/// anything that is not UTF-8 readable.
///
/// # Errors
/// Returns [`EngineError::Io`] if a directory listing fails outright
/// (unreadable single files are skipped, a missing tree is an error).
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, EngineError> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| EngineError::Io(dir.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| EngineError::Io(dir.clone(), e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads the obs metric/span name registry: every non-test string
/// literal in `crates/obs/src/names.rs`. Returns `None` when the file is
/// absent (RR004 is then skipped, e.g. on foreign trees).
pub fn load_registry(root: &Path) -> Option<Vec<String>> {
    let path = root.join(REGISTRY_PATH);
    let src = fs::read_to_string(&path).ok()?;
    let ctx = FileCtx::new(Path::new(REGISTRY_PATH), &src);
    let mut names: Vec<String> = ctx
        .toks
        .iter()
        .filter(|t| t.kind == crate::lexer::TokKind::StrLit && !ctx.in_test(t.start))
        .filter_map(|t| rules::str_lit_value(t.text))
        .collect();
    names.sort();
    names.dedup();
    Some(names)
}

/// Every readable workspace source: `(workspace-relative path, text)`.
/// Loaded once per run; contexts, indices, per-file and workspace rules
/// all borrow from this single pass.
pub type Sources = Vec<(PathBuf, String)>;

/// Reads every workspace `.rs` file under `root` into memory.
///
/// # Errors
/// Returns [`EngineError::Io`] when the tree cannot be walked
/// (individual non-UTF-8 or vanished files are skipped).
pub fn load_sources(root: &Path) -> Result<Sources, EngineError> {
    let mut out = Vec::new();
    for path in workspace_files(root)? {
        let Ok(src) = fs::read_to_string(&path) else {
            continue; // non-UTF-8 or vanished mid-walk: nothing to lint
        };
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        out.push((rel, src));
    }
    Ok(out)
}

/// The registry names, derived from an already-loaded source set
/// (same contract as [`load_registry`], no second disk read).
fn registry_from(sources: &Sources) -> Option<Vec<String>> {
    let (_, src) = sources
        .iter()
        .find(|(p, _)| p.to_string_lossy().replace('\\', "/") == REGISTRY_PATH)?;
    let ctx = FileCtx::new(Path::new(REGISTRY_PATH), src);
    let mut names: Vec<String> = ctx
        .toks
        .iter()
        .filter(|t| t.kind == crate::lexer::TokKind::StrLit && !ctx.in_test(t.start))
        .filter_map(|t| rules::str_lit_value(t.text))
        .collect();
    names.sort();
    names.dedup();
    Some(names)
}

/// Runs the per-file rules and the workspace rules over loaded sources.
fn findings_from_sources(sources: &Sources, registry: Option<&[String]>) -> Vec<Finding> {
    let pairs: Vec<(FileCtx<'_>, FileIndex)> = sources
        .iter()
        .map(|(rel, src)| {
            let ctx = FileCtx::new(rel, src);
            let idx = FileIndex::build(&ctx);
            (ctx, idx)
        })
        .collect();
    let mut findings = Vec::new();
    for (ctx, _) in &pairs {
        findings.extend(rules::check_file(ctx, registry));
    }
    findings.extend(rules::check_workspace(&pairs));
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule))
    });
    findings
}

/// The RR004 inverse: registry constants (`pub const NAME: &str = "v";`
/// in `names.rs`) that no other workspace file references by identifier
/// *or* emits by literal value. Either kind of use counts as alive —
/// producers routinely write the raw string rather than the const.
/// Returns the dead const identifiers, sorted. Warning-only: dead names
/// rot silently (dashboards chart a metric nothing emits), but they
/// cannot corrupt results, so they do not fail the gate.
pub fn dead_metric_names(sources: &Sources) -> Vec<String> {
    let Some((_, names_src)) = sources
        .iter()
        .find(|(p, _)| p.to_string_lossy().replace('\\', "/") == REGISTRY_PATH)
    else {
        return Vec::new();
    };
    let ctx = FileCtx::new(Path::new(REGISTRY_PATH), names_src);
    let code = ctx.code_indices();
    // `const IDENT : & str = "value" ;` — the registry's own shape.
    let mut consts: Vec<(String, String)> = Vec::new();
    for w in 0..code.len() {
        let tok = |k: usize| code.get(w + k).map(|&i| &ctx.toks[i]);
        if ctx.toks[code[w]].text != "const" {
            continue;
        }
        let shape = tok(2).is_some_and(|t| t.text == ":")
            && tok(3).is_some_and(|t| t.text == "&")
            && tok(4).is_some_and(|t| t.text == "str")
            && tok(5).is_some_and(|t| t.text == "=")
            && tok(6).is_some_and(|t| t.kind == crate::lexer::TokKind::StrLit);
        if !shape {
            continue;
        }
        let (Some(name), Some(lit)) = (tok(1), tok(6)) else {
            continue;
        };
        if let Some(value) = rules::str_lit_value(lit.text) {
            consts.push((name.text.to_string(), value));
        }
    }
    let others: Vec<&String> = sources
        .iter()
        .filter(|(p, _)| p.to_string_lossy().replace('\\', "/") != REGISTRY_PATH)
        .map(|(_, s)| s)
        .collect();
    let mut dead = Vec::new();
    for (ident, value) in &consts {
        let quoted = format!("\"{value}\"");
        let alive = others
            .iter()
            .any(|s| s.contains(&quoted) || contains_word(s, ident));
        if !alive {
            dead.push(ident.clone());
        }
    }
    dead.sort();
    dead
}

/// Whole-word substring search (identifier boundaries on both sides),
/// so the const `ROWS` is not "used" by an unrelated `ROWS_TOTAL`.
fn contains_word(hay: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let is_word = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let end = at + needle.len();
        let before_ok = at == 0 || !is_word(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_word(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Lints the whole workspace under `root`. `baseline` is applied when
/// present on disk; a missing baseline means every finding is "new".
///
/// # Errors
/// Returns [`EngineError`] on unreadable trees or a malformed baseline.
pub fn run_check(root: &Path, baseline_path: &Path) -> Result<Report, EngineError> {
    let sources = load_sources(root)?;
    let registry = registry_from(&sources);
    let findings = findings_from_sources(&sources, registry.as_deref());
    let dead_names = dead_metric_names(&sources);
    let (baseline, had_baseline) = if baseline_path.exists() {
        let text = fs::read_to_string(baseline_path)
            .map_err(|e| EngineError::Io(baseline_path.to_path_buf(), e))?;
        let b = Baseline::from_json(&text)
            .map_err(|why| EngineError::BadBaseline(baseline_path.to_path_buf(), why))?;
        (b, true)
    } else {
        (Baseline::default(), false)
    };
    let new: Vec<Finding> = baseline
        .new_findings(&findings)
        .into_iter()
        .cloned()
        .collect();
    let stale = baseline.stale_entries(&findings);
    let files = sources.len();
    Ok(Report {
        findings,
        new,
        stale,
        files,
        had_baseline,
        dead_names,
    })
}

/// Runs every rule over every workspace file, no baseline applied.
///
/// # Errors
/// Returns [`EngineError::Io`] when the tree cannot be walked.
pub fn collect_findings(root: &Path) -> Result<Vec<Finding>, EngineError> {
    let sources = load_sources(root)?;
    let registry = registry_from(&sources);
    Ok(findings_from_sources(&sources, registry.as_deref()))
}

/// Renders one finding as a JSON object (keys stable for CI consumers).
fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
        f.rule,
        escape(&f.path),
        f.line,
        escape(&f.message),
        escape(&f.snippet)
    )
}

/// Renders the report as machine-readable JSON (`--format json`).
/// Key layout is versioned; consumers should reject unknown versions.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    let _ = writeln!(out, "  \"clean\": {},", report.clean());
    let _ = writeln!(out, "  \"files\": {},", report.files);
    let _ = writeln!(out, "  \"had_baseline\": {},", report.had_baseline);
    let _ = writeln!(out, "  \"stale_baseline_entries\": {},", report.stale);
    let join = |fs: &[Finding]| {
        fs.iter().map(finding_json).collect::<Vec<_>>().join(",\n    ")
    };
    let _ = writeln!(
        out,
        "  \"new\": [{}{}{}],",
        if report.new.is_empty() { "" } else { "\n    " },
        join(&report.new),
        if report.new.is_empty() { "" } else { "\n  " },
    );
    let _ = writeln!(
        out,
        "  \"findings\": [{}{}{}],",
        if report.findings.is_empty() { "" } else { "\n    " },
        join(&report.findings),
        if report.findings.is_empty() { "" } else { "\n  " },
    );
    let dead: Vec<String> =
        report.dead_names.iter().map(|n| format!("\"{}\"", escape(n))).collect();
    let _ = writeln!(out, "  \"dead_names\": [{}]", dead.join(", "));
    out.push_str("}\n");
    out
}

/// Escapes a GitHub Actions workflow-command *value* (`::error …::msg`).
fn gh_data(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escapes a GitHub Actions workflow-command *property* (file=, title=).
fn gh_prop(s: &str) -> String {
    gh_data(s).replace(':', "%3A").replace(',', "%2C")
}

/// Renders the report as GitHub Actions annotations
/// (`--format github`): one `::error` per new finding, warnings for
/// dead registry names and stale baseline entries.
pub fn render_github(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.new {
        let _ = writeln!(
            out,
            "::error file={},line={},title=rrlint {}::{}",
            gh_prop(&f.path),
            f.line,
            gh_prop(f.rule),
            gh_data(&f.message)
        );
    }
    for n in &report.dead_names {
        let _ = writeln!(
            out,
            "::warning file={REGISTRY_PATH},title=rrlint dead-name::registry constant `{}` is never emitted by any producer; remove it or wire up the producer",
            gh_data(n)
        );
    }
    if report.stale > 0 {
        let _ = writeln!(
            out,
            "::warning title=rrlint stale-baseline::{} baseline entr{} no longer match any finding; run `rrlint baseline --write` to shrink the baseline",
            report.stale,
            if report.stale == 1 { "y" } else { "ies" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// Builds a throwaway workspace tree under the system temp dir.
    struct TempTree {
        root: PathBuf,
    }

    impl TempTree {
        fn new(tag: &str) -> Self {
            let root = std::env::temp_dir().join(format!(
                "rrlint_engine_{tag}_{}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).unwrap();
            TempTree { root }
        }

        fn write(&self, rel: &str, content: &str) {
            let p = self.root.join(rel);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(p, content).unwrap();
        }
    }

    impl Drop for TempTree {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    const NAMES_RS: &str = r#"
pub const ROWS: &str = "rows_total";
pub const NAMES: &[&str] = &[ROWS];
"#;

    #[test]
    fn end_to_end_injected_violation_fails_then_baseline_blesses() {
        let t = TempTree::new("e2e");
        t.write("crates/obs/src/names.rs", NAMES_RS);
        t.write(
            "crates/core/src/lib.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let missing = t.root.join(BASELINE_PATH);

        // No baseline: the unwrap is a new finding and the gate fails.
        let report = run_check(&t.root, &missing).unwrap();
        assert!(!report.clean());
        assert_eq!(report.new.len(), 1);
        assert_eq!(report.new[0].rule, "RR001");
        assert!(!report.had_baseline);

        // Bless it, rerun: clean.
        let blessed = Baseline::from_findings(&report.findings);
        fs::write(&missing, blessed.to_json()).unwrap();
        let report2 = run_check(&t.root, &missing).unwrap();
        assert!(report2.clean());
        assert!(report2.had_baseline);

        // Inject a *second* violation: exactly it fails the gate.
        t.write(
            "crates/core/src/lib.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g() { panic!(\"new\"); }\n",
        );
        let report3 = run_check(&t.root, &missing).unwrap();
        assert_eq!(report3.new.len(), 1);
        assert!(report3.new[0].message.contains("panic"));
    }

    #[test]
    fn registry_is_loaded_and_enforced() {
        let t = TempTree::new("registry");
        t.write("crates/obs/src/names.rs", NAMES_RS);
        t.write(
            "crates/core/src/lib.rs",
            "fn f() { obs::counter_add(\"rows_total\", 1); obs::counter_add(\"rogue_total\", 1); }\n",
        );
        let report = run_check(&t.root, &t.root.join(BASELINE_PATH)).unwrap();
        let rr004: Vec<_> = report.findings.iter().filter(|f| f.rule == "RR004").collect();
        assert_eq!(rr004.len(), 1);
        assert!(rr004[0].message.contains("rogue_total"));
    }

    #[test]
    fn missing_registry_disables_rr004() {
        let t = TempTree::new("noreg");
        t.write(
            "crates/core/src/lib.rs",
            "fn f() { obs::counter_add(\"anything\", 1); }\n",
        );
        let report = run_check(&t.root, &t.root.join(BASELINE_PATH)).unwrap();
        assert!(report.findings.iter().all(|f| f.rule != "RR004"));
    }

    #[test]
    fn malformed_baseline_fails_loudly() {
        let t = TempTree::new("badbase");
        t.write("crates/core/src/lib.rs", "fn f() {}\n");
        let p = t.root.join(BASELINE_PATH);
        fs::write(&p, "{ not json").unwrap();
        assert!(matches!(
            run_check(&t.root, &p),
            Err(EngineError::BadBaseline(_, _))
        ));
    }

    #[test]
    fn target_and_hidden_dirs_are_skipped() {
        let t = TempTree::new("skip");
        t.write("crates/core/src/lib.rs", "fn ok() {}\n");
        t.write("target/debug/build/junk.rs", "fn f() { x.unwrap(); }\n");
        t.write(".git/hooks/h.rs", "fn f() { panic!(); }\n");
        let report = run_check(&t.root, &t.root.join(BASELINE_PATH)).unwrap();
        assert!(report.findings.is_empty());
        assert_eq!(report.files, 1);
    }

    #[test]
    fn dead_registry_names_are_reported() {
        let t = TempTree::new("dead");
        t.write(
            "crates/obs/src/names.rs",
            "pub const ROWS: &str = \"rows_total\";\n\
             pub const GHOST: &str = \"ghost_total\";\n\
             pub const BY_IDENT: &str = \"by_ident_total\";\n\
             pub const NAMES: &[&str] = &[ROWS, GHOST, BY_IDENT];\n",
        );
        // ROWS is alive by literal value, BY_IDENT by identifier; GHOST
        // is only mentioned inside the registry itself → dead.
        t.write(
            "crates/core/src/lib.rs",
            "fn f() { obs::counter_add(\"rows_total\", 1); obs::counter_add(names::BY_IDENT, 1); }\n",
        );
        let report = run_check(&t.root, &t.root.join(BASELINE_PATH)).unwrap();
        assert_eq!(report.dead_names, vec!["GHOST".to_string()]);
    }

    #[test]
    fn dead_name_ident_match_needs_word_boundary() {
        let t = TempTree::new("deadword");
        t.write(
            "crates/obs/src/names.rs",
            "pub const ROW: &str = \"row_one\";\n",
        );
        // `ROWS_TOTAL` must not count as a use of `ROW`.
        t.write("crates/core/src/lib.rs", "fn f() { emit(ROWS_TOTAL); }\n");
        let report = run_check(&t.root, &t.root.join(BASELINE_PATH)).unwrap();
        assert_eq!(report.dead_names, vec!["ROW".to_string()]);
    }

    #[test]
    fn json_and_github_renderers_carry_new_findings() {
        let t = TempTree::new("render");
        t.write(
            "crates/core/src/lib.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let report = run_check(&t.root, &t.root.join(BASELINE_PATH)).unwrap();
        let j = render_json(&report);
        assert!(j.contains("\"version\": 1"), "{j}");
        assert!(j.contains("\"clean\": false"), "{j}");
        assert!(j.contains("\"rule\":\"RR001\""), "{j}");
        assert!(j.contains("\"path\":\"crates/core/src/lib.rs\""), "{j}");
        let g = render_github(&report);
        assert!(
            g.contains("::error file=crates/core/src/lib.rs,line=1,title=rrlint RR001::"),
            "{g}"
        );
    }

    #[test]
    fn workspace_rules_run_through_the_engine() {
        let t = TempTree::new("wsrules");
        t.write(
            "crates/serve/src/server.rs",
            "fn handle(&self, s: &mut TcpStream) {\n    let st = self.state.lock().unwrap();\n    s.write_all(b\"x\").ok();\n}\n",
        );
        let report = run_check(&t.root, &t.root.join(BASELINE_PATH)).unwrap();
        let rr010: Vec<_> = report.findings.iter().filter(|f| f.rule == "RR010").collect();
        assert_eq!(rr010.len(), 1, "{:?}", report.findings);
    }

    #[test]
    fn findings_are_deterministically_ordered() {
        let t = TempTree::new("order");
        t.write("crates/b/src/lib.rs", "fn f() { x.unwrap(); }\n");
        t.write("crates/a/src/lib.rs", "fn f() { y.unwrap(); }\n");
        let r1 = collect_findings(&t.root).unwrap();
        let r2 = collect_findings(&t.root).unwrap();
        assert_eq!(r1, r2);
        assert!(r1[0].path < r1[1].path);
    }
}
