//! Workspace driver: find the files, build contexts, run rules, diff
//! against the baseline.
//!
//! The engine is deliberately a plain library API (no process exit, no
//! printing) so the same code path serves the `rrlint` binary, the
//! in-repo integration tests, and the injected-violation e2e check in
//! `scripts/verify.sh`.

use crate::baseline::Baseline;
use crate::context::FileCtx;
use crate::rules::{self, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// Errors from the engine (I/O and configuration, never findings).
#[derive(Debug)]
pub enum EngineError {
    /// Reading a file or directory failed.
    Io(PathBuf, std::io::Error),
    /// The baseline file exists but does not parse.
    BadBaseline(PathBuf, String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            EngineError::BadBaseline(p, why) => {
                write!(f, "baseline {} is malformed: {why}", p.display())
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Where the obs name registry lives, relative to the workspace root.
pub const REGISTRY_PATH: &str = "crates/obs/src/names.rs";

/// Default baseline location, relative to the workspace root.
pub const BASELINE_PATH: &str = "lint-baseline.json";

/// Outcome of one full `check` run.
pub struct Report {
    /// Every finding in the workspace, baselined or not.
    pub findings: Vec<Finding>,
    /// The subset not covered by the baseline (what fails the gate).
    pub new: Vec<Finding>,
    /// Baseline entries matching nothing anymore (burn-down progress).
    pub stale: usize,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Whether a baseline file was found and applied.
    pub had_baseline: bool,
}

impl Report {
    /// Gate verdict: true when no un-baselined findings exist.
    pub fn clean(&self) -> bool {
        self.new.is_empty()
    }
}

/// Collects every workspace `.rs` file under `root`, sorted for
/// deterministic reports. Skips `target`, hidden directories, and
/// anything that is not UTF-8 readable.
///
/// # Errors
/// Returns [`EngineError::Io`] if a directory listing fails outright
/// (unreadable single files are skipped, a missing tree is an error).
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, EngineError> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| EngineError::Io(dir.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| EngineError::Io(dir.clone(), e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads the obs metric/span name registry: every non-test string
/// literal in `crates/obs/src/names.rs`. Returns `None` when the file is
/// absent (RR004 is then skipped, e.g. on foreign trees).
pub fn load_registry(root: &Path) -> Option<Vec<String>> {
    let path = root.join(REGISTRY_PATH);
    let src = fs::read_to_string(&path).ok()?;
    let ctx = FileCtx::new(Path::new(REGISTRY_PATH), &src);
    let mut names: Vec<String> = ctx
        .toks
        .iter()
        .filter(|t| t.kind == crate::lexer::TokKind::StrLit && !ctx.in_test(t.start))
        .filter_map(|t| rules::str_lit_value(t.text))
        .collect();
    names.sort();
    names.dedup();
    Some(names)
}

/// Lints the whole workspace under `root`. `baseline` is applied when
/// present on disk; a missing baseline means every finding is "new".
///
/// # Errors
/// Returns [`EngineError`] on unreadable trees or a malformed baseline.
pub fn run_check(root: &Path, baseline_path: &Path) -> Result<Report, EngineError> {
    let findings = collect_findings(root)?;
    let (baseline, had_baseline) = if baseline_path.exists() {
        let text = fs::read_to_string(baseline_path)
            .map_err(|e| EngineError::Io(baseline_path.to_path_buf(), e))?;
        let b = Baseline::from_json(&text)
            .map_err(|why| EngineError::BadBaseline(baseline_path.to_path_buf(), why))?;
        (b, true)
    } else {
        (Baseline::default(), false)
    };
    let new: Vec<Finding> = baseline
        .new_findings(&findings)
        .into_iter()
        .cloned()
        .collect();
    let stale = baseline.stale_entries(&findings);
    let files = workspace_files(root)?.len();
    Ok(Report {
        findings,
        new,
        stale,
        files,
        had_baseline,
    })
}

/// Runs every rule over every workspace file, no baseline applied.
///
/// # Errors
/// Returns [`EngineError::Io`] when the tree cannot be walked.
pub fn collect_findings(root: &Path) -> Result<Vec<Finding>, EngineError> {
    let registry = load_registry(root);
    let files = workspace_files(root)?;
    let mut findings = Vec::new();
    for path in &files {
        let Ok(src) = fs::read_to_string(path) else {
            continue; // non-UTF-8 or vanished mid-walk: nothing to lint
        };
        let rel = path.strip_prefix(root).unwrap_or(path);
        let ctx = FileCtx::new(rel, &src);
        findings.extend(rules::check_file(&ctx, registry.as_deref()));
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule))
    });
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// Builds a throwaway workspace tree under the system temp dir.
    struct TempTree {
        root: PathBuf,
    }

    impl TempTree {
        fn new(tag: &str) -> Self {
            let root = std::env::temp_dir().join(format!(
                "rrlint_engine_{tag}_{}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).unwrap();
            TempTree { root }
        }

        fn write(&self, rel: &str, content: &str) {
            let p = self.root.join(rel);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(p, content).unwrap();
        }
    }

    impl Drop for TempTree {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    const NAMES_RS: &str = r#"
pub const ROWS: &str = "rows_total";
pub const NAMES: &[&str] = &[ROWS];
"#;

    #[test]
    fn end_to_end_injected_violation_fails_then_baseline_blesses() {
        let t = TempTree::new("e2e");
        t.write("crates/obs/src/names.rs", NAMES_RS);
        t.write(
            "crates/core/src/lib.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let missing = t.root.join(BASELINE_PATH);

        // No baseline: the unwrap is a new finding and the gate fails.
        let report = run_check(&t.root, &missing).unwrap();
        assert!(!report.clean());
        assert_eq!(report.new.len(), 1);
        assert_eq!(report.new[0].rule, "RR001");
        assert!(!report.had_baseline);

        // Bless it, rerun: clean.
        let blessed = Baseline::from_findings(&report.findings);
        fs::write(&missing, blessed.to_json()).unwrap();
        let report2 = run_check(&t.root, &missing).unwrap();
        assert!(report2.clean());
        assert!(report2.had_baseline);

        // Inject a *second* violation: exactly it fails the gate.
        t.write(
            "crates/core/src/lib.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g() { panic!(\"new\"); }\n",
        );
        let report3 = run_check(&t.root, &missing).unwrap();
        assert_eq!(report3.new.len(), 1);
        assert!(report3.new[0].message.contains("panic"));
    }

    #[test]
    fn registry_is_loaded_and_enforced() {
        let t = TempTree::new("registry");
        t.write("crates/obs/src/names.rs", NAMES_RS);
        t.write(
            "crates/core/src/lib.rs",
            "fn f() { obs::counter_add(\"rows_total\", 1); obs::counter_add(\"rogue_total\", 1); }\n",
        );
        let report = run_check(&t.root, &t.root.join(BASELINE_PATH)).unwrap();
        let rr004: Vec<_> = report.findings.iter().filter(|f| f.rule == "RR004").collect();
        assert_eq!(rr004.len(), 1);
        assert!(rr004[0].message.contains("rogue_total"));
    }

    #[test]
    fn missing_registry_disables_rr004() {
        let t = TempTree::new("noreg");
        t.write(
            "crates/core/src/lib.rs",
            "fn f() { obs::counter_add(\"anything\", 1); }\n",
        );
        let report = run_check(&t.root, &t.root.join(BASELINE_PATH)).unwrap();
        assert!(report.findings.iter().all(|f| f.rule != "RR004"));
    }

    #[test]
    fn malformed_baseline_fails_loudly() {
        let t = TempTree::new("badbase");
        t.write("crates/core/src/lib.rs", "fn f() {}\n");
        let p = t.root.join(BASELINE_PATH);
        fs::write(&p, "{ not json").unwrap();
        assert!(matches!(
            run_check(&t.root, &p),
            Err(EngineError::BadBaseline(_, _))
        ));
    }

    #[test]
    fn target_and_hidden_dirs_are_skipped() {
        let t = TempTree::new("skip");
        t.write("crates/core/src/lib.rs", "fn ok() {}\n");
        t.write("target/debug/build/junk.rs", "fn f() { x.unwrap(); }\n");
        t.write(".git/hooks/h.rs", "fn f() { panic!(); }\n");
        let report = run_check(&t.root, &t.root.join(BASELINE_PATH)).unwrap();
        assert!(report.findings.is_empty());
        assert_eq!(report.files, 1);
    }

    #[test]
    fn findings_are_deterministically_ordered() {
        let t = TempTree::new("order");
        t.write("crates/b/src/lib.rs", "fn f() { x.unwrap(); }\n");
        t.write("crates/a/src/lib.rs", "fn f() { y.unwrap(); }\n");
        let r1 = collect_findings(&t.root).unwrap();
        let r2 = collect_findings(&t.root).unwrap();
        assert_eq!(r1, r2);
        assert!(r1[0].path < r1[1].path);
    }
}
