//! Lightweight semantic index over the token forest.
//!
//! The semantic rules (`RR010`–`RR013`) need answers the flat token
//! stream cannot give: *which fn owns this token*, *is this `let` a lock
//! guard and how long does it live*, *does this fn call that one*. A
//! [`FileIndex`] extracts exactly those facts from the [`crate::tree`]
//! forest — nothing more. It is a sketch, not a type checker:
//!
//! * **Item outline** — every `fn` with its name, `impl` owner,
//!   visibility, body token range, and `cfg(test)` inheritance (a fn
//!   inside a `#[cfg(test)]` mod is test code, via
//!   [`crate::context::FileCtx::in_test`]).
//! * **Guard bindings** — `let g = m.lock();`-style statements whose
//!   initializer *ends* at `.lock()` / `.read()` / `.write()` (plus an
//!   optional `.unwrap()` / `.expect(…)` / `.unwrap_or_else(…)`
//!   finisher). An initializer that keeps going (`….lock().take()`)
//!   does not bind a guard — the temporary dies at the semicolon. The
//!   live range runs to `drop(g)` or the end of the enclosing block.
//! * **Hash-container names** — fields, params, and locals whose
//!   declared type mentions `HashMap`/`HashSet`, plus guards bound from
//!   locking such a field. Name-based and file-scoped by design.
//! * **Calls** — `name(…)` and `.name(…)` shapes per fn body, the raw
//!   material for the [`crate::callgraph`] approximation.
//! * **Panic sites** — the RR001 construct set (`.unwrap()`,
//!   `.expect(…)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`)
//!   per fn, which RR013 propagates interprocedurally.

use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::tree::{self, Delim, Forest, Tree};
use std::collections::BTreeSet;

/// How a guard was acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockVerb {
    /// `Mutex::lock`
    Lock,
    /// `RwLock::read`
    Read,
    /// `RwLock::write`
    Write,
}

impl LockVerb {
    fn of(text: &str) -> Option<LockVerb> {
        match text {
            "lock" => Some(LockVerb::Lock),
            "read" => Some(LockVerb::Read),
            "write" => Some(LockVerb::Write),
            _ => None,
        }
    }

    /// The method name, for messages.
    pub fn method(self) -> &'static str {
        match self {
            LockVerb::Lock => "lock",
            LockVerb::Read => "read",
            LockVerb::Write => "write",
        }
    }
}

/// A `let g = m.lock();` binding and its live range.
#[derive(Debug, Clone)]
pub struct GuardBinding {
    /// Bound variable name (`g`).
    pub name: String,
    /// Lock identity for the order graph: `Type.field` for
    /// `self.field` receivers inside an `impl Type`, the receiver text
    /// otherwise.
    pub key: String,
    /// Acquisition method.
    pub verb: LockVerb,
    /// 1-based line of the binding.
    pub line: u32,
    /// Raw-token index of the bound name.
    pub decl_tok: usize,
    /// Raw-token index (exclusive) where the guard dies: `drop(g)` or
    /// the end of the enclosing block.
    pub end_tok: usize,
    /// The locked field is a known `HashMap`/`HashSet` container.
    pub is_hash: bool,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name as written (`tree_merge`, `push`, …).
    pub name: String,
    /// Raw-token index of the callee name.
    pub tok: usize,
}

/// A panicking construct (the RR001 set) inside a fn body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// The construct: `unwrap`, `expect`, `panic`, ….
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// Byte offset of the construct (for `in_test` checks).
    pub start: usize,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Name as written.
    pub name: String,
    /// `impl` type owning this method, if any.
    pub owner: Option<String>,
    /// Unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Inside test-only code (file kind or `cfg(test)` inheritance).
    pub is_test: bool,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// Raw-token index range `[start, end]` of the body, braces
    /// included. `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Guard bindings in the body, outermost first.
    pub guards: Vec<GuardBinding>,
    /// Call sites in the body.
    pub calls: Vec<Call>,
    /// Panicking constructs in the body.
    pub panics: Vec<PanicSite>,
    /// Body mentions `catch_unwind` (an RR013 propagation barrier).
    pub has_catch_unwind: bool,
}

/// The per-file index consumed by the semantic rules.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// Every `fn` in the file, in source order.
    pub fns: Vec<FnInfo>,
    /// Names (fields/params/locals/guards) with `HashMap`/`HashSet`
    /// types, file-scoped.
    pub hash_names: BTreeSet<String>,
}

/// Keywords that look like calls when followed by `(`.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in",
    "move", "else", "break", "continue", "await", "as", "where", "impl",
    "dyn",
];

/// Initializer finishers that keep a guard a guard.
const GUARD_FINISHERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

impl FileIndex {
    /// Builds the index for one file.
    pub fn build(ctx: &FileCtx<'_>) -> FileIndex {
        let forest = tree::parse(&ctx.toks);
        let mut idx = FileIndex::default();
        collect_hash_names(ctx, &forest.roots, &mut idx.hash_names);
        let mut b = Builder { ctx, idx };
        b.scan_items(&forest.roots, None);
        b.idx
    }

    /// The index of the fn whose body contains raw-token `tok`, if any.
    pub fn fn_at(&self, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .position(|f| f.body.is_some_and(|(s, e)| tok >= s && tok <= e))
    }
}

struct Builder<'c, 'a> {
    ctx: &'c FileCtx<'a>,
    idx: FileIndex,
}

impl Builder<'_, '_> {
    /// Walks one level of the forest for items, recursing into `mod`
    /// and `impl` bodies.
    fn scan_items(&mut self, children: &[Tree], owner: Option<&str>) {
        let toks = &self.ctx.toks;
        let mut i = 0usize;
        while i < children.len() {
            let Tree::Leaf(ti) = children[i] else {
                i += 1;
                continue;
            };
            let t = &toks[ti];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match t.text {
                "fn" => {
                    let consumed = self.scan_fn(children, i, owner);
                    i = consumed.max(i + 1);
                }
                "mod" => {
                    // `mod name { … }` — recurse; `mod name;` — nothing.
                    if let Some(body) = next_brace_group(children, i + 1, 4) {
                        self.scan_items(group_children(&children[body]), None);
                        i = body + 1;
                    } else {
                        i += 1;
                    }
                }
                "impl" => {
                    let (name, body) = impl_header(self.ctx, children, i);
                    if let Some(body) = body {
                        self.scan_items(
                            group_children(&children[body]),
                            name.as_deref().or(owner),
                        );
                        i = body + 1;
                    } else {
                        i += 1;
                    }
                }
                "trait" => {
                    // Default method bodies still count as fns.
                    if let Some(body) = next_brace_group(children, i + 1, 24) {
                        self.scan_items(group_children(&children[body]), owner);
                        i = body + 1;
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
    }

    /// Parses one `fn` starting at element `at` (the `fn` leaf).
    /// Returns the element index to resume scanning from.
    fn scan_fn(&mut self, children: &[Tree], at: usize, owner: Option<&str>) -> usize {
        let toks = &self.ctx.toks;
        // Name: next ident leaf.
        let Some((name_el, name_tok)) = next_ident(children, toks, at + 1) else {
            return at + 1;
        };
        let name = toks[name_tok].text.to_string();
        let is_pub = pub_before(children, toks, at);
        // Skip generics (angle depth over leaf texts), find the params
        // paren group, then the body brace group or a `;`.
        let mut angle = 0i32;
        let mut el = name_el + 1;
        let mut params: Option<usize> = None;
        let mut body_el: Option<usize> = None;
        while el < children.len() {
            match &children[el] {
                Tree::Leaf(j) => {
                    let txt = toks[*j].text;
                    if toks[*j].kind == TokKind::Punct {
                        match txt {
                            "<" => angle += 1,
                            ">" => angle = (angle - 1).max(0),
                            ";" if angle == 0 && params.is_some() => break,
                            _ => {}
                        }
                    }
                }
                Tree::Group { delim, .. } => {
                    if *delim == Delim::Paren && angle == 0 && params.is_none() {
                        params = Some(el);
                    } else if *delim == Delim::Brace && params.is_some() {
                        body_el = Some(el);
                        break;
                    }
                }
            }
            el += 1;
        }
        let body = body_el.map(|b| children[b].span());
        let mut info = FnInfo {
            name,
            owner: owner.map(str::to_string),
            is_pub,
            is_test: self.ctx.in_test(toks[name_tok].start),
            line: toks[name_tok].line,
            body,
            guards: Vec::new(),
            calls: Vec::new(),
            panics: Vec::new(),
            has_catch_unwind: false,
        };
        if let Some(b) = body_el {
            self.scan_body(&children[b], owner, &mut info);
            self.scan_body_tokens(&mut info);
        }
        self.idx.fns.push(info);
        body_el.map_or(el + 1, |b| b + 1)
    }

    /// Recursive statement-level scan of a brace group: guard bindings.
    fn scan_body(&mut self, block: &Tree, owner: Option<&str>, info: &mut FnInfo) {
        let Tree::Group { children, .. } = block else {
            return;
        };
        let (_, block_end) = block.span();
        let toks = &self.ctx.toks;
        let mut i = 0usize;
        while i < children.len() {
            // Recurse into any nested group (blocks, match arms, args).
            if let Tree::Group { .. } = &children[i] {
                self.scan_body(&children[i], owner, info);
                i += 1;
                continue;
            }
            let Tree::Leaf(ti) = children[i] else {
                i += 1;
                continue;
            };
            if toks[ti].kind == TokKind::Ident && toks[ti].text == "let" {
                // Statement: elements up to the `;` at this level.
                let semi = children[i..]
                    .iter()
                    .position(|c| matches!(c, Tree::Leaf(j) if toks[*j].text == ";"))
                    .map(|off| i + off);
                if let Some(semi) = semi {
                    if let Some(g) = self.guard_binding(
                        &children[i..semi],
                        owner,
                        block_end,
                        semi_tok(&children[semi]),
                    ) {
                        if g.is_hash {
                            self.idx.hash_names.insert(g.name.clone());
                        }
                        info.guards.push(g);
                    }
                    // Groups inside the statement were not visited yet.
                    for c in &children[i..semi] {
                        if matches!(c, Tree::Group { .. }) {
                            self.scan_body(c, owner, info);
                        }
                    }
                    i = semi + 1;
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Tries to read `stmt` (elements from `let` up to, excluding, the
    /// `;`) as a guard binding.
    fn guard_binding(
        &self,
        stmt: &[Tree],
        owner: Option<&str>,
        block_end: usize,
        semi: usize,
    ) -> Option<GuardBinding> {
        let toks = &self.ctx.toks;
        let code: Vec<&Tree> = stmt
            .iter()
            .filter(|c| !matches!(c, Tree::Leaf(j) if toks[*j].is_comment()))
            .collect();
        // let [mut] NAME [ : type… ] = expr…
        let mut k = 1usize;
        if matches!(code.get(k), Some(Tree::Leaf(j)) if toks[*j].text == "mut") {
            k += 1;
        }
        let Some(Tree::Leaf(name_tok)) = code.get(k) else {
            return None;
        };
        let name_tok = *name_tok;
        if toks[name_tok].kind != TokKind::Ident {
            return None;
        }
        k += 1;
        // Optional type ascription: skip to the `=` at this level.
        match code.get(k) {
            Some(Tree::Leaf(j)) if toks[*j].text == "=" => {}
            Some(Tree::Leaf(j)) if toks[*j].text == ":" => {
                while k < code.len()
                    && !matches!(code[k], Tree::Leaf(j) if toks[*j].text == "=")
                {
                    k += 1;
                }
            }
            _ => return None,
        }
        if !matches!(code.get(k), Some(Tree::Leaf(j)) if toks[*j].text == "=") {
            return None;
        }
        let expr = &code[k + 1..];
        // Strip guard-preserving finishers off the tail:
        // `.unwrap()` / `.expect("…")` / `.unwrap_or_else(…)`.
        let mut end = expr.len();
        loop {
            if end >= 3
                && matches!(expr[end - 1], Tree::Group { delim: Delim::Paren, .. })
                && matches!(expr[end - 2], Tree::Leaf(j)
                    if GUARD_FINISHERS.contains(&toks[*j].text))
                && matches!(expr[end - 3], Tree::Leaf(j) if toks[*j].text == ".")
            {
                end -= 3;
            } else {
                break;
            }
        }
        // Tail must be `. lock|read|write ()` with an EMPTY paren group
        // (a socket `.write(buf)` has args and is not an acquisition).
        if end < 3 {
            return None;
        }
        let Tree::Group {
            delim: Delim::Paren,
            children: args,
            ..
        } = &expr[end - 1]
        else {
            return None;
        };
        if !args.is_empty() {
            return None;
        }
        let Tree::Leaf(verb_tok) = expr[end - 2] else {
            return None;
        };
        let verb = LockVerb::of(toks[*verb_tok].text)?;
        if !matches!(expr[end - 3], Tree::Leaf(j) if toks[*j].text == ".") {
            return None;
        }
        // Receiver: the chain of idents/dots before that final `.`.
        let mut r = end - 3;
        let mut chain: Vec<&str> = Vec::new();
        while r > 0 {
            match &expr[r - 1] {
                Tree::Leaf(j)
                    if toks[*j].kind == TokKind::Ident || toks[*j].text == "." =>
                {
                    chain.push(toks[*j].text);
                    r -= 1;
                }
                _ => break,
            }
        }
        if chain.is_empty() {
            return None;
        }
        chain.reverse();
        let receiver: String = chain.concat();
        let last_field = chain
            .iter()
            .rev()
            .find(|s| **s != "." && **s != "self")
            .copied();
        let key = match receiver.strip_prefix("self.") {
            Some(fields) => match owner {
                Some(o) => format!("{o}.{fields}"),
                None => receiver.clone(),
            },
            None => receiver.clone(),
        };
        // Live range: to `drop(name)` if present, else end of block.
        let name = toks[name_tok].text.to_string();
        let mut end_tok = block_end + 1;
        let mut j = semi;
        while j + 3 <= block_end {
            if self.ctx.toks[j].kind == TokKind::Ident
                && self.ctx.toks[j].text == "drop"
            {
                let after: Vec<usize> = (j + 1..=block_end.min(j + 4))
                    .filter(|&x| !self.ctx.toks[x].is_comment())
                    .collect();
                if after.len() >= 3
                    && self.ctx.toks[after[0]].text == "("
                    && self.ctx.toks[after[1]].text == name
                    && self.ctx.toks[after[2]].text == ")"
                {
                    end_tok = j;
                    break;
                }
            }
            j += 1;
        }
        let is_hash = last_field.is_some_and(|f| self.idx.hash_names.contains(f));
        Some(GuardBinding {
            name,
            key,
            verb,
            line: toks[name_tok].line,
            decl_tok: name_tok,
            end_tok,
            is_hash,
        })
    }

    /// Raw-token pass over a fn body: calls, panic sites, catch_unwind.
    fn scan_body_tokens(&self, info: &mut FnInfo) {
        let Some((start, end)) = info.body else {
            return;
        };
        let toks = &self.ctx.toks;
        let code: Vec<usize> = (start..=end.min(toks.len().saturating_sub(1)))
            .filter(|&i| !toks[i].is_comment())
            .collect();
        for (w, &i) in code.iter().enumerate() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            if t.text == "catch_unwind" {
                info.has_catch_unwind = true;
            }
            let next = code.get(w + 1).map(|&j| toks[j].text);
            let prev = w
                .checked_sub(1)
                .and_then(|p| code.get(p))
                .map(|&j| toks[j].text);
            match t.text {
                "unwrap" | "expect" => {
                    if prev == Some(".") && next == Some("(") {
                        info.panics.push(PanicSite {
                            what: format!(".{}()", t.text),
                            line: t.line,
                            start: t.start,
                        });
                    }
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    if next == Some("!") {
                        info.panics.push(PanicSite {
                            what: format!("{}!", t.text),
                            line: t.line,
                            start: t.start,
                        });
                    }
                }
                _ => {}
            }
            // Call shape: `name (` — not a macro, not a keyword, not a
            // nested fn definition.
            if next == Some("(")
                && !NOT_CALLS.contains(&t.text)
                && prev != Some("fn")
            {
                info.calls.push(Call {
                    name: t.text.to_string(),
                    tok: i,
                });
            }
        }
    }
}

/// `impl … {` header: the implemented type name and the body element.
fn impl_header(
    ctx: &FileCtx<'_>,
    children: &[Tree],
    at: usize,
) -> (Option<String>, Option<usize>) {
    let toks = &ctx.toks;
    let mut name: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut saw_for = false;
    let mut angle = 0i32;
    let mut el = at + 1;
    while el < children.len() {
        match &children[el] {
            Tree::Leaf(j) => {
                let t = &toks[*j];
                match (t.kind, t.text) {
                    (TokKind::Punct, "<") => angle += 1,
                    (TokKind::Punct, ">") => angle = (angle - 1).max(0),
                    (TokKind::Ident, "for") if angle == 0 => saw_for = true,
                    (TokKind::Ident, "where") if angle == 0 => {}
                    (TokKind::Ident, txt) if angle == 0 => {
                        if saw_for {
                            after_for.get_or_insert(txt);
                        } else {
                            name.get_or_insert(txt);
                        }
                    }
                    _ => {}
                }
            }
            Tree::Group { delim: Delim::Brace, .. } => {
                let ty = after_for.or(name);
                return (ty.map(str::to_string), Some(el));
            }
            Tree::Group { .. } => {}
        }
        el += 1;
    }
    (None, None)
}

/// The next brace group within `limit` elements, skipping leaves.
fn next_brace_group(children: &[Tree], from: usize, limit: usize) -> Option<usize> {
    children
        .iter()
        .enumerate()
        .skip(from)
        .take(limit)
        .find_map(|(i, c)| {
            matches!(c, Tree::Group { delim: Delim::Brace, .. }).then_some(i)
        })
}

/// Children of a group node (empty for leaves).
fn group_children(node: &Tree) -> &[Tree] {
    match node {
        Tree::Group { children, .. } => children,
        Tree::Leaf(_) => &[],
    }
}

/// The next ident leaf from element `from`, skipping comments.
fn next_ident(
    children: &[Tree],
    toks: &[crate::lexer::Tok<'_>],
    from: usize,
) -> Option<(usize, usize)> {
    children.iter().enumerate().skip(from).find_map(|(i, c)| {
        match c {
            Tree::Leaf(j) if toks[*j].kind == TokKind::Ident => Some((i, *j)),
            Tree::Leaf(j) if toks[*j].is_comment() => None,
            _ => Some((usize::MAX, usize::MAX)), // anything else: stop
        }
    })
    .filter(|&(i, _)| i != usize::MAX)
}

/// Is the `fn` at element `at` preceded by an unrestricted `pub`?
fn pub_before(children: &[Tree], toks: &[crate::lexer::Tok<'_>], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        match &children[j] {
            Tree::Leaf(ti) => {
                let t = &toks[*ti];
                if t.is_comment() {
                    continue;
                }
                match (t.kind, t.text) {
                    (TokKind::Ident, "pub") => {
                        // `pub(crate) fn` has a paren group after pub.
                        let restricted = matches!(
                            children.get(j + 1),
                            Some(Tree::Group { delim: Delim::Paren, .. })
                        );
                        return !restricted;
                    }
                    (TokKind::Ident, "const" | "async" | "unsafe" | "extern") => {}
                    (TokKind::StrLit, _) => {}
                    _ => return false,
                }
            }
            // pub(crate)'s paren group, or an attribute's bracket group.
            Tree::Group { delim: Delim::Paren | Delim::Bracket, .. } => {}
            Tree::Group { .. } => return false,
        }
    }
    false
}

fn semi_tok(node: &Tree) -> usize {
    match node {
        Tree::Leaf(j) => *j,
        Tree::Group { open, .. } => *open,
    }
}

/// Collects `HashMap`/`HashSet`-typed names across the whole forest:
/// `name: …HashMap…` declarations (fields, params, ascribed locals) and
/// `let name = HashMap::new()`-style initializers.
fn collect_hash_names(
    ctx: &FileCtx<'_>,
    children: &[Tree],
    out: &mut BTreeSet<String>,
) {
    let toks = &ctx.toks;
    let code: Vec<&Tree> = children
        .iter()
        .filter(|c| !matches!(c, Tree::Leaf(j) if toks[*j].is_comment()))
        .collect();
    for (i, c) in code.iter().enumerate() {
        if let Tree::Group { .. } = c {
            collect_hash_names(ctx, group_children(c), out);
            continue;
        }
        let Tree::Leaf(ti) = c else { continue };
        let t = &toks[*ti];
        // `name : … HashMap …` up to a `,`/`;`/`=`/group at this level.
        if t.kind == TokKind::Punct && t.text == ":" && i > 0 {
            let Some(Tree::Leaf(nj)) = code.get(i - 1).copied() else {
                continue;
            };
            if toks[*nj].kind != TokKind::Ident {
                continue;
            }
            let mut k = i + 1;
            let mut mentions_hash = false;
            while k < code.len() {
                match code[k] {
                    Tree::Leaf(j) => {
                        let s = &toks[*j];
                        if s.kind == TokKind::Punct
                            && matches!(s.text, "," | ";" | "=")
                        {
                            break;
                        }
                        if s.kind == TokKind::Ident
                            && matches!(s.text, "HashMap" | "HashSet")
                        {
                            mentions_hash = true;
                        }
                    }
                    Tree::Group { delim: Delim::Brace, .. } => break,
                    Tree::Group { .. } => {}
                }
                k += 1;
            }
            if mentions_hash {
                out.insert(toks[*nj].text.to_string());
            }
        }
        // `let [mut] name = … HashMap|HashSet … ;`
        if t.kind == TokKind::Ident && t.text == "let" {
            let mut k = i + 1;
            if matches!(code.get(k), Some(Tree::Leaf(j)) if toks[*j].text == "mut") {
                k += 1;
            }
            let Some(Tree::Leaf(nj)) = code.get(k).copied() else {
                continue;
            };
            if toks[*nj].kind != TokKind::Ident {
                continue;
            }
            if !matches!(code.get(k + 1), Some(Tree::Leaf(j)) if toks[*j].text == "=")
            {
                continue;
            }
            let mut m = k + 2;
            while m < code.len() {
                match code[m] {
                    Tree::Leaf(j) if toks[*j].text == ";" => break,
                    Tree::Leaf(j)
                        if toks[*j].kind == TokKind::Ident
                            && matches!(toks[*j].text, "HashMap" | "HashSet") =>
                    {
                        out.insert(toks[*nj].text.to_string());
                        break;
                    }
                    _ => {}
                }
                m += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn index(path: &str, src: &str) -> FileIndex {
        let ctx = FileCtx::new(Path::new(path), src);
        FileIndex::build(&ctx)
    }

    #[test]
    fn outline_finds_fns_with_owner_and_visibility() {
        let src = "pub fn free() {}\n\
                   impl Batcher {\n    pub fn push(&self) {}\n    fn inner(&self) {}\n}\n\
                   impl Drop for Batcher { fn drop(&mut self) {} }\n\
                   pub(crate) fn restricted() {}\n";
        let idx = index("crates/serve/src/queue.rs", src);
        let names: Vec<(&str, Option<&str>, bool)> = idx
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, true),
                ("push", Some("Batcher"), true),
                ("inner", Some("Batcher"), false),
                ("drop", Some("Batcher"), false),
                ("restricted", None, false),
            ]
        );
    }

    #[test]
    fn cfg_test_inheritance_marks_fns() {
        let src = "fn live() {}\n#[cfg(test)]\nmod t {\n    fn helper() {}\n}\n";
        let idx = index("crates/core/src/x.rs", src);
        assert!(!idx.fns.iter().find(|f| f.name == "live").unwrap().is_test);
        assert!(idx.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
    }

    #[test]
    fn guard_binding_basic_and_live_range() {
        let src = "impl Shared {\n  fn go(&self) {\n    let st = self.state.lock().unwrap();\n    use_it(&st);\n  }\n}\n";
        let idx = index("crates/serve/src/queue.rs", src);
        let f = &idx.fns[0];
        assert_eq!(f.guards.len(), 1);
        let g = &f.guards[0];
        assert_eq!(g.name, "st");
        assert_eq!(g.key, "Shared.state");
        assert_eq!(g.verb, LockVerb::Lock);
    }

    #[test]
    fn drop_ends_the_live_range() {
        let src = "fn go(m: &Mutex<u32>) {\n    let g = m.lock().unwrap();\n    drop(g);\n    after();\n}\n";
        let idx = index("crates/serve/src/server.rs", src);
        let g = &idx.fns[0].guards[0];
        let ctx = FileCtx::new(Path::new("crates/serve/src/server.rs"), src);
        // `after` must lie outside the live range.
        let after_tok = ctx
            .toks
            .iter()
            .position(|t| t.text == "after")
            .unwrap();
        assert!(g.end_tok <= after_tok);
    }

    #[test]
    fn continued_initializer_is_not_a_guard() {
        // The temporary guard dies at the semicolon; `h` is a JoinHandle.
        let src = "fn shutdown(&self) {\n    let h = self.worker.lock().unwrap().take();\n}\n";
        let idx = index("crates/serve/src/queue.rs", src);
        assert!(idx.fns[0].guards.is_empty());
    }

    #[test]
    fn write_with_args_is_not_an_acquisition() {
        let src = "fn send(s: &mut TcpStream, buf: &[u8]) {\n    let n = s.write(buf);\n}\n";
        let idx = index("crates/serve/src/server.rs", src);
        assert!(idx.fns[0].guards.is_empty());
    }

    #[test]
    fn hash_names_from_fields_params_locals_and_guards() {
        let src = "struct Cache { solvers: RwLock<HashMap<K, V>>, count: usize }\n\
                   fn f(m: &HashMap<u32, f64>, v: &Vec<u8>) {\n\
                       let local = HashSet::new();\n\
                       let plain = Vec::new();\n\
                   }\n\
                   impl Cache {\n  fn stats(&self) {\n    let map = self.solvers.read().unwrap();\n  }\n}\n";
        let idx = index("crates/core/src/reconstruct.rs", src);
        assert!(idx.hash_names.contains("solvers"));
        assert!(idx.hash_names.contains("m"));
        assert!(idx.hash_names.contains("local"));
        assert!(idx.hash_names.contains("map")); // guard over a hash field
        assert!(!idx.hash_names.contains("count"));
        assert!(!idx.hash_names.contains("v"));
        assert!(!idx.hash_names.contains("plain"));
    }

    #[test]
    fn calls_and_panics_are_collected() {
        let src = "fn f() {\n    helper(1);\n    x.method();\n    y.unwrap();\n    if cond() { panic!(\"no\"); }\n    let v = vec![1];\n}\n";
        let idx = index("crates/core/src/x.rs", src);
        let f = &idx.fns[0];
        let calls: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(calls.contains(&"helper"));
        assert!(calls.contains(&"method"));
        assert!(calls.contains(&"cond"));
        assert!(!calls.contains(&"vec")); // macro
        assert_eq!(f.panics.len(), 2);
        assert_eq!(f.panics[0].what, ".unwrap()");
        assert_eq!(f.panics[1].what, "panic!");
    }

    #[test]
    fn catch_unwind_is_detected() {
        let src = "fn safe() {\n    let r = std::panic::catch_unwind(|| risky());\n}\nfn plain() {}\n";
        let idx = index("crates/core/src/parallel.rs", src);
        assert!(idx.fns[0].has_catch_unwind);
        assert!(!idx.fns[1].has_catch_unwind);
    }

    #[test]
    fn fn_at_maps_tokens_to_owners() {
        let src = "fn a() { one(); }\nfn b() { two(); }\n";
        let idx = index("crates/core/src/x.rs", src);
        let ctx = FileCtx::new(Path::new("crates/core/src/x.rs"), src);
        let two_tok = ctx.toks.iter().position(|t| t.text == "two").unwrap();
        assert_eq!(idx.fn_at(two_tok), Some(1));
        assert_eq!(idx.fn_at(0), None); // the `fn` keyword of a()
    }
}
