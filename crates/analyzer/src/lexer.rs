//! A hand-rolled, total lexer for (the interesting subset of) Rust.
//!
//! `rrlint` needs exactly one guarantee from its front end: **strings and
//! comments must never be confused with code**. Every rule in
//! [`crate::rules`] matches identifier/punctuation shapes, so a lexer that
//! mistook the contents of a raw string for tokens would produce phantom
//! findings, and one that mistook a comment opener inside a string for a
//! real comment would silently skip code. The tricky cases are exactly the
//! ones this module spends its code on:
//!
//! * raw strings with arbitrary hash fences (`r##"..."##`) and their byte
//!   and C variants (`br#"…"#`, `cr"…"`);
//! * nested block comments (`/* /* */ */` is *one* comment);
//! * `'a` the lifetime vs `'a'` the char literal (and `'\n'`, `'\u{1F600}'`);
//! * raw identifiers (`r#match`) which start like raw strings;
//! * numeric literals with underscores, exponents and type suffixes, so
//!   `1.0_f64` is one float token and `1..2` is int-dots-int.
//!
//! The lexer is **total**: any byte sequence produces a token stream and
//! never panics. Malformed input (unterminated strings, stray bytes)
//! degrades to `Unknown` or to a literal running to end-of-file, matching
//! the "keep scanning, stay useful" posture of the resilience layer.
//! Totality is enforced by an in-crate seeded fuzz test and a workspace
//! proptest (`tests/rrlint_lexer.rs`).

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#match`).
    Ident,
    /// A lifetime or loop label: `'a`, `'static`, `'_`.
    Lifetime,
    /// `'x'`, `'\n'`, `'\u{7fff}'`.
    CharLit,
    /// `b'x'`.
    ByteLit,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`.
    StrLit,
    /// Integer literal (`42`, `0xFF_u8`).
    IntLit,
    /// Float literal (`1.0`, `2e-3`, `1_000.5f64`).
    FloatLit,
    /// Punctuation, one token per operator (`==`, `->`, `::`, `{`).
    Punct,
    /// `// …` (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, nesting respected (including `/** … */` doc comments).
    BlockComment,
    /// A byte sequence the lexer could not classify. Never code.
    Unknown,
}

/// One token: kind plus location. `text` borrows from the source.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// Classification.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: &'a str,
    /// Byte offset of the first byte.
    pub start: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Tok<'_> {
    /// True for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Tokenizes `src` completely. Total: never panics, consumes every byte.
pub fn tokenize(src: &str) -> Vec<Tok<'_>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    toks: Vec<Tok<'a>>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            toks: Vec::with_capacity(src.len() / 6),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: u32) {
        // `start..pos` always lies on char boundaries: the lexer only
        // advances past a full scalar value once it has seen its first
        // byte, and multi-byte continuation bytes are consumed in
        // `bump_char`. Guard anyway: slicing must never panic.
        let end = self.pos.min(self.src.len());
        if let Some(text) = self.src.get(start..end) {
            self.toks.push(Tok {
                kind,
                text,
                start,
                line,
            });
        } else {
            // Fall back to an empty-text Unknown rather than panicking on
            // a boundary bug; the fuzz tests lean on this never firing.
            self.toks.push(Tok {
                kind: TokKind::Unknown,
                text: "",
                start,
                line,
            });
        }
    }

    /// Consumes one whole UTF-8 scalar (1–4 bytes).
    fn bump_char(&mut self) {
        self.bump();
        while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
            self.pos += 1;
        }
    }

    fn run(mut self) -> Vec<Tok<'a>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    self.line_comment();
                    self.emit(TokKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment();
                    self.emit(TokKind::BlockComment, start, line);
                }
                b'r' | b'b' | b'c' => self.letter_prefixed(start, line),
                b'"' => {
                    self.string_body();
                    self.emit(TokKind::StrLit, start, line);
                }
                b'\'' => self.quote(start, line),
                b'0'..=b'9' => {
                    let kind = self.number();
                    self.emit(kind, start, line);
                }
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    self.ident_body();
                    self.emit(TokKind::Ident, start, line);
                }
                0x80..=0xFF => {
                    // Non-ASCII: treat alphanumerics as identifier chars,
                    // anything else as Unknown, one scalar at a time.
                    match self.cur_char() {
                        Some(ch) if ch.is_alphanumeric() => {
                            self.ident_body();
                            self.emit(TokKind::Ident, start, line);
                        }
                        _ => {
                            self.bump_char();
                            self.emit(TokKind::Unknown, start, line);
                        }
                    }
                }
                _ => {
                    self.punct();
                    self.emit(TokKind::Punct, start, line);
                }
            }
        }
        self.toks
    }

    fn cur_char(&self) -> Option<char> {
        self.src.get(self.pos..)?.chars().next()
    }

    fn line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.bump();
        }
    }

    /// Nested block comment; unterminated runs to EOF.
    fn block_comment(&mut self) {
        self.bump_n(2); // "/*"
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// Dispatch for tokens starting `r`, `b`, or `c`: raw strings
    /// (`r"`, `r#"`), raw identifiers (`r#ident`), byte strings (`b"`,
    /// `br"`, `br#"`), byte chars (`b'x'`), C strings (`c"`, `cr#"`),
    /// or a plain identifier that merely starts with one of these letters.
    fn letter_prefixed(&mut self, start: usize, line: u32) {
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1, c2) {
            // r"..."  r#"..."#  and raw identifiers r#match
            (b'r', b'"', _) => {
                self.bump();
                self.string_body();
                self.emit(TokKind::StrLit, start, line);
            }
            (b'r', b'#', _) => {
                if self.raw_fence_is_string(1) {
                    self.bump(); // r
                    self.raw_string_body();
                    self.emit(TokKind::StrLit, start, line);
                } else {
                    // raw identifier r#foo
                    self.bump_n(2);
                    self.ident_body();
                    self.emit(TokKind::Ident, start, line);
                }
            }
            // b"..."  br"..."  br#"..."#  b'x'
            (b'b', b'"', _) => {
                self.bump();
                self.string_body();
                self.emit(TokKind::StrLit, start, line);
            }
            (b'b', b'r', b'"') => {
                self.bump_n(2);
                self.string_body();
                self.emit(TokKind::StrLit, start, line);
            }
            (b'b', b'r', b'#') if self.raw_fence_is_string(2) => {
                self.bump_n(2);
                self.raw_string_body();
                self.emit(TokKind::StrLit, start, line);
            }
            (b'b', b'\'', _) => {
                self.bump(); // b
                self.char_body();
                self.emit(TokKind::ByteLit, start, line);
            }
            // c"..."  cr"..."  cr#"..."#
            (b'c', b'"', _) => {
                self.bump();
                self.string_body();
                self.emit(TokKind::StrLit, start, line);
            }
            (b'c', b'r', b'"') => {
                self.bump_n(2);
                self.string_body();
                self.emit(TokKind::StrLit, start, line);
            }
            (b'c', b'r', b'#') if self.raw_fence_is_string(2) => {
                self.bump_n(2);
                self.raw_string_body();
                self.emit(TokKind::StrLit, start, line);
            }
            _ => {
                self.ident_body();
                self.emit(TokKind::Ident, start, line);
            }
        }
    }

    /// Looks past `offset` bytes of `#` fence: is this `#...#"` (a raw
    /// string) rather than `#ident` (a raw identifier)?
    fn raw_fence_is_string(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == b'#' {
            i += 1;
        }
        self.peek(i) == b'"'
    }

    /// Consumes `#*"…"#*` starting at the first `#` or `"`. Caller has
    /// consumed the `r`/`br`/`cr` prefix. Unterminated runs to EOF.
    fn raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            return; // malformed; emitted as whatever the caller decided
        }
        self.bump(); // opening quote
        'scan: while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                // need `hashes` following '#'
                for k in 0..hashes {
                    if self.peek(1 + k) != b'#' {
                        self.bump();
                        continue 'scan;
                    }
                }
                self.bump_n(1 + hashes);
                return;
            }
            self.bump();
        }
    }

    /// Consumes `"…"` with escapes, starting at the quote. Unterminated
    /// runs to EOF.
    fn string_body(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// After a `'`: lifetime, loop label, or char literal.
    fn quote(&mut self, start: usize, line: u32) {
        // 'a' is a char, 'a is a lifetime, '\n' is a char, '_ is a
        // lifetime. Rule: escape or non-ident first char => char literal;
        // ident first char followed by a closing quote => char literal;
        // otherwise lifetime.
        let c1 = self.peek(1);
        if c1 == b'\\' {
            self.char_body();
            self.emit(TokKind::CharLit, start, line);
            return;
        }
        let ident_start = c1 == b'_' || c1.is_ascii_alphabetic() || c1 >= 0x80;
        if ident_start {
            // Find where the ident run ends (byte-wise is fine here: any
            // non-ASCII byte extends the run, which matches how
            // `ident_body` consumes alphanumeric scalars).
            let mut i = 2;
            while {
                let b = self.peek(i);
                b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
            } {
                i += 1;
            }
            if i == 2 && self.peek(2) == b'\'' {
                // 'x' — single ident char then closing quote.
                self.char_body();
                self.emit(TokKind::CharLit, start, line);
            } else {
                // Lifetime / label: consume quote + ident run.
                self.bump(); // '
                self.ident_body();
                self.emit(TokKind::Lifetime, start, line);
            }
        } else if c1 == b'\'' {
            // Empty '' — not valid Rust; consume both quotes as Unknown.
            self.bump_n(2);
            self.emit(TokKind::Unknown, start, line);
        } else {
            // Char literal with a non-ident char: '(', '0', '€', …
            self.char_body();
            self.emit(TokKind::CharLit, start, line);
        }
    }

    /// Consumes a char/byte literal starting at `'`. Unterminated (no
    /// closing quote before newline/EOF) stops at the newline so a stray
    /// quote cannot swallow the rest of the file.
    fn char_body(&mut self) {
        self.bump(); // opening '
        match self.peek(0) {
            b'\\' => {
                self.bump_n(2);
                // \u{...}
                if self.peek(0).is_ascii_hexdigit() || self.peek(0) == b'{' {
                    while self.pos < self.bytes.len()
                        && self.peek(0) != b'\''
                        && self.peek(0) != b'\n'
                    {
                        self.bump();
                    }
                }
            }
            b'\n' | 0 => return,
            _ => self.bump_char(),
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    fn ident_body(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.bump();
            } else if b >= 0x80 {
                match self.cur_char() {
                    Some(ch) if ch.is_alphanumeric() => self.bump_char(),
                    _ => break,
                }
            } else {
                break;
            }
        }
    }

    /// Consumes a numeric literal; returns Int or Float kind.
    fn number(&mut self) -> TokKind {
        // 0x / 0o / 0b prefixed: always integers.
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b' | b'X') {
            self.bump_n(2);
            while matches!(self.peek(0), b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_') {
                self.bump();
            }
            self.suffix();
            return TokKind::IntLit;
        }
        let mut float = false;
        self.digits();
        // Fractional part: `1.5` yes; `1..2` and `1.foo()` no.
        if self.peek(0) == b'.' {
            let after = self.peek(1);
            let is_range = after == b'.';
            let is_field = after == b'_' || after.is_ascii_alphabetic();
            if !is_range && !is_field {
                float = true;
                self.bump(); // .
                self.digits();
            }
        }
        // Exponent: 1e9, 2.5E-3. An `e` not followed by digits is a
        // suffix/ident, not an exponent.
        if matches!(self.peek(0), b'e' | b'E') {
            let mut i = 1;
            if matches!(self.peek(1), b'+' | b'-') {
                i = 2;
            }
            if self.peek(i).is_ascii_digit() {
                float = true;
                self.bump_n(i);
                self.digits();
            }
        }
        // Type suffix (f64, u32, usize…) — glue it onto the literal. A
        // float suffix forces Float.
        let suf_start = self.pos;
        self.suffix();
        if let Some(suf) = self.src.get(suf_start..self.pos) {
            if suf.starts_with("f32") || suf.starts_with("f64") {
                float = true;
            }
        }
        if float {
            TokKind::FloatLit
        } else {
            TokKind::IntLit
        }
    }

    fn digits(&mut self) {
        while matches!(self.peek(0), b'0'..=b'9' | b'_') {
            self.bump();
        }
    }

    fn suffix(&mut self) {
        if self.peek(0) == b'_' || self.peek(0).is_ascii_alphabetic() {
            self.ident_body();
        }
    }

    /// Multi-char operators first, longest match wins.
    fn punct(&mut self) {
        const THREE: [&[u8; 3]; 2] = [b"..=", b"..."];
        const TWO: [&[u8; 2]; 19] = [
            b"==", b"!=", b"<=", b">=", b"&&", b"||", b"->", b"=>", b"::", b"..", b"+=", b"-=",
            b"*=", b"/=", b"%=", b"^=", b"&=", b"|=", b"<<",
        ];
        // Note: ">>" is deliberately absent from TWO so `Vec<Vec<f64>>`
        // closes two generic brackets; `>>=` etc. still lex, as two toks.
        let trio = [self.peek(0), self.peek(1), self.peek(2)];
        if THREE.iter().any(|p| **p == trio) {
            self.bump_n(3);
            return;
        }
        let duo = [self.peek(0), self.peek(1)];
        if TWO.iter().any(|p| **p == duo) {
            self.bump_n(2);
            return;
        }
        self.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_stream() {
        let ks = kinds("fn main() { let x = 1.5; }");
        assert_eq!(ks[0], (TokKind::Ident, "fn"));
        assert_eq!(ks[1], (TokKind::Ident, "main"));
        assert!(ks.contains(&(TokKind::FloatLit, "1.5")));
    }

    #[test]
    fn line_and_block_comments() {
        let ks = kinds("a // hi\nb /* x /* nested */ y */ c");
        assert_eq!(ks[0], (TokKind::Ident, "a"));
        assert_eq!(ks[1], (TokKind::LineComment, "// hi"));
        assert_eq!(ks[2], (TokKind::Ident, "b"));
        assert_eq!(ks[3].0, TokKind::BlockComment);
        assert_eq!(ks[3].1, "/* x /* nested */ y */");
        assert_eq!(ks[4], (TokKind::Ident, "c"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r##"no "# escape here"##; x"####;
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::StrLit && t.contains("no \"# escape")));
        assert_eq!(ks.last().unwrap().1, "x");
    }

    #[test]
    fn raw_identifier_is_not_a_string() {
        let ks = kinds("let r#match = 1;");
        assert!(ks.contains(&(TokKind::Ident, "r#match")));
    }

    #[test]
    fn lifetime_vs_char() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(ks.contains(&(TokKind::CharLit, "'a'")));
        assert!(ks.contains(&(TokKind::CharLit, "'\\n'")));
    }

    #[test]
    fn static_lifetime_and_label() {
        let ks = kinds("&'static str; 'outer: loop {}");
        assert!(ks.contains(&(TokKind::Lifetime, "'static")));
        assert!(ks.contains(&(TokKind::Lifetime, "'outer")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ks = kinds(r##"b"bytes" br#"raw"# b'x' c"cstr""##);
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::StrLit).count(),
            3
        );
        assert!(ks.contains(&(TokKind::ByteLit, "b'x'")));
    }

    #[test]
    fn numbers() {
        let ks = kinds("1 1.5 1e9 2.5E-3 0xFF_u8 1_000.5f64 1..2 1.max(2) 3f64");
        assert!(ks.contains(&(TokKind::IntLit, "1")));
        assert!(ks.contains(&(TokKind::FloatLit, "1.5")));
        assert!(ks.contains(&(TokKind::FloatLit, "1e9")));
        assert!(ks.contains(&(TokKind::FloatLit, "2.5E-3")));
        assert!(ks.contains(&(TokKind::IntLit, "0xFF_u8")));
        assert!(ks.contains(&(TokKind::FloatLit, "1_000.5f64")));
        assert!(ks.contains(&(TokKind::FloatLit, "3f64")));
        // 1..2 lexes as int, range, int
        assert!(ks.contains(&(TokKind::Punct, "..")));
        // 1.max(2): the 1 stays an int and max is an ident
        assert!(ks.contains(&(TokKind::Ident, "max")));
    }

    #[test]
    fn operators_lex_as_units() {
        let ks = kinds("a == b != c -> d => e :: f ..= g");
        for op in ["==", "!=", "->", "=>", "::", "..="] {
            assert!(ks.contains(&(TokKind::Punct, op)), "missing {op}");
        }
    }

    #[test]
    fn nested_generics_close() {
        let ks = kinds("Vec<Vec<f64>>");
        assert_eq!(ks.iter().filter(|(_, t)| *t == ">").count(), 2);
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let ks = kinds(r#"let s = "a \" // not a comment"; x"#);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::LineComment).count(), 0);
        assert_eq!(ks.last().unwrap().1, "x");
    }

    #[test]
    fn comment_openers_inside_strings_are_inert() {
        let ks = kinds(r#"let s = "/* not a comment // at all"; y"#);
        assert!(ks.iter().all(|(k, _)| *k != TokKind::BlockComment));
        assert_eq!(ks.last().unwrap().1, "y");
    }

    #[test]
    fn unterminated_things_reach_eof_without_panic() {
        for src in [
            "\"unterminated",
            "r#\"unterminated",
            "/* unterminated /* nested",
            "'",
            "b'",
            "r#",
            "1e",
            "'\\u{12345",
        ] {
            let toks = tokenize(src);
            assert!(!toks.is_empty(), "no tokens for {src:?}");
        }
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\nb";
        let toks = tokenize(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 4); // b after the embedded newline
    }

    #[test]
    fn seeded_fuzz_lexing_is_total() {
        // SplitMix64-driven byte soup, biased toward lexer-relevant
        // bytes. Must never panic and must consume every input.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        const MENU: &[u8] = b"\"'#/r*b\\ \n{}()=<>.!:0129ae_-";
        for round in 0..500 {
            let len = (next() % 200) as usize;
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    let r = next();
                    if r % 4 == 0 {
                        (r >> 8) as u8
                    } else {
                        MENU[(r >> 8) as usize % MENU.len()]
                    }
                })
                .collect();
            let s = String::from_utf8_lossy(&bytes);
            let toks = tokenize(&s);
            // Tokens must be in order and within bounds.
            let mut last = 0usize;
            for t in &toks {
                assert!(t.start >= last, "round {round}: out of order");
                assert!(t.start + t.text.len() <= s.len());
                last = t.start;
            }
        }
    }
}
