//! `rrlint` — from-scratch static analysis for the Ratio Rules workspace.
//!
//! Off-the-shelf linters cannot see this project's load-bearing
//! invariants: deterministic seeded randomness, the resilience layer's
//! "errors are values" contract, symmetric/finite covariance matrices,
//! and obs metric names that must match between producers and exporters.
//! This crate enforces them with three zero-dependency layers:
//!
//! * [`lexer`] — a total, hand-rolled Rust lexer (raw strings, nested
//!   block comments, `'a` vs `'a'`, byte strings) that never confuses
//!   strings or comments with code;
//! * [`context`] — per-file structure: `#[cfg(test)]` region tracking,
//!   path classification, and `rrlint-allow` suppressions (reason
//!   mandatory);
//! * [`tree`] + [`index`] + [`callgraph`] — the structural layer:
//!   error-tolerant delimiter trees, a per-file semantic sketch (fn
//!   outline, lock-guard bindings and live ranges, hash-container
//!   names), and a name-keyed call-graph approximation;
//! * [`rules`] + [`engine`] + [`baseline`] — the `RR001`–`RR009`
//!   token-shape rules, the `RR010`–`RR013` semantic rules, the
//!   workspace walker, and the `lint-baseline.json` diff that makes the
//!   gate "no *new* findings" from day one.
//!
//! The `rrlint` binary wraps [`engine::run_check`]:
//!
//! ```text
//! rrlint check              # gate: exit 1 on any un-baselined finding
//! rrlint baseline --write   # re-bless the current findings
//! rrlint explain RR002      # rationale + examples for one rule
//! rrlint rules              # one-line catalogue
//! ```
//!
//! The companion *runtime* half of the invariant story is the
//! `numeric-sanitizer` feature in `linalg`/`ratio-rules`, which
//! debug-asserts finiteness and symmetry on the covariance path; see
//! `docs/LINTS.md` for how the two halves fit together.

#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod context;
pub mod engine;
pub mod index;
pub mod lexer;
pub mod rules;
pub mod tree;

pub use baseline::Baseline;
pub use engine::{run_check, Report};
pub use rules::{Finding, RULES};
