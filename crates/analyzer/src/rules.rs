//! The workspace rule set: `RR001`–`RR009`.
//!
//! Each rule is a token-shape pattern over a [`FileCtx`], scoped to the
//! files and regions where the invariant it protects actually applies.
//! The catalogue (rationale, examples, suppression syntax) is rendered by
//! `rrlint explain` from the metadata here and documented in
//! `docs/LINTS.md`. Rules are heuristic by design — they match what the
//! lexer can see, not types — but every pattern is tuned so that the
//! workspace conventions make the *intended* construct invisible to the
//! rule (e.g. `linalg::cmp::exact_zero(x)` instead of `x == 0.0`).

use crate::context::{FileCtx, FileKind};
use crate::lexer::{Tok, TokKind};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `"RR002"`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of this occurrence.
    pub message: String,
    /// Trimmed source line (also the baseline fingerprint input).
    pub snippet: String,
}

/// Static description of a rule, used by `explain` and the docs test.
pub struct RuleInfo {
    /// `RRNNN`.
    pub id: &'static str,
    /// Short name.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Why the workspace enforces it.
    pub rationale: &'static str,
    /// A violating line.
    pub bad: &'static str,
    /// The conforming alternative.
    pub good: &'static str,
}

/// The rule catalogue, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "RR001",
        name: "no-panic-paths",
        summary: "no panic!/unreachable!/todo!/unimplemented!/.unwrap()/.expect() in non-test library code",
        rationale: "The resilience layer (ScanPolicy, DegradationReport, typed errors) exists so \
                    corrupt rows and failed solves surface as values, not aborts. A stray unwrap \
                    in library code bypasses quarantine accounting and kills long mining runs.",
        bad: "let c = acc.finalize().unwrap();",
        good: "let c = acc.finalize()?;",
    },
    RuleInfo {
        id: "RR002",
        name: "no-raw-float-eq",
        summary: "no == / != against f64 literals; use linalg::cmp helpers",
        rationale: "Raw float equality either encodes a deliberate exact-zero sentinel (which \
                    deserves a name: linalg::cmp::exact_zero) or is a tolerance bug waiting for \
                    a denormal. Either way the intent must be spelled out.",
        bad: "if norm == 0.0 { return; }",
        good: "if cmp::exact_zero(norm) { return; }",
    },
    RuleInfo {
        id: "RR003",
        name: "no-ambient-nondeterminism",
        summary: "no SystemTime::now/Instant::now/thread_rng-style ambient sources outside the clock/seed abstractions",
        rationale: "Reproducibility is a paper claim: mining is deterministic given a dataset and \
                    a seed. Wall clocks belong to obs (timing) and bench; randomness must come \
                    from seeded generators threaded through APIs.",
        bad: "let seed = SystemTime::now().elapsed().as_nanos();",
        good: "let mut rng = SplitMix64::new(args.seed);",
    },
    RuleInfo {
        id: "RR004",
        name: "registered-metric-names",
        summary: "obs metric/span/event name literals must appear in crates/obs/src/names.rs",
        rationale: "Producers and exporters drift silently: a renamed counter stops matching its \
                    dashboard and nobody notices. One checked-in registry makes every name a \
                    reviewed, greppable constant. Covers counters/gauges/histograms, quantile \
                    histograms, spans, and flight-recorder events.",
        bad: "obs::counter_add(\"rows_scaned_total\", 1); // typo ships",
        good: "obs::counter_add(names::COVARIANCE_ROWS_SCANNED, 1);",
    },
    RuleInfo {
        id: "RR005",
        name: "errors-doc-section",
        summary: "public Result-returning fns need an `# Errors` doc section",
        rationale: "Callers routing errors into the degradation ladder need to know what can \
                    fail without reading the body. Same contract clippy::missing_errors_doc \
                    enforces, minus the dependency on nightly-churned lint names.",
        bad: "pub fn finalize(&self) -> Result<Matrix> {",
        good: "/// # Errors\n/// Returns `EmptyInput` if no rows were absorbed.\npub fn finalize(&self) -> Result<Matrix> {",
    },
    RuleInfo {
        id: "RR006",
        name: "no-unsafe",
        summary: "no unsafe blocks or functions anywhere in the workspace",
        rationale: "The whole reproduction is safe Rust on dense f64 buffers; nothing here needs \
                    unsafe, so any appearance is either an accident or an optimization that must \
                    first be argued in review.",
        bad: "unsafe { *ptr.add(i) }",
        good: "buf[i] // bounds-checked, and the optimizer elides it in the hot loops",
    },
    RuleInfo {
        id: "RR007",
        name: "debug-assert-in-hot-loops",
        summary: "assert!/assert_eq!/assert_ne! are forbidden in covariance/reconstruct/parallel; use debug_assert!",
        rationale: "These files are the single-pass scan and the per-row reconstruction — the \
                    O(N·M²) paths the paper's speed claims rest on. Release builds must not pay \
                    for invariant checks there; debug and sanitizer builds still get them.",
        bad: "assert!(j <= l && l < self.m);",
        good: "debug_assert!(j <= l && l < self.m);",
    },
    RuleInfo {
        id: "RR008",
        name: "tagged-todos",
        summary: "TODO/FIXME comments must carry a tag: TODO(#123) or TODO(RR-7)",
        rationale: "Untagged TODOs rot: nobody owns them and nothing links them to the roadmap. \
                    A tag ties every known gap to an issue or roadmap item that can be triaged.",
        bad: "// TODO: handle the rank-deficient case",
        good: "// TODO(RR-12): handle the rank-deficient case",
    },
    RuleInfo {
        id: "RR009",
        name: "suppressions-carry-reasons",
        summary: "rrlint-allow comments must name a valid rule and give a reason",
        rationale: "A suppression is a reviewed exception; without a reason it is just a muted \
                    alarm. The reason string is what the next reader audits.",
        bad: "// rrlint-allow: RR002",
        good: "// rrlint-allow: RR002 exact zero is the QL deflation sentinel",
    },
];

/// Looks up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// The hot-loop files RR007 guards.
const HOT_FILES: &[&str] = &[
    "crates/core/src/covariance.rs",
    "crates/core/src/reconstruct.rs",
    "crates/core/src/parallel.rs",
];

/// Crates whose job is wall-clock timing; RR003 ignores `Instant::now`
/// there (obs *is* the clock abstraction; bench measures wall time).
const CLOCK_CRATES: &[&str] = &["obs", "bench", "serve"];

/// Runs every rule against one file. `registry` is the parsed obs name
/// registry (`None` disables RR004, e.g. when linting a foreign tree).
pub fn check_file(ctx: &FileCtx<'_>, registry: Option<&[String]>) -> Vec<Finding> {
    let mut out = Vec::new();
    let code = ctx.code_indices();
    rr001_panic_paths(ctx, &code, &mut out);
    rr002_float_eq(ctx, &code, &mut out);
    rr003_nondeterminism(ctx, &code, &mut out);
    if let Some(reg) = registry {
        rr004_metric_names(ctx, &code, reg, &mut out);
    }
    rr005_errors_doc(ctx, &code, &mut out);
    rr006_unsafe(ctx, &code, &mut out);
    rr007_hot_asserts(ctx, &code, &mut out);
    rr008_todo_tags(ctx, &mut out);
    rr009_bad_suppressions(ctx, &mut out);
    // Apply suppressions last so every rule benefits uniformly (RR009
    // itself cannot be suppressed: a broken waiver must not waive itself).
    out.retain(|f| f.rule == "RR009" || !ctx.suppressed(f.rule, f.line));
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn push(ctx: &FileCtx<'_>, out: &mut Vec<Finding>, rule: &'static str, t: &Tok<'_>, msg: String) {
    out.push(Finding {
        rule,
        path: ctx.path.clone(),
        line: t.line,
        message: msg,
        snippet: ctx.line_text(t.line).to_string(),
    });
}

/// RR001: panicking constructs in non-test library code.
fn rr001_panic_paths(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.start) {
            continue;
        }
        let next = code.get(w + 1).map(|&j| &ctx.toks[j]);
        let prev = w.checked_sub(1).and_then(|p| code.get(p)).map(|&j| &ctx.toks[j]);
        let next_is = |s: &str| next.is_some_and(|n| n.kind == TokKind::Punct && n.text == s);
        match t.text {
            "unwrap" | "expect" => {
                let method = prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == ".");
                if method && next_is("(") {
                    push(
                        ctx,
                        out,
                        "RR001",
                        t,
                        format!(
                            ".{}() can abort a mining run; return the crate error type instead",
                            t.text
                        ),
                    );
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                if next_is("!") {
                    push(
                        ctx,
                        out,
                        "RR001",
                        t,
                        format!(
                            "{}! in library code bypasses the resilience layer; return an error",
                            t.text
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// RR002: `==` / `!=` with a float-literal operand.
fn rr002_float_eq(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        if ctx.in_test(t.start) {
            continue;
        }
        let prev_float = w
            .checked_sub(1)
            .and_then(|p| code.get(p))
            .is_some_and(|&j| ctx.toks[j].kind == TokKind::FloatLit);
        let next_float = match code.get(w + 1).map(|&j| &ctx.toks[j]) {
            Some(n) if n.kind == TokKind::FloatLit => true,
            // `x == -1.0`
            Some(n) if n.kind == TokKind::Punct && n.text == "-" => code
                .get(w + 2)
                .is_some_and(|&j| ctx.toks[j].kind == TokKind::FloatLit),
            _ => false,
        };
        if prev_float || next_float {
            push(
                ctx,
                out,
                "RR002",
                t,
                format!(
                    "raw f64 `{}` against a literal; use linalg::cmp (exact_zero / approx_eq) to name the intent",
                    t.text
                ),
            );
        }
    }
}

/// RR003: ambient clocks and entropy outside the sanctioned homes.
fn rr003_nondeterminism(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.start) {
            continue;
        }
        let path2 = |a: &str, b: &str| {
            t.text == a
                && matches!(code.get(w + 1).map(|&j| &ctx.toks[j]), Some(n) if n.text == "::")
                && matches!(code.get(w + 2).map(|&j| &ctx.toks[j]), Some(n) if n.text == b)
        };
        let clock_ok = CLOCK_CRATES.contains(&ctx.crate_name.as_str());
        if path2("SystemTime", "now") {
            push(ctx, out, "RR003", t,
                "SystemTime::now() makes runs irreproducible; inject a clock or derive from the seed".into());
        } else if !clock_ok && path2("Instant", "now") {
            push(ctx, out, "RR003", t,
                "Instant::now() outside obs/bench; route timing through obs spans or suppress with the reason".into());
        } else if t.text == "thread_rng" || t.text == "from_entropy" {
            push(ctx, out, "RR003", t,
                format!("{}() draws ambient entropy; every RNG here must be seeded and logged", t.text));
        } else if path2("rand", "random") {
            push(ctx, out, "RR003", t,
                "rand::random() draws ambient entropy; thread a seeded generator instead".into());
        }
    }
}

/// RR004: metric/span name literals must be registered.
fn rr004_metric_names(
    ctx: &FileCtx<'_>,
    code: &[usize],
    registry: &[String],
    out: &mut Vec<Finding>,
) {
    // The obs crate itself hosts the registry, generic plumbing, and doc
    // demos; names only become production facts at producer call sites.
    if ctx.crate_name == "obs" {
        return;
    }
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.start) {
            continue;
        }
        let nth = |k: usize| code.get(w + k).map(|&j| &ctx.toks[j]);
        // counter_add("..")  gauge_set("..")  observe("..")
        // observe_quantile("..")  flight_event("..")
        let free_call = matches!(
            t.text,
            "counter_add" | "gauge_set" | "observe" | "observe_quantile" | "flight_event"
        );
        // Span::enter("..")
        let span_enter = t.text == "Span"
            && matches!(nth(1), Some(n) if n.text == "::")
            && matches!(nth(2), Some(n) if n.text == "enter");
        // .counter("..")  .gauge("..")  .histogram("..")  .quantile("..")
        let method_call = matches!(t.text, "counter" | "gauge" | "histogram" | "quantile")
            && w.checked_sub(1)
                .and_then(|p| code.get(p))
                .is_some_and(|&j| ctx.toks[j].text == ".");
        let lit_at = if free_call || method_call {
            2
        } else if span_enter {
            4
        } else {
            continue;
        };
        if !matches!(nth(lit_at - 1), Some(n) if n.text == "(") {
            continue;
        }
        let Some(lit) = nth(lit_at) else { continue };
        if lit.kind != TokKind::StrLit {
            continue; // dynamic name: the registry cannot vouch for it
        }
        if let Some(name) = str_lit_value(lit.text) {
            if !registry.iter().any(|r| *r == name) {
                push(
                    ctx,
                    out,
                    "RR004",
                    lit,
                    format!(
                        "metric/span name \"{name}\" is not in crates/obs/src/names.rs; register it so exporters and dashboards cannot drift"
                    ),
                );
            }
        }
    }
}

/// RR005: `pub fn … -> Result` requires an `# Errors` doc section.
fn rr005_errors_doc(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || t.text != "pub" || ctx.in_test(t.start) {
            continue;
        }
        // pub(crate)/pub(super) are not public API.
        if matches!(code.get(w + 1).map(|&j| &ctx.toks[j]), Some(n) if n.text == "(") {
            continue;
        }
        // Allow qualifiers between pub and fn: const / async / unsafe / extern "C".
        let mut k = w + 1;
        let mut fn_at = None;
        while k < code.len() && k <= w + 4 {
            let q = &ctx.toks[code[k]];
            if q.kind == TokKind::Ident && q.text == "fn" {
                fn_at = Some(k);
                break;
            }
            let qualifier = q.kind == TokKind::StrLit
                || (q.kind == TokKind::Ident
                    && matches!(q.text, "const" | "async" | "unsafe" | "extern"));
            if !qualifier {
                break;
            }
            k += 1;
        }
        let Some(fn_ci) = fn_at else { continue };
        // Does the signature (up to body/`;`) mention Result after `->`?
        let mut saw_arrow = false;
        let mut returns_result = false;
        let mut j = fn_ci + 1;
        while j < code.len() {
            let s = &ctx.toks[code[j]];
            match (s.kind, s.text) {
                (TokKind::Punct, "->") => saw_arrow = true,
                (TokKind::Punct, "{") | (TokKind::Punct, ";") => break,
                (TokKind::Ident, "where") => break,
                (TokKind::Ident, "Result") if saw_arrow => returns_result = true,
                _ => {}
            }
            j += 1;
        }
        if !returns_result {
            continue;
        }
        if !doc_above_mentions_errors(ctx, i) {
            push(
                ctx,
                out,
                "RR005",
                t,
                "public Result-returning fn without an `# Errors` doc section".into(),
            );
        }
    }
}

/// Walks backwards from the raw-token index of a `pub` over doc comments
/// and attributes, looking for `# Errors` in the doc block.
fn doc_above_mentions_errors(ctx: &FileCtx<'_>, pub_idx: usize) -> bool {
    let mut i = pub_idx;
    let mut bracket_depth = 0i32;
    while i > 0 {
        i -= 1;
        let t = &ctx.toks[i];
        match t.kind {
            TokKind::LineComment => {
                if bracket_depth == 0
                    && (t.text.starts_with("///") || t.text.starts_with("//!"))
                    && t.text.contains("# Errors")
                {
                    return true;
                }
                // Plain comments inside the doc block are fine to skip.
            }
            TokKind::BlockComment => {
                if bracket_depth == 0 && t.text.contains("# Errors") {
                    return true;
                }
            }
            TokKind::Punct if t.text == "]" => bracket_depth += 1,
            TokKind::Punct if t.text == "[" => bracket_depth -= 1,
            TokKind::Punct if t.text == "#" || t.text == "=" || t.text == "," => {}
            // Attribute contents: idents / literals inside #[…] are part
            // of the header; anything else at depth 0 ends the block.
            _ if bracket_depth > 0 => {}
            _ => break,
        }
    }
    false
}

/// RR006: any `unsafe` token.
fn rr006_unsafe(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    for &i in code {
        let t = &ctx.toks[i];
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            push(
                ctx,
                out,
                "RR006",
                t,
                "unsafe is banned workspace-wide; argue the optimization in review first".into(),
            );
        }
    }
}

/// RR007: hard asserts in the hot-loop files.
fn rr007_hot_asserts(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    if !HOT_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.start) {
            continue;
        }
        if matches!(t.text, "assert" | "assert_eq" | "assert_ne")
            && matches!(code.get(w + 1).map(|&j| &ctx.toks[j]), Some(n) if n.text == "!")
        {
            push(
                ctx,
                out,
                "RR007",
                t,
                format!(
                    "{}! in a paper-critical hot path; use debug_{}! so release scans stay branch-free",
                    t.text, t.text
                ),
            );
        }
    }
}

/// RR008: to-do / fix-me markers in comments need an issue tag.
fn rr008_todo_tags(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in ctx.toks.iter().filter(|t| t.is_comment()) {
        for marker in ["TODO", "FIXME"] {
            let mut from = 0usize;
            while let Some(at) = t.text[from..].find(marker) {
                let abs = from + at;
                from = abs + marker.len();
                // Word boundary on the left (avoid e.g. "TODOS" matching
                // is handled on the right below).
                if abs > 0 {
                    let before = t.text.as_bytes()[abs - 1];
                    if before.is_ascii_alphanumeric() || before == b'_' {
                        continue;
                    }
                }
                let rest = &t.text[abs + marker.len()..];
                let tagged = rest.starts_with('(')
                    && rest[1..]
                        .split_once(')')
                        .is_some_and(|(tag, _)| !tag.trim().is_empty());
                if rest.starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_') {
                    continue; // TODOS, FIXMEs, …: not a marker
                }
                if !tagged {
                    push(
                        ctx,
                        out,
                        "RR008",
                        t,
                        format!("{marker} without a tag; write {marker}(#issue) or {marker}(RR-n) so it can be triaged"),
                    );
                }
            }
        }
    }
}

/// RR009: malformed suppression comments.
fn rr009_bad_suppressions(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for b in &ctx.bad_suppressions {
        out.push(Finding {
            rule: "RR009",
            path: ctx.path.clone(),
            line: b.line,
            message: b.why.clone(),
            snippet: ctx.line_text(b.line).to_string(),
        });
    }
}

/// Decodes a string-literal token to its value. Returns `None` for byte
/// strings (not names) and for escapes the linter does not model.
pub fn str_lit_value(text: &str) -> Option<String> {
    let t = text;
    if t.starts_with("b\"") || t.starts_with("br") || t.starts_with("b'") {
        return None;
    }
    // Raw strings: r"..." / r#"..."# / cr#"..."#
    if let Some(stripped) = t.strip_prefix('r').or_else(|| t.strip_prefix("cr")) {
        let hashes = stripped.bytes().take_while(|&b| b == b'#').count();
        let inner = stripped.get(hashes..)?;
        let inner = inner.strip_prefix('"')?;
        let inner = inner.get(..inner.len().checked_sub(1 + hashes)?)?;
        return Some(inner.to_string());
    }
    let t = t.strip_prefix('c').unwrap_or(t);
    let inner = t.strip_prefix('"')?.strip_suffix('"')?;
    if !inner.contains('\\') {
        return Some(inner.to_string());
    }
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('\'') => out.push('\''),
            Some('0') => out.push('\0'),
            _ => return None, // \u{…}, \xNN: not plausible metric names
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use std::path::Path;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new(Path::new(path), src);
        check_file(&ctx, Some(&["known_total".to_string()]))
    }

    fn rules_of(fs: &[Finding]) -> Vec<&'static str> {
        fs.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn rr001_flags_unwrap_in_lib_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        let fs = findings("crates/core/src/miner.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR001"]);
        assert_eq!(fs[0].line, 1);
        // Same code in an integration test: clean.
        assert!(findings("crates/core/tests/it.rs", src).is_empty());
        // Binaries are exempt (CLI already routes through run_with_status).
        assert!(findings("crates/cli/src/main.rs", "fn main() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn rr001_flags_macros_but_not_lookalikes() {
        let fs = findings(
            "crates/core/src/lib.rs",
            "fn f() { panic!(\"boom\"); let x = y.unwrap_or(3); }\n",
        );
        assert_eq!(rules_of(&fs), vec!["RR001"]);
        assert!(fs[0].message.contains("panic"));
    }

    #[test]
    fn rr001_ignores_doc_comment_examples() {
        let src = "/// let x = v.unwrap();\n/// panic!();\nfn f() {}\n";
        assert!(findings("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn rr002_flags_float_literal_comparisons() {
        let fs = findings(
            "crates/linalg/src/x.rs",
            "fn f(a: f64) -> bool { a == 0.0 || 1.5 != a || a == -2.0 }\n",
        );
        assert_eq!(rules_of(&fs), vec!["RR002", "RR002", "RR002"]);
    }

    #[test]
    fn rr002_ignores_int_comparison_and_ordering() {
        let src = "fn f(a: usize, x: f64) -> bool { a == 0 && x < 1.0 && x <= 0.5 }\n";
        assert!(findings("crates/linalg/src/x.rs", src).is_empty());
    }

    #[test]
    fn rr002_exempts_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(x: f64) -> bool { x == 0.0 }\n}\n";
        assert!(findings("crates/linalg/src/x.rs", src).is_empty());
    }

    #[test]
    fn rr002_suppressible_with_reason() {
        let src = "fn f(x: f64) -> bool {\n    // rrlint-allow: RR002 canonical exact-zero helper\n    x == 0.0\n}\n";
        assert!(findings("crates/linalg/src/cmp.rs", src).is_empty());
    }

    #[test]
    fn rr003_flags_ambient_sources() {
        let fs = findings(
            "crates/dataset/src/x.rs",
            "fn f() { let t = SystemTime::now(); let r = thread_rng(); let i = Instant::now(); }\n",
        );
        assert_eq!(rules_of(&fs), vec!["RR003", "RR003", "RR003"]);
    }

    #[test]
    fn rr003_instant_allowed_in_obs_and_bench() {
        let src = "fn f() { let i = Instant::now(); }\n";
        assert!(findings("crates/obs/src/span.rs", src).is_empty());
        assert!(findings("crates/bench/src/lib.rs", src).is_empty());
        // The prediction server legitimately measures deadlines/latency.
        assert!(findings("crates/serve/src/queue.rs", src).is_empty());
        // SystemTime stays banned even there.
        let fs = findings("crates/obs/src/span.rs", "fn g() { SystemTime::now(); }\n");
        assert_eq!(rules_of(&fs), vec!["RR003"]);
    }

    #[test]
    fn rr004_checks_literals_against_registry() {
        let src = "fn f() { obs::counter_add(\"known_total\", 1); obs::counter_add(\"rogue_total\", 1); }\n";
        let fs = findings("crates/core/src/miner.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR004"]);
        assert!(fs[0].message.contains("rogue_total"));
    }

    #[test]
    fn rr004_span_and_method_forms() {
        let src = "fn f(reg: &Registry) { let _s = Span::enter(\"rogue_span\"); reg.histogram(\"rogue_hist\", &[1.0]); }\n";
        let fs = findings("crates/core/src/miner.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR004", "RR004"]);
    }

    #[test]
    fn rr004_quantile_and_flight_event_forms() {
        let src = "fn f(reg: &Registry) { obs::observe_quantile(\"rogue_us\", 1.0); \
                   obs::flight_event(\"rogue_event\", 0, 0, 0.0); \
                   reg.quantile(\"rogue_q\"); \
                   obs::flight_event(\"known_total\", 0, 0, 0.0); }\n";
        let fs = findings("crates/core/src/miner.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR004", "RR004", "RR004"]);
        assert!(fs.iter().any(|f| f.message.contains("rogue_event")));
    }

    #[test]
    fn rr004_dynamic_names_and_tests_skipped() {
        let src = "fn f(n: &str) { obs::counter_add(n, 1); }\n#[cfg(test)]\nmod t { fn g() { obs::counter_add(\"ad_hoc\", 1); } }\n";
        assert!(findings("crates/core/src/miner.rs", src).is_empty());
    }

    #[test]
    fn rr005_requires_errors_section() {
        let bad = "/// Does a thing.\npub fn f() -> Result<u32> { Ok(1) }\n";
        let fs = findings("crates/core/src/x.rs", bad);
        assert_eq!(rules_of(&fs), vec!["RR005"]);
        let good = "/// Does a thing.\n///\n/// # Errors\n/// When the thing fails.\npub fn f() -> Result<u32> { Ok(1) }\n";
        assert!(findings("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn rr005_skips_private_and_non_result() {
        let src = "fn f() -> Result<u32> { Ok(1) }\npub(crate) fn g() -> Result<u32> { Ok(1) }\npub fn h() -> u32 { 1 }\n";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn rr005_sees_through_attributes() {
        let good = "/// Doc.\n///\n/// # Errors\n/// Sometimes.\n#[inline]\npub fn f() -> Result<u32> { Ok(1) }\n";
        assert!(findings("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn rr005_result_in_args_is_not_a_return() {
        let src = "/// Doc.\npub fn f(r: Result<u32, ()>) -> u32 { r.unwrap_or(0) }\n";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn rr006_flags_unsafe_everywhere_even_tests() {
        let src = "#[cfg(test)]\nmod t { fn f() { unsafe { std::hint::unreachable_unchecked() } } }\n";
        let fs = findings("crates/core/src/x.rs", src);
        assert!(rules_of(&fs).contains(&"RR006"));
    }

    #[test]
    fn rr007_hot_files_require_debug_assert() {
        let src = "fn f(m: usize) { assert!(m > 0); debug_assert!(m > 0); }\n";
        let fs = findings("crates/core/src/covariance.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR007"]);
        // Outside the hot files the same line is fine.
        assert!(findings("crates/core/src/miner.rs", src).is_empty());
    }

    #[test]
    fn rr008_requires_tags() {
        let src = "// TODO: someday\n// TODO(RR-3): tracked\n// FIXME(#12): tracked too\n/* FIXME later */\nfn f() {}\n";
        let fs = findings("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR008", "RR008"]);
        assert_eq!(fs[0].line, 1);
        assert_eq!(fs[1].line, 4);
    }

    #[test]
    fn rr009_reports_bad_suppressions_and_cannot_be_suppressed() {
        let src = "// rrlint-allow: RR002\nfn f() {}\n";
        let fs = findings("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR009"]);
    }

    #[test]
    fn str_lit_value_decodes() {
        assert_eq!(str_lit_value("\"abc\""), Some("abc".into()));
        assert_eq!(str_lit_value("\"a\\nb\""), Some("a\nb".into()));
        assert_eq!(str_lit_value("r#\"a\"x\"#"), Some("a\"x".into()));
        assert_eq!(str_lit_value("r\"plain\""), Some("plain".into()));
        assert_eq!(str_lit_value("b\"bytes\""), None);
    }

    #[test]
    fn catalogue_is_complete_and_ordered() {
        let ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec!["RR001", "RR002", "RR003", "RR004", "RR005", "RR006", "RR007", "RR008", "RR009"]
        );
        assert!(rule_info("RR004").is_some());
        assert!(rule_info("RR999").is_none());
    }
}
