//! The workspace rule set: `RR001`–`RR013`.
//!
//! `RR001`–`RR009` are token-shape patterns over a [`FileCtx`], scoped
//! to the files and regions where the invariant each protects actually
//! applies. `RR010`–`RR013` are *semantic* rules: they consume the
//! [`crate::index`] sketch (lock-guard live ranges, fn outlines) and the
//! [`crate::callgraph`] approximation, and run over the whole workspace
//! at once via [`check_workspace`]. The catalogue (rationale, examples,
//! suppression syntax) is rendered by `rrlint explain` from the metadata
//! here and documented in `docs/LINTS.md`. Rules are heuristic by design
//! — they match what the lexer and the token trees can see, not types —
//! but every pattern is tuned so that the workspace conventions make the
//! *intended* construct invisible to the rule (e.g.
//! `linalg::cmp::exact_zero(x)` instead of `x == 0.0`).

use crate::callgraph::{CallGraph, FnId};
use crate::context::{FileCtx, FileKind};
use crate::index::FileIndex;
use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `"RR002"`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of this occurrence.
    pub message: String,
    /// Trimmed source line (also the baseline fingerprint input).
    pub snippet: String,
}

/// Static description of a rule, used by `explain` and the docs test.
pub struct RuleInfo {
    /// `RRNNN`.
    pub id: &'static str,
    /// Short name.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Why the workspace enforces it.
    pub rationale: &'static str,
    /// A violating line.
    pub bad: &'static str,
    /// The conforming alternative.
    pub good: &'static str,
}

/// The rule catalogue, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "RR001",
        name: "no-panic-paths",
        summary: "no panic!/unreachable!/todo!/unimplemented!/.unwrap()/.expect() in non-test library code",
        rationale: "The resilience layer (ScanPolicy, DegradationReport, typed errors) exists so \
                    corrupt rows and failed solves surface as values, not aborts. A stray unwrap \
                    in library code bypasses quarantine accounting and kills long mining runs.",
        bad: "let c = acc.finalize().unwrap();",
        good: "let c = acc.finalize()?;",
    },
    RuleInfo {
        id: "RR002",
        name: "no-raw-float-eq",
        summary: "no == / != against f64 literals; use linalg::cmp helpers",
        rationale: "Raw float equality either encodes a deliberate exact-zero sentinel (which \
                    deserves a name: linalg::cmp::exact_zero) or is a tolerance bug waiting for \
                    a denormal. Either way the intent must be spelled out.",
        bad: "if norm == 0.0 { return; }",
        good: "if cmp::exact_zero(norm) { return; }",
    },
    RuleInfo {
        id: "RR003",
        name: "no-ambient-nondeterminism",
        summary: "no SystemTime::now/Instant::now/thread_rng-style ambient sources outside the clock/seed abstractions",
        rationale: "Reproducibility is a paper claim: mining is deterministic given a dataset and \
                    a seed. Wall clocks belong to obs (timing) and bench; randomness must come \
                    from seeded generators threaded through APIs.",
        bad: "let seed = SystemTime::now().elapsed().as_nanos();",
        good: "let mut rng = SplitMix64::new(args.seed);",
    },
    RuleInfo {
        id: "RR004",
        name: "registered-metric-names",
        summary: "obs metric/span/event name literals must appear in crates/obs/src/names.rs",
        rationale: "Producers and exporters drift silently: a renamed counter stops matching its \
                    dashboard and nobody notices. One checked-in registry makes every name a \
                    reviewed, greppable constant. Covers counters/gauges/histograms, quantile \
                    histograms, spans, and flight-recorder events.",
        bad: "obs::counter_add(\"rows_scaned_total\", 1); // typo ships",
        good: "obs::counter_add(names::COVARIANCE_ROWS_SCANNED, 1);",
    },
    RuleInfo {
        id: "RR005",
        name: "errors-doc-section",
        summary: "public Result-returning fns need an `# Errors` doc section",
        rationale: "Callers routing errors into the degradation ladder need to know what can \
                    fail without reading the body. Same contract clippy::missing_errors_doc \
                    enforces, minus the dependency on nightly-churned lint names.",
        bad: "pub fn finalize(&self) -> Result<Matrix> {",
        good: "/// # Errors\n/// Returns `EmptyInput` if no rows were absorbed.\npub fn finalize(&self) -> Result<Matrix> {",
    },
    RuleInfo {
        id: "RR006",
        name: "no-unsafe",
        summary: "no unsafe blocks or functions anywhere in the workspace",
        rationale: "The whole reproduction is safe Rust on dense f64 buffers; nothing here needs \
                    unsafe, so any appearance is either an accident or an optimization that must \
                    first be argued in review.",
        bad: "unsafe { *ptr.add(i) }",
        good: "buf[i] // bounds-checked, and the optimizer elides it in the hot loops",
    },
    RuleInfo {
        id: "RR007",
        name: "debug-assert-in-hot-loops",
        summary: "assert!/assert_eq!/assert_ne! are forbidden in covariance/reconstruct/parallel; use debug_assert!",
        rationale: "These files are the single-pass scan and the per-row reconstruction — the \
                    O(N·M²) paths the paper's speed claims rest on. Release builds must not pay \
                    for invariant checks there; debug and sanitizer builds still get them.",
        bad: "assert!(j <= l && l < self.m);",
        good: "debug_assert!(j <= l && l < self.m);",
    },
    RuleInfo {
        id: "RR008",
        name: "tagged-todos",
        summary: "TODO/FIXME comments must carry a tag: TODO(#123) or TODO(RR-7)",
        rationale: "Untagged TODOs rot: nobody owns them and nothing links them to the roadmap. \
                    A tag ties every known gap to an issue or roadmap item that can be triaged.",
        bad: "// TODO: handle the rank-deficient case",
        good: "// TODO(RR-12): handle the rank-deficient case",
    },
    RuleInfo {
        id: "RR009",
        name: "suppressions-carry-reasons",
        summary: "rrlint-allow comments must name a valid rule and give a reason",
        rationale: "A suppression is a reviewed exception; without a reason it is just a muted \
                    alarm. The reason string is what the next reader audits.",
        bad: "// rrlint-allow: RR002",
        good: "// rrlint-allow: RR002 exact zero is the QL deflation sentinel",
    },
    RuleInfo {
        id: "RR010",
        name: "no-guard-across-blocking",
        summary: "no Mutex/RwLock guard live across a blocking call (socket/file I/O, sleep, join, foreign Condvar::wait) in serve and core::parallel",
        rationale: "A guard held across a blocking call turns one slow peer into a stalled \
                    batcher: every thread that needs the lock queues behind the kernel. The \
                    serving path's tail-latency SLOs assume critical sections are compute-only. \
                    Condvar::wait on the guard's own lock is exempt — the wait releases it.",
        bad: "let st = self.lock(); stream.write_all(b\"503\")?;",
        good: "let st = self.lock(); drop(st); stream.write_all(b\"503\")?;",
    },
    RuleInfo {
        id: "RR011",
        name: "consistent-lock-order",
        summary: "nested lock acquisitions must agree on one global order (no cycles in the workspace lock-order graph)",
        rationale: "Two threads taking the same pair of locks in opposite orders is the textbook \
                    deadlock, and it only shows up under load. The lock-order graph built from \
                    nested guard scopes makes the order reviewable; a cycle is a deadlock \
                    waiting for a scheduler interleaving.",
        bad: "fn a() { let g1 = x.lock(); let g2 = y.lock(); }  fn b() { let g2 = y.lock(); let g1 = x.lock(); }",
        good: "fn a() { let g1 = x.lock(); let g2 = y.lock(); }  fn b() { let g1 = x.lock(); let g2 = y.lock(); }",
    },
    RuleInfo {
        id: "RR012",
        name: "no-hash-iteration-on-numeric-paths",
        summary: "no HashMap/HashSet iteration in fns reachable from the covariance/merge/reconstruct/eigensolve paths",
        rationale: "The paper's reproducibility contract is bit-identity: blocked == rowwise == \
                    sharded == distributed. HashMap iteration order changes run to run \
                    (SipHash keying), so any fold over it on a numeric result path silently \
                    breaks the contract. Iterate a sorted Vec or a BTreeMap instead.",
        bad: "for (k, s) in solvers.iter() { total += s.count; }",
        good: "let mut keys: Vec<_> = solvers.keys().collect(); keys.sort(); // then fold in key order",
    },
    RuleInfo {
        id: "RR013",
        name: "no-interprocedural-panic-paths",
        summary: "a pub lib fn must not transitively reach a panic site (unwrap/expect/panic!) without an intervening catch_unwind",
        rationale: "RR001 flags the panic site itself; this rule walks the call graph and flags \
                    the public entry point whose callees can abort a mining run. The resilience \
                    layer's exit-code contract (0/2/3) only holds if panics cannot escape \
                    library entry points uncaught.",
        bad: "pub fn mine(d: &Data) -> Model { helper(d) }  fn helper(d: &Data) -> Model { d.finalize().unwrap() }",
        good: "pub fn mine(d: &Data) -> Result<Model> { helper(d) }  fn helper(d: &Data) -> Result<Model> { d.finalize() }",
    },
];

/// Looks up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// The hot-loop files RR007 guards.
const HOT_FILES: &[&str] = &[
    "crates/core/src/covariance.rs",
    "crates/core/src/reconstruct.rs",
    "crates/core/src/parallel.rs",
];

/// Crates whose job is wall-clock timing; RR003 ignores `Instant::now`
/// there (obs *is* the clock abstraction; bench measures wall time).
const CLOCK_CRATES: &[&str] = &["obs", "bench", "serve"];

/// Runs every rule against one file. `registry` is the parsed obs name
/// registry (`None` disables RR004, e.g. when linting a foreign tree).
pub fn check_file(ctx: &FileCtx<'_>, registry: Option<&[String]>) -> Vec<Finding> {
    let mut out = Vec::new();
    let code = ctx.code_indices();
    rr001_panic_paths(ctx, &code, &mut out);
    rr002_float_eq(ctx, &code, &mut out);
    rr003_nondeterminism(ctx, &code, &mut out);
    if let Some(reg) = registry {
        rr004_metric_names(ctx, &code, reg, &mut out);
    }
    rr005_errors_doc(ctx, &code, &mut out);
    rr006_unsafe(ctx, &code, &mut out);
    rr007_hot_asserts(ctx, &code, &mut out);
    rr008_todo_tags(ctx, &mut out);
    rr009_bad_suppressions(ctx, &mut out);
    // Apply suppressions last so every rule benefits uniformly (RR009
    // itself cannot be suppressed: a broken waiver must not waive itself).
    out.retain(|f| f.rule == "RR009" || !ctx.suppressed(f.rule, f.line));
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn push(ctx: &FileCtx<'_>, out: &mut Vec<Finding>, rule: &'static str, t: &Tok<'_>, msg: String) {
    out.push(Finding {
        rule,
        path: ctx.path.clone(),
        line: t.line,
        message: msg,
        snippet: ctx.line_text(t.line).to_string(),
    });
}

/// RR001: panicking constructs in non-test library code.
fn rr001_panic_paths(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.start) {
            continue;
        }
        let next = code.get(w + 1).map(|&j| &ctx.toks[j]);
        let prev = w.checked_sub(1).and_then(|p| code.get(p)).map(|&j| &ctx.toks[j]);
        let next_is = |s: &str| next.is_some_and(|n| n.kind == TokKind::Punct && n.text == s);
        match t.text {
            "unwrap" | "expect" => {
                let method = prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == ".");
                if method && next_is("(") {
                    push(
                        ctx,
                        out,
                        "RR001",
                        t,
                        format!(
                            ".{}() can abort a mining run; return the crate error type instead",
                            t.text
                        ),
                    );
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                if next_is("!") {
                    push(
                        ctx,
                        out,
                        "RR001",
                        t,
                        format!(
                            "{}! in library code bypasses the resilience layer; return an error",
                            t.text
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// RR002: `==` / `!=` with a float-literal operand.
fn rr002_float_eq(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        if ctx.in_test(t.start) {
            continue;
        }
        let prev_float = w
            .checked_sub(1)
            .and_then(|p| code.get(p))
            .is_some_and(|&j| ctx.toks[j].kind == TokKind::FloatLit);
        let next_float = match code.get(w + 1).map(|&j| &ctx.toks[j]) {
            Some(n) if n.kind == TokKind::FloatLit => true,
            // `x == -1.0`
            Some(n) if n.kind == TokKind::Punct && n.text == "-" => code
                .get(w + 2)
                .is_some_and(|&j| ctx.toks[j].kind == TokKind::FloatLit),
            _ => false,
        };
        if prev_float || next_float {
            push(
                ctx,
                out,
                "RR002",
                t,
                format!(
                    "raw f64 `{}` against a literal; use linalg::cmp (exact_zero / approx_eq) to name the intent",
                    t.text
                ),
            );
        }
    }
}

/// RR003: ambient clocks and entropy outside the sanctioned homes.
fn rr003_nondeterminism(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.start) {
            continue;
        }
        let path2 = |a: &str, b: &str| {
            t.text == a
                && matches!(code.get(w + 1).map(|&j| &ctx.toks[j]), Some(n) if n.text == "::")
                && matches!(code.get(w + 2).map(|&j| &ctx.toks[j]), Some(n) if n.text == b)
        };
        let clock_ok = CLOCK_CRATES.contains(&ctx.crate_name.as_str());
        if path2("SystemTime", "now") {
            push(ctx, out, "RR003", t,
                "SystemTime::now() makes runs irreproducible; inject a clock or derive from the seed".into());
        } else if !clock_ok && path2("Instant", "now") {
            push(ctx, out, "RR003", t,
                "Instant::now() outside obs/bench; route timing through obs spans or suppress with the reason".into());
        } else if t.text == "thread_rng" || t.text == "from_entropy" {
            push(ctx, out, "RR003", t,
                format!("{}() draws ambient entropy; every RNG here must be seeded and logged", t.text));
        } else if path2("rand", "random") {
            push(ctx, out, "RR003", t,
                "rand::random() draws ambient entropy; thread a seeded generator instead".into());
        }
    }
}

/// RR004: metric/span name literals must be registered.
fn rr004_metric_names(
    ctx: &FileCtx<'_>,
    code: &[usize],
    registry: &[String],
    out: &mut Vec<Finding>,
) {
    // The obs crate itself hosts the registry, generic plumbing, and doc
    // demos; names only become production facts at producer call sites.
    if ctx.crate_name == "obs" {
        return;
    }
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.start) {
            continue;
        }
        let nth = |k: usize| code.get(w + k).map(|&j| &ctx.toks[j]);
        // counter_add("..")  gauge_set("..")  observe("..")
        // observe_quantile("..")  flight_event("..")
        let free_call = matches!(
            t.text,
            "counter_add" | "gauge_set" | "observe" | "observe_quantile" | "flight_event"
        );
        // Span::enter("..")
        let span_enter = t.text == "Span"
            && matches!(nth(1), Some(n) if n.text == "::")
            && matches!(nth(2), Some(n) if n.text == "enter");
        // .counter("..")  .gauge("..")  .histogram("..")  .quantile("..")
        let method_call = matches!(t.text, "counter" | "gauge" | "histogram" | "quantile")
            && w.checked_sub(1)
                .and_then(|p| code.get(p))
                .is_some_and(|&j| ctx.toks[j].text == ".");
        let lit_at = if free_call || method_call {
            2
        } else if span_enter {
            4
        } else {
            continue;
        };
        if !matches!(nth(lit_at - 1), Some(n) if n.text == "(") {
            continue;
        }
        let Some(lit) = nth(lit_at) else { continue };
        if lit.kind != TokKind::StrLit {
            continue; // dynamic name: the registry cannot vouch for it
        }
        if let Some(name) = str_lit_value(lit.text) {
            if !registry.iter().any(|r| *r == name) {
                push(
                    ctx,
                    out,
                    "RR004",
                    lit,
                    format!(
                        "metric/span name \"{name}\" is not in crates/obs/src/names.rs; register it so exporters and dashboards cannot drift"
                    ),
                );
            }
        }
    }
}

/// RR005: `pub fn … -> Result` requires an `# Errors` doc section.
fn rr005_errors_doc(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || t.text != "pub" || ctx.in_test(t.start) {
            continue;
        }
        // pub(crate)/pub(super) are not public API.
        if matches!(code.get(w + 1).map(|&j| &ctx.toks[j]), Some(n) if n.text == "(") {
            continue;
        }
        // Allow qualifiers between pub and fn: const / async / unsafe / extern "C".
        let mut k = w + 1;
        let mut fn_at = None;
        while k < code.len() && k <= w + 4 {
            let q = &ctx.toks[code[k]];
            if q.kind == TokKind::Ident && q.text == "fn" {
                fn_at = Some(k);
                break;
            }
            let qualifier = q.kind == TokKind::StrLit
                || (q.kind == TokKind::Ident
                    && matches!(q.text, "const" | "async" | "unsafe" | "extern"));
            if !qualifier {
                break;
            }
            k += 1;
        }
        let Some(fn_ci) = fn_at else { continue };
        // Does the signature (up to body/`;`) mention Result after `->`?
        let mut saw_arrow = false;
        let mut returns_result = false;
        let mut j = fn_ci + 1;
        while j < code.len() {
            let s = &ctx.toks[code[j]];
            match (s.kind, s.text) {
                (TokKind::Punct, "->") => saw_arrow = true,
                (TokKind::Punct, "{") | (TokKind::Punct, ";") => break,
                (TokKind::Ident, "where") => break,
                (TokKind::Ident, "Result") if saw_arrow => returns_result = true,
                _ => {}
            }
            j += 1;
        }
        if !returns_result {
            continue;
        }
        if !doc_above_mentions_errors(ctx, i) {
            push(
                ctx,
                out,
                "RR005",
                t,
                "public Result-returning fn without an `# Errors` doc section".into(),
            );
        }
    }
}

/// Walks backwards from the raw-token index of a `pub` over doc comments
/// and attributes, looking for `# Errors` in the doc block.
fn doc_above_mentions_errors(ctx: &FileCtx<'_>, pub_idx: usize) -> bool {
    let mut i = pub_idx;
    let mut bracket_depth = 0i32;
    while i > 0 {
        i -= 1;
        let t = &ctx.toks[i];
        match t.kind {
            TokKind::LineComment => {
                if bracket_depth == 0
                    && (t.text.starts_with("///") || t.text.starts_with("//!"))
                    && t.text.contains("# Errors")
                {
                    return true;
                }
                // Plain comments inside the doc block are fine to skip.
            }
            TokKind::BlockComment => {
                if bracket_depth == 0 && t.text.contains("# Errors") {
                    return true;
                }
            }
            TokKind::Punct if t.text == "]" => bracket_depth += 1,
            TokKind::Punct if t.text == "[" => bracket_depth -= 1,
            TokKind::Punct if t.text == "#" || t.text == "=" || t.text == "," => {}
            // Attribute contents: idents / literals inside #[…] are part
            // of the header; anything else at depth 0 ends the block.
            _ if bracket_depth > 0 => {}
            _ => break,
        }
    }
    false
}

/// RR006: any `unsafe` token.
fn rr006_unsafe(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    for &i in code {
        let t = &ctx.toks[i];
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            push(
                ctx,
                out,
                "RR006",
                t,
                "unsafe is banned workspace-wide; argue the optimization in review first".into(),
            );
        }
    }
}

/// RR007: hard asserts in the hot-loop files.
fn rr007_hot_asserts(ctx: &FileCtx<'_>, code: &[usize], out: &mut Vec<Finding>) {
    if !HOT_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    for (w, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.start) {
            continue;
        }
        if matches!(t.text, "assert" | "assert_eq" | "assert_ne")
            && matches!(code.get(w + 1).map(|&j| &ctx.toks[j]), Some(n) if n.text == "!")
        {
            push(
                ctx,
                out,
                "RR007",
                t,
                format!(
                    "{}! in a paper-critical hot path; use debug_{}! so release scans stay branch-free",
                    t.text, t.text
                ),
            );
        }
    }
}

/// RR008: to-do / fix-me markers in comments need an issue tag.
fn rr008_todo_tags(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in ctx.toks.iter().filter(|t| t.is_comment()) {
        for marker in ["TODO", "FIXME"] {
            let mut from = 0usize;
            while let Some(at) = t.text[from..].find(marker) {
                let abs = from + at;
                from = abs + marker.len();
                // Word boundary on the left (avoid e.g. "TODOS" matching
                // is handled on the right below).
                if abs > 0 {
                    let before = t.text.as_bytes()[abs - 1];
                    if before.is_ascii_alphanumeric() || before == b'_' {
                        continue;
                    }
                }
                let rest = &t.text[abs + marker.len()..];
                let tagged = rest.starts_with('(')
                    && rest[1..]
                        .split_once(')')
                        .is_some_and(|(tag, _)| !tag.trim().is_empty());
                if rest.starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_') {
                    continue; // TODOS, FIXMEs, …: not a marker
                }
                if !tagged {
                    push(
                        ctx,
                        out,
                        "RR008",
                        t,
                        format!("{marker} without a tag; write {marker}(#issue) or {marker}(RR-n) so it can be triaged"),
                    );
                }
            }
        }
    }
}

/// RR009: malformed suppression comments.
fn rr009_bad_suppressions(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for b in &ctx.bad_suppressions {
        out.push(Finding {
            rule: "RR009",
            path: ctx.path.clone(),
            line: b.line,
            message: b.why.clone(),
            snippet: ctx.line_text(b.line).to_string(),
        });
    }
}

// ---------------------------------------------------------------------
// Workspace-level semantic rules (RR010–RR013).
// ---------------------------------------------------------------------

/// Files RR010 guards: the serving stack and the parallel scan — the
/// places where a held guard meets blocking I/O or thread control.
fn rr010_in_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/") || path == "crates/core/src/parallel.rs"
}

/// Methods that block the calling thread (flagged under a live guard).
const BLOCKING_CALLS: &[&str] = &[
    "connect",
    "accept",
    "write_all",
    "read_to_string",
    "read_to_end",
    "read_exact",
    "flush",
    "sleep",
    "join",
    "park",
    "recv",
    "recv_timeout",
];

/// Condvar wait family: blocking, but exempt when waiting *on the live
/// guard itself* (the wait atomically releases that lock).
const WAIT_CALLS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Files whose fns are the numeric result paths RR012 protects.
/// Any fn defined here — or reachable from one — must not iterate a
/// hash container.
const RR012_ROOT_FILES: &[&str] = &[
    "crates/core/src/covariance.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/reconstruct.rs",
    "crates/linalg/src/eigen.rs",
    "crates/linalg/src/jacobi.rs",
    "crates/linalg/src/lanczos.rs",
    "crates/linalg/src/svd.rs",
    "crates/linalg/src/solver.rs",
];

/// Iteration methods whose order is keyed by SipHash.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Runs the semantic rules over the whole workspace at once.
/// `files` pairs each file's [`FileCtx`] with its [`FileIndex`];
/// suppressions apply per-site exactly as for the per-file rules.
pub fn check_workspace(files: &[(FileCtx<'_>, FileIndex)]) -> Vec<Finding> {
    let mut out = Vec::new();
    rr010_guard_across_blocking(files, &mut out);
    rr011_lock_order(files, &mut out);
    let graph_files: Vec<(String, &FileIndex)> = files
        .iter()
        .map(|(c, i)| (c.crate_name.clone(), i))
        .collect();
    let graph = CallGraph::build(&graph_files);
    rr012_hash_iteration(files, &graph, &mut out);
    rr013_panic_propagation(files, &graph, &mut out);
    // Suppressions, uniformly (every semantic rule is waivable — the
    // reason string is the review trail for each exception).
    let ctx_of: BTreeMap<&str, &FileCtx<'_>> =
        files.iter().map(|(c, _)| (c.path.as_str(), c)).collect();
    out.retain(|f| {
        ctx_of
            .get(f.path.as_str())
            .is_none_or(|c| !c.suppressed(f.rule, f.line))
    });
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// RR010: a guard live range containing a blocking call.
fn rr010_guard_across_blocking(files: &[(FileCtx<'_>, FileIndex)], out: &mut Vec<Finding>) {
    for (ctx, idx) in files {
        if !rr010_in_scope(&ctx.path) {
            continue;
        }
        let code = ctx.code_indices();
        for f in &idx.fns {
            if f.is_test {
                continue;
            }
            for g in &f.guards {
                // Code tokens strictly inside the live range.
                for (w, &i) in code.iter().enumerate() {
                    if i <= g.decl_tok || i >= g.end_tok {
                        continue;
                    }
                    let t = &ctx.toks[i];
                    if t.kind != TokKind::Ident {
                        continue;
                    }
                    let nxt = |k: usize| code.get(w + k).map(|&j| ctx.toks[j].text);
                    let prev = w
                        .checked_sub(1)
                        .and_then(|p| code.get(p))
                        .map(|&j| ctx.toks[j].text);
                    let is_call = nxt(1) == Some("(")
                        && matches!(prev, Some(".") | Some("::"));
                    if is_call && BLOCKING_CALLS.contains(&t.text) {
                        push(ctx, out, "RR010", t, format!(
                            "guard `{}` on `{}` (from .{}()) is still live across blocking `.{}()`; drop it first or move the call out of the critical section",
                            g.name, g.key, g.verb.method(), t.text
                        ));
                    } else if is_call && WAIT_CALLS.contains(&t.text) {
                        // `cv.wait(st)` releases st's lock: exempt when
                        // the first argument is the live guard itself.
                        let first_arg_is_guard =
                            nxt(2).is_some_and(|a| a == g.name.as_str());
                        if !first_arg_is_guard {
                            push(ctx, out, "RR010", t, format!(
                                "Condvar::{}() waits on a different lock while guard `{}` on `{}` is live; waiting can hold `{}` indefinitely",
                                t.text, g.name, g.key, g.key
                            ));
                        }
                    } else if t.text == "File"
                        && nxt(1) == Some("::")
                        && matches!(nxt(2), Some("open") | Some("create"))
                        && nxt(3) == Some("(")
                    {
                        push(ctx, out, "RR010", t, format!(
                            "File::{}() under guard `{}` on `{}`; file I/O can block the critical section",
                            nxt(2).unwrap_or(""), g.name, g.key
                        ));
                    }
                }
            }
        }
    }
}

/// RR011: cycles in the workspace lock-order graph.
fn rr011_lock_order(files: &[(FileCtx<'_>, FileIndex)], out: &mut Vec<Finding>) {
    /// One observed "outer taken before inner" nesting.
    struct Edge {
        file: usize,
        line: u32,
        outer_name: String,
        inner_name: String,
    }
    // (outer key, inner key) -> first site observed.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (fi, (_, idx)) in files.iter().enumerate() {
        for f in &idx.fns {
            if f.is_test {
                continue;
            }
            for a in &f.guards {
                for b in &f.guards {
                    let nested = b.decl_tok > a.decl_tok && b.decl_tok < a.end_tok;
                    if !nested || a.key == b.key {
                        continue;
                    }
                    edges
                        .entry((a.key.clone(), b.key.clone()))
                        .or_insert(Edge {
                            file: fi,
                            line: b.line,
                            outer_name: a.name.clone(),
                            inner_name: b.name.clone(),
                        });
                }
            }
        }
    }
    // Adjacency over lock keys.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (u, v) in edges.keys() {
        adj.entry(u.as_str()).or_default().insert(v.as_str());
    }
    // An edge u→v is part of a cycle iff v reaches u.
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for ((u, v), e) in &edges {
        if !reaches(v, u) {
            continue;
        }
        let ctx = &files[e.file].0;
        out.push(Finding {
            rule: "RR011",
            path: ctx.path.clone(),
            line: e.line,
            message: format!(
                "lock-order cycle: `{}` (guard `{}`) is acquired while holding `{}` (guard `{}`) here, but elsewhere `{}` is acquired under `{}`; pick one global order",
                v, e.inner_name, u, e.outer_name, u, v
            ),
            snippet: ctx.line_text(e.line).to_string(),
        });
    }
}

/// RR012: hash-container iteration reachable from the numeric roots.
fn rr012_hash_iteration(
    files: &[(FileCtx<'_>, FileIndex)],
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    let mut roots: Vec<FnId> = Vec::new();
    for (fi, (ctx, idx)) in files.iter().enumerate() {
        if !RR012_ROOT_FILES.contains(&ctx.path.as_str()) {
            continue;
        }
        for (fj, f) in idx.fns.iter().enumerate() {
            if !f.is_test {
                roots.push((fi, fj));
            }
        }
    }
    let reached = graph.reachable(&roots, &|_| false);
    for &(fi, fj) in &reached {
        let (ctx, idx) = &files[fi];
        if ctx.kind != FileKind::Lib {
            continue;
        }
        let f = &idx.fns[fj];
        if f.is_test {
            continue;
        }
        let Some((bs, be)) = f.body else { continue };
        let code: Vec<usize> = (bs..=be.min(ctx.toks.len().saturating_sub(1)))
            .filter(|&i| !ctx.toks[i].is_comment())
            .collect();
        for (w, &i) in code.iter().enumerate() {
            let t = &ctx.toks[i];
            if t.kind != TokKind::Ident || !HASH_ITER_METHODS.contains(&t.text) {
                continue;
            }
            let is_method = w > 0
                && ctx.toks[code[w - 1]].text == "."
                && code.get(w + 1).is_some_and(|&j| ctx.toks[j].text == "(");
            if !is_method {
                continue;
            }
            let recv = receiver_idents(ctx, &code, w - 1);
            if recv.iter().any(|r| idx.hash_names.contains(*r)) {
                let on_root_file = RR012_ROOT_FILES.contains(&ctx.path.as_str());
                push(ctx, out, "RR012", t, format!(
                    "HashMap/HashSet iteration `.{}()` on `{}` in fn `{}`{}; hash order varies run to run and breaks the bit-identity contract — iterate sorted keys or a BTreeMap",
                    t.text,
                    recv.join("."),
                    f.name,
                    if on_root_file {
                        " on the numeric result path".to_string()
                    } else {
                        " (reachable from the numeric result path)".to_string()
                    },
                ));
            }
        }
        // Direct `for x in &m { … }` iteration (no method call).
        for (w, &i) in code.iter().enumerate() {
            let t = &ctx.toks[i];
            if t.kind != TokKind::Ident || t.text != "in" {
                continue;
            }
            // Walk forward: only `&`, `mut`, idents and `.` may appear
            // before the loop body `{`; the last ident is the receiver.
            let mut last_ident: Option<&Tok<'_>> = None;
            let mut k = w + 1;
            let mut simple = true;
            while let Some(&j) = code.get(k) {
                let s = &ctx.toks[j];
                match (s.kind, s.text) {
                    (TokKind::Punct, "{") => break,
                    (TokKind::Punct, "&" | ".") => {}
                    (TokKind::Ident, "mut" | "self") => {}
                    (TokKind::Ident, _) => last_ident = Some(s),
                    _ => {
                        simple = false;
                        break;
                    }
                }
                k += 1;
            }
            if let (true, Some(li)) = (simple, last_ident) {
                if idx.hash_names.contains(li.text) {
                    push(ctx, out, "RR012", li, format!(
                        "direct iteration over hash container `{}` in fn `{}`; hash order varies run to run — collect and sort the keys first",
                        li.text, f.name
                    ));
                }
            }
        }
    }
}

/// Walks backwards from the `.` at code-index `dot_w`, collecting the
/// receiver's identifier chain across call/index hops, e.g.
/// `self.solvers.read().values()` yields `["self", "solvers", "read"]`.
fn receiver_idents<'a>(ctx: &FileCtx<'a>, code: &[usize], dot_w: usize) -> Vec<&'a str> {
    let mut idents: Vec<&'a str> = Vec::new();
    let mut w = dot_w; // points at the `.`
    loop {
        let Some(prev) = w.checked_sub(1) else { break };
        let t = &ctx.toks[code[prev]];
        match (t.kind, t.text) {
            (TokKind::Punct, ")" | "]") => {
                // Skip to the matching opener.
                let (open, close) = if t.text == ")" { ("(", ")") } else { ("[", "]") };
                let mut depth = 1i32;
                let mut q = prev;
                while depth > 0 && q > 0 {
                    q -= 1;
                    let s = &ctx.toks[code[q]];
                    if s.kind == TokKind::Punct {
                        if s.text == close {
                            depth += 1;
                        } else if s.text == open {
                            depth -= 1;
                        }
                    }
                }
                if depth != 0 {
                    break;
                }
                w = q;
            }
            (TokKind::Ident, name) => {
                idents.push(name);
                // Continue only across a `.` chain.
                match prev.checked_sub(1) {
                    Some(pp) if ctx.toks[code[pp]].text == "." => w = pp,
                    _ => break,
                }
            }
            _ => break,
        }
    }
    idents.reverse();
    idents
}

/// RR013: pub lib fns that transitively reach a panic site.
fn rr013_panic_propagation(
    files: &[(FileCtx<'_>, FileIndex)],
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    // A panic site is eligible when RR001 would own it: lib file,
    // non-test fn, and not waived for RR001/RR013 at its line.
    let eligible = |id: FnId| -> bool {
        let (ctx, idx) = &files[id.0];
        if ctx.kind != FileKind::Lib {
            return false;
        }
        let f = &idx.fns[id.1];
        !f.is_test
            && f.panics.iter().any(|p| {
                !ctx.suppressed("RR001", p.line) && !ctx.suppressed("RR013", p.line)
            })
    };
    let barrier = |id: FnId| files[id.0].1.fns[id.1].has_catch_unwind;
    for (fi, (ctx, idx)) in files.iter().enumerate() {
        if ctx.kind != FileKind::Lib {
            continue;
        }
        for (fj, f) in idx.fns.iter().enumerate() {
            if !f.is_pub || f.is_test || f.has_catch_unwind || f.body.is_none() {
                continue;
            }
            let Some(path) = graph.path((fi, fj), &eligible, &barrier) else {
                continue;
            };
            // Depth >= 1 by construction (`path` never returns `from`
            // alone); the entry point is where the caller can act.
            let chain: Vec<String> = path
                .iter()
                .map(|&(a, b)| files[a].1.fns[b].name.clone())
                .collect();
            let Some(&(la, lb)) = path.last() else {
                continue;
            };
            let leaf = &files[la].1.fns[lb];
            let Some(site) = leaf.panics.iter().find(|p| {
                !files[la].0.suppressed("RR001", p.line)
                    && !files[la].0.suppressed("RR013", p.line)
            }) else {
                continue;
            };
            out.push(Finding {
                rule: "RR013",
                path: ctx.path.clone(),
                line: f.line,
                message: format!(
                    "pub fn `{}` can reach a panic site with no catch_unwind in between: {} ({} at {}:{}); return the crate error type or isolate the callee",
                    f.name,
                    chain.join(" -> "),
                    site.what,
                    files[la].0.path,
                    site.line
                ),
                snippet: ctx.line_text(f.line).to_string(),
            });
        }
    }
}

/// Decodes a string-literal token to its value. Returns `None` for byte
/// strings (not names) and for escapes the linter does not model.
pub fn str_lit_value(text: &str) -> Option<String> {
    let t = text;
    if t.starts_with("b\"") || t.starts_with("br") || t.starts_with("b'") {
        return None;
    }
    // Raw strings: r"..." / r#"..."# / cr#"..."#
    if let Some(stripped) = t.strip_prefix('r').or_else(|| t.strip_prefix("cr")) {
        let hashes = stripped.bytes().take_while(|&b| b == b'#').count();
        let inner = stripped.get(hashes..)?;
        let inner = inner.strip_prefix('"')?;
        let inner = inner.get(..inner.len().checked_sub(1 + hashes)?)?;
        return Some(inner.to_string());
    }
    let t = t.strip_prefix('c').unwrap_or(t);
    let inner = t.strip_prefix('"')?.strip_suffix('"')?;
    if !inner.contains('\\') {
        return Some(inner.to_string());
    }
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('\'') => out.push('\''),
            Some('0') => out.push('\0'),
            _ => return None, // \u{…}, \xNN: not plausible metric names
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use std::path::Path;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new(Path::new(path), src);
        check_file(&ctx, Some(&["known_total".to_string()]))
    }

    fn rules_of(fs: &[Finding]) -> Vec<&'static str> {
        fs.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn rr001_flags_unwrap_in_lib_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        let fs = findings("crates/core/src/miner.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR001"]);
        assert_eq!(fs[0].line, 1);
        // Same code in an integration test: clean.
        assert!(findings("crates/core/tests/it.rs", src).is_empty());
        // Binaries are exempt (CLI already routes through run_with_status).
        assert!(findings("crates/cli/src/main.rs", "fn main() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn rr001_flags_macros_but_not_lookalikes() {
        let fs = findings(
            "crates/core/src/lib.rs",
            "fn f() { panic!(\"boom\"); let x = y.unwrap_or(3); }\n",
        );
        assert_eq!(rules_of(&fs), vec!["RR001"]);
        assert!(fs[0].message.contains("panic"));
    }

    #[test]
    fn rr001_ignores_doc_comment_examples() {
        let src = "/// let x = v.unwrap();\n/// panic!();\nfn f() {}\n";
        assert!(findings("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn rr002_flags_float_literal_comparisons() {
        let fs = findings(
            "crates/linalg/src/x.rs",
            "fn f(a: f64) -> bool { a == 0.0 || 1.5 != a || a == -2.0 }\n",
        );
        assert_eq!(rules_of(&fs), vec!["RR002", "RR002", "RR002"]);
    }

    #[test]
    fn rr002_ignores_int_comparison_and_ordering() {
        let src = "fn f(a: usize, x: f64) -> bool { a == 0 && x < 1.0 && x <= 0.5 }\n";
        assert!(findings("crates/linalg/src/x.rs", src).is_empty());
    }

    #[test]
    fn rr002_exempts_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(x: f64) -> bool { x == 0.0 }\n}\n";
        assert!(findings("crates/linalg/src/x.rs", src).is_empty());
    }

    #[test]
    fn rr002_suppressible_with_reason() {
        let src = "fn f(x: f64) -> bool {\n    // rrlint-allow: RR002 canonical exact-zero helper\n    x == 0.0\n}\n";
        assert!(findings("crates/linalg/src/cmp.rs", src).is_empty());
    }

    #[test]
    fn rr003_flags_ambient_sources() {
        let fs = findings(
            "crates/dataset/src/x.rs",
            "fn f() { let t = SystemTime::now(); let r = thread_rng(); let i = Instant::now(); }\n",
        );
        assert_eq!(rules_of(&fs), vec!["RR003", "RR003", "RR003"]);
    }

    #[test]
    fn rr003_instant_allowed_in_obs_and_bench() {
        let src = "fn f() { let i = Instant::now(); }\n";
        assert!(findings("crates/obs/src/span.rs", src).is_empty());
        assert!(findings("crates/bench/src/lib.rs", src).is_empty());
        // The prediction server legitimately measures deadlines/latency.
        assert!(findings("crates/serve/src/queue.rs", src).is_empty());
        // SystemTime stays banned even there.
        let fs = findings("crates/obs/src/span.rs", "fn g() { SystemTime::now(); }\n");
        assert_eq!(rules_of(&fs), vec!["RR003"]);
    }

    #[test]
    fn rr004_checks_literals_against_registry() {
        let src = "fn f() { obs::counter_add(\"known_total\", 1); obs::counter_add(\"rogue_total\", 1); }\n";
        let fs = findings("crates/core/src/miner.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR004"]);
        assert!(fs[0].message.contains("rogue_total"));
    }

    #[test]
    fn rr004_span_and_method_forms() {
        let src = "fn f(reg: &Registry) { let _s = Span::enter(\"rogue_span\"); reg.histogram(\"rogue_hist\", &[1.0]); }\n";
        let fs = findings("crates/core/src/miner.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR004", "RR004"]);
    }

    #[test]
    fn rr004_quantile_and_flight_event_forms() {
        let src = "fn f(reg: &Registry) { obs::observe_quantile(\"rogue_us\", 1.0); \
                   obs::flight_event(\"rogue_event\", 0, 0, 0.0); \
                   reg.quantile(\"rogue_q\"); \
                   obs::flight_event(\"known_total\", 0, 0, 0.0); }\n";
        let fs = findings("crates/core/src/miner.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR004", "RR004", "RR004"]);
        assert!(fs.iter().any(|f| f.message.contains("rogue_event")));
    }

    #[test]
    fn rr004_dynamic_names_and_tests_skipped() {
        let src = "fn f(n: &str) { obs::counter_add(n, 1); }\n#[cfg(test)]\nmod t { fn g() { obs::counter_add(\"ad_hoc\", 1); } }\n";
        assert!(findings("crates/core/src/miner.rs", src).is_empty());
    }

    #[test]
    fn rr005_requires_errors_section() {
        let bad = "/// Does a thing.\npub fn f() -> Result<u32> { Ok(1) }\n";
        let fs = findings("crates/core/src/x.rs", bad);
        assert_eq!(rules_of(&fs), vec!["RR005"]);
        let good = "/// Does a thing.\n///\n/// # Errors\n/// When the thing fails.\npub fn f() -> Result<u32> { Ok(1) }\n";
        assert!(findings("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn rr005_skips_private_and_non_result() {
        let src = "fn f() -> Result<u32> { Ok(1) }\npub(crate) fn g() -> Result<u32> { Ok(1) }\npub fn h() -> u32 { 1 }\n";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn rr005_sees_through_attributes() {
        let good = "/// Doc.\n///\n/// # Errors\n/// Sometimes.\n#[inline]\npub fn f() -> Result<u32> { Ok(1) }\n";
        assert!(findings("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn rr005_result_in_args_is_not_a_return() {
        let src = "/// Doc.\npub fn f(r: Result<u32, ()>) -> u32 { r.unwrap_or(0) }\n";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn rr006_flags_unsafe_everywhere_even_tests() {
        let src = "#[cfg(test)]\nmod t { fn f() { unsafe { std::hint::unreachable_unchecked() } } }\n";
        let fs = findings("crates/core/src/x.rs", src);
        assert!(rules_of(&fs).contains(&"RR006"));
    }

    #[test]
    fn rr007_hot_files_require_debug_assert() {
        let src = "fn f(m: usize) { assert!(m > 0); debug_assert!(m > 0); }\n";
        let fs = findings("crates/core/src/covariance.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR007"]);
        // Outside the hot files the same line is fine.
        assert!(findings("crates/core/src/miner.rs", src).is_empty());
    }

    #[test]
    fn rr008_requires_tags() {
        let src = "// TODO: someday\n// TODO(RR-3): tracked\n// FIXME(#12): tracked too\n/* FIXME later */\nfn f() {}\n";
        let fs = findings("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR008", "RR008"]);
        assert_eq!(fs[0].line, 1);
        assert_eq!(fs[1].line, 4);
    }

    #[test]
    fn rr009_reports_bad_suppressions_and_cannot_be_suppressed() {
        let src = "// rrlint-allow: RR002\nfn f() {}\n";
        let fs = findings("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&fs), vec!["RR009"]);
    }

    #[test]
    fn str_lit_value_decodes() {
        assert_eq!(str_lit_value("\"abc\""), Some("abc".into()));
        assert_eq!(str_lit_value("\"a\\nb\""), Some("a\nb".into()));
        assert_eq!(str_lit_value("r#\"a\"x\"#"), Some("a\"x".into()));
        assert_eq!(str_lit_value("r\"plain\""), Some("plain".into()));
        assert_eq!(str_lit_value("b\"bytes\""), None);
    }

    #[test]
    fn catalogue_is_complete_and_ordered() {
        let ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec![
                "RR001", "RR002", "RR003", "RR004", "RR005", "RR006", "RR007", "RR008", "RR009",
                "RR010", "RR011", "RR012", "RR013",
            ]
        );
        assert!(rule_info("RR004").is_some());
        assert!(rule_info("RR013").is_some());
        assert!(rule_info("RR999").is_none());
    }

    // --- workspace rules ---------------------------------------------

    /// Builds `(FileCtx, FileIndex)` pairs and runs [`check_workspace`].
    fn ws(files: &[(&str, &str)]) -> Vec<Finding> {
        let pairs: Vec<(FileCtx<'_>, crate::index::FileIndex)> = files
            .iter()
            .map(|(p, s)| {
                let ctx = FileCtx::new(std::path::Path::new(p), s);
                let idx = crate::index::FileIndex::build(&ctx);
                (ctx, idx)
            })
            .collect();
        check_workspace(&pairs)
    }

    #[test]
    fn rr010_flags_blocking_call_under_guard() {
        let src = "\
fn handle(&self, sock: &mut TcpStream) {
    let st = self.state.lock().unwrap();
    sock.write_all(b\"x\").ok();
}
";
        let f = ws(&[("crates/serve/src/server.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "RR010");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("write_all"), "{}", f[0].message);
    }

    #[test]
    fn rr010_silent_after_drop_and_out_of_scope() {
        let dropped = "\
fn handle(&self, sock: &mut TcpStream) {
    let st = self.state.lock().unwrap();
    drop(st);
    sock.write_all(b\"x\").ok();
}
";
        assert!(ws(&[("crates/serve/src/server.rs", dropped)]).is_empty());
        // Same code outside serve/parallel is out of RR010's scope.
        let f = ws(&[("crates/cli/src/main.rs", "\
fn handle(&self) {
    let st = self.state.lock().unwrap();
    std::thread::sleep(d);
}
")]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn rr010_condvar_wait_on_own_guard_is_exempt() {
        let own = "\
fn pop(&self) {
    let mut st = self.inner.lock().unwrap();
    st = self.cv.wait(st).unwrap();
}
";
        assert!(ws(&[("crates/serve/src/queue.rs", own)]).is_empty());
        let other = "\
fn pop(&self) {
    let st = self.inner.lock().unwrap();
    let _g = self.cv.wait(other_guard).unwrap();
}
";
        let f = ws(&[("crates/serve/src/queue.rs", other)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("different lock"), "{}", f[0].message);
    }

    #[test]
    fn rr011_flags_lock_order_cycle() {
        let a = "\
impl Pool {
    fn ab(&self) {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        let _ = (&a, &b);
    }
}
";
        let b = "\
impl Pool {
    fn ba(&self) {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        let _ = (&a, &b);
    }
}
";
        let f = ws(&[
            ("crates/serve/src/a.rs", a),
            ("crates/serve/src/b.rs", b),
        ]);
        let rr011: Vec<_> = f.iter().filter(|x| x.rule == "RR011").collect();
        assert_eq!(rr011.len(), 2, "one finding per conflicting edge: {f:?}");
        assert!(rr011[0].message.contains("lock-order cycle"));
    }

    #[test]
    fn rr011_consistent_order_is_silent() {
        let a = "\
impl Pool {
    fn ab(&self) {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        let _ = (&a, &b);
    }
    fn ab2(&self) {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        let _ = (&a, &b);
    }
}
";
        let f = ws(&[("crates/serve/src/a.rs", a)]);
        assert!(f.iter().all(|x| x.rule != "RR011"), "{f:?}");
    }

    #[test]
    fn rr012_flags_hash_iteration_reached_from_root() {
        let root = "\
pub fn covariance_accumulate(chunk: &[f64]) -> f64 {
    helper_sum(chunk)
}
";
        let helper = "\
use std::collections::HashMap;
pub fn helper_sum(chunk: &[f64]) -> f64 {
    let weights: HashMap<usize, f64> = HashMap::new();
    let mut s = 0.0;
    for (_, w) in weights.iter() {
        s += w;
    }
    s
}
";
        let f = ws(&[
            ("crates/core/src/covariance.rs", root),
            ("crates/core/src/weights.rs", helper),
        ]);
        let rr012: Vec<_> = f.iter().filter(|x| x.rule == "RR012").collect();
        assert_eq!(rr012.len(), 1, "{f:?}");
        assert!(rr012[0].path.ends_with("weights.rs"));
        assert!(rr012[0].message.contains("reachable from"), "{}", rr012[0].message);
    }

    #[test]
    fn rr012_direct_for_loop_and_unreachable_fn() {
        let root = "\
use std::collections::HashSet;
pub fn eigensolve(n: usize) -> f64 {
    let seen: HashSet<usize> = HashSet::new();
    let mut s = 0.0;
    for v in &seen {
        s += *v as f64;
    }
    s
}
pub fn unrelated_report(seen: &HashSet<usize>) {
    for v in seen.iter() { println!(\"{v}\"); }
}
";
        let f = ws(&[("crates/linalg/src/eigen.rs", root)]);
        let rr012: Vec<_> = f.iter().filter(|x| x.rule == "RR012").collect();
        // Both fns live in a root file, so both are roots: the direct
        // `for v in &seen` and the `.iter()` call each flag once.
        assert_eq!(rr012.len(), 2, "{f:?}");
        // BTree containers never flag.
        let ok = "\
use std::collections::BTreeMap;
pub fn eigensolve(n: usize) -> f64 {
    let seen: BTreeMap<usize, f64> = BTreeMap::new();
    seen.values().sum()
}
";
        assert!(ws(&[("crates/linalg/src/eigen.rs", ok)]).is_empty());
    }

    #[test]
    fn rr013_reports_pub_entry_not_leaf() {
        let src = "\
pub fn entry(x: Option<u32>) -> u32 {
    inner(x)
}
fn inner(x: Option<u32>) -> u32 {
    deep_leaf(x)
}
fn deep_leaf(x: Option<u32>) -> u32 {
    x.unwrap()
}
";
        let f = ws(&[("crates/core/src/chain.rs", src)]);
        let rr013: Vec<_> = f.iter().filter(|x| x.rule == "RR013").collect();
        assert_eq!(rr013.len(), 1, "{f:?}");
        assert_eq!(rr013[0].line, 1, "reported at the pub entry point");
        assert!(rr013[0].message.contains("entry -> inner -> deep_leaf"), "{}", rr013[0].message);
    }

    #[test]
    fn rr013_catch_unwind_and_suppression_are_barriers() {
        let shielded = "\
pub fn entry(x: Option<u32>) -> u32 {
    std::panic::catch_unwind(|| deep_leaf(x)).unwrap_or(0)
}
fn deep_leaf(x: Option<u32>) -> u32 {
    x.unwrap()
}
";
        let f = ws(&[("crates/core/src/chain.rs", shielded)]);
        assert!(f.iter().all(|x| x.rule != "RR013"), "{f:?}");
        // An RR001 suppression on the leaf site clears RR013 too: the
        // waiver reason covers the whole panic path.
        let waived = "\
pub fn entry(x: Option<u32>) -> u32 {
    deep_leaf(x)
}
fn deep_leaf(x: Option<u32>) -> u32 {
    // rrlint-allow: RR001 validated by caller
    x.unwrap()
}
";
        let f = ws(&[("crates/core/src/chain.rs", waived)]);
        assert!(f.iter().all(|x| x.rule != "RR013"), "{f:?}");
    }

    #[test]
    fn rr013_own_body_panic_is_rr001_territory() {
        // Depth 0 (the pub fn's own unwrap) is RR001's finding, not
        // RR013's — no double report.
        let src = "\
pub fn entry(x: Option<u32>) -> u32 {
    x.unwrap()
}
";
        let f = ws(&[("crates/core/src/chain.rs", src)]);
        assert!(f.iter().all(|x| x.rule != "RR013"), "{f:?}");
    }

    #[test]
    fn workspace_findings_respect_suppressions() {
        let src = "\
fn handle(&self, sock: &mut TcpStream) {
    let st = self.state.lock().unwrap();
    // rrlint-allow: RR010 single-threaded test server
    sock.write_all(b\"x\").ok();
}
";
        assert!(ws(&[("crates/serve/src/server.rs", src)]).is_empty());
    }
}
