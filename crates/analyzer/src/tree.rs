//! Token trees: balanced `()`/`[]`/`{}` delimiter groups over the
//! [`crate::lexer`] token stream.
//!
//! The line-oriented rules (`RR001`–`RR009`) match flat token shapes; the
//! semantic rules (`RR010`–`RR013`) need *structure* — "which block does
//! this `let` live in", "where does this fn body end" — without paying
//! for a real parser. A token tree is the cheapest structure that
//! answers those questions: every token becomes either a [`Tree::Leaf`]
//! or a child of the innermost delimiter [`Tree::Group`] containing it.
//!
//! The parser inherits the lexer's totality contract:
//!
//! * any token stream (including unbalanced garbage) produces a forest
//!   and never panics;
//! * flattening the forest yields the token indices `0..n` in order —
//!   grouping adds structure, never drops, duplicates, or reorders a
//!   token (the round-trip property, proptested in
//!   `tests/rrlint_lexer.rs` and fuzzed in-crate below);
//! * a stray closer (`)` with no `(`) degrades to a plain leaf; an
//!   unterminated opener becomes a [`Tree::Group`] with `close: None`
//!   running to the end of its enclosing scope.
//!
//! Comments stay in the stream as leaves so flattening is exact; the
//! index layer skips them the same way the flat rules do.

use crate::lexer::{Tok, TokKind};

/// The three delimiter families that form groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` … `)`
    Paren,
    /// `[` … `]`
    Bracket,
    /// `{` … `}`
    Brace,
}

impl Delim {
    /// The delimiter opened by this punctuation text, if any.
    pub fn open_of(text: &str) -> Option<Delim> {
        match text {
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            "{" => Some(Delim::Brace),
            _ => None,
        }
    }

    /// The delimiter closed by this punctuation text, if any.
    pub fn close_of(text: &str) -> Option<Delim> {
        match text {
            ")" => Some(Delim::Paren),
            "]" => Some(Delim::Bracket),
            "}" => Some(Delim::Brace),
            _ => None,
        }
    }
}

/// One node of the token forest. Indices refer into the token slice the
/// forest was parsed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// A single non-delimiter token (or a stray closer).
    Leaf(usize),
    /// A delimited group.
    Group {
        /// Token index of the opening delimiter.
        open: usize,
        /// Token index of the closing delimiter; `None` when the opener
        /// was never closed (unbalanced input).
        close: Option<usize>,
        /// Which delimiter family.
        delim: Delim,
        /// Children, in source order.
        children: Vec<Tree>,
    },
}

impl Tree {
    /// Token index range `[first, last]` covered by this node.
    pub fn span(&self) -> (usize, usize) {
        match self {
            Tree::Leaf(i) => (*i, *i),
            Tree::Group {
                open,
                close,
                children,
                ..
            } => {
                let last = close.unwrap_or_else(|| {
                    children.last().map_or(*open, |c| c.span().1)
                });
                (*open, last)
            }
        }
    }
}

/// A parsed file: the top-level sequence of trees.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Forest {
    /// Top-level nodes in source order.
    pub roots: Vec<Tree>,
}

impl Forest {
    /// Flattens the forest back to token indices, in order. For any
    /// input of `n` tokens this is exactly `0..n` — the round-trip
    /// property the proptests pin down.
    pub fn flatten(&self) -> Vec<usize> {
        let mut out = Vec::new();
        fn walk(node: &Tree, out: &mut Vec<usize>) {
            match node {
                Tree::Leaf(i) => out.push(*i),
                Tree::Group {
                    open,
                    close,
                    children,
                    ..
                } => {
                    out.push(*open);
                    for c in children {
                        walk(c, out);
                    }
                    if let Some(c) = close {
                        out.push(*c);
                    }
                }
            }
        }
        for r in &self.roots {
            walk(r, &mut out);
        }
        out
    }
}

/// Parses a token stream into a delimiter forest. Total: never panics,
/// keeps every token, tolerates arbitrary imbalance.
pub fn parse(toks: &[Tok<'_>]) -> Forest {
    // Each stack frame is an open group still accepting children.
    struct Frame {
        open: usize,
        delim: Delim,
        children: Vec<Tree>,
    }
    let mut roots: Vec<Tree> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();

    // Appends a finished node to the innermost open group, or the roots.
    fn sink(stack: &mut [Frame], roots: &mut Vec<Tree>, node: Tree) {
        match stack.last_mut() {
            Some(f) => f.children.push(node),
            None => roots.push(node),
        }
    }

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            sink(&mut stack, &mut roots, Tree::Leaf(i));
            continue;
        }
        if let Some(d) = Delim::open_of(t.text) {
            stack.push(Frame {
                open: i,
                delim: d,
                children: Vec::new(),
            });
        } else if let Some(d) = Delim::close_of(t.text) {
            // Close the nearest matching opener; anything opened above
            // it was never closed and collapses into `close: None`
            // groups (e.g. `( [ )` parses as paren[ bracket… ]).
            match stack.iter().rposition(|f| f.delim == d) {
                Some(at) => {
                    // Frames above the match were never closed; fold
                    // them innermost-first into `close: None` groups,
                    // each a child of the frame below it.
                    let mut above: Vec<Frame> = stack.drain(at..).collect();
                    let mut matched = above.remove(0);
                    while let Some(f) = above.pop() {
                        let orphan = Tree::Group {
                            open: f.open,
                            close: None,
                            delim: f.delim,
                            children: f.children,
                        };
                        match above.last_mut() {
                            Some(parent) => parent.children.push(orphan),
                            None => matched.children.push(orphan),
                        }
                    }
                    let g = Tree::Group {
                        open: matched.open,
                        close: Some(i),
                        delim: matched.delim,
                        children: matched.children,
                    };
                    sink(&mut stack, &mut roots, g);
                }
                // Stray closer with no opener anywhere below: a leaf.
                None => sink(&mut stack, &mut roots, Tree::Leaf(i)),
            }
        } else {
            sink(&mut stack, &mut roots, Tree::Leaf(i));
        }
    }
    // Unterminated openers at end of input.
    while let Some(f) = stack.pop() {
        let g = Tree::Group {
            open: f.open,
            close: None,
            delim: f.delim,
            children: f.children,
        };
        sink(&mut stack, &mut roots, g);
    }
    Forest { roots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn forest(src: &str) -> (Vec<crate::lexer::Tok<'_>>, Forest) {
        let toks = tokenize(src);
        let f = parse(&toks);
        (toks, f)
    }

    /// Round-trip and balance checks that every test input must satisfy.
    fn well_formed(src: &str) {
        let toks = tokenize(src);
        let f = parse(&toks);
        let flat = f.flatten();
        assert_eq!(
            flat,
            (0..toks.len()).collect::<Vec<_>>(),
            "flatten must be the identity on {src:?}"
        );
        // Every closed group's delimiters must actually match.
        fn check(node: &Tree, toks: &[crate::lexer::Tok<'_>]) {
            if let Tree::Group {
                open,
                close,
                delim,
                children,
            } = node
            {
                assert_eq!(Delim::open_of(toks[*open].text), Some(*delim));
                if let Some(c) = close {
                    assert_eq!(Delim::close_of(toks[*c].text), Some(*delim));
                }
                for ch in children {
                    check(ch, toks);
                }
            }
        }
        for r in &f.roots {
            check(r, &toks);
        }
    }

    #[test]
    fn balanced_nesting_groups() {
        let (toks, f) = forest("fn f(a: u32) { g(a, [1, 2]); }");
        well_formed("fn f(a: u32) { g(a, [1, 2]); }");
        // Top level: fn, f, (…), {…}
        assert_eq!(f.roots.len(), 4);
        match &f.roots[3] {
            Tree::Group { delim, children, close, .. } => {
                assert_eq!(*delim, Delim::Brace);
                assert!(close.is_some());
                // g ( … ) ; — the call's args are one nested group.
                assert!(children.iter().any(|c| matches!(
                    c,
                    Tree::Group { delim: Delim::Paren, .. }
                )));
            }
            other => panic!("expected brace group, got {other:?} ({toks:?})"),
        }
    }

    #[test]
    fn stray_closer_is_a_leaf() {
        let (_, f) = forest("a ) b");
        well_formed("a ) b");
        assert_eq!(f.roots.len(), 3);
        assert!(f.roots.iter().all(|r| matches!(r, Tree::Leaf(_))));
    }

    #[test]
    fn unterminated_opener_runs_to_eof() {
        let (_, f) = forest("f( a, b");
        well_formed("f( a, b");
        let Some(Tree::Group { close, children, .. }) = f.roots.last() else {
            panic!("expected trailing group");
        };
        assert_eq!(*close, None);
        assert_eq!(children.len(), 3); // a , b
    }

    #[test]
    fn mismatched_nesting_collapses_inner() {
        // `( [ )` — the bracket never closes; the paren does.
        let (toks, f) = forest("( [ )");
        well_formed("( [ )");
        assert_eq!(f.roots.len(), 1);
        let Tree::Group { delim, close, children, .. } = &f.roots[0] else {
            panic!("expected group");
        };
        assert_eq!(*delim, Delim::Paren);
        assert_eq!(toks[close.unwrap()].text, ")");
        assert!(matches!(
            children[0],
            Tree::Group { delim: Delim::Bracket, close: None, .. }
        ));
    }

    #[test]
    fn strings_and_comments_do_not_open_groups() {
        well_formed("let s = \"{ [ (\"; // } ) ]\n/* { */ f();");
        let (_, f) = forest("let s = \"{ [ (\"; /* ( */ f();");
        // No group opened by delimiter bytes inside literals/comments:
        // only the call parens group.
        let groups: usize = f
            .roots
            .iter()
            .filter(|r| matches!(r, Tree::Group { .. }))
            .count();
        assert_eq!(groups, 1);
    }

    #[test]
    fn spans_cover_groups() {
        let (toks, f) = forest("f(a, b) g");
        let Tree::Group { .. } = &f.roots[1] else {
            panic!("expected group")
        };
        let (s, e) = f.roots[1].span();
        assert_eq!(toks[s].text, "(");
        assert_eq!(toks[e].text, ")");
    }

    /// Seeded fuzz: random delimiter soup must round-trip and never
    /// panic. Mirrors the proptest in `tests/rrlint_lexer.rs` so the
    /// property is also exercised where proptest is unavailable.
    #[test]
    fn fuzz_round_trips_on_delimiter_soup() {
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        const PIECES: &[&str] = &[
            "(", ")", "[", "]", "{", "}", "ident", "1.0", "\"s\"", ";", ",",
            ".", "::", "let", "// c\n", "/* b */", "'a", "'x'", "r#\"raw\"#",
            "==", "->", "#", "!",
        ];
        for _ in 0..500 {
            let len = (next() % 40) as usize;
            let mut src = String::new();
            for _ in 0..len {
                src.push_str(PIECES[(next() % PIECES.len() as u64) as usize]);
                src.push(' ');
            }
            well_formed(&src);
        }
    }
}
