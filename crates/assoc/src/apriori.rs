//! The Apriori algorithm for Boolean association rules
//! (Agrawal & Srikant, VLDB'94 — the paper's reference \[4\]).
//!
//! Level-wise search: frequent `k`-itemsets are joined into `(k+1)`-
//! candidates, pruned by the downward-closure property, and counted with
//! a pass over the transactions — the multi-pass behaviour the Ratio
//! Rules paper contrasts with its single-pass mining. Rules
//! `antecedent => consequent` are generated from each frequent itemset
//! with the usual support/confidence thresholds.

use crate::transactions::Item;
use crate::{AssocError, Result};
use std::collections::{HashMap, HashSet};

/// A frequent itemset with its support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// Sorted item ids.
    pub items: Vec<Item>,
    /// Number of transactions containing all the items.
    pub count: usize,
}

/// A Boolean association rule `antecedent => consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Sorted antecedent items.
    pub antecedent: Vec<Item>,
    /// Sorted consequent items (disjoint from the antecedent).
    pub consequent: Vec<Item>,
    /// Fraction of transactions containing antecedent and consequent.
    pub support: f64,
    /// `support(A u C) / support(A)`.
    pub confidence: f64,
}

/// Configurable Apriori miner.
#[derive(Debug, Clone, Copy)]
pub struct Apriori {
    /// Minimum support as a fraction of transactions, in `(0, 1]`.
    pub min_support: f64,
    /// Minimum rule confidence, in `(0, 1]`.
    pub min_confidence: f64,
    /// Upper bound on itemset size (guards pathological inputs).
    pub max_len: usize,
}

impl Default for Apriori {
    fn default() -> Self {
        Apriori {
            min_support: 0.1,
            min_confidence: 0.5,
            max_len: 5,
        }
    }
}

impl Apriori {
    /// Creates a miner with the given thresholds.
    ///
    /// # Errors
    /// Rejects a `min_support` or `min_confidence` outside `(0, 1]`.
    pub fn new(min_support: f64, min_confidence: f64) -> Result<Self> {
        if !(0.0 < min_support && min_support <= 1.0) {
            return Err(AssocError::Invalid(format!(
                "min_support must be in (0, 1], got {min_support}"
            )));
        }
        if !(0.0 < min_confidence && min_confidence <= 1.0) {
            return Err(AssocError::Invalid(format!(
                "min_confidence must be in (0, 1], got {min_confidence}"
            )));
        }
        Ok(Apriori {
            min_support,
            min_confidence,
            ..Apriori::default()
        })
    }

    /// Number of passes over the transactions the last
    /// [`Apriori::frequent_itemsets`] call would need — one per level.
    /// Exposed to make the single-pass vs multi-pass comparison explicit
    /// in the benchmarks.
    pub fn passes_needed(itemsets: &[FrequentItemset]) -> usize {
        itemsets.iter().map(|s| s.items.len()).max().unwrap_or(0)
    }

    /// Mines all frequent itemsets level by level.
    ///
    /// # Errors
    /// Fails on an empty transaction set — there is no support to count.
    pub fn frequent_itemsets(&self, transactions: &[Vec<Item>]) -> Result<Vec<FrequentItemset>> {
        if transactions.is_empty() {
            return Err(AssocError::EmptyInput);
        }
        let n = transactions.len() as f64;
        let min_count = (self.min_support * n).ceil() as usize;
        // Normalize transactions: sorted, deduped.
        let txns: Vec<Vec<Item>> = transactions
            .iter()
            .map(|t| {
                let mut t = t.clone();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();

        let mut all = Vec::new();

        // L1.
        let mut counts: HashMap<Item, usize> = HashMap::new();
        for t in &txns {
            for &item in t {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        let mut current: Vec<FrequentItemset> = counts
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .map(|(item, count)| FrequentItemset {
                items: vec![item],
                count,
            })
            .collect();
        current.sort_by(|a, b| a.items.cmp(&b.items));

        let mut level = 1usize;
        loop {
            if current.is_empty() {
                break;
            }
            all.extend(current.iter().cloned());
            if level >= self.max_len {
                break;
            }
            // Candidate generation: join itemsets sharing a (k-1)-prefix.
            let frequent_keys: HashSet<&[Item]> =
                current.iter().map(|s| s.items.as_slice()).collect();
            let mut candidates: Vec<Vec<Item>> = Vec::new();
            for i in 0..current.len() {
                for j in (i + 1)..current.len() {
                    let a = &current[i].items;
                    let b = &current[j].items;
                    if a[..level - 1] != b[..level - 1] {
                        break; // sorted order: no further matches for i
                    }
                    let mut cand = a.clone();
                    cand.push(b[level - 1]);
                    // Downward-closure prune: every (k)-subset must be
                    // frequent.
                    let mut ok = true;
                    for drop in 0..cand.len() {
                        let mut sub = cand.clone();
                        sub.remove(drop);
                        if !frequent_keys.contains(sub.as_slice()) {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        candidates.push(cand);
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            // Counting pass.
            let mut counts: HashMap<&[Item], usize> = HashMap::new();
            for t in &txns {
                for cand in &candidates {
                    if is_subset(cand, t) {
                        *counts.entry(cand.as_slice()).or_insert(0) += 1;
                    }
                }
            }
            current = candidates
                .iter()
                .filter_map(|cand| {
                    let c = counts.get(cand.as_slice()).copied().unwrap_or(0);
                    (c >= min_count).then(|| FrequentItemset {
                        items: cand.clone(),
                        count: c,
                    })
                })
                .collect();
            current.sort_by(|a, b| a.items.cmp(&b.items));
            level += 1;
        }
        Ok(all)
    }

    /// Generates rules from frequent itemsets.
    ///
    /// # Errors
    /// Fails when `n_transactions` is zero (confidence is undefined).
    pub fn rules(
        &self,
        itemsets: &[FrequentItemset],
        n_transactions: usize,
    ) -> Result<Vec<AssociationRule>> {
        if n_transactions == 0 {
            return Err(AssocError::EmptyInput);
        }
        let support_of: HashMap<&[Item], usize> = itemsets
            .iter()
            .map(|s| (s.items.as_slice(), s.count))
            .collect();
        let n = n_transactions as f64;
        let mut out = Vec::new();
        for set in itemsets.iter().filter(|s| s.items.len() >= 2) {
            // All non-trivial antecedent subsets (bitmask enumeration).
            let len = set.items.len();
            for mask in 1..(1u32 << len) - 1 {
                let antecedent: Vec<Item> = (0..len)
                    .filter(|&b| mask & (1 << b) != 0)
                    .map(|b| set.items[b])
                    .collect();
                let consequent: Vec<Item> = (0..len)
                    .filter(|&b| mask & (1 << b) == 0)
                    .map(|b| set.items[b])
                    .collect();
                let Some(&ant_count) = support_of.get(antecedent.as_slice()) else {
                    continue;
                };
                let confidence = set.count as f64 / ant_count as f64;
                if confidence >= self.min_confidence {
                    out.push(AssociationRule {
                        antecedent,
                        consequent,
                        support: set.count as f64 / n,
                        confidence,
                    });
                }
            }
        }
        out.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.support.partial_cmp(&a.support).unwrap_or(std::cmp::Ordering::Equal))
        });
        Ok(out)
    }

    /// End-to-end: frequent itemsets, then rules.
    ///
    /// # Errors
    /// Fails on an empty transaction set (see
    /// [`Apriori::frequent_itemsets`] and [`Apriori::rules`]).
    pub fn mine(&self, transactions: &[Vec<Item>]) -> Result<Vec<AssociationRule>> {
        let itemsets = self.frequent_itemsets(transactions)?;
        self.rules(&itemsets, transactions.len())
    }
}

/// True when sorted `needle` is a subset of sorted `haystack`.
fn is_subset(needle: &[Item], haystack: &[Item]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic market-basket example: {bread=0, milk=1, butter=2}.
    fn txns() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
            vec![0],
            vec![1],
        ]
    }

    #[test]
    fn frequent_itemsets_counts_are_exact() {
        let ap = Apriori::new(0.25, 0.5).unwrap(); // min count = 2
        let sets = ap.frequent_itemsets(&txns()).unwrap();
        let find = |items: &[Item]| sets.iter().find(|s| s.items == items).map(|s| s.count);
        assert_eq!(find(&[0]), Some(6));
        assert_eq!(find(&[1]), Some(6));
        assert_eq!(find(&[2]), Some(5));
        assert_eq!(find(&[0, 1]), Some(4));
        assert_eq!(find(&[0, 2]), Some(4));
        assert_eq!(find(&[1, 2]), Some(4));
        assert_eq!(find(&[0, 1, 2]), Some(3));
    }

    #[test]
    fn min_support_prunes() {
        // min support 0.6 => count >= 5: only singletons {0}, {1}, {2}.
        let ap = Apriori::new(0.6, 0.5).unwrap();
        let sets = ap.frequent_itemsets(&txns()).unwrap();
        assert!(sets.iter().all(|s| s.items.len() == 1));
        assert_eq!(sets.len(), 3);
    }

    #[test]
    fn bread_milk_implies_butter() {
        // The paper's flagship example: {bread, milk} => butter with
        // confidence support({0,1,2}) / support({0,1}) = 3/4.
        let ap = Apriori::new(0.25, 0.7).unwrap();
        let rules = ap.mine(&txns()).unwrap();
        let rule = rules
            .iter()
            .find(|r| r.antecedent == [0, 1] && r.consequent == [2])
            .expect("rule {bread, milk} => butter not found");
        assert!((rule.confidence - 0.75).abs() < 1e-12);
        assert!((rule.support - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_threshold_filters_rules() {
        let ap = Apriori::new(0.25, 0.99).unwrap();
        let rules = ap.mine(&txns()).unwrap();
        assert!(rules.iter().all(|r| r.confidence >= 0.99));
        // {bread, milk} => butter at 0.75 must be gone.
        assert!(!rules
            .iter()
            .any(|r| r.antecedent == [0, 1] && r.consequent == [2]));
    }

    #[test]
    fn rules_sorted_by_confidence() {
        let ap = Apriori::new(0.2, 0.3).unwrap();
        let rules = ap.mine(&txns()).unwrap();
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn multi_pass_structure_is_visible() {
        let ap = Apriori::new(0.25, 0.5).unwrap();
        let sets = ap.frequent_itemsets(&txns()).unwrap();
        // Largest frequent itemset has 3 items -> 3 counting passes,
        // vs Ratio Rules' single pass.
        assert_eq!(Apriori::passes_needed(&sets), 3);
    }

    #[test]
    fn duplicate_items_in_transaction_counted_once() {
        let t = vec![vec![0, 0, 1], vec![0, 1, 1], vec![0, 1]];
        let ap = Apriori::new(0.9, 0.5).unwrap();
        let sets = ap.frequent_itemsets(&t).unwrap();
        let pair = sets.iter().find(|s| s.items == [0, 1]).unwrap();
        assert_eq!(pair.count, 3);
    }

    #[test]
    fn validation() {
        assert!(Apriori::new(0.0, 0.5).is_err());
        assert!(Apriori::new(1.5, 0.5).is_err());
        assert!(Apriori::new(0.5, 0.0).is_err());
        let ap = Apriori::default();
        assert!(ap.frequent_itemsets(&[]).is_err());
        assert!(ap.rules(&[], 0).is_err());
    }

    #[test]
    fn is_subset_helper() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[0]));
    }
}
