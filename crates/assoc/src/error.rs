//! Error type for the association-rule crate.

use std::fmt;

/// Errors from mining or applying association rules.
#[derive(Debug, Clone, PartialEq)]
pub enum AssocError {
    /// Invalid mining parameter (support/confidence out of range, ...).
    Invalid(String),
    /// The input matrix is empty.
    EmptyInput,
}

impl fmt::Display for AssocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssocError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
            AssocError::EmptyInput => write!(f, "input matrix is empty"),
        }
    }
}

impl std::error::Error for AssocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(AssocError::Invalid("support".into())
            .to_string()
            .contains("support"));
        assert!(AssocError::EmptyInput.to_string().contains("empty"));
    }
}
