//! Association-rule baselines for the Ratio Rules comparison
//! (paper Sec. 2 and 6.3).
//!
//! The paper positions Ratio Rules against two existing paradigms:
//!
//! * **Boolean association rules** (Agrawal et al., SIGMOD'93):
//!   `{bread, milk} => butter (90%)`. Implemented by [`apriori`] over the
//!   binarized matrix — the paper's point being that binarization
//!   "tends to lose valuable information".
//! * **Quantitative association rules** (Srikant & Agrawal, SIGMOD'96):
//!   `bread: [3-5] and milk: [1-2] => butter: [1.5-2]`. Implemented by
//!   [`quantitative`] via attribute partitioning into intervals, then
//!   Boolean mining over the interval items.
//!
//! [`predict`] gives quantitative rules their best shot at the hole-filling
//! task and demonstrates the paper's Fig. 12 claim: outside the mined
//! bounding rectangles, *no rule fires* and they cannot extrapolate,
//! whereas Ratio Rules can. [`measures`] supplies the support/confidence
//! framework plus the chi-square and lift interestingness criteria cited
//! as related work.
//!
//! # Example
//!
//! ```
//! use assoc::apriori::Apriori;
//!
//! // {bread = 0, milk = 1} => {butter = 2} with confidence 3/4.
//! let txns = vec![
//!     vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 2], vec![0, 1],
//!     vec![0, 2], vec![1, 2], vec![0], vec![1],
//! ];
//! let rules = Apriori::new(0.25, 0.7)?.mine(&txns)?;
//! let r = rules.iter().find(|r| r.antecedent == [0, 1]).unwrap();
//! assert_eq!(r.consequent, [2]);
//! assert!((r.confidence - 0.75).abs() < 1e-12);
//! # Ok::<(), assoc::AssocError>(())
//! ```

#![warn(missing_docs)]

pub mod apriori;
pub mod error;
pub mod measures;
pub mod predict;
pub mod quantitative;
pub mod transactions;

pub use error::AssocError;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AssocError>;
