//! Interestingness measures for rules.
//!
//! Support and confidence are the classic framework (paper ref. \[2\]); the
//! paper's related-work section also cites the chi-square test (Brin,
//! Motwani & Silverstein, SIGMOD'97, ref. \[7\]) and probability-based
//! criteria — lift is the standard representative. These are used by the
//! baselines and the qualitative-comparison harness.

use linalg::cmp::exact_zero;
use crate::{AssocError, Result};

/// 2x2 contingency counts for a rule `A => C` over `n` transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contingency {
    /// Transactions with A and C.
    pub both: usize,
    /// Transactions with A, without C.
    pub a_only: usize,
    /// Transactions with C, without A.
    pub c_only: usize,
    /// Transactions with neither.
    pub neither: usize,
}

impl Contingency {
    /// Total transactions.
    pub fn n(&self) -> usize {
        self.both + self.a_only + self.c_only + self.neither
    }

    /// Support of the rule: `P(A and C)`.
    pub fn support(&self) -> f64 {
        self.both as f64 / self.n().max(1) as f64
    }

    /// Confidence: `P(C | A)`.
    ///
    /// # Errors
    /// Fails when the antecedent never occurs (`P(C | A)` is undefined).
    pub fn confidence(&self) -> Result<f64> {
        let a = self.both + self.a_only;
        if a == 0 {
            return Err(AssocError::Invalid("antecedent never occurs".into()));
        }
        Ok(self.both as f64 / a as f64)
    }

    /// Lift: `P(A and C) / (P(A) P(C))`; 1.0 means independence.
    ///
    /// # Errors
    /// Fails when either marginal is zero (lift is undefined).
    pub fn lift(&self) -> Result<f64> {
        let n = self.n() as f64;
        let a = (self.both + self.a_only) as f64;
        let c = (self.both + self.c_only) as f64;
        if exact_zero(a) || exact_zero(c) {
            return Err(AssocError::Invalid("degenerate marginals".into()));
        }
        Ok((self.both as f64 * n) / (a * c))
    }

    /// Pearson chi-square statistic of the 2x2 table (1 degree of
    /// freedom; > 3.84 is significant at the 5% level).
    ///
    /// # Errors
    /// Fails on an empty contingency table.
    pub fn chi_square(&self) -> Result<f64> {
        let n = self.n() as f64;
        if exact_zero(n) {
            return Err(AssocError::EmptyInput);
        }
        let a = (self.both + self.a_only) as f64; // P(A) marginal count
        let c = (self.both + self.c_only) as f64; // P(C) marginal count
        let not_a = n - a;
        let not_c = n - c;
        if exact_zero(a) || exact_zero(c) || exact_zero(not_a) || exact_zero(not_c) {
            return Err(AssocError::Invalid("degenerate marginals".into()));
        }
        let observed = [
            (self.both as f64, a * c / n),
            (self.a_only as f64, a * not_c / n),
            (self.c_only as f64, not_a * c / n),
            (self.neither as f64, not_a * not_c / n),
        ];
        Ok(observed.iter().map(|(o, e)| (o - e) * (o - e) / e).sum())
    }
}

/// A rule scored by the alternative interestingness criteria of the
/// paper's related work (chi-square per Brin et al. \[7\], lift as the
/// probability-based representative of \[21\]).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredRule {
    /// The underlying rule.
    pub rule: crate::apriori::AssociationRule,
    /// Lift (1.0 = independence).
    pub lift: f64,
    /// Pearson chi-square statistic (1 dof; > 3.84 significant at 5%).
    pub chi_square: f64,
}

/// Scores mined rules against the transactions, dropping rules whose
/// contingency table is degenerate. Sorted by descending chi-square.
pub fn score_rules(
    rules: &[crate::apriori::AssociationRule],
    transactions: &[Vec<usize>],
) -> Vec<ScoredRule> {
    let mut out: Vec<ScoredRule> = rules
        .iter()
        .filter_map(|r| {
            let table = contingency(transactions, &r.antecedent, &r.consequent);
            Some(ScoredRule {
                rule: r.clone(),
                lift: table.lift().ok()?,
                chi_square: table.chi_square().ok()?,
            })
        })
        .collect();
    out.sort_by(|a, b| b.chi_square.partial_cmp(&a.chi_square).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// Keeps only rules that pass the chi-square significance threshold
/// (Brin et al.'s criterion; 3.84 = 5% level for one degree of freedom)
/// *and* have lift above 1 (positive association, not just co-frequency).
pub fn significant_rules(scored: &[ScoredRule], chi_square_threshold: f64) -> Vec<&ScoredRule> {
    scored
        .iter()
        .filter(|s| s.chi_square >= chi_square_threshold && s.lift > 1.0)
        .collect()
}

/// Builds the contingency table for item sets `a` and `c` over
/// transactions (each transaction sorted or not; membership is by
/// containment of *all* items).
pub fn contingency(transactions: &[Vec<usize>], a: &[usize], c: &[usize]) -> Contingency {
    let mut t = Contingency {
        both: 0,
        a_only: 0,
        c_only: 0,
        neither: 0,
    };
    for txn in transactions {
        let has = |items: &[usize]| items.iter().all(|i| txn.contains(i));
        match (has(a), has(c)) {
            (true, true) => t.both += 1,
            (true, false) => t.a_only += 1,
            (false, true) => t.c_only += 1,
            (false, false) => t.neither += 1,
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_confidence_lift_on_known_table() {
        // 100 transactions: 40 both, 10 a-only, 20 c-only, 30 neither.
        let t = Contingency {
            both: 40,
            a_only: 10,
            c_only: 20,
            neither: 30,
        };
        assert_eq!(t.n(), 100);
        assert!((t.support() - 0.4).abs() < 1e-15);
        assert!((t.confidence().unwrap() - 0.8).abs() < 1e-15);
        // lift = 0.4 / (0.5 * 0.6) = 1.333...
        assert!((t.lift().unwrap() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn independence_has_unit_lift_and_zero_chi2() {
        // P(A) = 0.5, P(C) = 0.5, independent.
        let t = Contingency {
            both: 25,
            a_only: 25,
            c_only: 25,
            neither: 25,
        };
        assert!((t.lift().unwrap() - 1.0).abs() < 1e-15);
        assert!(t.chi_square().unwrap() < 1e-12);
    }

    #[test]
    fn perfect_association_has_large_chi2() {
        let t = Contingency {
            both: 50,
            a_only: 0,
            c_only: 0,
            neither: 50,
        };
        // Perfect dependence on a 2x2 with balanced marginals: chi2 = n.
        assert!((t.chi_square().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_tables_error() {
        let t = Contingency {
            both: 0,
            a_only: 0,
            c_only: 5,
            neither: 5,
        };
        assert!(t.confidence().is_err());
        assert!(t.lift().is_err());
        assert!(t.chi_square().is_err());
        let empty = Contingency {
            both: 0,
            a_only: 0,
            c_only: 0,
            neither: 0,
        };
        assert!(empty.chi_square().is_err());
    }

    #[test]
    fn scoring_separates_real_from_spurious_rules() {
        use crate::apriori::Apriori;
        // Items 0 and 1 genuinely co-occur; item 2 appears everywhere, so
        // any rule into {2} has confidence 1.0 but lift 1.0 (no
        // information) — the support/confidence framework keeps it, the
        // chi-square/lift filter kills it.
        let txns: Vec<Vec<usize>> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2]
                } else {
                    vec![3, 2]
                }
            })
            .collect();
        let rules = Apriori::new(0.2, 0.9).unwrap().mine(&txns).unwrap();
        let into_2: Vec<_> = rules
            .iter()
            .filter(|r| r.consequent == [2] && r.antecedent == [0])
            .collect();
        assert!(
            !into_2.is_empty(),
            "support/confidence keeps the spurious rule"
        );

        let scored = score_rules(&rules, &txns);
        let significant = significant_rules(&scored, 3.84);
        // {0} => {1} survives (perfect association)...
        assert!(significant
            .iter()
            .any(|s| s.rule.antecedent == [0] && s.rule.consequent == [1]));
        // ...but {0} => {2} does not (lift exactly 1).
        assert!(!significant
            .iter()
            .any(|s| s.rule.antecedent == [0] && s.rule.consequent == [2]));
        // Scored list is sorted by chi-square.
        for w in scored.windows(2) {
            assert!(w[0].chi_square >= w[1].chi_square);
        }
    }

    #[test]
    fn contingency_from_transactions() {
        let txns = vec![vec![0, 1], vec![0, 1], vec![0], vec![1], vec![2]];
        let t = contingency(&txns, &[0], &[1]);
        assert_eq!(
            t,
            Contingency {
                both: 2,
                a_only: 1,
                c_only: 1,
                neither: 1
            }
        );
    }
}
