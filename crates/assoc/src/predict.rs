//! Best-effort prediction from quantitative rules — the paper's Fig. 12
//! argument, made executable.
//!
//! The Ratio Rules paper argues that quantitative association rules
//! cannot estimate hidden values outside the mined bounding rectangles:
//! "Quantitative association rules have no rule that can fire because the
//! vertical line of feasible solutions intersects none of the bounding
//! rectangles. Thus they are unable to make a prediction." This module
//! implements the most charitable prediction strategy available to
//! interval rules — find rules whose antecedents are satisfied by the
//! known values and whose consequents constrain the hole, then answer the
//! (confidence-weighted) midpoint — and reports [`PredictOutcome::NoRuleFires`]
//! when, as in Fig. 12, nothing applies.

use crate::quantitative::QuantitativeModel;
use crate::{AssocError, Result};

/// Outcome of a quantitative-rule prediction attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictOutcome {
    /// Some rule(s) fired; the estimate is their confidence-weighted
    /// consequent midpoint.
    Predicted {
        /// The estimate for the hole.
        value: f64,
        /// Number of rules that contributed.
        rules_fired: usize,
    },
    /// No rule's antecedent matched the known values with a consequent on
    /// the target attribute — the Fig. 12 failure mode.
    NoRuleFires,
}

/// Attempts to predict attribute `target` of a row with known values
/// (`None` marks unknown attributes, including `target` itself).
///
/// # Errors
/// Fails when `target` is out of range for `row`, or when `row[target]`
/// is already known (not a hole).
pub fn predict_hole(
    model: &QuantitativeModel,
    row: &[Option<f64>],
    target: usize,
) -> Result<PredictOutcome> {
    if target >= row.len() {
        return Err(AssocError::Invalid(format!(
            "target attribute {target} out of range ({} attributes)",
            row.len()
        )));
    }
    if row[target].is_some() {
        return Err(AssocError::Invalid(format!(
            "target attribute {target} is not a hole"
        )));
    }

    let mut weighted = 0.0_f64;
    let mut weight = 0.0_f64;
    let mut fired = 0usize;
    for rule in &model.rules {
        // The consequent must constrain the target attribute.
        let Some(target_range) = rule.consequent.iter().find(|r| r.attribute == target) else {
            continue;
        };
        // Every antecedent range must be satisfied by a *known* value.
        let applicable = rule.antecedent.iter().all(|r| {
            row.get(r.attribute)
                .copied()
                .flatten()
                .is_some_and(|v| r.contains(v))
        });
        if !applicable {
            continue;
        }
        fired += 1;
        weighted += rule.confidence * target_range.midpoint();
        weight += rule.confidence;
    }
    if fired == 0 || linalg::cmp::exact_zero(weight) {
        return Ok(PredictOutcome::NoRuleFires);
    }
    Ok(PredictOutcome::Predicted {
        value: weighted / weight,
        rules_fired: fired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantitative::QuantitativeMiner;
    use linalg::Matrix;

    /// Bread in [1, 8], butter ~ 0.72 * bread: the Fig. 12 setting.
    fn fig12_data() -> Matrix {
        Matrix::from_fn(80, 2, |i, j| {
            let bread = 1.0 + 7.0 * ((i % 40) as f64) / 39.0;
            if j == 0 {
                bread
            } else {
                0.7176 * bread
            }
        })
    }

    fn model() -> QuantitativeModel {
        QuantitativeMiner {
            intervals: 4,
            min_support: 0.05,
            min_confidence: 0.5,
        }
        .mine(&fig12_data())
        .unwrap()
    }

    #[test]
    fn interpolation_inside_the_data_range_works() {
        let m = model();
        // bread = 4.0 sits inside the mined rectangles.
        let out = predict_hole(&m, &[Some(4.0), None], 1).unwrap();
        match out {
            PredictOutcome::Predicted { value, rules_fired } => {
                assert!(rules_fired >= 1);
                // True butter ~ 2.87; interval midpoints are coarse, so
                // allow generous slack — the point is that it *fires*.
                assert!((value - 2.87).abs() < 1.5, "estimate {value}");
            }
            PredictOutcome::NoRuleFires => panic!("expected a firing rule"),
        }
    }

    #[test]
    fn fig12_extrapolation_fails_to_fire() {
        let m = model();
        // bread = 8.5 exceeds every mined antecedent's upper interval...
        // except the top interval is unbounded above in equi-depth
        // partitioning, so push far outside instead: the top interval
        // *is* [hi, inf) and will fire. The honest Fig. 12 reading is a
        // *bounded* partitioning; rebuild the model with bounded top
        // rectangles by filtering unbounded antecedents.
        let mut bounded = m.clone();
        bounded.rules.retain(|r| {
            r.antecedent
                .iter()
                .all(|ar| ar.lo.is_finite() && ar.hi.is_finite())
                && r.consequent
                    .iter()
                    .all(|cr| cr.lo.is_finite() && cr.hi.is_finite())
        });
        let out = predict_hole(&bounded, &[Some(8.5), None], 1).unwrap();
        assert_eq!(out, PredictOutcome::NoRuleFires);
    }

    #[test]
    fn unknown_antecedent_values_block_firing() {
        let m = model();
        // Nothing known at all: no rule can fire.
        let out = predict_hole(&m, &[None, None], 1).unwrap();
        assert_eq!(out, PredictOutcome::NoRuleFires);
    }

    #[test]
    fn validation() {
        let m = model();
        assert!(predict_hole(&m, &[Some(1.0), None], 5).is_err());
        assert!(predict_hole(&m, &[Some(1.0), Some(2.0)], 1).is_err());
    }
}
