//! Quantitative association rules (Srikant & Agrawal, SIGMOD'96 — the
//! paper's reference \[23\]).
//!
//! Attributes are partitioned into intervals; each `(attribute, interval)`
//! pair becomes a Boolean item; Apriori mines over those items; decoding
//! the items back yields rules like `bread: [3-5] => butter: [1.5-2]`.
//! This is the strongest existing baseline the Ratio Rules paper compares
//! against qualitatively (Sec. 6.3 / Fig. 12).

use crate::apriori::Apriori;
use crate::transactions::Partitioning;
use crate::{AssocError, Result};
use linalg::Matrix;
use std::fmt;

/// One side of a quantitative rule: an attribute constrained to a range.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeRange {
    /// Attribute (column) index.
    pub attribute: usize,
    /// Inclusive lower bound (`-inf` for the lowest interval).
    pub lo: f64,
    /// Exclusive upper bound (`+inf` for the highest interval).
    pub hi: f64,
}

impl AttributeRange {
    /// True when `v` falls inside the range.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v < self.hi
    }

    /// Midpoint of the range, clamping unbounded ends to the finite bound
    /// (used by the best-effort predictor).
    pub fn midpoint(&self) -> f64 {
        match (self.lo.is_finite(), self.hi.is_finite()) {
            (true, true) => 0.5 * (self.lo + self.hi),
            (true, false) => self.lo,
            (false, true) => self.hi,
            (false, false) => 0.0,
        }
    }
}

impl fmt::Display for AttributeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attr{}: [{:.3}, {:.3})",
            self.attribute, self.lo, self.hi
        )
    }
}

/// A quantitative association rule.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantitativeRule {
    /// Conjunction of antecedent ranges.
    pub antecedent: Vec<AttributeRange>,
    /// Conjunction of consequent ranges.
    pub consequent: Vec<AttributeRange>,
    /// Fraction of rows satisfying antecedent and consequent.
    pub support: f64,
    /// Rule confidence.
    pub confidence: f64,
}

impl fmt::Display for QuantitativeRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_side = |side: &[AttributeRange]| {
            side.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" and ")
        };
        write!(
            f,
            "{} => {} (sup {:.2}, conf {:.2})",
            fmt_side(&self.antecedent),
            fmt_side(&self.consequent),
            self.support,
            self.confidence
        )
    }
}

/// Miner for quantitative association rules.
#[derive(Debug, Clone, Copy)]
pub struct QuantitativeMiner {
    /// Intervals per attribute for the equi-depth partitioning.
    pub intervals: usize,
    /// Minimum support (fraction of rows).
    pub min_support: f64,
    /// Minimum confidence.
    pub min_confidence: f64,
}

impl Default for QuantitativeMiner {
    fn default() -> Self {
        QuantitativeMiner {
            intervals: 4,
            min_support: 0.1,
            min_confidence: 0.6,
        }
    }
}

/// A mined quantitative model: the rules plus the partitioning that
/// produced them (needed to interpret new rows).
#[derive(Debug, Clone)]
pub struct QuantitativeModel {
    /// The mined rules, best confidence first.
    pub rules: Vec<QuantitativeRule>,
    /// The attribute partitioning.
    pub partitioning: Partitioning,
}

impl QuantitativeMiner {
    /// Mines quantitative rules from an amounts matrix.
    ///
    /// # Errors
    /// Fails when fewer than 2 intervals are configured, the matrix is
    /// empty, or the thresholds are outside `(0, 1]`.
    pub fn mine(&self, x: &Matrix) -> Result<QuantitativeModel> {
        if self.intervals < 2 {
            return Err(AssocError::Invalid(format!(
                "need at least 2 intervals, got {}",
                self.intervals
            )));
        }
        let partitioning = Partitioning::equi_depth(x, self.intervals)?;
        let transactions = partitioning.encode(x)?;
        let apriori = Apriori::new(self.min_support, self.min_confidence)?;
        let boolean_rules = apriori.mine(&transactions)?;

        let decode = |items: &[usize]| -> Vec<AttributeRange> {
            items
                .iter()
                .map(|&item| {
                    let (attr, interval) = partitioning.decode_item(item);
                    let (lo, hi) = partitioning.interval_range(attr, interval);
                    AttributeRange {
                        attribute: attr,
                        lo,
                        hi,
                    }
                })
                .collect()
        };

        let mut rules: Vec<QuantitativeRule> = boolean_rules
            .iter()
            .map(|r| QuantitativeRule {
                antecedent: decode(&r.antecedent),
                consequent: decode(&r.consequent),
                support: r.support,
                confidence: r.confidence,
            })
            // A rule whose antecedent and consequent mention the same
            // attribute twice is impossible here (one interval item per
            // attribute per row), but keep the model clean regardless.
            .filter(|r| {
                let mut attrs: Vec<usize> = r
                    .antecedent
                    .iter()
                    .chain(&r.consequent)
                    .map(|ar| ar.attribute)
                    .collect();
                attrs.sort_unstable();
                attrs.windows(2).all(|w| w[0] != w[1])
            })
            .collect();
        rules.sort_by(|a, b| b.confidence.partial_cmp(&a.confidence).unwrap_or(std::cmp::Ordering::Equal));
        Ok(QuantitativeModel {
            rules,
            partitioning,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Correlated bread/butter amounts: butter tracks bread closely, so
    /// low-bread rows imply low-butter intervals etc.
    fn correlated() -> Matrix {
        Matrix::from_fn(80, 2, |i, j| {
            let bread = 1.0 + (i % 8) as f64;
            if j == 0 {
                bread
            } else {
                0.7 * bread + 0.01 * (i % 3) as f64
            }
        })
    }

    #[test]
    fn mines_cross_attribute_rules() {
        let model = QuantitativeMiner {
            intervals: 4,
            min_support: 0.1,
            min_confidence: 0.8,
        }
        .mine(&correlated())
        .unwrap();
        assert!(!model.rules.is_empty());
        // There must be a rule from a bread interval to a butter interval.
        let cross = model.rules.iter().find(|r| {
            r.antecedent.len() == 1
                && r.antecedent[0].attribute == 0
                && r.consequent.len() == 1
                && r.consequent[0].attribute == 1
        });
        assert!(
            cross.is_some(),
            "no bread => butter rule among {:?}",
            model.rules
        );
    }

    #[test]
    fn rule_ranges_are_consistent_with_data() {
        let x = correlated();
        let model = QuantitativeMiner::default().mine(&x).unwrap();
        for rule in &model.rules {
            // The promised confidence must be reproducible by counting.
            let mut ant = 0usize;
            let mut both = 0usize;
            for row in x.row_iter() {
                let ant_ok = rule.antecedent.iter().all(|r| r.contains(row[r.attribute]));
                if ant_ok {
                    ant += 1;
                    if rule.consequent.iter().all(|r| r.contains(row[r.attribute])) {
                        both += 1;
                    }
                }
            }
            assert!(ant > 0);
            let conf = both as f64 / ant as f64;
            assert!(
                (conf - rule.confidence).abs() < 1e-9,
                "rule {rule}: recomputed confidence {conf}"
            );
        }
    }

    #[test]
    fn attribute_range_contains_and_midpoint() {
        let r = AttributeRange {
            attribute: 0,
            lo: 2.0,
            hi: 4.0,
        };
        assert!(r.contains(2.0));
        assert!(r.contains(3.9));
        assert!(!r.contains(4.0));
        assert_eq!(r.midpoint(), 3.0);

        let unbounded = AttributeRange {
            attribute: 0,
            lo: f64::NEG_INFINITY,
            hi: 4.0,
        };
        assert!(unbounded.contains(-1e9));
        assert_eq!(unbounded.midpoint(), 4.0);
    }

    #[test]
    fn display_formats() {
        let r = QuantitativeRule {
            antecedent: vec![AttributeRange {
                attribute: 0,
                lo: 3.0,
                hi: 5.0,
            }],
            consequent: vec![AttributeRange {
                attribute: 1,
                lo: 1.5,
                hi: 2.0,
            }],
            support: 0.25,
            confidence: 0.9,
        };
        let s = r.to_string();
        assert!(s.contains("attr0"));
        assert!(s.contains("=>"));
        assert!(s.contains("0.90"));
    }

    #[test]
    fn validation() {
        let m = QuantitativeMiner {
            intervals: 1,
            ..QuantitativeMiner::default()
        };
        assert!(m.mine(&correlated()).is_err());
        assert!(QuantitativeMiner::default()
            .mine(&Matrix::zeros(0, 2))
            .is_err());
    }
}
