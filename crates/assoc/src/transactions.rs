//! Transaction views of a data matrix.
//!
//! Boolean association mining needs transactions = sets of items. For an
//! amounts matrix, an item is "bought" when the amount exceeds a
//! threshold (the binarization the paper criticizes for losing
//! information). Quantitative mining instead maps each attribute into
//! interval items ("bread in [3, 5)"), preserving magnitudes at interval
//! granularity.

use crate::{AssocError, Result};
use linalg::Matrix;

/// An item identifier. For Boolean mining it is the column index; for
/// quantitative mining it is `(column, interval)` flattened by the
/// partitioner.
pub type Item = usize;

/// Binarizes an amounts matrix into transactions: item `j` is present in
/// transaction `i` when `x[i][j] > threshold`.
///
/// # Errors
/// Fails on an empty matrix (no rows or no columns).
pub fn binarize(x: &Matrix, threshold: f64) -> Result<Vec<Vec<Item>>> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(AssocError::EmptyInput);
    }
    Ok(x.row_iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .filter_map(|(j, &v)| (v > threshold).then_some(j))
                .collect()
        })
        .collect())
}

/// An equi-depth partitioning of each attribute into intervals — the
/// Srikant–Agrawal preprocessing step for quantitative rules.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// Per attribute: sorted interval boundaries. Attribute `j` with
    /// boundaries `b` has intervals `(-inf, b[0]), [b[0], b[1]), ...,
    /// [b[last], +inf)`, i.e. `b.len() + 1` intervals.
    pub boundaries: Vec<Vec<f64>>,
    /// Number of intervals per attribute (same for all).
    pub intervals_per_attr: usize,
}

impl Partitioning {
    /// Builds equi-depth boundaries with `intervals` buckets per attribute.
    ///
    /// # Errors
    /// Fails on an empty matrix or fewer than 2 intervals.
    pub fn equi_depth(x: &Matrix, intervals: usize) -> Result<Self> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(AssocError::EmptyInput);
        }
        if intervals < 2 {
            return Err(AssocError::Invalid(format!(
                "need at least 2 intervals, got {intervals}"
            )));
        }
        let n = x.rows();
        let mut boundaries = Vec::with_capacity(x.cols());
        for j in 0..x.cols() {
            let mut col = x.col(j);
            col.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let mut b = Vec::with_capacity(intervals - 1);
            for q in 1..intervals {
                let pos = (q * n) / intervals;
                b.push(col[pos.min(n - 1)]);
            }
            b.dedup();
            boundaries.push(b);
        }
        Ok(Partitioning {
            boundaries,
            intervals_per_attr: intervals,
        })
    }

    /// Interval index of value `v` for attribute `j` (0-based).
    pub fn interval_of(&self, j: usize, v: f64) -> usize {
        let b = &self.boundaries[j];
        b.iter().take_while(|&&bound| v >= bound).count()
    }

    /// Half-open numeric range `[lo, hi)` of interval `idx` for attribute
    /// `j`; unbounded ends are `-inf` / `+inf`.
    pub fn interval_range(&self, j: usize, idx: usize) -> (f64, f64) {
        let b = &self.boundaries[j];
        let lo = if idx == 0 {
            f64::NEG_INFINITY
        } else {
            b[idx - 1]
        };
        let hi = if idx >= b.len() {
            f64::INFINITY
        } else {
            b[idx]
        };
        (lo, hi)
    }

    /// Flattens `(attribute, interval)` into a global item id.
    pub fn item_id(&self, j: usize, interval: usize) -> Item {
        j * self.intervals_per_attr + interval
    }

    /// Inverse of [`Partitioning::item_id`].
    pub fn decode_item(&self, item: Item) -> (usize, usize) {
        (
            item / self.intervals_per_attr,
            item % self.intervals_per_attr,
        )
    }

    /// Encodes every row of a matrix into interval items (one item per
    /// attribute).
    ///
    /// # Errors
    /// Fails when the matrix width does not match the partitioning.
    pub fn encode(&self, x: &Matrix) -> Result<Vec<Vec<Item>>> {
        if x.cols() != self.boundaries.len() {
            return Err(AssocError::Invalid(format!(
                "matrix has {} columns, partitioning {}",
                x.cols(),
                self.boundaries.len()
            )));
        }
        Ok(x.row_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, &v)| self.item_id(j, self.interval_of(j, v)))
                    .collect()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amounts() -> Matrix {
        Matrix::from_rows(&[
            &[5.0, 0.0, 2.0],
            &[0.0, 3.0, 1.0],
            &[2.0, 2.0, 0.0],
            &[8.0, 0.0, 4.0],
        ])
        .unwrap()
    }

    #[test]
    fn binarize_thresholds() {
        let t = binarize(&amounts(), 0.0).unwrap();
        assert_eq!(t[0], vec![0, 2]);
        assert_eq!(t[1], vec![1, 2]);
        assert_eq!(t[2], vec![0, 1]);
        assert_eq!(t[3], vec![0, 2]);

        let t = binarize(&amounts(), 2.5).unwrap();
        assert_eq!(t[0], vec![0]);
        assert!(binarize(&Matrix::zeros(0, 2), 0.0).is_err());
    }

    #[test]
    fn equi_depth_boundaries_split_mass() {
        let x = Matrix::from_fn(100, 1, |i, _| i as f64);
        let p = Partitioning::equi_depth(&x, 4).unwrap();
        assert_eq!(p.boundaries[0].len(), 3);
        // Quartiles of 0..100.
        assert_eq!(p.boundaries[0], vec![25.0, 50.0, 75.0]);
        assert_eq!(p.interval_of(0, 10.0), 0);
        assert_eq!(p.interval_of(0, 25.0), 1);
        assert_eq!(p.interval_of(0, 99.0), 3);
    }

    #[test]
    fn interval_ranges_cover_the_line() {
        let x = Matrix::from_fn(100, 1, |i, _| i as f64);
        let p = Partitioning::equi_depth(&x, 4).unwrap();
        assert_eq!(p.interval_range(0, 0), (f64::NEG_INFINITY, 25.0));
        assert_eq!(p.interval_range(0, 1), (25.0, 50.0));
        assert_eq!(p.interval_range(0, 3), (75.0, f64::INFINITY));
    }

    #[test]
    fn item_id_roundtrip() {
        let x = amounts();
        let p = Partitioning::equi_depth(&x, 3).unwrap();
        for j in 0..3 {
            for iv in 0..3 {
                let id = p.item_id(j, iv);
                assert_eq!(p.decode_item(id), (j, iv));
            }
        }
    }

    #[test]
    fn encode_emits_one_item_per_attribute() {
        let x = amounts();
        let p = Partitioning::equi_depth(&x, 2).unwrap();
        let enc = p.encode(&x).unwrap();
        assert_eq!(enc.len(), 4);
        for row in &enc {
            assert_eq!(row.len(), 3);
        }
        assert!(p.encode(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn validation() {
        assert!(Partitioning::equi_depth(&Matrix::zeros(0, 1), 3).is_err());
        assert!(Partitioning::equi_depth(&amounts(), 1).is_err());
    }
}
