//! Property-based tests for the association-rule baselines.

use assoc::apriori::Apriori;
use assoc::measures::contingency;
use assoc::transactions::{binarize, Partitioning};
use linalg::Matrix;
use proptest::prelude::*;

/// Strategy: random transaction lists over `n_items` items.
fn transactions(n_txns: usize, n_items: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0..n_items, 1..=n_items.min(6)),
        1..=n_txns,
    )
    .prop_map(|txns| txns.into_iter().map(|s| s.into_iter().collect()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Downward closure: every sub-itemset of a frequent itemset is
    /// itself frequent with at least the same count.
    #[test]
    fn frequent_itemsets_are_downward_closed(txns in transactions(25, 8)) {
        let ap = Apriori::new(0.2, 0.5).unwrap();
        let sets = ap.frequent_itemsets(&txns).unwrap();
        let count_of = |items: &[usize]| {
            sets.iter().find(|s| s.items == items).map(|s| s.count)
        };
        for set in &sets {
            if set.items.len() < 2 {
                continue;
            }
            for drop in 0..set.items.len() {
                let mut sub = set.items.clone();
                sub.remove(drop);
                let sub_count = count_of(&sub)
                    .unwrap_or_else(|| panic!("subset {sub:?} of {:?} missing", set.items));
                prop_assert!(sub_count >= set.count);
            }
        }
    }

    /// Reported supports are exact re-countable facts.
    #[test]
    fn itemset_counts_are_exact(txns in transactions(20, 6)) {
        let ap = Apriori::new(0.15, 0.5).unwrap();
        let sets = ap.frequent_itemsets(&txns).unwrap();
        for set in &sets {
            let actual = txns
                .iter()
                .filter(|t| set.items.iter().all(|i| t.contains(i)))
                .count();
            prop_assert_eq!(actual, set.count, "itemset {:?}", set.items);
        }
    }

    /// Every generated rule satisfies its advertised confidence when
    /// recounted, and support(rule) <= support(antecedent).
    #[test]
    fn rules_are_self_consistent(txns in transactions(20, 6)) {
        let ap = Apriori::new(0.15, 0.4).unwrap();
        let rules = ap.mine(&txns).unwrap();
        let n = txns.len() as f64;
        for r in &rules {
            let table = contingency(&txns, &r.antecedent, &r.consequent);
            prop_assert!((table.support() - r.support).abs() < 1e-12);
            let conf = table.confidence().unwrap();
            prop_assert!((conf - r.confidence).abs() < 1e-12);
            prop_assert!(r.confidence >= 0.4 - 1e-12);
            prop_assert!(r.support * n <= (table.both + table.a_only) as f64 + 1e-9);
        }
    }

    /// Partitioning assigns every value to exactly the interval whose
    /// range contains it.
    #[test]
    fn partition_interval_of_matches_ranges(
        values in proptest::collection::vec(-100.0..100.0f64, 12),
        intervals in 2usize..6,
    ) {
        let m = Matrix::from_vec(values.len(), 1, values.clone()).unwrap();
        let p = Partitioning::equi_depth(&m, intervals).unwrap();
        for &v in &values {
            let idx = p.interval_of(0, v);
            let (lo, hi) = p.interval_range(0, idx);
            prop_assert!(v >= lo && v < hi || (v == lo), "{v} not in [{lo}, {hi})");
        }
    }

    /// Binarization keeps exactly the cells above the threshold.
    #[test]
    fn binarize_respects_threshold(
        cells in proptest::collection::vec(0.0..10.0f64, 12),
        threshold in 0.0..10.0f64,
    ) {
        let m = Matrix::from_vec(4, 3, cells.clone()).unwrap();
        let txns = binarize(&m, threshold).unwrap();
        for (i, txn) in txns.iter().enumerate() {
            for j in 0..3 {
                let present = txn.contains(&j);
                prop_assert_eq!(present, cells[i * 3 + j] > threshold);
            }
        }
    }
}
