//! Ablation benchmark: covariance construction strategies.
//!
//! Compares the paper's single-pass raw-moment accumulator against the
//! numerically safer two-pass centered product, and against the
//! crossbeam-parallel shard-and-merge scan (extension). The single-pass
//! variant is the paper's efficiency claim; the parallel one shows the
//! mergeable-accumulator design paying off on modern hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataset::synth::quest::{generate, QuestConfig};
use ratio_rules::covariance::CovarianceAccumulator;
use ratio_rules::parallel::covariance_parallel;

fn bench_covariance(c: &mut Criterion) {
    let n = 20_000usize;
    let cfg = QuestConfig {
        n_rows: n,
        n_items: 100,
        ..QuestConfig::default()
    };
    let data = generate(&cfg, 7).expect("quest");
    let x = data.matrix();

    let mut group = c.benchmark_group("covariance_20k_x_100");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("single_pass_paper", |b| {
        b.iter(|| {
            let mut acc = CovarianceAccumulator::new(x.cols());
            for row in x.row_iter() {
                acc.push_row(row).expect("push");
            }
            acc.finalize().expect("finalize")
        });
    });

    group.bench_function("two_pass_centered", |b| {
        b.iter(|| dataset::stats::covariance_two_pass(x).expect("two-pass"));
    });

    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| {
                covariance_parallel(x, t)
                    .expect("parallel")
                    .finalize()
                    .expect("fin")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_covariance);
criterion_main!(benches);
