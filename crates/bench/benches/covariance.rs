//! Ablation benchmark: covariance construction strategies.
//!
//! Compares the paper's single-pass raw-moment accumulator against the
//! numerically safer two-pass centered product, and against the
//! crossbeam-parallel shard-and-merge scan (extension). The single-pass
//! variant is the paper's efficiency claim; the parallel one shows the
//! mergeable-accumulator design paying off on modern hardware.

use bench::trajectory::{measure, BenchReport};
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use dataset::synth::quest::{generate, QuestConfig};
use ratio_rules::covariance::CovarianceAccumulator;
use ratio_rules::parallel::covariance_parallel;

fn bench_covariance(c: &mut Criterion) {
    let n = 20_000usize;
    let cfg = QuestConfig {
        n_rows: n,
        n_items: 100,
        ..QuestConfig::default()
    };
    let data = generate(&cfg, 7).expect("quest");
    let x = data.matrix();

    let mut group = c.benchmark_group("covariance_20k_x_100");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("single_pass_paper", |b| {
        b.iter(|| {
            let mut acc = CovarianceAccumulator::new(x.cols());
            for row in x.row_iter() {
                acc.push_row(row).expect("push");
            }
            acc.finalize().expect("finalize")
        });
    });

    group.bench_function("two_pass_centered", |b| {
        b.iter(|| dataset::stats::covariance_two_pass(x).expect("two-pass"));
    });

    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| {
                covariance_parallel(x, t)
                    .expect("parallel")
                    .finalize()
                    .expect("fin")
            });
        });
    }
    group.finish();
}

/// The same 20k x 100 workload as the criterion group, recorded as
/// medians + rows/s in `BENCH_covariance.json` at the repo root.
fn emit_trajectory() {
    let n = 20_000usize;
    let cfg = QuestConfig {
        n_rows: n,
        n_items: 100,
        ..QuestConfig::default()
    };
    let data = generate(&cfg, 7).expect("quest");
    let x = data.matrix();
    let rows = Some(n as u64);

    let mut report = BenchReport::new("covariance");
    report.push(measure("single_pass_paper_20k_x_100", 5, rows, || {
        let mut acc = CovarianceAccumulator::new(x.cols());
        for row in x.row_iter() {
            acc.push_row(row).expect("push");
        }
        std::hint::black_box(acc.finalize().expect("finalize"));
    }));
    report.push(measure("two_pass_centered_20k_x_100", 5, rows, || {
        std::hint::black_box(dataset::stats::covariance_two_pass(x).expect("two-pass"));
    }));
    for threads in [2usize, 4, 8] {
        report.push(measure(
            &format!("parallel_{threads}_20k_x_100"),
            5,
            rows,
            || {
                std::hint::black_box(
                    covariance_parallel(x, threads)
                        .expect("parallel")
                        .finalize()
                        .expect("fin"),
                );
            },
        ));
    }
    report.derive(
        "speedup_parallel_8_vs_single_pass",
        report
            .speedup("single_pass_paper_20k_x_100", "parallel_8_20k_x_100")
            .expect("both measured"),
    );
    let path = report
        .write_to_repo_root(env!("CARGO_MANIFEST_DIR"))
        .expect("write BENCH_covariance.json");
    println!("trajectory -> {}", path.display());
}

criterion_group!(benches, bench_covariance);

fn main() {
    emit_trajectory();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
