//! Ablation benchmark: covariance construction strategies.
//!
//! Compares the historical per-row triangular walk (reimplemented here
//! as `scalar_reference` — the shipped accumulator now block-buffers)
//! against the cache-blocked SYRK-style panel kernel, the numerically
//! safer two-pass centered product, and the crossbeam shard-and-merge
//! scan across a thread sweep. A columnar-ingest case measures the
//! `RRCB` block-file path end to end (chunked reads feeding
//! `push_block`).
//!
//! `--quick` runs a seconds-long smoke instead: small workload, and a
//! bitwise divergence check between the scalar walk, the blocked
//! kernel, the sharded scan, and the columnar path. It never writes
//! `BENCH_covariance.json`, so CI can gate on it without churning the
//! recorded trajectory.

use bench::trajectory::{measure, BenchReport};
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use dataset::columnar::{write_block_file, ColumnarBlockSource};
use dataset::synth::quest::{generate, QuestConfig};
use linalg::Matrix;
use ratio_rules::covariance::CovarianceAccumulator;
use ratio_rules::parallel::covariance_parallel;

/// The pre-blocking accumulator: one rank-1 triangular update per row.
/// Kept verbatim as the benchmark baseline (and bitwise oracle — the
/// blocked kernel preserves the per-entry accumulation order).
struct ScalarReference {
    m: usize,
    n: usize,
    col_sums: Vec<f64>,
    raw_upper: Vec<f64>,
}

impl ScalarReference {
    fn new(m: usize) -> Self {
        ScalarReference {
            m,
            n: 0,
            col_sums: vec![0.0; m],
            raw_upper: vec![0.0; m * (m + 1) / 2],
        }
    }

    #[inline]
    fn upper_index(&self, j: usize, l: usize) -> usize {
        (j * (2 * self.m - j + 1)) / 2 + (l - j)
    }

    fn push_row(&mut self, row: &[f64]) {
        self.n += 1;
        for (j, &xj) in row.iter().enumerate() {
            self.col_sums[j] += xj;
            let base = self.upper_index(j, j);
            for (off, &xl) in row[j..].iter().enumerate() {
                self.raw_upper[base + off] += xj * xl;
            }
        }
    }
}

fn quest_matrix(n: usize, m: usize) -> dataset::DataMatrix {
    let cfg = QuestConfig {
        n_rows: n,
        n_items: m,
        ..QuestConfig::default()
    };
    generate(&cfg, 7).expect("quest")
}

fn scalar_scan(x: &Matrix) -> ScalarReference {
    let mut acc = ScalarReference::new(x.cols());
    for row in x.row_iter() {
        acc.push_row(row);
    }
    acc
}

fn blocked_scan(x: &Matrix) -> CovarianceAccumulator {
    let mut acc = CovarianceAccumulator::new(x.cols());
    acc.push_block(x.data(), x.rows()).expect("push_block");
    acc
}

/// Temp `RRCB` file holding the workload, for the columnar-ingest case.
fn block_file(x: &Matrix, tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rr_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{tag}.rrcb"));
    write_block_file(&path, x.cols(), x.rows(), x.data()).expect("write rrcb");
    path
}

fn columnar_scan(path: &std::path::Path) -> CovarianceAccumulator {
    let mut src = ColumnarBlockSource::open(path).expect("open rrcb");
    let mut acc = CovarianceAccumulator::new(src.n_cols());
    let mut buf = Vec::new();
    loop {
        let got = src.read_block(&mut buf, acc.block_rows()).expect("read");
        if got == 0 {
            break;
        }
        acc.push_block(&buf, got).expect("push_block");
    }
    acc
}

/// Asserts the blocked, sharded, and columnar scans reproduce the
/// scalar walk bit for bit (sharded up to the documented merge
/// reassociation — it is checked for run-to-run determinism instead).
fn divergence_check(x: &Matrix, path: &std::path::Path, threads: usize) {
    let scalar = scalar_scan(x);
    let (n, sums, upper) = blocked_scan(x).parts();
    assert_eq!(n, scalar.n, "blocked row count diverged");
    assert_eq!(sums, scalar.col_sums, "blocked col sums diverged");
    assert_eq!(upper, scalar.raw_upper, "blocked triangle diverged");
    let (cn, csums, cupper) = columnar_scan(path).parts();
    assert_eq!(cn, scalar.n, "columnar row count diverged");
    assert_eq!(csums, scalar.col_sums, "columnar col sums diverged");
    assert_eq!(cupper, scalar.raw_upper, "columnar triangle diverged");
    let a = covariance_parallel(x, threads).expect("parallel").parts();
    let b = covariance_parallel(x, threads).expect("parallel").parts();
    assert_eq!(a, b, "sharded scan is not run-to-run deterministic");
}

fn bench_covariance(c: &mut Criterion) {
    let n = 20_000usize;
    let data = quest_matrix(n, 100);
    let x = data.matrix();

    let mut group = c.benchmark_group("covariance_20k_x_100");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("scalar_reference", |b| {
        b.iter(|| std::hint::black_box(scalar_scan(x).raw_upper[0]));
    });

    group.bench_function("single_pass_paper", |b| {
        b.iter(|| {
            let mut acc = CovarianceAccumulator::new(x.cols());
            for row in x.row_iter() {
                acc.push_row(row).expect("push");
            }
            acc.finalize().expect("finalize")
        });
    });

    group.bench_function("blocked_kernel", |b| {
        b.iter(|| blocked_scan(x).finalize().expect("finalize"));
    });

    group.bench_function("two_pass_centered", |b| {
        b.iter(|| dataset::stats::covariance_two_pass(x).expect("two-pass"));
    });

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| {
                covariance_parallel(x, t)
                    .expect("parallel")
                    .finalize()
                    .expect("fin")
            });
        });
    }

    let path = block_file(x, "criterion_20k");
    group.bench_function("columnar_ingest", |b| {
        b.iter(|| columnar_scan(&path).finalize().expect("finalize"));
    });
    group.finish();
}

/// The same 20k x 100 workload as the criterion group, recorded as
/// medians + rows/s in `BENCH_covariance.json` at the repo root.
fn emit_trajectory() {
    let n = 20_000usize;
    let data = quest_matrix(n, 100);
    let x = data.matrix();
    let rows = Some(n as u64);
    let path = block_file(x, "trajectory_20k");
    // Refuse to record numbers for a kernel that changed the answer.
    divergence_check(x, &path, 4);

    let mut report = BenchReport::new("covariance");
    report.push(measure("scalar_reference_20k_x_100", 5, rows, || {
        std::hint::black_box(scalar_scan(x).raw_upper[0]);
    }));
    report.push(measure("single_pass_paper_20k_x_100", 5, rows, || {
        let mut acc = CovarianceAccumulator::new(x.cols());
        for row in x.row_iter() {
            acc.push_row(row).expect("push");
        }
        std::hint::black_box(acc.finalize().expect("finalize"));
    }));
    report.push(measure("blocked_kernel_20k_x_100", 5, rows, || {
        std::hint::black_box(blocked_scan(x).finalize().expect("finalize"));
    }));
    report.push(measure("two_pass_centered_20k_x_100", 5, rows, || {
        std::hint::black_box(dataset::stats::covariance_two_pass(x).expect("two-pass"));
    }));
    for threads in [1usize, 2, 4, 8] {
        report.push(measure(
            &format!("parallel_{threads}_20k_x_100"),
            5,
            rows,
            || {
                std::hint::black_box(
                    covariance_parallel(x, threads)
                        .expect("parallel")
                        .finalize()
                        .expect("fin"),
                );
            },
        ));
    }
    report.push(measure("columnar_ingest_20k_x_100", 5, rows, || {
        std::hint::black_box(columnar_scan(&path).finalize().expect("finalize"));
    }));
    // Wide workload: at m = 100 the 40 KB packed triangle is cache
    // resident and blocking is nearly neutral; at m = 600 the 1.4 MB
    // triangle spills, and streaming it once per panel instead of once
    // per row is where the blocked kernel pays.
    let wide = quest_matrix(2_000, 600);
    let xw = wide.matrix();
    report.push(measure("scalar_reference_2k_x_600", 5, Some(2_000), || {
        std::hint::black_box(scalar_scan(xw).raw_upper[0]);
    }));
    report.push(measure("blocked_kernel_2k_x_600", 5, Some(2_000), || {
        std::hint::black_box(blocked_scan(xw).finalize().expect("finalize"));
    }));
    report.derive(
        "speedup_blocked_vs_scalar_wide",
        report
            .speedup("scalar_reference_2k_x_600", "blocked_kernel_2k_x_600")
            .expect("both measured"),
    );
    report.derive(
        "speedup_blocked_vs_scalar",
        report
            .speedup("scalar_reference_20k_x_100", "blocked_kernel_20k_x_100")
            .expect("both measured"),
    );
    report.derive(
        "speedup_parallel_8_vs_single_pass",
        report
            .speedup("single_pass_paper_20k_x_100", "parallel_8_20k_x_100")
            .expect("both measured"),
    );
    report.derive(
        "speedup_columnar_vs_scalar",
        report
            .speedup("scalar_reference_20k_x_100", "columnar_ingest_20k_x_100")
            .expect("both measured"),
    );
    let out = report
        .write_to_repo_root(env!("CARGO_MANIFEST_DIR"))
        .expect("write BENCH_covariance.json");
    println!("trajectory -> {}", out.display());
}

/// Seconds-long CI smoke: a small workload through every scan path plus
/// the bitwise divergence check. Writes nothing.
fn quick_smoke() {
    let data = quest_matrix(2_000, 50);
    let x = data.matrix();
    let path = block_file(x, "quick_2k");
    divergence_check(x, &path, 4);
    let mut report = BenchReport::new("covariance_quick");
    report.push(measure("scalar_reference_2k_x_50", 2, Some(2_000), || {
        std::hint::black_box(scalar_scan(x).raw_upper[0]);
    }));
    report.push(measure("blocked_kernel_2k_x_50", 2, Some(2_000), || {
        std::hint::black_box(blocked_scan(x).finalize().expect("finalize"));
    }));
    report.push(measure("columnar_ingest_2k_x_50", 2, Some(2_000), || {
        std::hint::black_box(columnar_scan(&path).finalize().expect("finalize"));
    }));
    // Printed, never persisted: --quick must not churn the trajectory.
    println!("{}", report.to_json());
    println!("quick bench OK: blocked/columnar/sharded agree with the scalar walk");
}

criterion_group!(benches, bench_covariance);

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_smoke();
        return;
    }
    emit_trajectory();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
