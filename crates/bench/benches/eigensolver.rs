//! Ablation benchmark: Householder+QL (the production eigensolver) vs
//! cyclic Jacobi, across matrix sizes.
//!
//! The paper calls the eigensolve an off-the-shelf `O(M^3)` step whose
//! cost is negligible next to the `O(N M^2)` covariance pass; this bench
//! quantifies both solvers so the claim can be checked against Fig. 8's
//! intercept.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::eigen::SymmetricEigen;
use linalg::jacobi::jacobi_eigen;
use linalg::lanczos::lanczos_top_k;
use linalg::Matrix;

/// Deterministic symmetric test matrix of side `m`.
fn symmetric(m: usize) -> Matrix {
    let mut state = 0x9E3779B97F4A7C15_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut a = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..=i {
            let v = next();
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

fn bench_eigensolvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigensolver");
    for m in [10usize, 25, 50, 100] {
        let a = symmetric(m);
        group.bench_with_input(BenchmarkId::new("householder_ql", m), &a, |b, a| {
            b.iter(|| SymmetricEigen::new(a).expect("ql"));
        });
        group.bench_with_input(BenchmarkId::new("jacobi", m), &a, |b, a| {
            b.iter(|| jacobi_eigen(a, 1e-8).expect("jacobi"));
        });
        // The footnote-1 alternative: only the top 3 eigenpairs, as a
        // Ratio-Rules miner would request.
        group.bench_with_input(BenchmarkId::new("lanczos_top3", m), &a, |b, a| {
            b.iter(|| lanczos_top_k(a, 3, None).expect("lanczos"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eigensolvers);
criterion_main!(benches);
