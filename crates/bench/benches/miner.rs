//! Benchmark: miner backends and incremental maintenance.
//!
//! * dense vs Lanczos eigensolver backends inside the full mining
//!   pipeline (the footnote-1 trade-off at M = 100: full spectrum vs
//!   top rules only);
//! * incremental `observe` cost per row, and rule re-derivation cost —
//!   the two numbers a live deployment cares about.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dataset::synth::quest::{generate, QuestConfig};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::incremental::IncrementalMiner;
use ratio_rules::miner::{EigenSolver, RatioRuleMiner};

fn bench_miner_backends(c: &mut Criterion) {
    let cfg = QuestConfig {
        n_rows: 5_000,
        n_items: 100,
        ..QuestConfig::default()
    };
    let data = generate(&cfg, 21).expect("quest");
    let x = data.matrix();

    let mut group = c.benchmark_group("miner_backend_5k_x_100");
    group.sample_size(10);
    group.bench_function("dense_full_spectrum", |b| {
        b.iter(|| {
            RatioRuleMiner::new(Cutoff::FixedK(5))
                .fit_matrix(x)
                .expect("dense")
        });
    });
    group.bench_function("lanczos_top5", |b| {
        b.iter(|| {
            RatioRuleMiner::new(Cutoff::FixedK(5))
                .with_solver(EigenSolver::Lanczos { max_k: 5 })
                .fit_matrix(x)
                .expect("lanczos")
        });
    });
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let cfg = QuestConfig {
        n_rows: 1_000,
        n_items: 100,
        ..QuestConfig::default()
    };
    let data = generate(&cfg, 22).expect("quest");
    let x = data.matrix();

    let mut group = c.benchmark_group("incremental_m100");
    group.throughput(Throughput::Elements(x.rows() as u64));
    group.bench_function("observe_1k_rows", |b| {
        b.iter(|| {
            let mut inc = IncrementalMiner::new(100, Cutoff::default());
            inc.observe_matrix(x).expect("observe");
            inc
        });
    });

    let mut warm = IncrementalMiner::new(100, Cutoff::default());
    warm.observe_matrix(x).expect("observe");
    group.throughput(Throughput::Elements(1));
    group.bench_function("rederive_rules", |b| {
        b.iter(|| warm.rules().expect("rules"));
    });
    group.finish();
}

criterion_group!(benches, bench_miner_backends, bench_incremental);
criterion_main!(benches);
