//! Benchmark: mining cost of the three paradigms on the same data
//! (Sec. 6.3 made quantitative).
//!
//! Ratio Rules (single pass + eigensolve) vs Apriori Boolean rules
//! (multi-pass level-wise counting) vs quantitative rules (partition +
//! Apriori over interval items). The point the paper makes qualitatively
//! — single-pass mining is cheap — shows up here as wall-clock.

use assoc::apriori::Apriori;
use assoc::quantitative::QuantitativeMiner;
use assoc::transactions::binarize;
use criterion::{criterion_group, criterion_main, Criterion};
use dataset::synth::quest::{generate, QuestConfig};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;

fn bench_paradigms(c: &mut Criterion) {
    // Kept deliberately small: quantitative mining over interval items is
    // combinatorial (every row holds one item per attribute, so frequent
    // pairs abound), and the point here is the *ratio* between paradigms,
    // not their absolute scale.
    let cfg = QuestConfig {
        n_rows: 1_000,
        n_items: 16,
        ..QuestConfig::default()
    };
    let data = generate(&cfg, 11).expect("quest");
    let x = data.matrix();

    let mut group = c.benchmark_group("mining_paradigms_1k_x_16");
    group.sample_size(10);

    group.bench_function("ratio_rules", |b| {
        b.iter(|| {
            RatioRuleMiner::new(Cutoff::default())
                .fit_matrix(x)
                .expect("rr")
        });
    });

    let transactions = binarize(x, 0.0).expect("binarize");
    group.bench_function("apriori_boolean", |b| {
        b.iter(|| {
            Apriori::new(0.1, 0.5)
                .expect("config")
                .mine(&transactions)
                .expect("apriori")
        });
    });

    group.bench_function("quantitative_rules", |b| {
        b.iter(|| {
            QuantitativeMiner {
                intervals: 4,
                min_support: 0.1,
                min_confidence: 0.5,
            }
            .mine(x)
            .expect("quant")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_paradigms);
criterion_main!(benches);
