//! Benchmark: hole-filling throughput across the three solve cases and
//! the guessing-error evaluation that drives Figs. 6-7.
//!
//! Also contrasts the pseudo-inverse (paper CASE 2) against QR least
//! squares on the same over-specified systems — the hole-solver ablation
//! from DESIGN.md.

use bench::trajectory::{measure, BenchReport};
use criterion::{criterion_group, Criterion};
use dataset::holes::HoleSet;
use dataset::split::train_test_split;
use linalg::pinv::solve_least_squares;
use linalg::qr::Qr;
use linalg::Matrix;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::guessing::GuessingErrorEvaluator;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::predictor::RuleSetPredictor;
use ratio_rules::reconstruct::{fill_holes, SolverCache};

fn bench_reconstruction(c: &mut Criterion) {
    let (data, _) = dataset::synth::sports::nba_like(1).expect("nba");
    let split = train_test_split(&data, 0.9, 1).expect("split");
    let m = data.n_cols();

    let mut group = c.benchmark_group("reconstruction");

    // Over-specified: k = 3, h = 1 -> M - h = 11 > 3 (pseudo-inverse).
    let rules3 = RatioRuleMiner::new(Cutoff::FixedK(3))
        .fit_data(&split.train)
        .expect("k=3");
    let row = split.test.row(0).to_vec();
    let hole1 = HoleSet::new(vec![4], m).expect("holes");
    let holed1 = hole1.apply(&row).expect("apply");
    group.bench_function("fill_over_specified_k3_h1", |b| {
        b.iter(|| fill_holes(&rules3, &holed1).expect("fill"));
    });

    // Exactly-specified: k = 3, h = M - 3 = 9.
    let hole9 = HoleSet::new((0..9).collect(), m).expect("holes");
    let holed9 = hole9.apply(&row).expect("apply");
    group.bench_function("fill_exactly_specified_k3_h9", |b| {
        b.iter(|| fill_holes(&rules3, &holed9).expect("fill"));
    });

    // Under-specified: k = 6, h = 10 -> M - h = 2 < 6.
    let rules6 = RatioRuleMiner::new(Cutoff::FixedK(6))
        .fit_data(&split.train)
        .expect("k=6");
    let hole10 = HoleSet::new((0..10).collect(), m).expect("holes");
    let holed10 = hole10.apply(&row).expect("apply");
    group.bench_function("fill_under_specified_k6_h10", |b| {
        b.iter(|| fill_holes(&rules6, &holed10).expect("fill"));
    });

    // Ablation: pseudo-inverse vs QR on the over-specified system.
    let v_prime = rules3.v_matrix().select_rows(&holed1.known_indices());
    let b_vec: Vec<f64> = holed1
        .known_values()
        .iter()
        .zip(
            holed1
                .known_indices()
                .iter()
                .map(|&j| rules3.column_means()[j]),
        )
        .map(|(v, mean)| v - mean)
        .collect();
    group.bench_function("solver_pinv_svd", |b| {
        b.iter(|| solve_least_squares(&v_prime, &b_vec, 1e-12).expect("pinv"));
    });
    group.bench_function("solver_qr_least_squares", |b| {
        b.iter(|| Qr::new(&v_prime).expect("qr").solve(&b_vec).expect("solve"));
    });

    // End-to-end GE_1 on the nba test split (the Fig. 7 inner loop).
    let predictor = RuleSetPredictor::new(rules3.clone());
    let ev = GuessingErrorEvaluator::default();
    group.sample_size(10);
    group.bench_function("ge1_nba_test_split", |b| {
        b.iter(|| ev.ge1(&predictor, split.test.matrix()).expect("ge1"));
    });

    group.finish();
}

/// The PR's acceptance workload: `GE_h` at `N = 1000, M = 20, h = 5`,
/// solver cache vs. the factor-per-row seed path. Written to
/// `BENCH_reconstruction.json` at the repo root with the speedup as a
/// derived metric (the bar is >= 5x).
fn emit_trajectory() {
    // Rank-5 data with mild deterministic noise, so k = 5 rules are
    // meaningful and every solve case is well conditioned.
    let (n, m, h) = (1000usize, 20usize, 5usize);
    let dirs: Vec<f64> = (0..5 * m)
        .map(|t| 0.3 + ((t * 37 + 11) % 17) as f64 / 17.0)
        .collect();
    let x = Matrix::from_fn(n, m, |i, j| {
        let mut v = 0.0;
        for f in 0..5 {
            let c = ((i * (f + 3) + 7 * f) % 23) as f64 - 11.0;
            let sign = if (f + j) % 2 == 0 { 1.0 } else { -1.0 };
            v += c * dirs[f * m + j] * sign;
        }
        v + ((i * 13 + j * 5) % 29) as f64 * 0.01
    });
    let rules = RatioRuleMiner::new(Cutoff::FixedK(5))
        .fit_matrix(&x)
        .expect("mine k=5");
    let ev = GuessingErrorEvaluator::default();
    let fills_per_op = (n * ev.max_hole_sets) as u64;

    let cached = RuleSetPredictor::new(rules.clone());
    let uncached = RuleSetPredictor::uncached(rules.clone());
    // Identical numbers, or the timing comparison is meaningless.
    let ge_cached = ev.ge_h(&cached, &x, h).expect("ge_h cached");
    let ge_uncached = ev.ge_h(&uncached, &x, h).expect("ge_h uncached");
    assert!(
        (ge_cached - ge_uncached).abs() <= 1e-12 * ge_uncached.max(1.0),
        "cached GE_h {ge_cached} != uncached {ge_uncached}"
    );

    let mut report = BenchReport::new("reconstruction");
    report.push(measure(
        "ge_h_uncached_n1000_m20_h5",
        3,
        Some(fills_per_op),
        || {
            std::hint::black_box(ev.ge_h(&uncached, &x, h).expect("ge_h"));
        },
    ));
    report.push(measure(
        "ge_h_cached_n1000_m20_h5",
        5,
        Some(fills_per_op),
        || {
            std::hint::black_box(ev.ge_h(&cached, &x, h).expect("ge_h"));
        },
    ));
    report.push(measure(
        "ge_h_cached_parallel4_n1000_m20_h5",
        5,
        Some(fills_per_op),
        || {
            std::hint::black_box(ev.ge_h_parallel(&cached, &x, h, 4).expect("ge_h_parallel"));
        },
    ));

    // Single-row microbenches: one-shot fill vs. a warm cache hit.
    let holes: Vec<usize> = (0..h).map(|t| t * 3).collect();
    let holed = HoleSet::new(holes, m)
        .expect("holes")
        .apply(x.row(17))
        .expect("apply");
    report.push(measure("fill_one_shot_m20_h5", 200, Some(1), || {
        std::hint::black_box(fill_holes(&rules, &holed).expect("fill"));
    }));
    let cache = SolverCache::new(&rules);
    cache.fill(&holed).expect("warm the cache");
    report.push(measure("fill_cache_warm_m20_h5", 200, Some(1), || {
        std::hint::black_box(cache.fill(&holed).expect("fill"));
    }));

    // One instrumented pass, outside the timed loops: shard balance and
    // cache behaviour land in the report's "metrics" section. The timed
    // workloads above all ran with observability disabled, so the medians
    // keep measuring the uninstrumented hot path.
    obs::set_enabled(true);
    std::hint::black_box(ev.ge_h_parallel(&cached, &x, h, 4).expect("ge_h_parallel"));
    cached.publish_metrics();
    report.attach_metrics(&obs::global().snapshot());
    obs::set_enabled(false);
    obs::global().reset();
    obs::take_trace();

    let ge_speedup = report
        .speedup("ge_h_uncached_n1000_m20_h5", "ge_h_cached_n1000_m20_h5")
        .expect("both measured");
    report.derive("speedup_ge_h_cached_vs_uncached", ge_speedup);
    report.derive(
        "speedup_fill_cache_warm_vs_one_shot",
        report
            .speedup("fill_one_shot_m20_h5", "fill_cache_warm_m20_h5")
            .expect("both measured"),
    );
    let path = report
        .write_to_repo_root(env!("CARGO_MANIFEST_DIR"))
        .expect("write BENCH_reconstruction.json");
    println!(
        "trajectory: GE_h cache speedup {ge_speedup:.1}x -> {}",
        path.display()
    );
}

criterion_group!(benches, bench_reconstruction);

fn main() {
    emit_trajectory();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
