//! Benchmark: hole-filling throughput across the three solve cases and
//! the guessing-error evaluation that drives Figs. 6-7.
//!
//! Also contrasts the pseudo-inverse (paper CASE 2) against QR least
//! squares on the same over-specified systems — the hole-solver ablation
//! from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use dataset::holes::HoleSet;
use dataset::split::train_test_split;
use linalg::pinv::solve_least_squares;
use linalg::qr::Qr;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::guessing::GuessingErrorEvaluator;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::predictor::RuleSetPredictor;
use ratio_rules::reconstruct::fill_holes;

fn bench_reconstruction(c: &mut Criterion) {
    let (data, _) = dataset::synth::sports::nba_like(1).expect("nba");
    let split = train_test_split(&data, 0.9, 1).expect("split");
    let m = data.n_cols();

    let mut group = c.benchmark_group("reconstruction");

    // Over-specified: k = 3, h = 1 -> M - h = 11 > 3 (pseudo-inverse).
    let rules3 = RatioRuleMiner::new(Cutoff::FixedK(3))
        .fit_data(&split.train)
        .expect("k=3");
    let row = split.test.row(0).to_vec();
    let hole1 = HoleSet::new(vec![4], m).expect("holes");
    let holed1 = hole1.apply(&row).expect("apply");
    group.bench_function("fill_over_specified_k3_h1", |b| {
        b.iter(|| fill_holes(&rules3, &holed1).expect("fill"));
    });

    // Exactly-specified: k = 3, h = M - 3 = 9.
    let hole9 = HoleSet::new((0..9).collect(), m).expect("holes");
    let holed9 = hole9.apply(&row).expect("apply");
    group.bench_function("fill_exactly_specified_k3_h9", |b| {
        b.iter(|| fill_holes(&rules3, &holed9).expect("fill"));
    });

    // Under-specified: k = 6, h = 10 -> M - h = 2 < 6.
    let rules6 = RatioRuleMiner::new(Cutoff::FixedK(6))
        .fit_data(&split.train)
        .expect("k=6");
    let hole10 = HoleSet::new((0..10).collect(), m).expect("holes");
    let holed10 = hole10.apply(&row).expect("apply");
    group.bench_function("fill_under_specified_k6_h10", |b| {
        b.iter(|| fill_holes(&rules6, &holed10).expect("fill"));
    });

    // Ablation: pseudo-inverse vs QR on the over-specified system.
    let v_prime = rules3.v_matrix().select_rows(&holed1.known_indices());
    let b_vec: Vec<f64> = holed1
        .known_values()
        .iter()
        .zip(
            holed1
                .known_indices()
                .iter()
                .map(|&j| rules3.column_means()[j]),
        )
        .map(|(v, mean)| v - mean)
        .collect();
    group.bench_function("solver_pinv_svd", |b| {
        b.iter(|| solve_least_squares(&v_prime, &b_vec, 1e-12).expect("pinv"));
    });
    group.bench_function("solver_qr_least_squares", |b| {
        b.iter(|| Qr::new(&v_prime).expect("qr").solve(&b_vec).expect("solve"));
    });

    // End-to-end GE_1 on the nba test split (the Fig. 7 inner loop).
    let predictor = RuleSetPredictor::new(rules3.clone());
    let ev = GuessingErrorEvaluator::default();
    group.sample_size(10);
    group.bench_function("ge1_nba_test_split", |b| {
        b.iter(|| ev.ge1(&predictor, split.test.matrix()).expect("ge1"));
    });

    group.finish();
}

criterion_group!(benches, bench_reconstruction);
criterion_main!(benches);
