//! Criterion benchmark backing Figure 8: Ratio-Rule mining time vs N.
//!
//! The experiment binary `fig8_scaleup` prints the full 10-point sweep at
//! N up to 100,000; this bench measures a smaller, statistically rigorous
//! sweep so `cargo bench` stays fast while still exposing the linear
//! shape (time per row roughly constant in N).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataset::synth::quest::{generate, QuestConfig};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;

fn bench_scaleup(c: &mut Criterion) {
    let full_n = 20_000usize;
    let cfg = QuestConfig {
        n_rows: full_n,
        n_items: 100,
        ..QuestConfig::default()
    };
    let data = generate(&cfg, 0xF168).expect("quest generation");
    let matrix = data.matrix();
    let miner = RatioRuleMiner::new(Cutoff::default());

    let mut group = c.benchmark_group("fig8_scaleup_m100");
    group.sample_size(10);
    for n in [2_500usize, 5_000, 10_000, 20_000] {
        let prefix = matrix.select_rows(&(0..n).collect::<Vec<_>>());
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &prefix, |b, m| {
            b.iter(|| miner.fit_matrix(m).expect("mining"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaleup);
criterion_main!(benches);
