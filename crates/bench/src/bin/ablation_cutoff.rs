//! Ablation (beyond the paper): sensitivity of `GE_1` to the energy
//! cutoff of Eq. 1.
//!
//! The paper fixes the "simplest textbook heuristic" of 85%. This sweep
//! shows how the guessing error and the retained `k` move as the
//! threshold varies from 50% to 99%, plus fixed-k rows for context —
//! useful for judging whether the 85% default is doing real work.

use bench::{format_table, ge1_pair, train_contenders, PaperDataset, EXPERIMENT_SEED};
use ratio_rules::cutoff::Cutoff;

fn main() {
    println!("== Ablation: energy-cutoff sweep (GE_1, 90/10 split) ==");
    for ds in PaperDataset::ALL {
        let data = ds.load(EXPERIMENT_SEED).expect("dataset");
        let mut rows = Vec::new();
        for f in [0.50, 0.70, 0.85, 0.95, 0.99] {
            let c = train_contenders(&data, Cutoff::EnergyFraction(f), EXPERIMENT_SEED).expect("contenders");
            let (rr, ca) = ge1_pair(&c).expect("GE1");
            rows.push(vec![
                format!("energy {:.0}%", f * 100.0),
                c.rr.rules().k().to_string(),
                format!("{rr:.4}"),
                format!("{:.1}%", 100.0 * rr / ca),
            ]);
        }
        for k in [1usize, 2, 3] {
            let c = train_contenders(&data, Cutoff::FixedK(k), EXPERIMENT_SEED).expect("contenders");
            let (rr, ca) = ge1_pair(&c).expect("GE1");
            rows.push(vec![
                format!("fixed k={k}"),
                c.rr.rules().k().to_string(),
                format!("{rr:.4}"),
                format!("{:.1}%", 100.0 * rr / ca),
            ]);
        }
        println!("\n-- '{}' --", ds.name());
        println!(
            "{}",
            format_table(&["cutoff", "k", "GE1(RR)", "RR/col-avgs"], &rows)
        );
    }
}
