//! Numerical ablation: where does the paper's single-pass covariance
//! formula lose accuracy?
//!
//! The Fig. 2(a) raw-moment update `C -= N * avg_j * avg_l` is subject to
//! catastrophic cancellation when column means dwarf the variance. This
//! sweep shifts the same correlated dataset by increasing offsets and
//! compares the first Ratio Rule mined three ways:
//!
//! * single-pass raw moments (the paper's algorithm);
//! * two-pass centered covariance;
//! * SVD of the centered matrix (gold standard — no squaring at all).
//!
//! Reported: angular error of RR1 against the gold standard, in degrees.

use bench::format_table;
use linalg::Matrix;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::{fit_svd, RatioRuleMiner};

fn angle_deg(a: &[f64], b: &[f64]) -> f64 {
    linalg::vector::cosine(a, b)
        .map(|c| c.abs().min(1.0).acos().to_degrees())
        .unwrap_or(90.0)
}

fn main() {
    println!("== Numerical ablation: RR1 error vs column-mean magnitude ==\n");
    let n = 500usize;
    let mut rows = Vec::new();
    for exp in [0i32, 2, 4, 6, 8, 10] {
        let shift = 10f64.powi(exp);
        let x = Matrix::from_fn(n, 3, |i, j| {
            let t = (i as f64 / 40.0).sin();
            let noise = ((i * 13 + j * 7) % 11) as f64 * 1e-3;
            shift + t * [3.0, 2.0, 1.0][j] + noise
        });

        // Gold standard: SVD of the centered matrix.
        let gold = fit_svd(&x, Cutoff::FixedK(1), None).expect("svd mining");
        let gold_v = &gold.rule(0).loadings;

        // The paper's single-pass path.
        let single = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .expect("single-pass mining");

        // Two-pass covariance then eigensolve.
        let c2 = dataset::stats::covariance_two_pass(&x).expect("two-pass");
        let eig = linalg::eigen::SymmetricEigen::new(&c2).expect("eigen");
        let two_pass_v = eig.eigenvector(0);

        rows.push(vec![
            format!("1e{exp}"),
            format!("{:.2e}", angle_deg(&single.rule(0).loadings, gold_v)),
            format!("{:.2e}", angle_deg(&two_pass_v, gold_v)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["column mean", "single-pass err (deg)", "two-pass err (deg)"],
            &rows
        )
    );
    println!("Expected: all three agree at small means; the single-pass raw-moment");
    println!("formula degrades as means grow (cancellation), the centered paths hold.");
    println!("The paper's dollar-amount regime (means ~ 1e0-1e3) is safely inside");
    println!("the accurate zone, which is why the single-pass trade-off is sound.");
}
