//! Runs every experiment binary in sequence — the one-command
//! regeneration of all the paper's tables and figures (EXPERIMENTS.md is
//! written from this output).
//!
//! Each experiment also lives as its own binary for selective runs:
//! `cargo run --release -p bench --bin fig7_prediction_accuracy`, etc.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig7_prediction_accuracy",
    "fig6_error_stability",
    "table2_interpretation",
    "fig9_scatter",
    "fig11_nba_views",
    "fig12_extrapolation",
    "fig8_scaleup",
    "ablation_cutoff",
    "model_cards",
    "compactness",
    "mlr_baseline",
    "ablation_numerics",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("target dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n######## {name} ########\n");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed.", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
