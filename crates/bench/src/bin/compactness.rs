//! Sec. 6.3 compactness claim: "a single Ratio Rule captures the
//! correlations, while several minimum bounding rectangles are needed by
//! the quantitative association rules to convey the same information."
//!
//! Measured on linearly correlated data at increasing attribute counts:
//! model size (floats stored) and the number of rules each paradigm
//! needs, at matched prediction ability (both evaluated with `GE_1`
//! where applicable).

use assoc::quantitative::QuantitativeMiner;
use bench::format_table;
use linalg::Matrix;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;

/// Linearly correlated data: every attribute proportional to a latent t.
fn linear_data(n: usize, m: usize) -> Matrix {
    Matrix::from_fn(n, m, |i, j| {
        let t = 1.0 + (i % 40) as f64 * 0.25;
        let slope = 0.5 + j as f64 * 0.35;
        t * slope + ((i * 13 + j * 7) % 5) as f64 * 0.02
    })
}

fn main() {
    println!("== Sec. 6.3: description compactness on linearly correlated data ==\n");
    let mut rows = Vec::new();
    for m in [2usize, 4, 8, 12] {
        let x = linear_data(400, m);

        let rr = RatioRuleMiner::new(Cutoff::default())
            .fit_matrix(&x)
            .expect("rr");
        // Model size: k loading vectors of length M, plus M means.
        let rr_floats = rr.k() * m + m;

        let quant = QuantitativeMiner {
            intervals: 4,
            min_support: 0.05,
            min_confidence: 0.6,
        }
        .mine(&x)
        .expect("quant");
        // Each quantitative rule stores 2 bounds per involved attribute.
        let q_floats: usize = quant
            .rules
            .iter()
            .map(|r| 2 * (r.antecedent.len() + r.consequent.len()))
            .sum();

        rows.push(vec![
            m.to_string(),
            format!("{} rule(s) / {} floats", rr.k(), rr_floats),
            format!("{} rules / {} floats", quant.rules.len(), q_floats),
            format!("{:.0}x", q_floats as f64 / rr_floats as f64),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "attributes M",
                "Ratio Rules",
                "quantitative rules",
                "size ratio"
            ],
            &rows
        )
    );
    println!("Paper's claim: the rectangle count (and model size) grows with the");
    println!("attribute count while a single Ratio Rule suffices on linear data.");
}
