//! Figure 11: scatter plot of 'nba' — two 2-d orthogonal RR views.
//!
//! The paper projects the 459 x 12 table onto (RR1, RR2) and (RR2, RR3):
//! most points hug the first axis; Michael Jordan and Dennis Rodman stick
//! out of view (a), Muggsy Bogues and Karl Malone out of view (b). Our
//! planted analogues must appear among the extremes.

use bench::{PaperDataset, EXPERIMENT_SEED};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::visualize::project_2d;

fn main() {
    let data = PaperDataset::Nba.load(EXPERIMENT_SEED).expect("dataset");
    let rules = RatioRuleMiner::new(Cutoff::FixedK(3))
        .fit_data(&data)
        .expect("mining");

    let named: Vec<usize> = data
        .row_labels()
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.ends_with("-like").then_some(i))
        .collect();

    println!("== Figure 11(a): side view, RR1 (x) vs RR2 (y) ==");
    let side = project_2d(&rules, data.matrix(), 0, 1).expect("projection");
    println!("{}", side.ascii_plot(70, 22, &named));

    println!("== Figure 11(b): front view, RR2 (x) vs RR3 (y) ==");
    let front = project_2d(&rules, data.matrix(), 1, 2).expect("projection");
    println!("{}", front.ascii_plot(70, 22, &named));

    println!(
        "labels: A = {}, B = {}, C = {}",
        data.row_labels()[named[0]],
        data.row_labels()[named[1]],
        data.row_labels()[named[2]]
    );

    let extremes = side.extremes(5);
    println!("\nmost extreme players in view (a): ");
    for &i in &extremes {
        let (x, y) = side.points[i];
        println!("  {:>14}  ({x:8.1}, {y:8.1})", data.row_labels()[i]);
    }
    let found = named.iter().filter(|i| extremes.contains(i)).count();
    println!("\n{found}/2+ planted outliers among the top-5 extremes (paper: Jordan & Rodman).");
}
