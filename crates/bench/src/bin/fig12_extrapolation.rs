//! Figure 12: Ratio Rules vs quantitative association rules on
//! extrapolation.
//!
//! The paper's fictitious bread/butter dataset: quantitative rules carve
//! the cloud into bounding rectangles and cannot answer "a customer
//! bought $8.50 of bread — how much butter?" because no rectangle covers
//! bread = 8.5; Ratio Rules extrapolate along RR1 and answer ~$6.10.

use assoc::predict::{predict_hole, PredictOutcome};
use assoc::quantitative::QuantitativeMiner;
use dataset::holes::HoledRow;
use linalg::Matrix;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::reconstruct::fill_holes;

/// The fictitious dataset: bread in [1, 8], butter ~ 0.7176 * bread with
/// a little scatter, echoing the figure's cloud and its RR1 slope
/// (prediction 6.1 at bread 8.5).
fn fictitious() -> Matrix {
    Matrix::from_fn(64, 2, |i, j| {
        let bread = 1.0 + 7.0 * ((i % 32) as f64) / 31.0;
        let wiggle = 0.15 * (((i * 7) % 5) as f64 - 2.0) / 2.0;
        if j == 0 {
            bread
        } else {
            0.7176 * bread + wiggle
        }
    })
}

fn main() {
    let x = fictitious();
    let given_bread = 8.5;

    println!("== Figure 12: prediction for bread = ${given_bread} ==\n");

    // (a) Quantitative association rules.
    let model = QuantitativeMiner {
        intervals: 4,
        min_support: 0.05,
        min_confidence: 0.5,
    }
    .mine(&x)
    .expect("quantitative mining");
    // Bounded rectangles only — the figure draws finite boxes; equi-depth
    // partitioning leaves the outermost interval unbounded, which would
    // let it fire on any extreme value and misrepresent the method.
    let mut bounded = model.clone();
    bounded.rules.retain(|r| {
        r.antecedent
            .iter()
            .all(|a| a.lo.is_finite() && a.hi.is_finite())
            && r.consequent
                .iter()
                .all(|c| c.lo.is_finite() && c.hi.is_finite())
    });
    println!(
        "quantitative rules mined: {} ({} with bounded rectangles)",
        model.rules.len(),
        bounded.rules.len()
    );
    for r in bounded.rules.iter().take(5) {
        println!("  {r}");
    }
    let outcome = predict_hole(&bounded, &[Some(given_bread), None], 1).expect("predict");
    match outcome {
        PredictOutcome::NoRuleFires => {
            println!(
                "\nquantitative rules: NO RULE FIRES at bread = {given_bread} -> no prediction"
            )
        }
        PredictOutcome::Predicted { value, rules_fired } => {
            println!("\nquantitative rules: predicted {value:.2} ({rules_fired} rules)")
        }
    }

    // Interpolation sanity check: inside the cloud they do fire.
    let inside = predict_hole(&bounded, &[Some(4.0), None], 1).expect("predict");
    println!("(control at bread = 4.00, inside the data: {inside:?})");

    // (b) Ratio Rules.
    let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
        .fit_matrix(&x)
        .expect("mining");
    let v = &rules.rule(0).loadings;
    println!(
        "\nRR1 direction: bread : butter = {:.2} : {:.2}",
        v[0], v[1]
    );
    let filled = fill_holes(&rules, &HoledRow::new(vec![Some(given_bread), None])).expect("fill");
    println!(
        "Ratio Rules: predicted butter = ${:.2} (paper: $6.10)",
        filled.values[1]
    );
}
