//! Figure 6: guessing error vs. number of holes (error stability).
//!
//! The paper plots `GE_h` for `h = 1..5` on `nba` and `baseball` (abalone
//! "similar, omitted for brevity"), showing that the Ratio-Rules error is
//! relatively stable in `h` and below col-avgs, whose `GE_h` is constant
//! in `h` by construction. We print all three datasets.

use bench::{format_table, ge_curves, train_contenders, PaperDataset, EXPERIMENT_SEED};
use ratio_rules::cutoff::Cutoff;

fn main() {
    println!("== Figure 6: GE_h vs h (1..5), RR vs col-avgs (90/10 split) ==");
    for ds in PaperDataset::ALL {
        let data = ds.load(EXPERIMENT_SEED).expect("dataset");
        let c = train_contenders(&data, Cutoff::default(), EXPERIMENT_SEED).expect("contenders");
        let curves = ge_curves(&c, 5).expect("curves");
        let rows: Vec<Vec<String>> = curves
            .iter()
            .map(|&(h, rr, ca)| {
                vec![
                    h.to_string(),
                    format!("{rr:.4}"),
                    format!("{ca:.4}"),
                    format!("{:.1}%", 100.0 * rr / ca),
                ]
            })
            .collect();
        println!("\n-- '{}' (k = {}) --", ds.name(), c.rr.rules().k());
        println!(
            "{}",
            format_table(
                &["holes h", "GE_h(RR)", "GE_h(col-avgs)", "RR/col-avgs"],
                &rows
            )
        );
    }
    println!("Paper's shape: col-avgs flat in h; RR below it and roughly stable for h <= 5.");
}
