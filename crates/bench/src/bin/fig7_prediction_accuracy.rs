//! Figure 7: relative guessing error over the three datasets.
//!
//! The paper plots the `GE_1` of Ratio Rules normalized by the `GE_1` of
//! col-avgs (whose own bar is 100% by construction) for `nba`, `baseball`
//! and `abalone`, reporting RR "as low as one-fifth the guessing error"
//! on the most linearly correlated dataset.

use bench::{format_table, ge1_pair, train_contenders, PaperDataset, EXPERIMENT_SEED};
use ratio_rules::cutoff::Cutoff;

fn main() {
    println!("== Figure 7: GE_1 of RR relative to col-avgs (90/10 split) ==\n");
    let mut rows = Vec::new();
    for ds in PaperDataset::ALL {
        let data = ds.load(EXPERIMENT_SEED).expect("dataset");
        let c = train_contenders(&data, Cutoff::default(), EXPERIMENT_SEED).expect("contenders");
        let (rr, ca) = ge1_pair(&c).expect("GE1");
        let percent = 100.0 * rr / ca;
        rows.push(vec![
            ds.name().to_string(),
            format!("{}", c.rr.rules().k()),
            format!("{:.1}%", c.rr.rules().retained_energy() * 100.0),
            format!("{rr:.4}"),
            format!("{ca:.4}"),
            format!("{percent:.1}%"),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "dataset",
                "k",
                "energy",
                "GE1(RR)",
                "GE1(col-avgs)",
                "RR/col-avgs"
            ],
            &rows
        )
    );
    println!("col-avgs normalized bar is 100% for every dataset by definition.");
    println!("Paper's shape: RR wins everywhere, down to ~20% on the most linear dataset.");
}
