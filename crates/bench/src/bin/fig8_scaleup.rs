//! Figure 8: scale-up — time to compute Ratio Rules vs. database size N.
//!
//! The paper times rule computation on a Quest-generated 100,000 x 100
//! matrix, sweeping N from 10k to 100k, and reports a straight line whose
//! intercept (the `O(M^3)` eigensolve) is negligible. We regenerate the
//! same sweep on the Quest-like workload. Pre-generated data is timed
//! only for the mining pass (as in the paper, which times the rule
//! computation, not data generation).

use bench::format_table;
use dataset::synth::quest::{generate, QuestConfig};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use std::time::Instant;

fn main() {
    println!("== Figure 8: scale-up, time to compute RRs vs N (M = 100) ==\n");
    // Generate the largest matrix once; prefixes give the smaller N.
    let full_n = 100_000usize;
    let cfg = QuestConfig {
        n_rows: full_n,
        n_items: 100,
        ..QuestConfig::default()
    };
    eprintln!("generating {full_n} x 100 Quest-like matrix...");
    let data = generate(&cfg, 0xF168).expect("quest generation");
    let matrix = data.matrix();

    let miner = RatioRuleMiner::new(Cutoff::default());
    let mut rows = Vec::new();
    let mut first_time_per_row = None;
    for n in (1..=10).map(|i| i * full_n / 10) {
        let prefix = matrix.select_rows(&(0..n).collect::<Vec<_>>());
        let start = Instant::now();
        let rules = miner.fit_matrix(&prefix).expect("mining");
        let secs = start.elapsed().as_secs_f64();
        let per_row = secs / n as f64;
        first_time_per_row.get_or_insert(per_row);
        rows.push(vec![
            n.to_string(),
            format!("{secs:.3}"),
            format!("{:.2}", 1e6 * per_row),
            rules.k().to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(&["N (rows)", "time (s)", "us/row", "k kept"], &rows)
    );
    println!("Paper's shape: time grows linearly in N; the O(M^3) eigensolve");
    println!("intercept is negligible (us/row roughly constant across the sweep).");
}
