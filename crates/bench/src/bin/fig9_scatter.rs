//! Figure 9: scatter plots of 'baseball' and 'abalone' in 2-d RR space.
//!
//! The paper's point is visual: projecting onto the top two rules reveals
//! the datasets' structure (both strongly elongated along RR1). We print
//! ASCII scatter plots plus the variance anisotropy, which quantifies the
//! "elongated along the first rule" shape.

use bench::{PaperDataset, EXPERIMENT_SEED};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::visualize::project_2d;

fn main() {
    for ds in [PaperDataset::Baseball, PaperDataset::Abalone] {
        let data = ds.load(EXPERIMENT_SEED).expect("dataset");
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_data(&data)
            .expect("mining");
        let proj = project_2d(&rules, data.matrix(), 0, 1).expect("projection");

        println!("== Figure 9: '{}' in 2-d RR space ==", ds.name());
        println!("{}", proj.ascii_plot(70, 20, &[]));

        let n = proj.points.len() as f64;
        let (mx, my) = proj
            .points
            .iter()
            .fold((0.0, 0.0), |(ax, ay), &(x, y)| (ax + x / n, ay + y / n));
        let (vx, vy) = proj.points.iter().fold((0.0, 0.0), |(ax, ay), &(x, y)| {
            (ax + (x - mx) * (x - mx) / n, ay + (y - my) * (y - my) / n)
        });
        println!(
            "variance along RR1 = {vx:.2}, along RR2 = {vy:.2} (anisotropy {:.1}x)\n",
            vx / vy.max(1e-12)
        );
    }
    println!("Paper's shape: both clouds elongated along RR1 (large anisotropy).");
}
