//! Multiple linear regression vs Ratio Rules (paper Sec. 5, "Methods").
//!
//! The paper dismisses MLR as "remotely related": it predicts one
//! specified column when everything else is known, whereas Ratio Rules
//! handle "arbitrary choices of arbitrary numbers of missing columns".
//! This experiment quantifies that: at `h = 1` MLR is a strong baseline
//! (often comparable to RR); as `h` grows, MLR's best practical
//! workaround (mean-filling the other missing predictors) degrades while
//! RR stays stable — the paper's generality argument, measured.

use bench::{format_table, PaperDataset, EXPERIMENT_SEED};
use dataset::split::train_test_split;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::guessing::GuessingErrorEvaluator;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::predictor::{ColAvgs, RuleSetPredictor};
use ratio_rules::regression::{LinearRegressionPredictor, MissingPolicy};

fn main() {
    println!("== MLR vs Ratio Rules: GE_h for h = 1..5 (90/10 split) ==");
    for ds in PaperDataset::ALL {
        let data = ds.load(EXPERIMENT_SEED).expect("dataset");
        let split = train_test_split(&data, 0.9, EXPERIMENT_SEED).expect("split");
        let rules = RatioRuleMiner::new(Cutoff::default())
            .fit_data(&split.train)
            .expect("mining");
        let rr = RuleSetPredictor::new(rules);
        let mlr = LinearRegressionPredictor::fit(split.train.matrix(), MissingPolicy::MeanFallback)
            .expect("MLR fit");
        let ca = ColAvgs::fit(split.train.matrix()).expect("col-avgs");
        let ev = GuessingErrorEvaluator::default();
        let test = split.test.matrix();

        let mut rows = Vec::new();
        for h in 1..=5 {
            let ge_rr = ev.ge_h(&rr, test, h).expect("rr");
            let ge_mlr = ev.ge_h(&mlr, test, h).expect("mlr");
            let ge_ca = ev.ge_h(&ca, test, h).expect("ca");
            rows.push(vec![
                h.to_string(),
                format!("{ge_rr:.4}"),
                format!("{ge_mlr:.4}"),
                format!("{ge_ca:.4}"),
                format!("{:.2}x", ge_mlr / ge_rr),
            ]);
        }
        println!("\n-- '{}' --", ds.name());
        println!(
            "{}",
            format_table(
                &[
                    "holes h",
                    "GE(RR)",
                    "GE(MLR+meanfill)",
                    "GE(col-avgs)",
                    "MLR/RR"
                ],
                &rows
            )
        );
    }
    println!("Expected shape: MLR competitive at h = 1 and worsening relative to RR");
    println!("as h grows — Ratio Rules solve all holes jointly, MLR cannot.");
}
