//! Model cards for the three paper datasets (beyond-paper diagnostics).
//!
//! The paper's Sec. 4.3 argues the guessing error lets an end-user judge
//! whether "the derived rules have captured the essence of this
//! dataset". The model card makes that per-attribute: which columns the
//! mined rules actually explain, and which carry variance the rules
//! cannot see.

use bench::{PaperDataset, EXPERIMENT_SEED};
use dataset::split::train_test_split;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::diagnostics::ModelCard;
use ratio_rules::miner::RatioRuleMiner;

fn main() {
    println!("== Model cards: per-attribute guessing error, RR vs col-avgs ==");
    for ds in PaperDataset::ALL {
        let data = ds.load(EXPERIMENT_SEED).expect("dataset");
        let split = train_test_split(&data, 0.9, EXPERIMENT_SEED).expect("split");
        let rules = RatioRuleMiner::new(Cutoff::default())
            .fit_data(&split.train)
            .expect("mining");
        let card = ModelCard::evaluate(&rules, split.test.matrix()).expect("card");
        println!("\n-- '{}' --", ds.name());
        println!("{}", card.render());
        let unexplained = card.unexplained_attributes();
        if unexplained.is_empty() {
            println!("every attribute is predicted better than its column average.");
        } else {
            println!("attributes the rules do not explain: {unexplained:?}");
        }
    }
}
