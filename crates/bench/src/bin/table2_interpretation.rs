//! Table 2 + Sec. 6.2: the first three Ratio Rules of `nba`, interpreted.
//!
//! The paper reads RR1 as "court action" (all statistics load together,
//! minutes : points about 2 : 1), RR2 as "field position" (rebounds
//! against points), and RR3 as "height" (rebounds/blocks against
//! assists/steals). This binary mines the nba-like dataset, prints the
//! Table-2 loadings matrix, the per-rule histograms (Fig. 10 step 3), and
//! checks the three sign structures programmatically.

use bench::{PaperDataset, EXPERIMENT_SEED};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::interpret;
use ratio_rules::miner::RatioRuleMiner;

fn main() {
    let data = PaperDataset::Nba.load(EXPERIMENT_SEED).expect("dataset");
    let rules = RatioRuleMiner::new(Cutoff::FixedK(3))
        .fit_data(&data)
        .expect("mining");

    println!("== Table 2: relative values of the first three RRs of 'nba' ==\n");
    println!("{}", interpret::table(&rules, 0.05));

    for i in 0..3 {
        println!("{}", interpret::histogram(&rules, i, 40));
    }

    // The paper's qualitative readings, verified.
    let idx = |label: &str| {
        data.col_index(label)
            .unwrap_or_else(|| panic!("missing attribute {label}"))
    };
    let minutes = idx("minutes played");
    let points = idx("points");
    let rebounds = idx("total rebounds");
    let assists = idx("assists");

    let rr1 = &rules.rule(0).loadings;
    println!(
        "RR1 'court action': minutes {:.3}, points {:.3} (ratio {:.2} : 1)",
        rr1[minutes],
        rr1[points],
        rr1[minutes] / rr1[points]
    );
    assert!(
        rr1[minutes] > 0.0 && rr1[points] > 0.0,
        "RR1 must be a volume factor"
    );

    let rr2 = &rules.rule(1).loadings;
    println!(
        "RR2 'field position': rebounds {:.3} vs points {:.3} (opposite signs: {})",
        rr2[rebounds],
        rr2[points],
        rr2[rebounds] * rr2[points] < 0.0
    );

    let rr3 = &rules.rule(2).loadings;
    println!(
        "RR3 'height': rebounds {:.3} vs assists {:.3} (opposite signs: {})",
        rr3[rebounds],
        rr3[assists],
        rr3[rebounds] * rr3[assists] < 0.0
    );
}
