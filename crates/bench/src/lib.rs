//! Shared machinery for the experiment harness.
//!
//! Every table and figure of the paper's evaluation (Sec. 5–6) has a
//! binary in `src/bin/` that regenerates it; this library holds the code
//! they share: the dataset registry (the synthetic stand-ins described in
//! DESIGN.md), the standard 90/10 evaluation protocol, and plain-text
//! table/series formatting so the binaries print rows comparable to the
//! paper's plots.

#![warn(missing_docs)]

pub mod trajectory;

use dataset::split::{train_test_split, Split};
use dataset::DataMatrix;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::guessing::GuessingErrorEvaluator;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::predictor::{ColAvgs, RuleSetPredictor};
use ratio_rules::RatioRuleError;

/// Seed used by all experiments unless a binary overrides it.
pub const EXPERIMENT_SEED: u64 = 1998; // the year of the paper

/// The three evaluation datasets of Sec. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperDataset {
    /// 459 x 12 basketball statistics.
    Nba,
    /// 1574 x 17 batting statistics.
    Baseball,
    /// 4177 x 7 physical measurements.
    Abalone,
}

impl PaperDataset {
    /// All three, in the paper's order.
    pub const ALL: [PaperDataset; 3] = [
        PaperDataset::Nba,
        PaperDataset::Baseball,
        PaperDataset::Abalone,
    ];

    /// The dataset's name as the paper prints it.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Nba => "nba",
            PaperDataset::Baseball => "baseball",
            PaperDataset::Abalone => "abalone",
        }
    }

    /// Generates the synthetic stand-in (see DESIGN.md, "Substitutions").
    ///
    /// # Errors
    /// Propagates generator failures; these indicate a broken synthesizer
    /// configuration, not bad user input, so binaries typically surface
    /// them and exit non-zero rather than recovering.
    pub fn load(&self, seed: u64) -> Result<DataMatrix, RatioRuleError> {
        Ok(match self {
            PaperDataset::Nba => dataset::synth::sports::nba_like(seed)?.0,
            PaperDataset::Baseball => dataset::synth::sports::baseball_like(seed)?,
            PaperDataset::Abalone => dataset::synth::abalone::abalone_like(seed)?,
        })
    }
}

/// A trained pair of contenders on one dataset split: the paper's method
/// and its baseline, both fit on the training portion.
pub struct Contenders {
    /// The 90/10 split used.
    pub split: Split,
    /// Ratio Rules predictor (85% energy cutoff unless overridden).
    pub rr: RuleSetPredictor,
    /// Column-averages baseline.
    pub col_avgs: ColAvgs,
}

/// Runs the paper's standard protocol: 90/10 split, mine RRs on train
/// with the given cutoff, fit col-avgs on train.
///
/// # Errors
/// Fails when the split is degenerate (too few rows), mining fails on
/// the training portion, or the column-averages fit does.
pub fn train_contenders(
    data: &DataMatrix,
    cutoff: Cutoff,
    seed: u64,
) -> Result<Contenders, RatioRuleError> {
    let split = train_test_split(data, 0.9, seed)?;
    let rules = RatioRuleMiner::new(cutoff).fit_data(&split.train)?;
    let rr = RuleSetPredictor::new(rules);
    let col_avgs = ColAvgs::fit(split.train.matrix())?;
    Ok(Contenders {
        split,
        rr,
        col_avgs,
    })
}

/// `GE_1` of both contenders on the held-out test portion.
/// Returns `(ge1_rr, ge1_colavgs)`.
///
/// # Errors
/// Propagates evaluator failures (e.g. a test matrix whose width does
/// not match the trained predictors).
pub fn ge1_pair(c: &Contenders) -> Result<(f64, f64), RatioRuleError> {
    let ev = GuessingErrorEvaluator::default();
    let test = c.split.test.matrix();
    let rr = ev.ge1(&c.rr, test)?;
    let ca = ev.ge1(&c.col_avgs, test)?;
    Ok((rr, ca))
}

/// `GE_h` curves for both contenders, `h = 1..=h_max`.
/// Returns rows of `(h, ge_rr, ge_colavgs)`.
///
/// # Errors
/// Propagates evaluator failures (e.g. `h` exceeding the attribute
/// count, or a mismatched test matrix).
pub fn ge_curves(
    c: &Contenders,
    h_max: usize,
) -> Result<Vec<(usize, f64, f64)>, RatioRuleError> {
    let ev = GuessingErrorEvaluator::default();
    let test = c.split.test.matrix();
    let mut rows = Vec::with_capacity(h_max);
    for h in 1..=h_max {
        let rr = ev.ge_h(&c.rr, test, h)?;
        let ca = ev.ge_h(&c.col_avgs, test, h)?;
        rows.push((h, rr, ca));
    }
    Ok(rows)
}

/// Formats a simple aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (j, cell) in row.iter().enumerate().take(cols) {
            widths[j] = widths[j].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_registry_shapes() {
        let nba = PaperDataset::Nba.load(1).unwrap();
        assert_eq!((nba.n_rows(), nba.n_cols()), (459, 12));
        let bb = PaperDataset::Baseball.load(1).unwrap();
        assert_eq!((bb.n_rows(), bb.n_cols()), (1574, 17));
        let ab = PaperDataset::Abalone.load(1).unwrap();
        assert_eq!((ab.n_rows(), ab.n_cols()), (4177, 7));
        assert_eq!(PaperDataset::Nba.name(), "nba");
    }

    #[test]
    fn contenders_protocol_is_90_10() {
        let data = PaperDataset::Nba.load(EXPERIMENT_SEED).unwrap();
        let c = train_contenders(&data, Cutoff::default(), EXPERIMENT_SEED).unwrap();
        let n = data.n_rows();
        assert_eq!(c.split.train.n_rows(), n * 9 / 10);
        assert_eq!(c.split.test.n_rows(), n - n * 9 / 10);
        assert!(c.rr.rules().k() >= 1);
    }

    #[test]
    fn rr_beats_baseline_on_abalone() {
        // The headline claim, kept as a regression test: the near-rank-1
        // dataset gives RR a large win.
        let data = PaperDataset::Abalone.load(EXPERIMENT_SEED).unwrap();
        let c = train_contenders(&data, Cutoff::default(), EXPERIMENT_SEED).unwrap();
        let (rr, ca) = ge1_pair(&c).unwrap();
        assert!(rr < ca * 0.5, "RR {rr} vs col-avgs {ca}");
    }

    #[test]
    fn format_table_aligns() {
        let t = format_table(
            &["dataset", "GE1"],
            &[
                vec!["nba".into(), "0.50".into()],
                vec!["abalone".into(), "0.20".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("dataset"));
        assert!(lines[2].ends_with("0.50"));
    }
}
