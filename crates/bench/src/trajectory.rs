//! Machine-readable benchmark trajectory: `BENCH_*.json` files at the
//! repo root.
//!
//! Criterion's HTML/stdout output is great for humans but awkward for
//! tracking performance *across commits*. Each bench binary additionally
//! runs a small fixed workload through [`measure`] and appends the
//! medians to a `BENCH_<name>.json` file at the repository root, so the
//! numbers live in version control next to the code that produced them.
//! Derived ratios (e.g. "solver cache speedup over the factor-per-row
//! path") are first-class so acceptance bars are checkable with `jq`.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One measured workload.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload identifier, stable across commits.
    pub name: String,
    /// Median wall time per operation, nanoseconds.
    pub median_ns_per_op: f64,
    /// Throughput in rows (or cells) per second, when the workload has a
    /// natural row count.
    pub rows_per_s: Option<f64>,
    /// Number of timed samples the median came from.
    pub samples: usize,
}

/// A report: the records of one bench binary plus derived ratios.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Bench binary name (`reconstruction`, `covariance`, ...).
    pub bench: String,
    /// Measured workloads.
    pub records: Vec<BenchRecord>,
    /// Derived scalar metrics, e.g. speedup ratios.
    pub derived: Vec<(String, f64)>,
    /// Observability metrics captured from an instrumented pass (flat
    /// `(name, value)` pairs; histograms contribute `_count` and `_sum`).
    pub metrics: Vec<(String, f64)>,
}

/// Times `op` `samples` times (after one untimed warmup) and returns the
/// median as a [`BenchRecord`]. `rows_per_op` is the number of rows the
/// operation processes, used to derive throughput.
pub fn measure<F: FnMut()>(
    name: &str,
    samples: usize,
    rows_per_op: Option<u64>,
    mut op: F,
) -> BenchRecord {
    let samples = samples.max(1);
    op(); // warmup: page in data, warm caches (incl. solver caches)
    let mut times_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            op();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    times_ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median_ns_per_op = times_ns[times_ns.len() / 2];
    BenchRecord {
        name: name.to_string(),
        median_ns_per_op,
        rows_per_s: rows_per_op.map(|r| r as f64 * 1e9 / median_ns_per_op),
        samples,
    }
}

impl BenchReport {
    /// Starts an empty report for the named bench binary.
    pub fn new(bench: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            ..BenchReport::default()
        }
    }

    /// Appends one measured workload.
    pub fn push(&mut self, record: BenchRecord) {
        self.records.push(record);
    }

    /// Records a derived scalar (a ratio of medians, typically).
    pub fn derive(&mut self, name: &str, value: f64) {
        self.derived.push((name.to_string(), value));
    }

    /// Flattens an observability snapshot into the report's `metrics`
    /// section: counters and gauges become one entry each, histograms
    /// contribute `<name>_count` and `<name>_sum`, quantile histograms
    /// contribute `<name>_count`, `<name>_p50`, `<name>_p99`, and
    /// `<name>_max`.
    pub fn attach_metrics(&mut self, snapshot: &obs::Snapshot) {
        for (name, value) in &snapshot.metrics {
            match value {
                obs::MetricValue::Counter(v) => self.metrics.push((name.clone(), *v as f64)),
                obs::MetricValue::Gauge(v) => self.metrics.push((name.clone(), *v)),
                obs::MetricValue::Histogram { sum, count, .. } => {
                    self.metrics.push((format!("{name}_count"), *count as f64));
                    self.metrics.push((format!("{name}_sum"), *sum));
                }
                obs::MetricValue::Quantile(q) => {
                    self.metrics.push((format!("{name}_count"), q.count as f64));
                    self.metrics.push((format!("{name}_p50"), q.quantile(0.5)));
                    self.metrics.push((format!("{name}_p99"), q.quantile(0.99)));
                    self.metrics.push((format!("{name}_max"), q.max));
                }
            }
        }
    }

    /// Ratio of two already-pushed records' medians (`slow / fast`), or
    /// `None` if either name is missing.
    pub fn speedup(&self, slow: &str, fast: &str) -> Option<f64> {
        let find = |n: &str| {
            self.records
                .iter()
                .find(|r| r.name == n)
                .map(|r| r.median_ns_per_op)
        };
        Some(find(slow)? / find(fast)?)
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "bench": self.bench,
            "results": self.records.iter().map(|r| {
                serde_json::json!({
                    "name": r.name,
                    "median_ns_per_op": r.median_ns_per_op,
                    "rows_per_s": r.rows_per_s,
                    "samples": r.samples,
                })
            }).collect::<Vec<_>>(),
            "derived": self.derived.iter().map(|(name, value)| {
                serde_json::json!({ "name": name, "value": value })
            }).collect::<Vec<_>>(),
            "metrics": self.metrics.iter().map(|(name, value)| {
                serde_json::json!({ "name": name, "value": value })
            }).collect::<Vec<_>>(),
        })
    }

    /// Writes `BENCH_<bench>.json` to the repository root, resolved as
    /// `<manifest_dir>/../..` (pass `env!("CARGO_MANIFEST_DIR")`).
    /// Returns the path written.
    ///
    /// # Errors
    /// Fails when the file cannot be created or written.
    pub fn write_to_repo_root(&self, manifest_dir: &str) -> std::io::Result<PathBuf> {
        let path = Path::new(manifest_dir)
            .join("..")
            .join("..")
            .join(format!("BENCH_{}.json", self.bench));
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "{:#}", self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_positive_median_and_throughput() {
        let mut calls = 0usize;
        let rec = measure("spin", 5, Some(100), || {
            calls += 1;
            std::hint::black_box((0..1000).sum::<usize>());
        });
        assert_eq!(calls, 6); // warmup + 5 samples
        assert_eq!(rec.samples, 5);
        assert!(rec.median_ns_per_op > 0.0);
        let rows = rec.rows_per_s.expect("throughput");
        assert!((rows - 100.0 * 1e9 / rec.median_ns_per_op).abs() < 1e-6);
    }

    #[test]
    fn report_json_shape_and_speedup() {
        let mut report = BenchReport::new("demo");
        report.push(BenchRecord {
            name: "slow".into(),
            median_ns_per_op: 1000.0,
            rows_per_s: None,
            samples: 3,
        });
        report.push(BenchRecord {
            name: "fast".into(),
            median_ns_per_op: 100.0,
            rows_per_s: Some(1e6),
            samples: 3,
        });
        let speedup = report.speedup("slow", "fast").expect("both present");
        assert!((speedup - 10.0).abs() < 1e-12);
        assert!(report.speedup("slow", "missing").is_none());
        report.derive("speedup", speedup);

        let json = report.to_json();
        assert_eq!(json["bench"], "demo");
        assert_eq!(json["results"].as_array().unwrap().len(), 2);
        assert_eq!(json["results"][1]["name"], "fast");
        assert_eq!(json["derived"][0]["value"], 10.0);
        assert_eq!(json["metrics"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn attach_metrics_flattens_counters_gauges_and_histograms() {
        // A private registry keeps this test independent of the global
        // observability state other tests may touch.
        let reg = obs::Registry::new();
        reg.counter("demo_rows_total").add(7);
        reg.gauge("demo_gauge").set(1.5);
        let hist = reg.histogram("demo_hist", &[10.0, 100.0]);
        hist.observe(42.0);
        hist.observe(3.0);

        let mut report = BenchReport::new("demo");
        report.attach_metrics(&reg.snapshot());
        let find = |n: &str| {
            report
                .metrics
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, v)| *v)
        };
        assert_eq!(find("demo_rows_total"), Some(7.0));
        assert_eq!(find("demo_gauge"), Some(1.5));
        assert_eq!(find("demo_hist_count"), Some(2.0));
        assert_eq!(find("demo_hist_sum"), Some(45.0));

        let json = report.to_json();
        let metrics = json["metrics"].as_array().unwrap();
        assert_eq!(metrics.len(), 4);
        assert!(metrics
            .iter()
            .any(|m| m["name"] == "demo_gauge" && m["value"] == 1.5));
    }
}
