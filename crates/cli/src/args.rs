//! Hand-rolled argument parsing: `--flag value` and `--switch` pairs.

use crate::{CliError, Result};
use std::collections::HashMap;

/// Parsed options: flag name (without dashes) to value; boolean switches
/// map to `"true"`.
#[derive(Debug, Clone, Default)]
pub struct Options {
    values: HashMap<String, String>,
}

/// Switches every command accepts: `--help` and the observability toggle
/// `--trace`. Command-specific switches are passed to [`Options::parse`]
/// explicitly, so a flag that takes a value (like `--metrics-out`) can
/// never be mistaken for a switch — and vice versa.
pub const GLOBAL_SWITCHES: &[&str] = &["help", "trace"];

impl Options {
    /// Parses `--key value` / `--switch` pairs.
    ///
    /// `switches` lists the command's boolean flags (on top of
    /// [`GLOBAL_SWITCHES`]); anything else is a value flag. A value flag
    /// followed by another `--option` is rejected rather than silently
    /// swallowing it, which catches both "switch missing from the set"
    /// bugs and users who forgot the value.
    pub fn parse(args: &[String], switches: &[&str]) -> Result<Options> {
        let mut values = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::new(format!(
                    "unexpected positional argument {arg:?}; options are --key value"
                )));
            };
            if switches.contains(&name) || GLOBAL_SWITCHES.contains(&name) {
                values.insert(name.to_string(), "true".to_string());
                i += 1;
            } else {
                let Some(value) = args.get(i + 1) else {
                    return Err(CliError::new(format!("option --{name} needs a value")));
                };
                if value.starts_with("--") {
                    return Err(CliError::new(format!(
                        "option --{name} needs a value but got {value:?}"
                    )));
                }
                values.insert(name.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(Options { values })
    }

    /// True when a boolean switch is present.
    pub fn switch(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Raw string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<&str> {
        self.get(name)
            .ok_or_else(|| CliError::new(format!("missing required option --{name}")))
    }

    /// Optional typed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| CliError::new(format!("option --{name}: cannot parse {s:?}"))),
        }
    }

    /// Rejects unknown option names (catches typos).
    pub fn allow_only(&self, allowed: &[&str]) -> Result<()> {
        for key in self.values.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(CliError::new(format!(
                    "unknown option --{key}; allowed: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Parses a cutoff spec: either `--k N` or `--energy F` (default 0.85).
pub fn parse_cutoff(opts: &Options) -> Result<ratio_rules::cutoff::Cutoff> {
    use ratio_rules::cutoff::Cutoff;
    match (opts.get("k"), opts.get("energy")) {
        (Some(_), Some(_)) => Err(CliError::new("pass either --k or --energy, not both")),
        (Some(k), None) => {
            let k: usize = k
                .parse()
                .map_err(|_| CliError::new(format!("--k: cannot parse {k:?}")))?;
            Ok(Cutoff::FixedK(k))
        }
        (None, Some(f)) => {
            let f: f64 = f
                .parse()
                .map_err(|_| CliError::new(format!("--energy: cannot parse {f:?}")))?;
            Ok(Cutoff::EnergyFraction(f))
        }
        (None, None) => Ok(Cutoff::default()),
    }
}

/// Parses a record with holes: comma-separated, `?` marks a hole.
pub fn parse_holed_row(spec: &str) -> Result<Vec<Option<f64>>> {
    spec.split(',')
        .map(str::trim)
        .map(|tok| {
            if tok == "?" {
                Ok(None)
            } else {
                tok.parse::<f64>().map(Some).map_err(|_| {
                    CliError::new(format!("cannot parse cell {tok:?} (use '?' for holes)"))
                })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratio_rules::cutoff::Cutoff;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn opts(args: &[&str]) -> Options {
        Options::parse(&strings(args), &["no-header"]).unwrap()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let o = opts(&["--input", "x.csv", "--no-header", "--k", "3"]);
        assert_eq!(o.get("input"), Some("x.csv"));
        assert!(o.switch("no-header"));
        assert!(!o.switch("json"));
        assert_eq!(o.get_parsed::<usize>("k", 1).unwrap(), 3);
        assert_eq!(o.get_parsed::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_positionals_and_dangling() {
        assert!(Options::parse(&strings(&["x.csv"]), &[]).is_err());
        assert!(Options::parse(&strings(&["--input"]), &[]).is_err());
    }

    #[test]
    fn switch_sets_are_per_command() {
        // "no-header" is only a switch when the command says so; for a
        // command that doesn't list it, it demands a value.
        let o = Options::parse(&strings(&["--no-header", "csv"]), &[]).unwrap();
        assert_eq!(o.get("no-header"), Some("csv"));
        // Global switches work regardless of the per-command set.
        let o = Options::parse(&strings(&["--trace", "--help"]), &[]).unwrap();
        assert!(o.switch("trace"));
        assert!(o.switch("help"));
    }

    #[test]
    fn value_flags_never_swallow_options() {
        // A value flag followed by another --option is an error, not a
        // silently consumed "value".
        let err = Options::parse(&strings(&["--metrics-out", "--trace"]), &[]).unwrap_err();
        assert!(err.to_string().contains("--metrics-out"));
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn require_and_allow_only() {
        let o = opts(&["--input", "x.csv"]);
        assert_eq!(o.require("input").unwrap(), "x.csv");
        assert!(o.require("output").is_err());
        assert!(o.allow_only(&["input"]).is_ok());
        assert!(o.allow_only(&["output"]).is_err());
    }

    #[test]
    fn cutoff_parsing() {
        assert_eq!(
            parse_cutoff(&opts(&[])).unwrap(),
            Cutoff::EnergyFraction(0.85)
        );
        assert_eq!(
            parse_cutoff(&opts(&["--k", "2"])).unwrap(),
            Cutoff::FixedK(2)
        );
        assert_eq!(
            parse_cutoff(&opts(&["--energy", "0.9"])).unwrap(),
            Cutoff::EnergyFraction(0.9)
        );
        assert!(parse_cutoff(&opts(&["--k", "2", "--energy", "0.9"])).is_err());
        assert!(parse_cutoff(&opts(&["--k", "two"])).is_err());
    }

    #[test]
    fn holed_row_parsing() {
        let row = parse_holed_row("1.5, ?, 3").unwrap();
        assert_eq!(row, vec![Some(1.5), None, Some(3.0)]);
        assert!(parse_holed_row("1.5, x").is_err());
    }
}
