//! Subcommand implementations. Each takes parsed [`Options`] and returns
//! the text to print, so tests can drive them without spawning
//! processes.

use crate::args::{parse_cutoff, parse_holed_row, Options};
use crate::{CliError, Result};
use dataset::fault::{FaultPlan, FaultyRowSource};
use dataset::holes::HoledRow;
use dataset::retry::{BackoffPolicy, RetryingSource};
use dataset::source::RowSource;
use dataset::split::train_test_split;
use ratio_rules::guessing::GuessingErrorEvaluator;
use ratio_rules::interpret;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::outlier::OutlierDetector;
use ratio_rules::predictor::{ColAvgs, RuleSetPredictor};
use ratio_rules::reconstruct::fill_holes;
use ratio_rules::resilience::{
    EigenStage, JacobiStage, LanczosStage, QlStage, ResilientMiner, ScanCheckpoint, ScanPolicy,
    ScanReport, Scanner, ServedModel,
};
use ratio_rules::rules::RuleSet;
use ratio_rules::visualize::project_2d;

/// Boolean switches per command, on top of
/// [`crate::args::GLOBAL_SWITCHES`]. A command missing from this table is
/// unknown. Keeping the sets explicit means a value flag added later
/// (like `--metrics-out`) can never be mis-parsed as a switch.
const COMMAND_SWITCHES: &[(&str, &[&str])] = &[
    ("mine", &["no-header", "degrade", "columnar", "flight"]),
    ("convert", &["no-header"]),
    ("interpret", &[]),
    ("fill", &[]),
    ("outliers", &["no-header"]),
    ("project", &["no-header"]),
    ("evaluate", &["no-header"]),
    ("impute", &["no-header"]),
    ("whatif", &[]),
    ("card", &["no-header"]),
    ("profile", &["no-header", "flight"]),
    ("serve", &["shed-degrade"]),
    ("serve-bench", &["quick"]),
    ("publish", &["no-activate", "shadow"]),
    ("mine-shard", &["no-header"]),
    ("mine-distributed", &["degrade", "flight"]),
];

/// Switch set for a command; `None` means the command doesn't exist.
fn switches_for(cmd: &str) -> Option<&'static [&'static str]> {
    COMMAND_SWITCHES
        .iter()
        .find(|(name, _)| *name == cmd)
        .map(|(_, switches)| *switches)
}

/// Options every command accepts (observability plumbing lives in
/// [`run`], not in the individual commands).
const OBS_OPTS: &[&str] = &["trace", "metrics-out"];

/// `allow_only` plus the global observability options.
fn allow_with_obs(opts: &Options, allowed: &[&str]) -> Result<()> {
    let mut all: Vec<&str> = allowed.to_vec();
    all.extend_from_slice(OBS_OPTS);
    opts.allow_only(&all)
}

fn load_csv(opts: &Options) -> Result<dataset::DataMatrix> {
    let path = opts.require("input")?;
    Ok(dataset::csv::read_csv_file(
        path,
        !opts.switch("no-header"),
    )?)
}

fn load_model(opts: &Options) -> Result<RuleSet> {
    let path = opts.require("model")?;
    let json = std::fs::read_to_string(path)?;
    Ok(ratio_rules::model_json::rules_from_str(&json)?)
}

/// Like [`load_model`] but accepts the degraded `{"col_avgs": ...}`
/// documents the resilience ladder writes; `serve` uses this so a
/// degraded mine still serves (with the `DEGRADED` response header).
fn load_served_model(opts: &Options) -> Result<ServedModel> {
    let path = opts.require("model")?;
    let json = std::fs::read_to_string(path)?;
    Ok(ratio_rules::model_json::model_from_str(&json)?)
}

/// Flags that switch `mine` onto the streaming, policy-aware scan path.
const RESILIENCE_FLAGS: &[&str] = &[
    "max-bad-rows",
    "max-bad-fraction",
    "retries",
    "fault-rate",
    "fault-seed",
    "checkpoint",
    "resume",
    "ladder",
];

fn resilience_requested(opts: &Options) -> bool {
    opts.switch("degrade") || RESILIENCE_FLAGS.iter().any(|f| opts.get(f).is_some())
}

/// `--max-bad-rows` / `--max-bad-fraction` → quarantine policy; neither →
/// strict (today's behaviour).
fn parse_scan_policy(opts: &Options) -> Result<ScanPolicy> {
    let max_bad_rows: Option<usize> = opts
        .get("max-bad-rows")
        .map(|s| {
            s.parse()
                .map_err(|_| CliError::new(format!("--max-bad-rows: cannot parse {s:?}")))
        })
        .transpose()?;
    let max_bad_fraction: Option<f64> = opts
        .get("max-bad-fraction")
        .map(|s| {
            s.parse()
                .map_err(|_| CliError::new(format!("--max-bad-fraction: cannot parse {s:?}")))
        })
        .transpose()?;
    Ok(if max_bad_rows.is_some() || max_bad_fraction.is_some() {
        ScanPolicy::Quarantine {
            max_bad_rows,
            max_bad_fraction,
        }
    } else {
        ScanPolicy::Strict
    })
}

/// Parses `--ladder jacobi,ql,lanczos` (or `none` for an empty ladder —
/// chaos testing's forced total eigensolve failure).
fn parse_ladder(spec: &str) -> Result<Vec<Box<dyn EigenStage>>> {
    if spec == "none" {
        return Ok(Vec::new());
    }
    spec.split(',')
        .map(str::trim)
        .map(|name| -> Result<Box<dyn EigenStage>> {
            match name {
                "jacobi" => Ok(Box::new(JacobiStage)),
                "ql" => Ok(Box::new(QlStage)),
                "lanczos" => Ok(Box::new(LanczosStage::default())),
                other => Err(CliError::new(format!(
                    "--ladder: unknown stage {other:?} (expected jacobi, ql, lanczos, or none)"
                ))),
            }
        })
        .collect()
}

/// Fault-injection plan from `--fault-rate` / `--fault-seed` (`None` when
/// no faults are requested).
fn parse_fault_plan(opts: &Options) -> Result<Option<FaultPlan>> {
    let rate: f64 = opts.get_parsed("fault-rate", 0.0)?;
    if rate <= 0.0 {
        return Ok(None);
    }
    let seed: u64 = opts.get_parsed("fault-seed", 42)?;
    Ok(Some(FaultPlan::uniform(seed, rate)))
}

fn render_scan_report(report: &ScanReport) -> String {
    let mut out = format!(
        "scan: {} rows absorbed, {} quarantined ({} corrupt, {} arity, {} source), \
         {} transient retries\n",
        report.rows_absorbed,
        report.rows_quarantined,
        report.by_reason.0,
        report.by_reason.1,
        report.by_reason.2,
        report.transient_retries,
    );
    if report.resumed_from > 0 {
        out.push_str(&format!(
            "scan: resumed from checkpoint at row {}\n",
            report.resumed_from
        ));
    }
    for q in report.details.iter().take(5) {
        out.push_str(&format!(
            "  quarantined row {}: {} ({})\n",
            q.position,
            q.reason.name(),
            q.detail
        ));
    }
    out
}

/// The streaming scan + finish driven by the resilience flags. Generic so
/// the fault/retry wrappers compose without boxing. `labels` come from
/// the CSV header, captured before the wrappers hid the concrete source.
fn mine_streaming<S: RowSource>(
    source: &mut S,
    m: usize,
    labels: Option<Vec<String>>,
    opts: &Options,
) -> Result<String> {
    let policy = parse_scan_policy(opts)?;
    let mut scanner = match opts.get("resume") {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            Scanner::resume(&ScanCheckpoint::from_json(&text)?, policy)?
        }
        None => Scanner::new(m, policy),
    };
    let scan_outcome = scanner.scan(source).map(|_| ());
    // Write the checkpoint even when the scan failed: a budget-exhausted
    // run still leaves a valid cursor to resume from after the data is
    // repaired.
    if let Some(cp_path) = opts.get("checkpoint") {
        let cp = scanner.checkpoint();
        obs::flight_event(obs::names::EVENT_CHECKPOINT_WRITTEN, cp.n as u64, 0, 0.0);
        std::fs::write(cp_path, cp.to_json())?;
    }
    scan_outcome?;
    let (acc, report) = scanner.into_parts();
    finish_mine(&acc, &report, labels, opts)
}

/// Shared tail of the streaming and columnar mines: degrade-aware
/// finish, model write-out, and the scan-report rendering.
fn finish_mine(
    acc: &ratio_rules::covariance::CovarianceAccumulator,
    report: &ScanReport,
    labels: Option<Vec<String>>,
    opts: &Options,
) -> Result<String> {
    if report.rows_quarantined > 0 {
        crate::mark_degraded();
    }

    let cutoff = parse_cutoff(opts)?;
    let out_path = opts.require("output")?;
    let mut out = String::new();
    if opts.switch("degrade") {
        let mut miner = ResilientMiner::new(cutoff);
        if let Some(labels) = labels {
            miner = miner.with_labels(labels);
        }
        if let Some(spec) = opts.get("ladder") {
            miner = miner.with_ladder(parse_ladder(spec)?);
        }
        let (model, degradation) = miner.finish(acc)?;
        if degradation.degraded() {
            crate::mark_degraded();
        }
        match model {
            ServedModel::Rules(rules) => {
                std::fs::write(out_path, ratio_rules::model_json::rules_to_string(&rules))?;
                out.push_str(&format!(
                    "mined {} rules over {} attributes from {} rows ({:.1}% energy) -> {}\n",
                    rules.k(),
                    rules.n_attributes(),
                    rules.n_train(),
                    rules.retained_energy() * 100.0,
                    out_path,
                ));
            }
            ServedModel::ColAvgs(ca) => {
                let doc = ratio_rules::model_json::col_avgs_to_string(ca.means());
                std::fs::write(out_path, doc)?;
                out.push_str(&format!(
                    "eigensolve ladder exhausted; served the col-avgs baseline \
                     ({} attributes) -> {}\n",
                    ca.means().len(),
                    out_path,
                ));
            }
        }
        out.push_str(&format!("degradation: {}\n", degradation.summary()));
    } else {
        let mut miner = RatioRuleMiner::new(cutoff);
        if let Some(labels) = labels {
            miner = miner.with_labels(labels);
        }
        let rules = miner.finish(acc)?;
        std::fs::write(out_path, ratio_rules::model_json::rules_to_string(&rules))?;
        out.push_str(&format!(
            "mined {} rules over {} attributes from {} rows ({:.1}% energy) -> {}\n",
            rules.k(),
            rules.n_attributes(),
            rules.n_train(),
            rules.retained_energy() * 100.0,
            out_path,
        ));
    }
    out.push_str(&render_scan_report(report));
    Ok(out)
}

/// `ratio-rules mine --input data.csv --output model.json [--k N | --energy F] [--no-header]`
pub fn mine(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok("\
mine --input <csv> --output <model.json> [--k N | --energy F] [--lanczos MAXK] [--no-header]
     fault tolerance (streams the CSV instead of loading it):
     [--max-bad-rows N] [--max-bad-fraction F] [--retries N]
     [--checkpoint FILE] [--resume FILE] [--degrade] [--ladder jacobi,ql,lanczos|none]
     [--fault-rate F] [--fault-seed S]
     columnar fast path (see 'ratio-rules convert'):
     [--columnar]   --input is an RRCB block file; the scan feeds whole
                    panels to the blocked covariance kernel
     distributed oracle (see 'ratio-rules mine-distributed'):
     [--shards W]   fold W contiguous row partitions through the pairwise
                    tree merge; bit-identical to a W-worker distributed mine\n"
            .into());
    }
    allow_with_obs(
        opts,
        &[
            "input",
            "output",
            "k",
            "energy",
            "lanczos",
            "no-header",
            "degrade",
            "columnar",
            "shards",
            "max-bad-rows",
            "max-bad-fraction",
            "retries",
            "fault-rate",
            "fault-seed",
            "checkpoint",
            "resume",
            "ladder",
            "flight",
            "help",
        ],
    )?;
    if opts.switch("columnar") {
        if opts.get("shards").is_some() {
            return Err(CliError::new(
                "--shards partitions an in-memory CSV; --columnar streams RRCB blocks",
            ));
        }
        return mine_columnar(opts);
    }
    if opts.get("shards").is_some() {
        return mine_sharded(opts);
    }
    if resilience_requested(opts) {
        return mine_resilient(opts);
    }
    let data = load_csv(opts)?;
    let cutoff = parse_cutoff(opts)?;
    let mut miner = RatioRuleMiner::new(cutoff);
    if let Some(max_k) = opts.get("lanczos") {
        let max_k: usize = max_k
            .parse()
            .map_err(|_| CliError::new(format!("--lanczos: cannot parse {max_k:?}")))?;
        miner = miner.with_solver(ratio_rules::miner::EigenSolver::Lanczos { max_k });
    }
    let rules = miner.fit_data(&data)?;
    let out_path = opts.require("output")?;
    std::fs::write(out_path, ratio_rules::model_json::rules_to_string(&rules))?;
    Ok(format!(
        "mined {} rules over {} attributes from {} rows ({:.1}% energy) -> {}\n{}",
        rules.k(),
        rules.n_attributes(),
        rules.n_train(),
        rules.retained_energy() * 100.0,
        out_path,
        rules
    ))
}

/// The fault-tolerant mine: streams the CSV through the optional fault /
/// retry wrappers into a policy-aware [`Scanner`].
fn mine_resilient(opts: &Options) -> Result<String> {
    let path = opts.require("input")?;
    let csv = dataset::source::CsvFileSource::open(path, !opts.switch("no-header"))?;
    let m = csv.n_cols();
    let labels = csv.col_labels().map(<[String]>::to_vec);

    let plan = parse_fault_plan(opts)?;
    let retries: usize = opts.get_parsed("retries", 0)?;
    let backoff = BackoffPolicy {
        max_attempts: retries + 1,
        ..BackoffPolicy::default()
    };
    match (plan, retries > 0) {
        (None, false) => mine_streaming(&mut { csv }, m, labels, opts),
        (None, true) => mine_streaming(&mut RetryingSource::new(csv, backoff), m, labels, opts),
        (Some(plan), false) => {
            mine_streaming(&mut FaultyRowSource::new(csv, plan), m, labels, opts)
        }
        (Some(plan), true) => mine_streaming(
            &mut RetryingSource::new(FaultyRowSource::new(csv, plan), backoff),
            m,
            labels,
            opts,
        ),
    }
}

/// `mine --shards W`: the single-process oracle for distributed mining.
/// Scans W contiguous row partitions (the same `n.div_ceil(W)` split
/// [`serve::coordinator::partition_rows`] produces) and folds them
/// through the same pairwise tree merge the coordinator uses, so its
/// model is bit-identical to a `mine-distributed` run over W live
/// workers — that equivalence is what the chaos harness asserts.
fn mine_sharded(opts: &Options) -> Result<String> {
    for flag in [
        "max-bad-rows",
        "max-bad-fraction",
        "retries",
        "fault-rate",
        "fault-seed",
        "checkpoint",
        "resume",
    ] {
        if opts.get(flag).is_some() {
            return Err(CliError::new(format!(
                "--{flag} streams the CSV; --shards scans in-memory partitions"
            )));
        }
    }
    let shards: usize = opts.get_parsed("shards", 1)?;
    if shards == 0 {
        return Err(CliError::new("--shards: need at least 1"));
    }
    let data = load_csv(opts)?;
    let labels = data.col_labels().to_vec();
    let acc = ratio_rules::parallel::covariance_parallel(data.matrix(), shards)?;
    let report = ScanReport {
        rows_absorbed: acc.n_rows(),
        ..ScanReport::default()
    };
    finish_mine(&acc, &report, Some(labels), opts)
}

/// The columnar mine: scans an `RRCB` block file (made by `convert`)
/// block-at-a-time into the blocked covariance kernel. Supports the
/// quarantine/checkpoint/degrade flags; the CSV-source chaos wrappers
/// (`--fault-rate`, `--retries`) don't apply to raw block files.
fn mine_columnar(opts: &Options) -> Result<String> {
    for flag in ["fault-rate", "fault-seed", "retries"] {
        if opts.get(flag).is_some() {
            return Err(CliError::new(format!(
                "--{flag} applies to CSV row sources; --columnar reads raw blocks"
            )));
        }
    }
    if opts.switch("no-header") {
        return Err(CliError::new(
            "--no-header applies to CSV input; RRCB block files carry their shape in the header",
        ));
    }
    let path = opts.require("input")?;
    let mut src = dataset::columnar::ColumnarBlockSource::open(path)?;
    let policy = parse_scan_policy(opts)?;
    let mut scanner = match opts.get("resume") {
        Some(cp) => {
            let text = std::fs::read_to_string(cp)?;
            Scanner::resume(&ScanCheckpoint::from_json(&text)?, policy)?
        }
        None => Scanner::new(src.n_cols(), policy),
    };
    let scan_outcome = scanner.scan_columnar(&mut src).map(|_| ());
    if let Some(cp_path) = opts.get("checkpoint") {
        let cp = scanner.checkpoint();
        obs::flight_event(obs::names::EVENT_CHECKPOINT_WRITTEN, cp.n as u64, 0, 0.0);
        std::fs::write(cp_path, cp.to_json())?;
    }
    scan_outcome?;
    let (acc, report) = scanner.into_parts();
    finish_mine(&acc, &report, None, opts)
}

/// `ratio-rules convert --input data.csv --output data.rrcb [--no-header]`
///
/// Parses the CSV once and writes the `RRCB` binary block file that
/// `mine --columnar` scans without re-parsing.
///
/// # Errors
/// Fails on unknown flags, a missing `--input`/`--output`, or any CSV
/// parse / file I/O error.
pub fn convert(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok(
            "convert --input <csv> --output <rrcb> [--no-header]   CSV -> RRCB block file\n"
                .into(),
        );
    }
    allow_with_obs(opts, &["input", "output", "no-header", "help"])?;
    let input = opts.require("input")?;
    let output = opts.require("output")?;
    let report =
        dataset::columnar::convert_csv_file(input, output, !opts.switch("no-header"))?;
    Ok(format!(
        "converted {} rows x {} cols -> {output}\n",
        report.rows, report.cols,
    ))
}

/// `ratio-rules interpret --model model.json [--threshold 0.05]`
pub fn interpret_cmd(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok("interpret --model <model.json> [--threshold 0.05]\n".into());
    }
    allow_with_obs(opts, &["model", "threshold", "help"])?;
    let rules = load_model(opts)?;
    let threshold: f64 = opts.get_parsed("threshold", 0.05)?;
    let mut out = ratio_rules::visualize::scree_plot(&rules, 30);
    out.push('\n');
    out.push_str(&interpret::table(&rules, threshold));
    out.push('\n');
    for i in 0..rules.k() {
        out.push_str(&interpret::histogram(&rules, i, 40));
        out.push('\n');
    }
    for sentence in interpret::describe(&rules, threshold.max(0.2)) {
        out.push_str(&sentence);
        out.push('\n');
    }
    Ok(out)
}

/// `ratio-rules fill --model model.json --row "1.5,?,3"`
pub fn fill(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok(
            "fill --model <model.json> --row \"1.5,?,3\" (use '?' for unknown cells)\n".into(),
        );
    }
    allow_with_obs(opts, &["model", "row", "help"])?;
    let rules = load_model(opts)?;
    let row = parse_holed_row(opts.require("row")?)?;
    let filled = fill_holes(&rules, &HoledRow::new(row.clone()))?;
    let mut out = format!("solve case: {:?}\n", filled.case);
    for (j, (given, value)) in row.iter().zip(&filled.values).enumerate() {
        let label = &rules.attribute_labels()[j];
        match given {
            Some(_) => out.push_str(&format!("  {label:>20}: {value:>12.4}\n")),
            None => out.push_str(&format!("  {label:>20}: {value:>12.4}  <- filled\n")),
        }
    }
    Ok(out)
}

/// `ratio-rules outliers --input data.csv --model model.json [--top 10]`
pub fn outliers(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok("outliers --input <csv> --model <model.json> [--top 10] [--no-header]\n".into());
    }
    allow_with_obs(opts, &["input", "model", "top", "no-header", "help"])?;
    let data = load_csv(opts)?;
    let rules = load_model(opts)?;
    let top: usize = opts.get_parsed("top", 10)?;
    let detector = OutlierDetector::new(&rules);
    let scores = detector.row_scores(data.matrix())?;
    let mut out = String::from("rows ranked by distance from the rule hyperplane:\n");
    for s in scores.iter().take(top) {
        out.push_str(&format!(
            "  {:>20}  residual {:>12.4}\n",
            data.row_labels()[s.row],
            s.residual
        ));
    }
    Ok(out)
}

/// `ratio-rules project --input data.csv --model model.json [--axes 0,1]`
pub fn project(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok(
            "project --input <csv> --model <model.json> [--axes 0,1] [--width 70] [--height 20] [--no-header]\n"
                .into(),
        );
    }
    allow_with_obs(opts, &[
        "input",
        "model",
        "axes",
        "width",
        "height",
        "no-header",
        "help",
    ])?;
    let data = load_csv(opts)?;
    let rules = load_model(opts)?;
    let axes = opts.get("axes").unwrap_or("0,1");
    let parts: Vec<&str> = axes.split(',').collect();
    if parts.len() != 2 {
        return Err(CliError::new("--axes must be two rule indices, e.g. 0,1"));
    }
    let x: usize = parts[0]
        .trim()
        .parse()
        .map_err(|_| CliError::new("--axes: bad x index"))?;
    let y: usize = parts[1]
        .trim()
        .parse()
        .map_err(|_| CliError::new("--axes: bad y index"))?;
    let width: usize = opts.get_parsed("width", 70)?;
    let height: usize = opts.get_parsed("height", 20)?;
    let proj = project_2d(&rules, data.matrix(), x, y)?;
    let mut out = proj.ascii_plot(width, height, &[]);
    out.push_str("\nmost extreme rows:\n");
    for &i in proj.extremes(5).iter() {
        let (px, py) = proj.points[i];
        out.push_str(&format!(
            "  {:>20}  ({px:10.2}, {py:10.2})\n",
            data.row_labels()[i]
        ));
    }
    Ok(out)
}

/// `ratio-rules evaluate --input data.csv [--train-frac 0.9] [--seed 42] [--holes 1]`
pub fn evaluate(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok(
            "evaluate --input <csv> [--train-frac 0.9] [--seed 42] [--holes H] [--threads T] [--k N | --energy F] [--no-header]\n"
                .into(),
        );
    }
    allow_with_obs(opts, &[
        "input",
        "train-frac",
        "seed",
        "holes",
        "threads",
        "k",
        "energy",
        "no-header",
        "help",
    ])?;
    let data = load_csv(opts)?;
    let frac: f64 = opts.get_parsed("train-frac", 0.9)?;
    let seed: u64 = opts.get_parsed("seed", 42)?;
    let h_max: usize = opts.get_parsed("holes", 1)?;
    let threads: usize = opts.get_parsed("threads", 1)?;
    if threads == 0 {
        return Err(CliError::new("--threads must be at least 1"));
    }
    let cutoff = parse_cutoff(opts)?;

    let split = train_test_split(&data, frac, seed)?;
    let rules = RatioRuleMiner::new(cutoff).fit_data(&split.train)?;
    let rr = RuleSetPredictor::new(rules.clone());
    let baseline = ColAvgs::fit(split.train.matrix())?;
    let ev = GuessingErrorEvaluator::default();

    let mut out = format!(
        "train {} rows / test {} rows; {} rules ({:.1}% energy)\n\n",
        split.train.n_rows(),
        split.test.n_rows(),
        rules.k(),
        rules.retained_energy() * 100.0
    );
    out.push_str(&format!(
        "{:>7}  {:>12}  {:>14}  {:>12}\n",
        "holes", "GE(RR)", "GE(col-avgs)", "RR/col-avgs"
    ));
    for h in 1..=h_max.max(1) {
        let (ge_rr, ge_ca) = match (h, threads) {
            (1, 1) => (
                ev.ge1(&rr, split.test.matrix())?,
                ev.ge1(&baseline, split.test.matrix())?,
            ),
            (1, t) => (
                ev.ge1_parallel(&rr, split.test.matrix(), t)?,
                ev.ge1_parallel(&baseline, split.test.matrix(), t)?,
            ),
            (h, 1) => (
                ev.ge_h(&rr, split.test.matrix(), h)?,
                ev.ge_h(&baseline, split.test.matrix(), h)?,
            ),
            (h, t) => (
                ev.ge_h_parallel(&rr, split.test.matrix(), h, t)?,
                ev.ge_h_parallel(&baseline, split.test.matrix(), h, t)?,
            ),
        };
        out.push_str(&format!(
            "{h:>7}  {ge_rr:>12.4}  {ge_ca:>14.4}  {:>11.1}%\n",
            100.0 * ge_rr / ge_ca
        ));
    }
    rr.publish_metrics();
    Ok(out)
}

/// `ratio-rules impute --input holey.csv --output clean.csv`
pub fn impute(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok(
            "impute --input <csv with '?' or empty cells> --output <csv> [--k N | --energy F] [--max-iter 25] [--no-header]\n"
                .into(),
        );
    }
    allow_with_obs(opts, &[
        "input",
        "output",
        "k",
        "energy",
        "max-iter",
        "no-header",
        "help",
    ])?;
    let path = opts.require("input")?;
    let (rows, labels) = dataset::csv::read_csv_holed_file(path, !opts.switch("no-header"))?;
    let n_holes: usize = rows.iter().flatten().filter(|v| v.is_none()).count();

    let imputer = ratio_rules::impute::Imputer {
        cutoff: parse_cutoff(opts)?,
        max_iterations: opts.get_parsed("max-iter", 25)?,
        ..Default::default()
    };
    let result = imputer.impute(&rows)?;

    let dm = dataset::DataMatrix::with_labels(
        result.matrix,
        (0..rows.len()).map(|i| format!("row{i}")).collect(),
        labels,
    )?;
    let out_path = opts.require("output")?;
    dataset::csv::write_csv_file(&dm, out_path)?;
    Ok(format!(
        "filled {n_holes} holes in {} rows over {} EM iterations (final delta {:.2e}) -> {out_path}\n",
        rows.len(),
        result.iterations,
        result.final_delta
    ))
}

/// `ratio-rules whatif --model model.json --set "cheerios=2x,milk=3.5"`
pub fn whatif(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok(
            "whatif --model <model.json> --set \"attr=VALUE,attr2=2x\" (Nx = N times the training mean)\n"
                .into(),
        );
    }
    allow_with_obs(opts, &["model", "set", "help"])?;
    let rules = load_model(opts)?;
    let spec = opts.require("set")?;
    let mut scenario = ratio_rules::whatif::Scenario::new(&rules);
    for assignment in spec.split(',') {
        let Some((attr, value)) = assignment.split_once('=') else {
            return Err(CliError::new(format!(
                "bad assignment {assignment:?}; use attr=VALUE or attr=2x"
            )));
        };
        let (attr, value) = (attr.trim(), value.trim());
        scenario = if let Some(factor) = value.strip_suffix(['x', 'X']) {
            let factor: f64 = factor
                .parse()
                .map_err(|_| CliError::new(format!("bad scale factor in {assignment:?}")))?;
            scenario.scale_of_mean(attr, factor)?
        } else {
            let v: f64 = value
                .parse()
                .map_err(|_| CliError::new(format!("bad value in {assignment:?}")))?;
            scenario.set(attr, v)?
        };
    }
    let forecast = scenario.forecast()?;
    let mut out = format!("forecast (case: {:?}):\n", forecast.case);
    for (label, (value, mean)) in forecast
        .labels
        .iter()
        .zip(forecast.values.iter().zip(rules.column_means()))
    {
        let delta = if !linalg::cmp::exact_zero(*mean) {
            format!("  ({:+.1}% vs training mean)", (value / mean - 1.0) * 100.0)
        } else {
            String::new()
        };
        out.push_str(&format!("  {label:>20}: {value:>12.4}{delta}\n"));
    }
    Ok(out)
}

/// `ratio-rules card --input test.csv --model model.json`
pub fn card(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok("card --input <test csv> --model <model.json> [--no-header]\n".into());
    }
    allow_with_obs(opts, &["input", "model", "no-header", "help"])?;
    let data = load_csv(opts)?;
    let rules = load_model(opts)?;
    let card = ratio_rules::diagnostics::ModelCard::evaluate(&rules, data.matrix())?;
    Ok(card.render())
}

/// Deterministic synthetic dataset for `profile` runs without `--input`:
/// four attributes on a planted 4:3:2:1 ratio plus a small deterministic
/// perturbation so the covariance has a full (if skewed) spectrum.
fn synthetic_data(rows: usize) -> Result<dataset::DataMatrix> {
    let n = rows.max(10);
    let m = linalg::Matrix::from_fn(n, 4, |i, j| {
        let t = 1.0 + i as f64;
        t * [4.0, 3.0, 2.0, 1.0][j] + ((i * 7 + j * 3) % 11) as f64 * 0.01
    });
    Ok(dataset::DataMatrix::with_labels(
        m,
        (0..n).map(|i| format!("row{i}")).collect(),
        ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect(),
    )?)
}

/// `ratio-rules profile [--input data.csv] [--rows 400] [--holes 1] [--threads 2]`
///
/// Mines and evaluates a dataset with the observability layer enabled,
/// so [`run`] can print the span tree and metric dump afterwards. With no
/// `--input` it profiles a built-in synthetic matrix.
pub fn profile(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok("\
profile [--input <csv>] [--rows 400] [--holes H] [--threads T] [--k N | --energy F] [--no-header]
        [--fault-rate F] [--fault-seed S]   inject faults and scan under quarantine,
                                            so the resilience metrics show in the dump\n"
            .into());
    }
    allow_with_obs(
        opts,
        &[
            "input",
            "rows",
            "holes",
            "threads",
            "k",
            "energy",
            "no-header",
            "fault-rate",
            "fault-seed",
            "flight",
            "help",
        ],
    )?;
    let h: usize = opts.get_parsed("holes", 1)?;
    let threads: usize = opts.get_parsed("threads", 2)?;
    if threads == 0 {
        return Err(CliError::new("--threads must be at least 1"));
    }
    let cutoff = parse_cutoff(opts)?;
    let plan = parse_fault_plan(opts)?;

    let _root = obs::Span::enter("profile");
    let data = {
        let _span = obs::Span::enter("load");
        if opts.get("input").is_some() {
            load_csv(opts)?
        } else {
            synthetic_data(opts.get_parsed("rows", 400)?)?
        }
    };
    let mut fault_line = String::new();
    let rules = {
        let _span = obs::Span::enter("mine");
        let miner = RatioRuleMiner::new(cutoff);
        match plan {
            None => miner.fit_data(&data)?,
            Some(plan) => {
                // Chaos profile: stream the matrix through the fault
                // injector under an unlimited quarantine, so the scan's
                // resilience counters land in the metric dump below.
                let mut src = FaultyRowSource::new(
                    dataset::source::MatrixSource::new(data.matrix()),
                    plan,
                );
                let (rules, report) = miner
                    .with_scan_policy(ScanPolicy::quarantine_unlimited())
                    .fit_with_report(&mut src)?;
                fault_line = format!(
                    "faults: {} rows quarantined, {} transient retries\n",
                    report.rows_quarantined, report.transient_retries,
                );
                rules
            }
        }
    };
    let rr = RuleSetPredictor::new(rules.clone());
    let ev = GuessingErrorEvaluator::default();
    let ge = {
        let _span = obs::Span::enter("evaluate");
        ev.ge_h_parallel(&rr, data.matrix(), h, threads)?
    };
    rr.publish_metrics();
    let stats = rr.cache_stats();
    Ok(format!(
        "profiled {} rows x {} attributes: {} rules ({:.1}% energy), GE_{h} = {ge:.4}\n\
         solver cache: {} hits / {} misses over {} patterns\n{fault_line}",
        data.n_rows(),
        data.n_cols(),
        rules.k(),
        rules.retained_energy() * 100.0,
        stats.hits,
        stats.misses,
        stats.entries,
    ))
}

/// `ratio-rules serve --model model.json [--port N] [--threads N]
/// [--max-batch N] [--batch-window-us N] [--max-queue N] [--deadline-ms N]
/// [--max-conn-requests N] [--idle-timeout-ms N] [--shed-degrade]`
///
/// Blocks until the process is killed. Connections are persistent
/// (keep-alive + pipelining) until `--max-conn-requests` requests have
/// been served on one socket or `--idle-timeout-ms` passes between
/// them; `--shed-degrade` answers queue-full pressure from the col-avgs
/// floor (with the `DEGRADED` header) instead of `429`. Degraded models
/// (the resilience ladder's `{"col_avgs": ...}` floor) still serve, with
/// every response carrying a `DEGRADED: true` header and `/whatif`
/// answering 503. New models can be hot-swapped in over `POST /models`
/// (see the `publish` subcommand) without dropping connections.
///
/// # Errors
/// Fails on unknown flags, an unreadable or malformed model file, bad
/// numeric flag values, or a bind failure on the requested port.
pub fn serve_cmd(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok("\
serve --model <model.json> [--port N] [--threads N] [--max-batch N]
      [--batch-window-us N] [--max-queue N] [--deadline-ms N]
      [--max-conn-requests N] [--idle-timeout-ms N] [--shed-degrade]
      endpoints: POST /predict, POST /whatif, GET /rules, GET /healthz, GET /metrics,
                 POST /models, GET /models,
                 GET /debug/trace[?id=<hex>], GET /debug/flightrecorder\n"
            .into());
    }
    allow_with_obs(
        opts,
        &[
            "model",
            "port",
            "threads",
            "max-batch",
            "batch-window-us",
            "max-queue",
            "deadline-ms",
            "max-conn-requests",
            "idle-timeout-ms",
            "shed-degrade",
            "help",
        ],
    )?;
    let model = serve::ServeModel::from_served(load_served_model(opts)?);
    if model.is_degraded() {
        crate::mark_degraded();
    }
    let port: u16 = opts.get_parsed("port", 7878)?;
    let defaults = serve::BatchConfig::default();
    let cfg = serve::ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        threads: opts.get_parsed("threads", 4)?,
        batch: serve::BatchConfig {
            max_batch: opts.get_parsed("max-batch", defaults.max_batch)?,
            batch_window: std::time::Duration::from_micros(
                opts.get_parsed("batch-window-us", 500u64)?,
            ),
            max_queue: opts.get_parsed("max-queue", defaults.max_queue)?,
            deadline: std::time::Duration::from_millis(opts.get_parsed("deadline-ms", 2000u64)?),
        },
        max_conn_requests: opts.get_parsed("max-conn-requests", 1000usize)?,
        idle_timeout: std::time::Duration::from_millis(opts.get_parsed("idle-timeout-ms", 5000u64)?),
        shed_degrade: opts.switch("shed-degrade"),
        ..serve::ServerConfig::default()
    };
    // The /metrics endpoint scrapes the global registry; collection must
    // be on for the server's whole lifetime (run()'s per-invocation obs
    // lifecycle only covers commands that return). The flight recorder
    // feeds /debug/flightrecorder, the trace store /debug/trace.
    obs::set_enabled(true);
    obs::set_flight_enabled(true);
    let degraded = model.is_degraded();
    let server = serve::Server::start(cfg, model).map_err(CliError::new)?;
    // Printed (not returned) because the command blocks from here on.
    println!(
        "serving on http://{}{}",
        server.addr(),
        if degraded { " (DEGRADED: col-avgs floor)" } else { "" }
    );
    // Block for the life of the process; a supervisor kills us. The
    // graceful-drain path (Server::shutdown) is exercised in-process by
    // tests/serve_e2e.rs.
    loop {
        std::thread::park();
    }
}

/// Renders the two [`serve::LoadReport`]s (keep-alive and cold phases
/// of the same workload) in the `BENCH_*.json` trajectory shape
/// (`bench`/`results`/`derived`/`metrics`), so `BENCH_serve.json` sits
/// next to `BENCH_covariance.json` and is checkable with the same `jq`
/// one-liners. Each phase keeps its own quantile set under a
/// `keepalive_`/`cold_` prefix, plus the headline speedup ratio.
fn serve_bench_json(keepalive: &serve::LoadReport, cold: &serve::LoadReport) -> String {
    use obs::json::JsonValue;
    let result_for = |name: &str, report: &serve::LoadReport| {
        JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str(name.into())),
            (
                "median_ns_per_op".into(),
                JsonValue::Num(report.p50_us * 1e3),
            ),
            ("rows_per_s".into(), JsonValue::Num(report.req_per_s)),
            ("samples".into(), JsonValue::Num(report.ok as f64)),
        ])
    };
    let mut pairs: Vec<(String, f64)> = Vec::new();
    for (prefix, report) in [("keepalive", keepalive), ("cold", cold)] {
        pairs.extend([
            (format!("{prefix}_req_per_s"), report.req_per_s),
            (format!("{prefix}_p50_us"), report.p50_us),
            (format!("{prefix}_p90_us"), report.p90_us),
            (format!("{prefix}_p99_us"), report.p99_us),
            (format!("{prefix}_p999_us"), report.p999_us),
            (format!("{prefix}_max_us"), report.max_us),
            (format!("{prefix}_connections"), report.connections as f64),
            (format!("{prefix}_errors"), report.errors as f64),
        ]);
    }
    let speedup = if cold.req_per_s > 0.0 {
        keepalive.req_per_s / cold.req_per_s
    } else {
        0.0
    };
    pairs.extend([
        ("keepalive_over_cold_speedup".to_string(), speedup),
        (
            "rows_checked".to_string(),
            (keepalive.rows_checked + cold.rows_checked) as f64,
        ),
        (
            "mismatches".to_string(),
            (keepalive.mismatches + cold.mismatches) as f64,
        ),
    ]);
    let derived: Vec<JsonValue> = pairs
        .into_iter()
        .map(|(name, value)| {
            JsonValue::Obj(vec![
                ("name".into(), JsonValue::Str(name)),
                ("value".into(), JsonValue::Num(value)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("serve".into())),
        (
            "results".into(),
            JsonValue::Arr(vec![
                result_for("predict_keepalive", keepalive),
                result_for("predict_cold", cold),
            ]),
        ),
        ("derived".into(), JsonValue::Arr(derived)),
        ("metrics".into(), JsonValue::Arr(vec![])),
    ])
    .write(true)
}

/// `ratio-rules serve-bench [--rows N] [--k N | --energy F] [--requests N]
/// [--concurrency C] [--threads T] [--max-batch N] [--batch-window-us N]
/// [--bench-out FILE] [--trace-out FILE] [--quick]`
///
/// Self-contained load test: mines a synthetic model, starts an
/// in-process server on an ephemeral port with tracing and the flight
/// recorder on, drives the same workload twice with the
/// [`serve::loadgen`] client — once over persistent keep-alive
/// connections, once with a fresh TCP connection per request — and
/// checks every served row bit for bit against single-shot fills. The
/// full run writes `BENCH_serve.json` (trajectory shape) with both
/// phases' quantiles and the keep-alive-over-cold speedup; emission is
/// gated on the divergence check — a run with mismatches errors instead
/// of persisting. `--quick` is the smoke variant: small load, nothing
/// written.
///
/// # Errors
/// Fails on unknown flags, bad numeric values, a bind failure, any
/// served-vs-single-shot mismatch, or transport errors on every request.
pub fn serve_bench(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok("\
serve-bench [--rows 400] [--k N | --energy F] [--requests 200] [--concurrency 4]
            [--threads 4] [--max-batch N] [--batch-window-us N]
            [--pipeline-depth 8] [--bench-out FILE] [--trace-out FILE] [--quick]
            load-tests an in-process server; full runs write BENCH_serve.json\n"
            .into());
    }
    allow_with_obs(
        opts,
        &[
            "rows",
            "k",
            "energy",
            "requests",
            "concurrency",
            "threads",
            "max-batch",
            "batch-window-us",
            "pipeline-depth",
            "bench-out",
            "trace-out",
            "quick",
            "help",
        ],
    )?;
    let quick = opts.switch("quick");
    let data = synthetic_data(opts.get_parsed("rows", 400)?)?;
    let rules = RatioRuleMiner::new(parse_cutoff(opts)?).fit_data(&data)?;
    let m = rules.n_attributes();

    // The whole point is measuring the *instrumented* server: tracing,
    // quantiles, and the flight recorder all on while answers are
    // checked bit for bit against single-shot fills.
    obs::set_enabled(true);
    obs::set_flight_enabled(true);
    let defaults = serve::BatchConfig::default();
    let cfg = serve::ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: opts.get_parsed("threads", 4)?,
        batch: serve::BatchConfig {
            max_batch: opts.get_parsed("max-batch", defaults.max_batch)?,
            batch_window: std::time::Duration::from_micros(
                opts.get_parsed("batch-window-us", 500u64)?,
            ),
            ..defaults
        },
        ..serve::ServerConfig::default()
    };
    let model = serve::ServeModel::from_served(ServedModel::Rules(rules.clone()));
    let server = serve::Server::start(cfg, model).map_err(CliError::new)?;
    let addr = server.addr();

    // Same workload twice: once over persistent keep-alive connections
    // (the production path) and once opening a fresh TCP connection per
    // request, so BENCH_serve.json can state what connection reuse buys
    // on identical requests. Both phases run against the same server
    // instance and both check every row against the single-shot oracle.
    let requests = opts.get_parsed("requests", if quick { 40 } else { 2000 })?;
    let concurrency = opts.get_parsed("concurrency", 4)?;
    let pipeline_depth = opts.get_parsed("pipeline-depth", 8usize)?;
    let load_for = |keep_alive: bool| serve::LoadgenConfig {
        requests,
        concurrency,
        keep_alive,
        pipeline_depth,
        ..serve::LoadgenConfig::default()
    };
    let keepalive = serve::run_load(addr, m, Some(&rules), &load_for(true));
    let cold = serve::run_load(addr, m, Some(&rules), &load_for(false));
    server.shutdown();

    if let Some(path) = opts.get("trace-out") {
        let traces = obs::trace::take_traces();
        std::fs::write(path, obs::chrome_trace_doc(&traces))?;
    }
    for (phase, report) in [("keep-alive", &keepalive), ("cold", &cold)] {
        if report.ok == 0 {
            return Err(CliError::new(format!(
                "serve-bench: no {phase} request succeeded ({} errors)",
                report.errors
            )));
        }
        if report.mismatches > 0 {
            return Err(CliError::new(format!(
                "serve-bench: {} of {} {phase} rows diverged from single-shot \
                 fills; refusing to write BENCH_serve.json",
                report.mismatches, report.rows_checked
            )));
        }
    }

    let mut out = String::new();
    for (phase, report) in [("keep-alive", &keepalive), ("cold", &cold)] {
        out.push_str(&format!(
            "serve-bench[{phase}]: {} requests ({} ok, {} errors) over {} connections \
             in {:.2}s = {:.0} req/s\n\
             latency us: p50 {:.0}, p90 {:.0}, p99 {:.0}, p999 {:.0}, max {:.0}\n\
             oracle: {} rows bit-identical to single-shot fills\n",
            report.requests,
            report.ok,
            report.errors,
            report.connections,
            report.wall_s,
            report.req_per_s,
            report.p50_us,
            report.p90_us,
            report.p99_us,
            report.p999_us,
            report.max_us,
            report.rows_checked,
        ));
    }
    if cold.req_per_s > 0.0 {
        out.push_str(&format!(
            "keep-alive over cold: {:.2}x req/s\n",
            keepalive.req_per_s / cold.req_per_s
        ));
    }
    if quick {
        // Printed, never persisted: --quick must not churn the trajectory.
        out.push_str("quick serve bench OK\n");
    } else {
        let path = match opts.get("bench-out") {
            Some(p) => std::path::PathBuf::from(p),
            None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("BENCH_serve.json"),
        };
        std::fs::write(&path, serve_bench_json(&keepalive, &cold))?;
        out.push_str(&format!("trajectory -> {}\n", path.display()));
    }
    Ok(out)
}

/// `ratio-rules publish --model model.json --addr HOST:PORT [--name N]
/// [--no-activate] [--shadow]`
///
/// Pushes a mined `model_json` artifact (the output of `mine`,
/// including the degraded `{"col_avgs": ...}` floor) into a running
/// server's hot-swap registry over `POST /models`. By default the new
/// version becomes active immediately — in-flight requests finish on
/// the version they resolved, new requests see the new one.
/// `--no-activate` retains the version for `x-model-version` pinning
/// without routing traffic to it; `--shadow` additionally replays every
/// answered `/predict` row against it off the response path, counting
/// `f64::to_bits` divergences on `GET /models`.
///
/// # Errors
/// Fails on unknown flags, an unreadable or locally invalid model file,
/// a malformed `--addr`, transport errors, or a non-200 response (the
/// server re-validates at its trust boundary).
pub fn publish(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok("\
publish --model <model.json> --addr <HOST:PORT> [--name N] [--no-activate] [--shadow]
        pushes a model into a running server's hot-swap registry (POST /models)\n"
            .into());
    }
    allow_with_obs(opts, &["model", "addr", "name", "no-activate", "shadow", "help"])?;
    let model_path = opts.require("model")?;
    let json = std::fs::read_to_string(model_path)?;
    // Validate locally before shipping: a malformed artifact should fail
    // here with a parse error, not as an opaque 400 from the server.
    let _ = ratio_rules::model_json::model_from_str(&json)?;
    let model_doc = obs::json::parse(&json).map_err(CliError::new)?;
    let addr: std::net::SocketAddr = opts
        .require("addr")?
        .parse()
        .map_err(|_| CliError::new(format!("--addr: cannot parse {:?}", opts.get("addr"))))?;
    let name = opts.get("name").unwrap_or("unnamed").to_string();
    let body = obs::json::JsonValue::Obj(vec![
        ("name".into(), obs::json::JsonValue::Str(name)),
        (
            "activate".into(),
            obs::json::JsonValue::Bool(!opts.switch("no-activate")),
        ),
        (
            "shadow".into(),
            obs::json::JsonValue::Bool(opts.switch("shadow")),
        ),
        ("model".into(), model_doc),
    ])
    .write(false);
    let (status, resp) = serve::client::request(
        addr,
        "POST",
        "/models",
        Some(&body),
        std::time::Duration::from_secs(10),
        std::time::Duration::ZERO,
    )?;
    if status != 200 {
        return Err(CliError::new(format!(
            "publish: server answered {status}: {resp}"
        )));
    }
    Ok(format!("published: {resp}\n"))
}

/// `ratio-rules mine-shard --input data.csv [--port N] [--no-header]
/// [--checkpoint-dir DIR] [--chaos-* ...]`
///
/// Distributed-mining worker: loads its CSV replica, binds the shard
/// scan endpoint, prints the bound address, and blocks serving
/// `POST /scan` range requests until killed — or until an injected
/// crash fault fires, at which point the process exits 1 like a
/// genuinely dead worker (its checkpoint file, if `--checkpoint-dir`
/// was given, is what a restarted worker resumes from). The chaos
/// flags exist for the harness in `scripts/chaos_e2e.sh`; production
/// workers leave them at zero.
///
/// # Errors
/// Fails on unknown flags, a missing or malformed `--input` CSV, bad
/// numeric flag values, or a bind failure on the requested port.
pub fn mine_shard(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok("\
mine-shard --input <csv> [--port N] [--no-header] [--io-timeout-ms N] [--checkpoint-dir DIR]
           chaos injection (test harness only; all rates default 0):
           [--chaos-seed S] [--chaos-crash F] [--chaos-hang F] [--chaos-slow F]
           [--chaos-corrupt F] [--chaos-truncate F] [--chaos-hang-ms N] [--chaos-slow-ms N]
           serves POST /scan and GET /healthz; exits 1 on an injected crash\n"
            .into());
    }
    allow_with_obs(
        opts,
        &[
            "input",
            "no-header",
            "port",
            "io-timeout-ms",
            "checkpoint-dir",
            "chaos-seed",
            "chaos-crash",
            "chaos-hang",
            "chaos-slow",
            "chaos-corrupt",
            "chaos-truncate",
            "chaos-hang-ms",
            "chaos-slow-ms",
            "help",
        ],
    )?;
    let data = load_csv(opts)?;
    let rows = data.matrix().rows();
    let cols = data.matrix().cols();
    let labels = data.col_labels().to_vec();
    let chaos = serve::ChaosPlan {
        seed: opts.get_parsed("chaos-seed", 0u64)?,
        crash_rate: opts.get_parsed("chaos-crash", 0.0)?,
        hang_rate: opts.get_parsed("chaos-hang", 0.0)?,
        slow_rate: opts.get_parsed("chaos-slow", 0.0)?,
        corrupt_rate: opts.get_parsed("chaos-corrupt", 0.0)?,
        truncate_rate: opts.get_parsed("chaos-truncate", 0.0)?,
        hang_ms: opts.get_parsed("chaos-hang-ms", 600u64)?,
        slow_ms: opts.get_parsed("chaos-slow-ms", 40u64)?,
        ..serve::ChaosPlan::none()
    };
    let port: u16 = opts.get_parsed("port", 0)?;
    let cfg = serve::ShardConfig {
        addr: format!("127.0.0.1:{port}"),
        io_timeout: std::time::Duration::from_millis(opts.get_parsed("io-timeout-ms", 10_000u64)?),
        chaos,
        checkpoint_dir: opts.get("checkpoint-dir").map(std::path::PathBuf::from),
    };
    // Same lifetime rule as `serve`: the worker blocks, so the
    // per-invocation obs lifecycle in run() never gets to drain it.
    obs::set_enabled(true);
    obs::set_flight_enabled(true);
    let worker =
        serve::ShardWorker::start(cfg, data.into_matrix(), labels).map_err(CliError::new)?;
    // Printed (not returned) because the command blocks from here on;
    // the chaos harness scrapes this line for the ephemeral port.
    println!(
        "shard worker on http://{} ({rows} rows x {cols} cols)",
        worker.addr()
    );
    loop {
        if worker.is_dead() {
            // An injected crash fault dropped the listener; finish the
            // imitation of a dead worker by exiting like one.
            eprintln!("shard worker: injected crash fault; exiting");
            std::process::exit(crate::EXIT_ERROR);
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

/// `ratio-rules mine-distributed --workers host:port,... --output model.json`
///
/// Supervising coordinator: partitions the row range over the worker
/// fleet, dispatches shard scans with deadlines and backoff retries,
/// reassigns dead workers' shards to probed-live survivors (resuming
/// from their checkpoints when present), validates every payload at
/// the trust boundary, and tree-merges the survivors into a model
/// bit-identical to `mine --shards W`. Exits 0 clean, 2 degraded
/// (quarantined rows or lost shards within `--max-lost-shards`), 3
/// when a worker's quarantine budget blew or more shards were lost
/// than allowed.
///
/// # Errors
/// Fails on unknown flags, unparseable worker addresses, no live
/// workers, dataset-shape disagreement between workers, shard losses
/// beyond `--max-lost-shards`, a worker's quarantine-budget exhaustion,
/// or any model write error.
pub fn mine_distributed(opts: &Options) -> Result<String> {
    if opts.switch("help") {
        return Ok("\
mine-distributed --workers host:port,host:port,... --output <model.json>
                 [--k N | --energy F] [--shards N] [--deadline-ms N]
                 [--retries N] [--retry-base-ms N] [--reassign-budget N]
                 [--max-lost-shards N] [--checkpoint-dir DIR] [--warmup-ms N]
                 [--max-bad-rows N] [--max-bad-fraction F]
                 [--degrade] [--ladder jacobi,ql,lanczos|none]
                 chaos (test harness only): [--chaos-dup-rate F] [--chaos-seed S]
                 exit codes: 0 clean, 2 degraded/partial, 3 budget exhausted\n"
            .into());
    }
    allow_with_obs(
        opts,
        &[
            "workers",
            "output",
            "k",
            "energy",
            "shards",
            "deadline-ms",
            "retries",
            "retry-base-ms",
            "reassign-budget",
            "max-lost-shards",
            "checkpoint-dir",
            "warmup-ms",
            "max-bad-rows",
            "max-bad-fraction",
            "chaos-dup-rate",
            "chaos-seed",
            "degrade",
            "ladder",
            "flight",
            "help",
        ],
    )?;
    let workers: Vec<std::net::SocketAddr> = opts
        .require("workers")?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|_| CliError::new(format!("--workers: cannot parse address {s:?}")))
        })
        .collect::<Result<_>>()?;
    let shards: Option<usize> = opts
        .get("shards")
        .map(|s| {
            s.parse()
                .map_err(|_| CliError::new(format!("--shards: cannot parse {s:?}")))
        })
        .transpose()?;
    let retries: usize = opts.get_parsed("retries", 2)?;
    let cfg = serve::CoordinatorConfig {
        workers,
        shards,
        policy: parse_scan_policy(opts)?,
        deadline: std::time::Duration::from_millis(opts.get_parsed("deadline-ms", 5000u64)?),
        backoff: BackoffPolicy {
            max_attempts: retries + 1,
            base_delay: std::time::Duration::from_millis(
                opts.get_parsed("retry-base-ms", 10u64)?,
            ),
            ..BackoffPolicy::default()
        },
        reassign_budget: opts.get_parsed("reassign-budget", 4)?,
        max_lost_shards: opts.get_parsed("max-lost-shards", 0)?,
        checkpoint_dir: opts.get("checkpoint-dir").map(std::path::PathBuf::from),
        connect_warmup: std::time::Duration::from_millis(opts.get_parsed("warmup-ms", 1000u64)?),
        chaos: serve::ChaosPlan {
            seed: opts.get_parsed("chaos-seed", 0u64)?,
            duplicate_rate: opts.get_parsed("chaos-dup-rate", 0.0)?,
            ..serve::ChaosPlan::none()
        },
    };
    let outcome = serve::coordinate(&cfg)?;
    if outcome.is_degraded() {
        crate::mark_degraded();
    }
    let report = ScanReport {
        rows_absorbed: outcome.acc.n_rows(),
        rows_quarantined: outcome.rows_quarantined,
        by_reason: outcome.by_reason,
        ..ScanReport::default()
    };
    let mut out = finish_mine(&outcome.acc, &report, Some(outcome.labels.clone()), opts)?;
    out.push_str(&outcome.summary());
    out.push('\n');
    Ok(out)
}

fn dispatch(cmd: &str, opts: &Options) -> Result<String> {
    match cmd {
        "mine" => mine(opts),
        "convert" => convert(opts),
        "interpret" => interpret_cmd(opts),
        "fill" => fill(opts),
        "outliers" => outliers(opts),
        "project" => project(opts),
        "evaluate" => evaluate(opts),
        "impute" => impute(opts),
        "card" => card(opts),
        "whatif" => whatif(opts),
        "profile" => profile(opts),
        "serve" => serve_cmd(opts),
        "serve-bench" => serve_bench(opts),
        "publish" => publish(opts),
        "mine-shard" => mine_shard(opts),
        "mine-distributed" => mine_distributed(opts),
        other => Err(CliError::new(format!(
            "unknown command {other:?}; run 'ratio-rules help'"
        ))),
    }
}

/// Dispatches a full command line (without the program name).
///
/// Owns the observability lifecycle: metrics collection turns on when the
/// command is `profile`, `--trace` is passed, or `--metrics-out FILE` is
/// given; the trace and registry are always drained and reset afterwards
/// (even on error) so consecutive invocations don't bleed into each other.
pub fn run(args: &[String]) -> Result<String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(crate::USAGE.to_string());
    };
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        return Ok(crate::USAGE.to_string());
    }
    let Some(switches) = switches_for(cmd) else {
        return Err(CliError::new(format!(
            "unknown command {cmd:?}; run 'ratio-rules help'"
        )));
    };
    let opts = Options::parse(rest, switches)?;
    let metrics_out = opts.get("metrics-out").map(str::to_string);
    let flight = opts.switch("flight") && !opts.switch("help");
    if flight {
        obs::set_flight_enabled(true);
    }
    let observing =
        !opts.switch("help") && (cmd == "profile" || opts.switch("trace") || metrics_out.is_some());
    if !observing {
        let result = dispatch(cmd, &opts);
        return append_flight_dump(result, flight);
    }

    obs::set_enabled(true);
    let result = dispatch(cmd, &opts);
    // Drain and reset before propagating errors: global state must be
    // clean for the next invocation either way.
    let trace = obs::take_trace();
    let snapshot = obs::global().snapshot();
    obs::set_enabled(false);
    obs::global().reset();

    let mut out = append_flight_dump(result, flight)?;
    if cmd == "profile" || opts.switch("trace") {
        out.push_str("\nspans:\n");
        out.push_str(&obs::render_trace(&trace));
        out.push_str("\nmetrics:\n");
        out.push_str(&obs::export::render_table(&snapshot));
    }
    if let Some(path) = metrics_out {
        // File format follows the extension: Prometheus text for .prom,
        // JSON (metrics + trace) otherwise.
        let text = if path.ends_with(".prom") {
            obs::export::to_prometheus(&snapshot)
        } else {
            obs::export::to_json(&snapshot, &trace)
        };
        std::fs::write(&path, text)?;
        out.push_str(&format!("\nmetrics written to {path}\n"));
    }
    Ok(out)
}

/// On a `--flight` run that succeeded, appends the recorder's contents
/// to the output and retires the recorder. Errors pass through with the
/// recorder still armed — [`run_with_status`] dumps it to stderr so the
/// last structured events before the failure are never lost.
fn append_flight_dump(result: Result<String>, flight: bool) -> Result<String> {
    if !flight {
        return result;
    }
    match result {
        Ok(mut out) => {
            let events = obs::flight_snapshot();
            obs::set_flight_enabled(false);
            obs::flight_clear();
            out.push_str(&format!("\nflight recorder ({} events):\n", events.len()));
            out.push_str(&obs::flight_to_jsonl(&events));
            Ok(out)
        }
        Err(e) => Err(e),
    }
}

/// [`run`] plus exit-code semantics: `0` success, `1` error, `2` when the
/// command succeeded but served a degraded result (see
/// [`crate::EXIT_DEGRADED`]), `3` when a quarantine scan blew its error
/// budget. The binary's `main` is a thin wrapper over this.
///
/// An error exit with the flight recorder armed (`--flight`, or a
/// command that enables it itself) dumps the ring to stderr as JSONL —
/// the black-box readout for a crashed run.
pub fn run_with_status(args: &[String]) -> (Result<String>, i32) {
    // Clear any stale marker from a previous in-process invocation.
    let _ = crate::take_degraded();
    let result = run(args);
    let code = match &result {
        Ok(_) => {
            if crate::take_degraded() {
                crate::EXIT_DEGRADED
            } else {
                crate::EXIT_OK
            }
        }
        Err(e) => e.code,
    };
    if code != crate::EXIT_OK && code != crate::EXIT_DEGRADED && obs::flight_enabled() {
        let events = obs::flight_snapshot();
        obs::set_flight_enabled(false);
        obs::flight_clear();
        if !events.is_empty() {
            eprintln!("flight recorder ({} events):", events.len());
            eprint!("{}", obs::flight_to_jsonl(&events));
        }
    }
    (result, code)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn workdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rr_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_linear_csv(path: &std::path::Path) {
        let mut text = String::from("bread,milk,butter\n");
        for i in 0..60 {
            let t = 1.0 + i as f64;
            text.push_str(&format!("{},{},{}\n", 3.0 * t, 2.0 * t, t));
        }
        std::fs::write(path, text).unwrap();
    }

    #[test]
    fn end_to_end_mine_fill_interpret() {
        let dir = workdir();
        let csv = dir.join("sales.csv");
        let model = dir.join("model.json");
        write_linear_csv(&csv);

        let out = run(&args(&[
            "mine",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            model.to_str().unwrap(),
            "--k",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("mined 1 rules"));
        assert!(model.exists());

        let out = run(&args(&[
            "fill",
            "--model",
            model.to_str().unwrap(),
            "--row",
            "30,?,?",
        ]))
        .unwrap();
        // bread = 30 -> milk = 20, butter = 10.
        assert!(out.contains("<- filled"));
        assert!(out.contains("20.00"), "fill output:\n{out}");
        assert!(out.contains("10.00"), "fill output:\n{out}");

        let out = run(&args(&["interpret", "--model", model.to_str().unwrap()])).unwrap();
        assert!(out.contains("RR1"));
        assert!(out.contains("bread"));
        assert!(out.contains("cutoff (Eq. 1)"));

        let out = run(&args(&[
            "card",
            "--input",
            csv.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("model card: 1 rules"));
        assert!(out.contains("GE_1"));
    }

    #[test]
    fn convert_then_columnar_mine_matches_csv_mine() {
        let dir = workdir();
        let csv = dir.join("col.csv");
        let rrcb = dir.join("col.rrcb");
        let model_csv = dir.join("col_model_csv.json");
        let model_col = dir.join("col_model_col.json");
        write_linear_csv(&csv);

        let out = run(&args(&[
            "convert",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            rrcb.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("converted 60 rows x 3 cols"), "{out}");

        run(&args(&[
            "mine",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            model_csv.to_str().unwrap(),
            "--k",
            "1",
        ]))
        .unwrap();
        let out = run(&args(&[
            "mine",
            "--columnar",
            "--input",
            rrcb.to_str().unwrap(),
            "--output",
            model_col.to_str().unwrap(),
            "--k",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("mined 1 rules"), "{out}");

        // Same covariance bits -> same eigenpairs -> identical documents,
        // modulo the CSV run's header labels (RRCB carries none).
        let a = ratio_rules::model_json::rules_from_str(
            &std::fs::read_to_string(&model_csv).unwrap(),
        )
        .unwrap();
        let b = ratio_rules::model_json::rules_from_str(
            &std::fs::read_to_string(&model_col).unwrap(),
        )
        .unwrap();
        assert_eq!(a.k(), b.k());
        for (ra, rb) in a.rules().iter().zip(b.rules()) {
            assert_eq!(ra.eigenvalue.to_bits(), rb.eigenvalue.to_bits());
            for (u, v) in ra.loadings.iter().zip(&rb.loadings) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn columnar_mine_rejects_csv_only_flags() {
        let dir = workdir();
        let csv = dir.join("rej.csv");
        let rrcb = dir.join("rej.rrcb");
        write_linear_csv(&csv);
        run(&args(&[
            "convert",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            rrcb.to_str().unwrap(),
        ]))
        .unwrap();
        for extra in [
            &["--fault-rate", "0.1"][..],
            &["--retries", "2"],
            &["--no-header"],
        ] {
            let mut cmd = vec![
                "mine",
                "--columnar",
                "--input",
                rrcb.to_str().unwrap(),
                "--output",
                "/dev/null",
            ];
            cmd.extend_from_slice(extra);
            let err = run(&args(&cmd)).unwrap_err();
            assert!(
                err.to_string().contains(extra[0].trim_start_matches("--")),
                "{err}"
            );
        }
        // convert rejects unknown flags like every other command.
        assert!(run(&args(&["convert", "--input", "x", "--bogus", "1"])).is_err());
    }

    #[test]
    fn columnar_mine_checkpoints_and_resumes() {
        let dir = workdir();
        let csv = dir.join("ck.csv");
        let rrcb = dir.join("ck.rrcb");
        let ckpt = dir.join("ck.json");
        let model = dir.join("ck_model.json");
        write_linear_csv(&csv);
        run(&args(&[
            "convert",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            rrcb.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "mine",
            "--columnar",
            "--input",
            rrcb.to_str().unwrap(),
            "--output",
            model.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--max-bad-rows",
            "5",
        ]))
        .unwrap();
        // The checkpoint consumed all 60 rows; resuming over the same
        // file is a no-op scan that still mines the full model.
        let out = run(&args(&[
            "mine",
            "--columnar",
            "--input",
            rrcb.to_str().unwrap(),
            "--output",
            model.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
            "--max-bad-rows",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("resumed from checkpoint at row 60"), "{out}");
        assert!(out.contains("60 rows absorbed"), "{out}");
    }

    #[test]
    fn evaluate_reports_rr_win() {
        let dir = workdir();
        let csv = dir.join("eval.csv");
        write_linear_csv(&csv);
        let out = run(&args(&[
            "evaluate",
            "--input",
            csv.to_str().unwrap(),
            "--holes",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("GE(RR)"));
        // Three lines: header + h=1 + h=2.
        assert!(out.lines().count() >= 4);

        // --threads changes the schedule, not the answer: every numeric
        // cell of the report matches the serial run to high precision.
        let parallel = run(&args(&[
            "evaluate",
            "--input",
            csv.to_str().unwrap(),
            "--holes",
            "2",
            "--threads",
            "4",
        ]))
        .unwrap();
        let cells = |s: &str| -> Vec<f64> {
            s.lines()
                .skip_while(|l| !l.trim_start().starts_with("holes"))
                .skip(1)
                .flat_map(|l| {
                    l.split_whitespace()
                        .filter_map(|tok| tok.trim_end_matches('%').parse::<f64>().ok())
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let (serial_cells, parallel_cells) = (cells(&out), cells(&parallel));
        assert_eq!(serial_cells.len(), parallel_cells.len());
        assert!(!serial_cells.is_empty());
        for (s, p) in serial_cells.iter().zip(&parallel_cells) {
            // Cells are printed to 4 decimals, so allow one formatting ulp
            // on top of the summation-order noise (pinned at 1e-10 in the
            // core evaluator tests).
            assert!((s - p).abs() <= 1e-3 * s.abs().max(100.0), "{s} vs {p}");
        }

        // Zero threads is rejected.
        assert!(run(&args(&[
            "evaluate",
            "--input",
            csv.to_str().unwrap(),
            "--threads",
            "0",
        ]))
        .is_err());
    }

    #[test]
    fn outliers_and_project_run() {
        let dir = workdir();
        let csv = dir.join("o.csv");
        let model = dir.join("o_model.json");
        write_linear_csv(&csv);
        run(&args(&[
            "mine",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            model.to_str().unwrap(),
            "--k",
            "2",
        ]))
        .unwrap();
        let out = run(&args(&[
            "outliers",
            "--input",
            csv.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--top",
            "3",
        ]))
        .unwrap();
        assert_eq!(out.lines().count(), 4);

        let out = run(&args(&[
            "project",
            "--input",
            csv.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--axes",
            "0,1",
        ]))
        .unwrap();
        assert!(out.contains("RR1 (x) vs RR2 (y)"));
    }

    #[test]
    fn mine_with_lanczos_backend() {
        let dir = workdir();
        let csv = dir.join("lz.csv");
        let model = dir.join("lz_model.json");
        write_linear_csv(&csv);
        let out = run(&args(&[
            "mine",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            model.to_str().unwrap(),
            "--k",
            "1",
            "--lanczos",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("mined 1 rules"), "output: {out}");
        // The Lanczos-mined model predicts on the planted 3:2:1 line.
        let out = run(&args(&[
            "fill",
            "--model",
            model.to_str().unwrap(),
            "--row",
            "30,?,?",
        ]))
        .unwrap();
        assert!(out.contains("20.00"), "fill output: {out}");
        // Bad value rejected.
        assert!(run(&args(&[
            "mine",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            model.to_str().unwrap(),
            "--lanczos",
            "two",
        ]))
        .is_err());
    }

    #[test]
    fn whatif_scales_and_pins() {
        let dir = workdir();
        let csv = dir.join("wi.csv");
        let model = dir.join("wi_model.json");
        write_linear_csv(&csv);
        run(&args(&[
            "mine",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            model.to_str().unwrap(),
            "--k",
            "1",
        ]))
        .unwrap();

        // Doubling bread should roughly double milk and butter.
        let out = run(&args(&[
            "whatif",
            "--model",
            model.to_str().unwrap(),
            "--set",
            "bread=2x",
        ]))
        .unwrap();
        assert!(out.contains("+100.0% vs training mean"), "output:\n{out}");

        // Pin an absolute value.
        let out = run(&args(&[
            "whatif",
            "--model",
            model.to_str().unwrap(),
            "--set",
            "bread=30",
        ]))
        .unwrap();
        assert!(out.contains("30.0000"), "output:\n{out}");

        // Bad specs error.
        assert!(run(&args(&[
            "whatif",
            "--model",
            model.to_str().unwrap(),
            "--set",
            "bread",
        ]))
        .is_err());
        assert!(run(&args(&[
            "whatif",
            "--model",
            model.to_str().unwrap(),
            "--set",
            "bread=abcx",
        ]))
        .is_err());
    }

    #[test]
    fn impute_repairs_holed_csv() {
        let dir = workdir();
        let csv = dir.join("holey.csv");
        let out_csv = dir.join("clean.csv");
        let mut text = String::from("a,b,c\n");
        for i in 0..40 {
            let t = 1.0 + i as f64;
            if i % 5 == 1 {
                text.push_str(&format!("{},?,{}\n", 3.0 * t, t));
            } else {
                text.push_str(&format!("{},{},{}\n", 3.0 * t, 2.0 * t, t));
            }
        }
        std::fs::write(&csv, text).unwrap();
        let out = run(&args(&[
            "impute",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            out_csv.to_str().unwrap(),
            "--k",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("filled 8 holes"), "output: {out}");
        // Repaired values follow b = 2/3 a.
        let repaired = dataset::csv::read_csv_file(&out_csv, true).unwrap();
        for i in 0..40 {
            let row = repaired.row(i);
            // Tolerance tracks the imputer's default convergence
            // threshold (relative to the data scale ~120).
            assert!(
                (row[1] - 2.0 / 3.0 * row[0]).abs() < 1e-3,
                "row {i}: {row:?}"
            );
        }
    }

    #[test]
    fn errors_are_friendly() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&["mine"])).is_err()); // missing --input
        assert!(run(&args(&["mine", "--input", "x", "--bogus", "1"])).is_err());
        let usage = run(&[]).unwrap();
        assert!(usage.contains("USAGE"));
        let usage = run(&args(&["help"])).unwrap();
        assert!(usage.contains("COMMANDS"));
    }

    #[test]
    fn per_command_help() {
        for cmd in [
            "mine",
            "interpret",
            "fill",
            "outliers",
            "project",
            "evaluate",
            "impute",
            "card",
            "whatif",
            "profile",
        ] {
            let out = run(&args(&[cmd, "--help"])).unwrap();
            assert!(out.contains(cmd), "help for {cmd}: {out}");
        }
    }

    /// Tests below toggle the process-global observability state via
    /// `run`; serialize them so one run's disable/reset doesn't clobber
    /// another's collection window.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn profile_emits_span_tree_and_metric_dump() {
        let _guard = OBS_LOCK.lock().unwrap();
        let dir = workdir();
        let json_out = dir.join("profile_metrics.json");
        let out = run(&args(&[
            "profile",
            "--rows",
            "120",
            "--k",
            "1",
            "--threads",
            "2",
            "--metrics-out",
            json_out.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("profiled 120 rows x 4 attributes"), "{out}");
        assert!(out.contains("spans:"), "{out}");
        for span in ["profile", "load", "mine", "covariance_scan", "eigensolve", "evaluate"] {
            assert!(out.contains(span), "span {span} missing in:\n{out}");
        }
        assert!(out.contains("metrics:"), "{out}");
        for metric in [
            "covariance_rows_per_s",
            "eigen_iterations",
            "eigen_residual",
            "solver_cache_hits",
            "solver_cache_misses",
            "ge_h_shard_0_ns",
            "ge_h_shard_max_ns",
        ] {
            assert!(out.contains(metric), "metric {metric} missing in:\n{out}");
        }
        assert!(out.contains("metrics written to"), "{out}");

        // The JSON export round-trips through the obs parser.
        let text = std::fs::read_to_string(&json_out).unwrap();
        let (snap, trace) = obs::export::from_json(&text).unwrap();
        assert!(snap.counter("covariance_rows_scanned_total").unwrap() >= 120);
        assert!(trace.iter().any(|r| r.name == "profile"));
        assert!(trace.iter().any(|r| r.name == "eigensolve" && r.depth >= 1));

        // Observability is off and the registry clean after the run.
        assert!(!obs::enabled());
        assert!(obs::global().snapshot().get("eigen_iterations").is_none());
    }

    #[test]
    fn metrics_out_prom_and_trace_work_on_any_command() {
        let _guard = OBS_LOCK.lock().unwrap();
        let dir = workdir();
        let csv = dir.join("obs_eval.csv");
        let prom_out = dir.join("eval_metrics.prom");
        write_linear_csv(&csv);
        let out = run(&args(&[
            "evaluate",
            "--input",
            csv.to_str().unwrap(),
            "--threads",
            "2",
            "--holes",
            "2",
            "--trace",
            "--metrics-out",
            prom_out.to_str().unwrap(),
        ]))
        .unwrap();
        // Report, then span tree, then Prometheus file.
        assert!(out.contains("GE(RR)"), "{out}");
        assert!(out.contains("spans:"), "{out}");
        assert!(out.contains("covariance_scan"), "{out}");
        assert!(out.contains("metrics written to"), "{out}");
        let prom = std::fs::read_to_string(&prom_out).unwrap();
        assert!(prom.contains("covariance_rows_scanned_total"), "{prom}");
        assert!(prom.contains("solver_cache_hits"), "{prom}");
        assert!(!obs::enabled());
    }

    /// The degraded-exit-code marker is process-global state, so every
    /// test that drives [`run_with_status`] serializes on this lock.
    static STATUS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn exit_codes_cover_ok_degraded_and_budget() {
        let _guard = STATUS_LOCK.lock().unwrap();
        let dir = workdir();
        let csv = dir.join("status.csv");
        write_linear_csv(&csv);
        let model = dir.join("status_model.json");
        let m = |extra: &[&str]| {
            let mut base = vec![
                "mine",
                "--input",
                csv.to_str().unwrap(),
                "--output",
                model.to_str().unwrap(),
                "--k",
                "1",
            ];
            base.extend_from_slice(extra);
            run_with_status(&args(&base))
        };

        // Clean streaming mine: success, exit 0.
        let (res, code) = m(&["--max-bad-rows", "5"]);
        assert!(res.is_ok(), "{res:?}");
        assert_eq!(code, crate::EXIT_OK);

        // Faults within budget: success, but exit 2 flags the quarantine.
        let (res, code) = m(&["--fault-rate", "0.1", "--max-bad-rows", "60", "--retries", "3"]);
        let out = res.unwrap();
        assert!(out.contains("quarantined"), "{out}");
        assert_eq!(code, crate::EXIT_DEGRADED);

        // Budget blown: error with the dedicated exit code.
        let (res, code) = m(&["--fault-rate", "0.5", "--max-bad-rows", "1"]);
        assert!(res.is_err());
        assert_eq!(code, crate::EXIT_BUDGET_EXHAUSTED);

        // Strict mode still fails fast on the first injected fault.
        let (res, code) = m(&["--fault-rate", "0.5", "--retries", "3"]);
        assert!(res.is_err(), "strict scan must not quarantine");
        assert_eq!(code, crate::EXIT_ERROR);

        // Ordinary errors (bad flags) keep exit 1.
        let (res, code) = run_with_status(&args(&["mine", "--bogus", "x"]));
        assert!(res.is_err());
        assert_eq!(code, crate::EXIT_ERROR);

        // The marker does not leak into the next invocation.
        let (res, code) = m(&["--max-bad-rows", "5"]);
        assert!(res.is_ok(), "{res:?}");
        assert_eq!(code, crate::EXIT_OK);
    }

    #[test]
    fn degrade_ladder_none_serves_col_avgs_baseline() {
        let _guard = STATUS_LOCK.lock().unwrap();
        let dir = workdir();
        let csv = dir.join("degrade.csv");
        write_linear_csv(&csv);
        let model = dir.join("degrade_model.json");
        let (res, code) = run_with_status(&args(&[
            "mine",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            model.to_str().unwrap(),
            "--degrade",
            "--ladder",
            "none",
        ]));
        let out = res.unwrap();
        assert!(out.contains("col-avgs baseline"), "{out}");
        assert_eq!(code, crate::EXIT_DEGRADED);

        // A healthy ladder on the same data serves full rules at exit 0.
        let (res, code) = run_with_status(&args(&[
            "mine",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            model.to_str().unwrap(),
            "--degrade",
            "--ladder",
            "jacobi,ql,lanczos",
            "--k",
            "1",
        ]));
        let out = res.unwrap();
        assert!(out.contains("mined 1 rules"), "{out}");
        assert!(out.contains("full rules"), "{out}");
        assert_eq!(code, crate::EXIT_OK);

        // Unknown ladder stages are a flag error.
        let (res, code) = run_with_status(&args(&[
            "mine",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            model.to_str().unwrap(),
            "--degrade",
            "--ladder",
            "cholesky",
        ]));
        assert!(res.unwrap_err().to_string().contains("unknown stage"));
        assert_eq!(code, crate::EXIT_ERROR);
    }

    #[test]
    fn checkpoint_and_resume_roundtrip_through_files() {
        let dir = workdir();
        let csv = dir.join("cp.csv");
        write_linear_csv(&csv);
        let model_a = dir.join("cp_model_a.json");
        let model_b = dir.join("cp_model_b.json");
        let cp = dir.join("cp_scan.json");

        let out = run(&args(&[
            "mine",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            model_a.to_str().unwrap(),
            "--k",
            "1",
            "--checkpoint",
            cp.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("mined 1 rules"), "{out}");
        assert!(cp.exists());

        // Resuming from the end-of-scan checkpoint re-mines the same model
        // without re-absorbing any rows.
        let out = run(&args(&[
            "mine",
            "--input",
            csv.to_str().unwrap(),
            "--output",
            model_b.to_str().unwrap(),
            "--k",
            "1",
            "--resume",
            cp.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("resumed from checkpoint"), "{out}");
        assert!(out.contains("mined 1 rules"), "{out}");
    }

    #[test]
    fn profile_with_faults_exposes_resilience_metrics() {
        let _guard = OBS_LOCK.lock().unwrap();
        let out = run(&args(&[
            "profile",
            "--rows",
            "120",
            "--fault-rate",
            "0.05",
            "--k",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("faults:"), "{out}");
        assert!(out.contains("scan_rows_quarantined_total"), "{out}");
        assert!(out.contains("scan_transient_retries_total"), "{out}");
        assert!(out.contains("faults_injected_corrupt_total"), "{out}");
    }
}
