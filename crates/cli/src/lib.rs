//! Library backing the `ratio-rules` command-line tool.
//!
//! The CLI covers the workflow a data analyst would run against a CSV
//! export: mine a model, inspect/interpret it, fill missing values in new
//! records, score outliers, project for visualization, and evaluate the
//! guessing error against the col-avgs baseline. Argument parsing is
//! hand-rolled (the workspace's dependency policy has no CLI crates) and
//! lives in [`args`]; each subcommand is a pure function from parsed
//! options to an output string, so everything is unit-testable without a
//! process boundary.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::fmt;

/// CLI-level error: message plus exit-code semantics.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message printed to stderr.
    pub message: String,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// Builds an error from anything printable.
    pub fn new(message: impl fmt::Display) -> Self {
        CliError {
            message: message.to_string(),
        }
    }
}

impl From<ratio_rules::RatioRuleError> for CliError {
    fn from(e: ratio_rules::RatioRuleError) -> Self {
        CliError::new(e)
    }
}

impl From<dataset::DatasetError> for CliError {
    fn from(e: dataset::DatasetError) -> Self {
        CliError::new(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::new(e)
    }
}

/// Result alias for CLI code.
pub type Result<T> = std::result::Result<T, CliError>;

/// Top-level usage text.
pub const USAGE: &str = "\
ratio-rules — mine and apply Ratio Rules (VLDB'98) on CSV data

USAGE:
    ratio-rules <COMMAND> [OPTIONS]

COMMANDS:
    mine        mine a model from a CSV file
    interpret   print the rules of a model as a table and histograms
    fill        fill missing values ('?') in a record
    outliers    rank the rows of a CSV by outlier score
    project     project a CSV onto two rules (ASCII scatter plot)
    evaluate    guessing-error report (RR vs col-avgs) on a train/test split
    impute      fill holes ('?' or empty cells) throughout a CSV via EM
    card        model-quality report (per-attribute guessing error)
    whatif      what-if scenario: pin attributes, forecast the rest
    profile     mine + evaluate with instrumentation; print spans and metrics
    help        print this message

GLOBAL OPTIONS (every command):
    --trace             append the span tree and a metric table to the output
    --metrics-out FILE  write metrics to FILE (.prom = Prometheus text, else JSON)

Run 'ratio-rules <COMMAND> --help' for per-command options.
";
