//! Library backing the `ratio-rules` command-line tool.
//!
//! The CLI covers the workflow a data analyst would run against a CSV
//! export: mine a model, inspect/interpret it, fill missing values in new
//! records, score outliers, project for visualization, and evaluate the
//! guessing error against the col-avgs baseline. Argument parsing is
//! hand-rolled (the workspace's dependency policy has no CLI crates) and
//! lives in [`args`]; each subcommand is a pure function from parsed
//! options to an output string, so everything is unit-testable without a
//! process boundary.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Exit code for a fully successful run.
pub const EXIT_OK: i32 = 0;
/// Exit code for ordinary errors (bad flags, missing files, ...).
pub const EXIT_ERROR: i32 = 1;
/// Exit code when a command succeeded but served a *degraded* result:
/// rows were quarantined during the scan, fewer rules than the cutoff
/// wanted were mined, or the col-avgs floor served. Scripts treat this
/// as "usable, but look at the report".
pub const EXIT_DEGRADED: i32 = 2;
/// Exit code when a quarantine scan blew its error budget
/// (`--max-bad-rows` / `--max-bad-fraction`): the input is too corrupt
/// to trust any result.
pub const EXIT_BUDGET_EXHAUSTED: i32 = 3;

/// Process-wide "the served result is degraded" marker, set by commands
/// and consumed by [`commands::run_with_status`]. An atomic (not a
/// thread-local) because the scan may mark it from worker threads.
static DEGRADED: AtomicBool = AtomicBool::new(false);

/// Marks the current invocation as having served a degraded result.
pub fn mark_degraded() {
    DEGRADED.store(true, Ordering::SeqCst);
}

/// Reads and clears the degraded marker.
pub fn take_degraded() -> bool {
    DEGRADED.swap(false, Ordering::SeqCst)
}

/// CLI-level error: message plus exit-code semantics.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message printed to stderr.
    pub message: String,
    /// Process exit code ([`EXIT_ERROR`] unless the error carries more
    /// specific semantics, like [`EXIT_BUDGET_EXHAUSTED`]).
    pub code: i32,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// Builds an error from anything printable.
    pub fn new(message: impl fmt::Display) -> Self {
        CliError {
            message: message.to_string(),
            code: EXIT_ERROR,
        }
    }

    /// Builds an error with a specific exit code.
    pub fn with_code(message: impl fmt::Display, code: i32) -> Self {
        CliError {
            message: message.to_string(),
            code,
        }
    }
}

impl From<ratio_rules::RatioRuleError> for CliError {
    fn from(e: ratio_rules::RatioRuleError) -> Self {
        let code = match &e {
            ratio_rules::RatioRuleError::BudgetExhausted { .. } => EXIT_BUDGET_EXHAUSTED,
            _ => EXIT_ERROR,
        };
        CliError::with_code(e, code)
    }
}

impl From<dataset::DatasetError> for CliError {
    fn from(e: dataset::DatasetError) -> Self {
        CliError::new(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(e)
    }
}

/// Result alias for CLI code.
pub type Result<T> = std::result::Result<T, CliError>;

/// Top-level usage text.
pub const USAGE: &str = "\
ratio-rules — mine and apply Ratio Rules (VLDB'98) on CSV data

USAGE:
    ratio-rules <COMMAND> [OPTIONS]

COMMANDS:
    mine        mine a model from a CSV file (or an RRCB file via --columnar)
    convert     convert a CSV file to the RRCB binary block format
    interpret   print the rules of a model as a table and histograms
    fill        fill missing values ('?') in a record
    outliers    rank the rows of a CSV by outlier score
    project     project a CSV onto two rules (ASCII scatter plot)
    evaluate    guessing-error report (RR vs col-avgs) on a train/test split
    impute      fill holes ('?' or empty cells) throughout a CSV via EM
    card        model-quality report (per-attribute guessing error)
    whatif      what-if scenario: pin attributes, forecast the rest
    profile     mine + evaluate with instrumentation; print spans and metrics
    serve       HTTP prediction server: batched hole filling over a model
    serve-bench load-test an in-process server (keep-alive vs cold phases);
                writes BENCH_serve.json
    publish     push a mined model into a running server's hot-swap registry
    mine-shard  distributed-mining worker: serve shard scans over a CSV replica
    mine-distributed
                coordinate shard workers into one model, bit-identical to
                'mine --shards W' (supervision: deadlines, retries, reassignment)
    help        print this message

GLOBAL OPTIONS (every command):
    --trace             append the span tree and a metric table to the output
    --metrics-out FILE  write metrics to FILE (.prom = Prometheus text, else JSON)

FLIGHT RECORDER (mine, profile):
    --flight            record structured events (quarantines, degradations,
                        sheds, checkpoints) in a fixed-size ring; dumped as
                        JSONL after the run, or to stderr on an error exit

FAULT TOLERANCE (mine; see also 'profile --fault-rate'):
    --max-bad-rows N       quarantine up to N bad rows instead of aborting
    --max-bad-fraction F   ... or up to this fraction of all rows
    --retries N            retry transient source errors up to N times
    --checkpoint FILE      write a scan checkpoint (resume with --resume)
    --resume FILE          resume a scan from a checkpoint file
    --degrade              on eigensolve failure, fall back to fewer rules
                           or the col-avgs baseline instead of erroring
    --fault-rate F         inject faults at rate F (chaos testing)
    --fault-seed S         seed for the injected faults (default 42)

EXIT CODES:
    0  success        2  served a degraded result (quarantined rows / fewer rules)
    1  error          3  quarantine error budget exhausted

Run 'ratio-rules <COMMAND> --help' for per-command options.
";
