//! The `ratio-rules` binary: thin wrapper over [`ratio_rules_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (result, code) = ratio_rules_cli::commands::run_with_status(&args);
    match result {
        Ok(output) => print!("{output}"),
        Err(e) => eprintln!("error: {e}"),
    }
    if code != 0 {
        std::process::exit(code);
    }
}
