//! The `ratio-rules` binary: thin wrapper over [`ratio_rules_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ratio_rules_cli::commands::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
