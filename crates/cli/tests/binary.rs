//! Process-level integration tests: run the actual `ratio-rules` binary
//! end to end (Cargo builds it and exposes the path via
//! `CARGO_BIN_EXE_ratio-rules`).

use std::path::PathBuf;
use std::process::Command;

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ratio-rules"))
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rr_bin_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_sales_csv(path: &std::path::Path) {
    let mut text = String::from("bread,milk,butter\n");
    for i in 0..50 {
        let t = 1.0 + i as f64 * 0.5;
        text.push_str(&format!("{},{},{}\n", 3.0 * t, 2.0 * t, t));
    }
    std::fs::write(path, text).unwrap();
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = binary().arg("help").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("mine"));
}

#[test]
fn no_args_prints_usage() {
    let out = binary().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("COMMANDS"));
}

#[test]
fn unknown_command_fails_with_stderr() {
    let out = binary().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command"));
}

#[test]
fn mine_then_fill_pipeline() {
    let dir = workdir();
    let csv = dir.join("sales.csv");
    let model = dir.join("model.json");
    write_sales_csv(&csv);

    let out = binary()
        .args(["mine", "--input"])
        .arg(&csv)
        .arg("--output")
        .arg(&model)
        .args(["--k", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("mined 1 rules"));

    let out = binary()
        .args(["fill", "--model"])
        .arg(&model)
        .args(["--row", "30,?,?"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // bread = 30 -> milk 20, butter 10 on the planted 3:2:1 line.
    assert!(stdout.contains("20.00"), "fill output: {stdout}");
    assert!(stdout.contains("10.00"), "fill output: {stdout}");
}

#[test]
fn evaluate_runs_on_real_file() {
    let dir = workdir();
    let csv = dir.join("eval.csv");
    write_sales_csv(&csv);
    let out = binary()
        .args(["evaluate", "--input"])
        .arg(&csv)
        .args(["--holes", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("GE(col-avgs)"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = binary()
        .args([
            "mine",
            "--input",
            "/nonexistent/x.csv",
            "--output",
            "/tmp/m.json",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(!String::from_utf8(out.stderr).unwrap().is_empty());
}
