//! Process-level integration tests: run the actual `ratio-rules` binary
//! end to end (Cargo builds it and exposes the path via
//! `CARGO_BIN_EXE_ratio-rules`).

use std::path::PathBuf;
use std::process::Command;

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ratio-rules"))
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rr_bin_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_sales_csv(path: &std::path::Path) {
    let mut text = String::from("bread,milk,butter\n");
    for i in 0..50 {
        let t = 1.0 + i as f64 * 0.5;
        text.push_str(&format!("{},{},{}\n", 3.0 * t, 2.0 * t, t));
    }
    std::fs::write(path, text).unwrap();
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = binary().arg("help").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("mine"));
}

#[test]
fn no_args_prints_usage() {
    let out = binary().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("COMMANDS"));
}

#[test]
fn unknown_command_fails_with_stderr() {
    let out = binary().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command"));
}

#[test]
fn mine_then_fill_pipeline() {
    let dir = workdir();
    let csv = dir.join("sales.csv");
    let model = dir.join("model.json");
    write_sales_csv(&csv);

    let out = binary()
        .args(["mine", "--input"])
        .arg(&csv)
        .arg("--output")
        .arg(&model)
        .args(["--k", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("mined 1 rules"));

    let out = binary()
        .args(["fill", "--model"])
        .arg(&model)
        .args(["--row", "30,?,?"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // bread = 30 -> milk 20, butter 10 on the planted 3:2:1 line.
    assert!(stdout.contains("20.00"), "fill output: {stdout}");
    assert!(stdout.contains("10.00"), "fill output: {stdout}");
}

#[test]
fn evaluate_runs_on_real_file() {
    let dir = workdir();
    let csv = dir.join("eval.csv");
    write_sales_csv(&csv);
    let out = binary()
        .args(["evaluate", "--input"])
        .arg(&csv)
        .args(["--holes", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("GE(col-avgs)"));
}

#[test]
fn chaos_exit_codes_are_distinct() {
    let dir = workdir();
    let csv = dir.join("chaos.csv");
    let model = dir.join("chaos_model.json");
    write_sales_csv(&csv);

    // Clean streaming mine (quarantine armed, no faults): exit 0.
    let out = binary()
        .args(["mine", "--input"])
        .arg(&csv)
        .arg("--output")
        .arg(&model)
        .args(["--k", "1", "--max-bad-rows", "5"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Injected faults inside a generous budget: the model mines, but the
    // exit code flags the degraded (quarantined) scan.
    let out = binary()
        .args(["mine", "--input"])
        .arg(&csv)
        .arg("--output")
        .arg(&model)
        .args([
            "--k",
            "1",
            "--fault-rate",
            "0.1",
            "--max-bad-rows",
            "50",
            "--retries",
            "3",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("quarantined"), "{stdout}");

    // Budget blown: exit 3 with a budget-exhausted message.
    let out = binary()
        .args(["mine", "--input"])
        .arg(&csv)
        .arg("--output")
        .arg(&model)
        .args(["--k", "1", "--fault-rate", "0.5", "--max-bad-rows", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error budget exhausted"), "{stderr}");

    // Strict mode (no quarantine flags) fails fast on the first fault.
    let out = binary()
        .args(["mine", "--input"])
        .arg(&csv)
        .arg("--output")
        .arg(&model)
        .args(["--k", "1", "--fault-rate", "0.5", "--retries", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn forced_eigensolve_failure_degrades_to_col_avgs() {
    let dir = workdir();
    let csv = dir.join("ladder.csv");
    let model = dir.join("ladder_model.json");
    write_sales_csv(&csv);

    // --ladder none removes every eigensolve stage: the miner must land
    // on the col-avgs floor instead of erroring, and exit 2.
    let out = binary()
        .args(["mine", "--input"])
        .arg(&csv)
        .arg("--output")
        .arg(&model)
        .args(["--degrade", "--ladder", "none"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("col-avgs baseline"), "{stdout}");
    let doc = std::fs::read_to_string(&model).unwrap();
    assert!(doc.contains("col_avgs"), "{doc}");
}

#[test]
fn checkpoint_file_resumes_across_processes() {
    let dir = workdir();
    let csv = dir.join("resume.csv");
    let model = dir.join("resume_model.json");
    let cp = dir.join("resume_scan.json");
    write_sales_csv(&csv);

    let out = binary()
        .args(["mine", "--input"])
        .arg(&csv)
        .arg("--output")
        .arg(&model)
        .args(["--k", "1", "--checkpoint"])
        .arg(&cp)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(cp.exists());

    // A second process resumes from the file written by the first.
    let out = binary()
        .args(["mine", "--input"])
        .arg(&csv)
        .arg("--output")
        .arg(&model)
        .args(["--k", "1", "--resume"])
        .arg(&cp)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("resumed from checkpoint"), "{stdout}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = binary()
        .args([
            "mine",
            "--input",
            "/nonexistent/x.csv",
            "--output",
            "/tmp/m.json",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(!String::from_utf8(out.stderr).unwrap().is_empty());
}
