//! Batched hole filling: group rows by hole pattern, factor once per
//! group, fill row by row.
//!
//! The serving layer coalesces concurrent `/predict` requests into one
//! batch; this facade is the compute side of that bargain. Rows sharing
//! a [`PatternKey`] share one factored [`PatternSolver`] (fetched through
//! the PR-1 solver cache, so repeat patterns across batches are also
//! free), and each row then goes through exactly the same
//! [`PatternSolver::fill`] call the single-shot [`RuleSetPredictor`] path
//! uses — batched and unbatched answers are bit-for-bit identical by
//! construction, which `tests/serve_e2e.rs` asserts over a real socket.

use std::collections::HashMap;

use crate::predictor::RuleSetPredictor;
use crate::reconstruct::{FilledRow, PatternKey};
use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use dataset::holes::HoledRow;

/// Batch facade over [`RuleSetPredictor`].
#[derive(Debug)]
pub struct BatchPredictor {
    inner: RuleSetPredictor,
}

impl BatchPredictor {
    /// Wraps a mined rule set with the solver cache on.
    #[must_use]
    pub fn new(rules: RuleSet) -> Self {
        BatchPredictor {
            inner: RuleSetPredictor::new(rules),
        }
    }

    /// Wraps an existing predictor (cached or uncached).
    #[must_use]
    pub fn from_predictor(inner: RuleSetPredictor) -> Self {
        BatchPredictor { inner }
    }

    /// The wrapped predictor (for cache stats or single-shot fills).
    #[must_use]
    pub fn predictor(&self) -> &RuleSetPredictor {
        &self.inner
    }

    /// Expected row width `M`.
    #[must_use]
    pub fn n_attributes(&self) -> usize {
        self.inner.rules().n_attributes()
    }

    /// Fills a batch of holed rows, one result per input row in input
    /// order. Rows are grouped by hole pattern so each distinct pattern
    /// pays for its factorization once; a row whose pattern or values are
    /// invalid gets its own `Err` without failing the rest of the batch.
    ///
    /// Returns the number of distinct pattern groups alongside the
    /// per-row results (the serving layer records it as the coalescing
    /// ratio).
    ///
    /// # Errors
    /// The call itself never fails; each per-row `Result` is `Err` when
    /// that row's width, hole pattern, or values are invalid.
    pub fn fill_batch(&self, rows: &[HoledRow]) -> (usize, Vec<Result<FilledRow>>) {
        self.fill_batch_traced(rows, &[], 0)
    }

    /// [`fill_batch`](Self::fill_batch) with request-scoped tracing:
    /// `ctxs[i]` (when present) is row `i`'s trace context, and each
    /// pattern group's solve is recorded as a `pattern_solve` span into
    /// *every* member row's trace with identical `batch`/`group` args —
    /// which is how a trace viewer shows which requests shared which
    /// factorization. The numeric path is exactly `fill_batch` (that
    /// method delegates here), so batched answers stay bit-identical to
    /// single-shot fills whether or not tracing is on.
    ///
    /// `ctxs` may be shorter than `rows` (missing entries are untraced);
    /// `batch_id` labels the spans.
    ///
    /// # Errors
    /// The call itself never fails; each per-row `Result` is `Err` when
    /// that row's width, hole pattern, or values are invalid.
    pub fn fill_batch_traced(
        &self,
        rows: &[HoledRow],
        ctxs: &[Option<obs::TraceContext>],
        batch_id: u64,
    ) -> (usize, Vec<Result<FilledRow>>) {
        let m = self.n_attributes();
        let tracing = obs::enabled() && ctxs.iter().any(Option::is_some);
        let mut results: Vec<Option<Result<FilledRow>>> = rows.iter().map(|_| None).collect();
        let mut groups: HashMap<PatternKey, Vec<usize>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            if row.width() != m {
                results[i] = Some(Err(RatioRuleError::WidthMismatch {
                    expected: m,
                    actual: row.width(),
                }));
                continue;
            }
            match PatternKey::new(&row.hole_indices(), m) {
                Ok(key) => groups.entry(key).or_default().push(i),
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        let n_groups = groups.len();
        // Deterministic group numbering for span labels: by first row.
        let mut ordered: Vec<&Vec<usize>> = groups.values().collect();
        ordered.sort_by_key(|indices| indices[0]);
        for (group_no, indices) in ordered.into_iter().enumerate() {
            // All rows in a group share the pattern; factor via the first.
            let holes = rows[indices[0]].hole_indices();
            let start_us = if tracing { obs::trace::now_us() } else { 0 };
            match self.inner.pattern_solver(&holes) {
                Ok(solver) => {
                    for &i in indices {
                        results[i] = Some(solver.fill(&rows[i]));
                    }
                }
                Err(e) => {
                    // RatioRuleError is not Clone; re-render per row.
                    let msg = e.to_string();
                    for &i in indices {
                        results[i] = Some(Err(RatioRuleError::Invalid(msg.clone())));
                    }
                }
            }
            if tracing {
                let dur_us = obs::trace::now_us().saturating_sub(start_us);
                let args = [
                    ("batch", batch_id as f64),
                    ("group", group_no as f64),
                    ("rows", indices.len() as f64),
                ];
                for &i in indices {
                    if let Some(ctx) = ctxs.get(i).copied().flatten() {
                        obs::trace::record_span(
                            &ctx,
                            obs::names::SPAN_PATTERN_SOLVE,
                            start_us,
                            dur_us,
                            &args,
                        );
                    }
                }
            }
        }
        let out = results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| Err(RatioRuleError::Invalid("row not routed".into()))))
            .collect();
        (n_groups, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;
    use crate::predictor::Predictor;
    use linalg::Matrix;

    fn mined() -> RuleSet {
        let x = Matrix::from_fn(30, 4, |i, j| {
            let t = (i + 1) as f64;
            t * [4.0, 3.0, 2.0, 1.0][j] + ((i * 5 + j * 3) % 7) as f64 * 0.02
        });
        RatioRuleMiner::new(Cutoff::FixedK(2)).fit_matrix(&x).unwrap()
    }

    #[test]
    fn batch_is_bit_identical_to_single_shot() {
        let rules = mined();
        let single = RuleSetPredictor::new(rules.clone());
        let batch = BatchPredictor::new(rules);
        let rows: Vec<HoledRow> = vec![
            HoledRow::new(vec![Some(8.0), None, Some(4.0), Some(2.0)]),
            HoledRow::new(vec![Some(12.0), None, Some(6.0), Some(3.0)]),
            HoledRow::new(vec![None, Some(9.0), None, Some(3.1)]),
            HoledRow::new(vec![Some(16.0), None, Some(8.0), Some(4.0)]),
        ];
        let (n_groups, filled) = batch.fill_batch(&rows);
        assert_eq!(n_groups, 2, "two distinct hole patterns");
        for (row, got) in rows.iter().zip(&filled) {
            let want = single.fill(row).unwrap();
            assert_eq!(got.as_ref().unwrap().values, want);
        }
        // Three same-pattern rows share one factorization.
        let stats = batch.predictor().cache_stats();
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn bad_rows_fail_individually_not_the_batch() {
        let batch = BatchPredictor::new(mined());
        let rows = vec![
            HoledRow::new(vec![Some(8.0), None, Some(4.0), Some(2.0)]),
            HoledRow::new(vec![None, None]), // wrong width
            HoledRow::new(vec![None, None, None, None]), // all holes
        ];
        let (_, filled) = batch.fill_batch(&rows);
        assert!(filled[0].is_ok());
        assert!(filled[1].is_err());
        assert!(filled[2].is_err());
    }

    #[test]
    fn traced_fill_matches_untraced_and_records_shared_solve_spans() {
        let rules = mined();
        let plain = BatchPredictor::new(rules.clone());
        let traced = BatchPredictor::new(rules);
        let rows: Vec<HoledRow> = vec![
            HoledRow::new(vec![Some(8.0), None, Some(4.0), Some(2.0)]),
            HoledRow::new(vec![Some(12.0), None, Some(6.0), Some(3.0)]),
            HoledRow::new(vec![None, Some(9.0), None, Some(3.1)]),
        ];
        obs::set_enabled(true);
        let ctxs: Vec<Option<obs::TraceContext>> = (0..rows.len())
            .map(|i| Some(obs::TraceContext::root(0xba7c + i as u64)))
            .collect();
        let (n_groups, with_trace) = traced.fill_batch_traced(&rows, &ctxs, 42);
        obs::set_enabled(false);
        let (_, without) = plain.fill_batch(&rows);
        assert_eq!(n_groups, 2);
        for (a, b) in with_trace.iter().zip(&without) {
            assert_eq!(a.as_ref().unwrap().values, b.as_ref().unwrap().values);
        }
        // Rows 0 and 1 share a pattern: their traces carry the same
        // group label; row 2 gets a different group.
        let span_of = |i: usize| {
            let ctx = ctxs[i].unwrap();
            let spans = obs::trace::get_trace(ctx.trace_id).expect("trace retained");
            let s = spans
                .iter()
                .find(|s| s.name == obs::names::SPAN_PATTERN_SOLVE)
                .expect("pattern_solve span")
                .clone();
            assert_eq!(s.parent_id, ctx.span_id);
            s.args.clone()
        };
        let (a0, a1, a2) = (span_of(0), span_of(1), span_of(2));
        assert_eq!(a0, a1, "shared solve: identical batch/group/rows args");
        assert_ne!(a0, a2);
        assert!(a0.contains(&("batch", 42.0)));
        assert!(a0.contains(&("rows", 2.0)));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let batch = BatchPredictor::new(mined());
        let (n_groups, filled) = batch.fill_batch(&[]);
        assert_eq!(n_groups, 0);
        assert!(filled.is_empty());
    }
}
