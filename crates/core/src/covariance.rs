//! Single-pass covariance accumulation — the paper's Fig. 2(a).
//!
//! One scan over the rows maintains the column sums and the raw moment
//! matrix `sum_i x_ij * x_il`; finalization applies the correction
//! `C[j][l] -= N * avg_j * avg_l`. This needs `O(M^2)` memory and
//! `O(N M^2)` work, reads each row exactly once, and is the reason Ratio
//! Rules mine in a single pass where Apriori-style algorithms need many.
//!
//! Accumulators are mergeable, which gives the parallel scan in
//! [`crate::parallel`] for free and lets distributed workers each scan a
//! shard.

use crate::{RatioRuleError, Result};
use linalg::Matrix;

/// Streaming accumulator for column averages and the covariance (scatter)
/// matrix.
#[derive(Debug, Clone)]
pub struct CovarianceAccumulator {
    m: usize,
    n: usize,
    col_sums: Vec<f64>,
    /// Upper triangle (including diagonal) of the raw moment matrix,
    /// packed row-major: entry `(j, l)` with `l >= j` at
    /// `j * m - j*(j-1)/2 + (l - j)`.
    raw_upper: Vec<f64>,
}

impl CovarianceAccumulator {
    /// Creates an accumulator for `m` attributes.
    pub fn new(m: usize) -> Self {
        CovarianceAccumulator {
            m,
            n: 0,
            col_sums: vec![0.0; m],
            raw_upper: vec![0.0; m * (m + 1) / 2],
        }
    }

    /// Number of attributes `M`.
    pub fn n_cols(&self) -> usize {
        self.m
    }

    /// Number of rows absorbed so far.
    pub fn n_rows(&self) -> usize {
        self.n
    }

    #[inline]
    fn upper_index(&self, j: usize, l: usize) -> usize {
        debug_assert!(j <= l && l < self.m);
        // Offset of row j in the packed upper triangle:
        // sum_{r<j} (m - r) = j*m - j*(j-1)/2, written overflow-safe.
        (j * (2 * self.m - j + 1)) / 2 + (l - j)
    }

    /// Absorbs one row (the body of the paper's single-pass loop).
    ///
    /// Rejects non-finite cells up front: a single NaN would silently
    /// poison the whole covariance matrix and surface much later as an
    /// eigensolver convergence failure.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.m {
            return Err(RatioRuleError::WidthMismatch {
                expected: self.m,
                actual: row.len(),
            });
        }
        if let Some(j) = row.iter().position(|v| !v.is_finite()) {
            return Err(RatioRuleError::Invalid(format!(
                "non-finite value {} at column {j} of row {}",
                row[j],
                self.n + 1
            )));
        }
        self.n += 1;
        let mut idx = 0usize;
        for j in 0..self.m {
            let xj = row[j];
            self.col_sums[j] += xj;
            // Unrolled upper-triangle walk: idx tracks upper_index(j, l).
            for &xl in &row[j..] {
                self.raw_upper[idx] += xj * xl;
                idx += 1;
            }
        }
        Ok(())
    }

    /// Merges another accumulator (same width) into this one.
    pub fn merge(&mut self, other: &CovarianceAccumulator) -> Result<()> {
        if other.m != self.m {
            return Err(RatioRuleError::WidthMismatch {
                expected: self.m,
                actual: other.m,
            });
        }
        linalg::sanitize::check_finite_slice("covariance merge col_sums", &other.col_sums);
        linalg::sanitize::check_finite_slice("covariance merge raw_upper", &other.raw_upper);
        self.n += other.n;
        for (a, b) in self.col_sums.iter_mut().zip(&other.col_sums) {
            *a += b;
        }
        for (a, b) in self.raw_upper.iter_mut().zip(&other.raw_upper) {
            *a += b;
        }
        Ok(())
    }

    /// Raw internals `(n, col_sums, raw_upper)` for checkpointing. The
    /// packed layout of `raw_upper` is documented on the field; together
    /// with [`CovarianceAccumulator::from_parts`] this round-trips the
    /// accumulator bit-for-bit.
    pub fn parts(&self) -> (usize, &[f64], &[f64]) {
        (self.n, &self.col_sums, &self.raw_upper)
    }

    /// Rebuilds an accumulator from checkpointed internals. Inverse of
    /// [`CovarianceAccumulator::parts`]; lengths are validated against
    /// `m`.
    pub fn from_parts(m: usize, n: usize, col_sums: Vec<f64>, raw_upper: Vec<f64>) -> Result<Self> {
        if col_sums.len() != m {
            return Err(RatioRuleError::Invalid(format!(
                "checkpoint has {} column sums for {m} attributes",
                col_sums.len()
            )));
        }
        let want = m * (m + 1) / 2;
        if raw_upper.len() != want {
            return Err(RatioRuleError::Invalid(format!(
                "checkpoint has {} moment entries, expected {want}",
                raw_upper.len()
            )));
        }
        // A checkpoint bypasses push_row's input validation, so this is
        // where a corrupted snapshot can smuggle a NaN into the scan.
        linalg::sanitize::check_finite_slice("covariance checkpoint col_sums", &col_sums);
        linalg::sanitize::check_finite_slice("covariance checkpoint raw_upper", &raw_upper);
        Ok(CovarianceAccumulator {
            m,
            n,
            col_sums,
            raw_upper,
        })
    }

    /// Column averages seen so far.
    pub fn column_means(&self) -> Vec<f64> {
        if self.n == 0 {
            return vec![0.0; self.m];
        }
        self.col_sums.iter().map(|s| s / self.n as f64).collect()
    }

    /// Finalizes into `(C, means, n)` where `C = Xc^t Xc` is the scatter
    /// matrix of the centered data (paper Eq. 2; the paper does not divide
    /// by `N`, and the eigenvectors are identical either way).
    pub fn finalize(&self) -> Result<(Matrix, Vec<f64>, usize)> {
        if self.n == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        let means = self.column_means();
        let mut c = Matrix::zeros(self.m, self.m);
        for j in 0..self.m {
            for l in j..self.m {
                let raw = self.raw_upper[self.upper_index(j, l)];
                let v = raw - self.n as f64 * means[j] * means[l];
                c[(j, l)] = v;
                c[(l, j)] = v;
            }
        }
        linalg::sanitize::check_finite_slice("finalized scatter matrix", c.data());
        linalg::sanitize::check_symmetric("finalized scatter matrix", c.data(), self.m, self.m, 0.0);
        Ok((c, means, self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::stats;

    fn x() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 5.0, -2.0],
            &[2.0, 3.0, 0.0],
            &[4.0, -1.0, 1.0],
            &[0.5, 2.0, 7.0],
            &[3.0, 3.0, 3.0],
        ])
        .unwrap()
    }

    fn accumulate(m: &Matrix) -> CovarianceAccumulator {
        let mut acc = CovarianceAccumulator::new(m.cols());
        for row in m.row_iter() {
            acc.push_row(row).unwrap();
        }
        acc
    }

    #[test]
    fn matches_two_pass_reference() {
        let m = x();
        let acc = accumulate(&m);
        let (c, means, n) = acc.finalize().unwrap();
        assert_eq!(n, 5);

        let reference = stats::covariance_two_pass(&m).unwrap();
        assert!(
            c.max_abs_diff(&reference).unwrap() < 1e-10,
            "single-pass covariance deviates from two-pass oracle"
        );
        let ref_stats = stats::column_stats(&m);
        for (a, b) in means.iter().zip(&ref_stats.means) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn finalize_is_symmetric() {
        let (c, _, _) = accumulate(&x()).finalize().unwrap();
        assert!(c.is_symmetric(0.0));
    }

    #[test]
    fn rejects_wrong_width_row() {
        let mut acc = CovarianceAccumulator::new(3);
        assert!(matches!(
            acc.push_row(&[1.0, 2.0]),
            Err(RatioRuleError::WidthMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn rejects_non_finite_cells() {
        let mut acc = CovarianceAccumulator::new(2);
        acc.push_row(&[1.0, 2.0]).unwrap();
        let err = acc.push_row(&[f64::NAN, 1.0]).unwrap_err();
        assert!(err.to_string().contains("column 0"));
        assert!(acc.push_row(&[1.0, f64::INFINITY]).is_err());
        assert!(acc.push_row(&[1.0, f64::NEG_INFINITY]).is_err());
        // The accumulator stays usable: the poisoned rows were not
        // absorbed.
        acc.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(acc.n_rows(), 2);
        let (c, _, _) = acc.finalize().unwrap();
        assert!(c.is_finite());
    }

    #[test]
    fn empty_accumulator_cannot_finalize() {
        let acc = CovarianceAccumulator::new(3);
        assert!(matches!(acc.finalize(), Err(RatioRuleError::EmptyInput)));
        assert_eq!(acc.column_means(), vec![0.0; 3]);
    }

    #[test]
    fn merge_equals_single_scan() {
        let m = x();
        let whole = accumulate(&m);

        // Split rows 0..2 and 2..5 into two accumulators and merge.
        let mut a = CovarianceAccumulator::new(3);
        let mut b = CovarianceAccumulator::new(3);
        for (i, row) in m.row_iter().enumerate() {
            if i < 2 {
                a.push_row(row).unwrap();
            } else {
                b.push_row(row).unwrap();
            }
        }
        a.merge(&b).unwrap();

        let (c1, m1, n1) = whole.finalize().unwrap();
        let (c2, m2, n2) = a.finalize().unwrap();
        assert_eq!(n1, n2);
        assert!(c1.max_abs_diff(&c2).unwrap() < 1e-10);
        for (x, y) in m1.iter().zip(&m2) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_rejects_mismatched_width() {
        let mut a = CovarianceAccumulator::new(3);
        let b = CovarianceAccumulator::new(2);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn single_row_gives_zero_covariance() {
        let mut acc = CovarianceAccumulator::new(2);
        acc.push_row(&[3.0, 4.0]).unwrap();
        let (c, means, n) = acc.finalize().unwrap();
        assert_eq!(n, 1);
        assert_eq!(means, vec![3.0, 4.0]);
        assert!(c.max_abs() < 1e-12);
    }

    #[test]
    fn upper_triangle_indexing_is_bijective() {
        let acc = CovarianceAccumulator::new(6);
        let mut seen = std::collections::HashSet::new();
        for j in 0..6 {
            for l in j..6 {
                assert!(seen.insert(acc.upper_index(j, l)));
            }
        }
        assert_eq!(seen.len(), 21);
        assert_eq!(*seen.iter().max().unwrap(), 20);
    }

    #[test]
    fn cancellation_error_is_bounded_for_shifted_data() {
        // The raw-moment formula loses precision when means are huge
        // relative to the variance. Document that the error stays small
        // for a moderate shift (1e6) — the regime the paper assumes.
        let shift = 1e6;
        let m = Matrix::from_fn(50, 2, |i, j| {
            shift + (i as f64) * 0.1 + (j as f64) * 0.01 * (i as f64 % 7.0)
        });
        let (c, _, _) = accumulate(&m).finalize().unwrap();
        let reference = stats::covariance_two_pass(&m).unwrap();
        let rel = c.max_abs_diff(&reference).unwrap() / reference.max_abs().max(1e-30);
        assert!(rel < 1e-3, "relative cancellation error {rel}");
    }

    /// Seeded NaN injection: `push_row` rejects non-finite input, so the
    /// realistic smuggling route is a corrupted checkpoint restored via
    /// `from_parts`. With the sanitizer active that must trap at the
    /// restore boundary, not thirty QL sweeps later.
    #[cfg(all(feature = "numeric-sanitizer", debug_assertions))]
    #[test]
    fn sanitizer_traps_nan_smuggled_through_checkpoint() {
        let acc = accumulate(&x());
        let (n, col_sums, raw_upper) = acc.parts();
        let mut poisoned = raw_upper.to_vec();
        poisoned[2] = f64::NAN;
        let trapped = std::panic::catch_unwind(|| {
            CovarianceAccumulator::from_parts(3, n, col_sums.to_vec(), poisoned)
        })
        .is_err();
        assert!(trapped, "sanitizer must trap the poisoned checkpoint");

        // An intact checkpoint still restores and finalizes cleanly.
        let ok = CovarianceAccumulator::from_parts(3, n, col_sums.to_vec(), raw_upper.to_vec())
            .unwrap();
        ok.finalize().unwrap();
    }

    /// The merge boundary is the other sanitized entry point: a worker
    /// shard whose accumulator went non-finite (overflow) must be caught
    /// when merged, before it contaminates the scatter matrix.
    #[cfg(all(feature = "numeric-sanitizer", debug_assertions))]
    #[test]
    fn sanitizer_traps_nonfinite_merge() {
        let m = x();
        let mut left = accumulate(&m);
        let right = accumulate(&m);
        let mut poisoned = right.clone();
        poisoned.col_sums[0] = f64::INFINITY;
        let trapped = std::panic::catch_unwind(move || left.merge(&poisoned)).is_err();
        assert!(trapped, "sanitizer must trap the overflowed shard at merge");

        // A healthy merge still works.
        let mut left = accumulate(&m);
        left.merge(&right).unwrap();
        left.finalize().unwrap();
    }
}
