//! Single-pass covariance accumulation — the paper's Fig. 2(a) — with a
//! cache-blocked SYRK-style kernel.
//!
//! One scan over the rows maintains the column sums and the raw moment
//! matrix `sum_i x_ij * x_il`; finalization applies the correction
//! `C[j][l] -= N * avg_j * avg_l`. This needs `O(M^2)` memory and
//! `O(N M^2)` work, reads each row exactly once, and is the reason Ratio
//! Rules mine in a single pass where Apriori-style algorithms need many.
//!
//! # Blocked kernel
//!
//! The naive formulation walks the packed `M(M+1)/2` upper triangle once
//! *per row* — a rank-1 update that streams the whole triangle through
//! cache for every row and leaves no instruction-level parallelism (each
//! triangle entry is a serial `+=` chain). This module instead buffers
//! incoming rows into a `B x M` panel ([`DEFAULT_BLOCK_ROWS`] high) and
//! folds the whole panel at once — a rank-B update. The triangle is then
//! streamed once per *panel* instead of once per row, and the inner loop
//! runs over [`TILE`] contiguous triangle entries with independent
//! accumulators, which auto-vectorizes cleanly.
//!
//! # Bit-exactness
//!
//! The blocked kernel is **bit-identical** to the historical per-row
//! triangular walk, for every block size and every mix of
//! [`CovarianceAccumulator::push_row`] / [`CovarianceAccumulator::push_block`]
//! calls: for each triangle entry the fold loads the accumulator, adds
//! exactly one product per row *in row arrival order*, and stores it
//! back. Rust does not contract `a + x*y` into a fused multiply-add, so
//! the sequence of f64 operations per entry is the same as the scalar
//! walk's — only the iteration order *across* (independent) entries
//! changes. Checkpoints taken mid-panel therefore round-trip exactly:
//! [`CovarianceAccumulator::parts`] returns the fully-folded state, and a
//! scan resumed from it reproduces the uninterrupted scan bit-for-bit.
//!
//! Accumulators are mergeable, which gives the parallel scan in
//! [`crate::parallel`] for free and lets distributed workers each scan a
//! shard.

use crate::{RatioRuleError, Result};
use linalg::Matrix;

/// Default panel height of the blocked kernel. 64 rows x 100 columns is
/// a 50 KiB panel — comfortably inside L2 next to the packed triangle.
pub const DEFAULT_BLOCK_ROWS: usize = 64;

/// Width of the inner column tile: 16 independent f64 accumulators give
/// the auto-vectorizer two AVX-512 (or four AVX2) lanes of ILP per step.
const TILE: usize = 16;


/// Streaming accumulator for column averages and the covariance (scatter)
/// matrix.
#[derive(Debug, Clone)]
pub struct CovarianceAccumulator {
    m: usize,
    /// Rows absorbed so far, *including* rows still buffered in `panel`.
    n: usize,
    col_sums: Vec<f64>,
    /// Upper triangle (including diagonal) of the raw moment matrix,
    /// packed row-major: entry `(j, l)` with `l >= j` at
    /// `j * m - j*(j-1)/2 + (l - j)`. Buffered panel rows are *not* yet
    /// folded in; [`CovarianceAccumulator::parts`] and
    /// [`CovarianceAccumulator::finalize`] always present the folded view.
    raw_upper: Vec<f64>,
    /// Panel height `B` of the blocked kernel.
    block_rows: usize,
    /// Row-major `block_rows x m` staging panel; only the first
    /// `panel_rows` rows are live.
    panel: Vec<f64>,
    panel_rows: usize,
}

impl CovarianceAccumulator {
    /// Creates an accumulator for `m` attributes with the default panel
    /// height.
    pub fn new(m: usize) -> Self {
        Self::with_block_rows(m, DEFAULT_BLOCK_ROWS)
    }

    /// Creates an accumulator for `m` attributes whose blocked kernel
    /// folds panels of `block_rows` rows (clamped to at least 1). The
    /// result is bit-identical for every choice; the knob only moves the
    /// cache-blocking sweet spot.
    pub fn with_block_rows(m: usize, block_rows: usize) -> Self {
        let block_rows = block_rows.max(1);
        CovarianceAccumulator {
            m,
            n: 0,
            col_sums: vec![0.0; m],
            raw_upper: vec![0.0; m * (m + 1) / 2],
            block_rows,
            panel: vec![0.0; block_rows * m],
            panel_rows: 0,
        }
    }

    /// Number of attributes `M`.
    pub fn n_cols(&self) -> usize {
        self.m
    }

    /// Number of rows absorbed so far (buffered rows included).
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Panel height `B` of the blocked kernel.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    #[inline]
    fn upper_index(&self, j: usize, l: usize) -> usize {
        debug_assert!(j <= l && l < self.m);
        // Offset of row j in the packed upper triangle:
        // sum_{r<j} (m - r) = j*m - j*(j-1)/2, written overflow-safe.
        (j * (2 * self.m - j + 1)) / 2 + (l - j)
    }

    /// Absorbs one row (the body of the paper's single-pass loop).
    ///
    /// The row is validated, staged into the current panel, and folded
    /// together with its panel-mates once the panel fills — bit-identical
    /// to the historical immediate rank-1 update (see the module docs).
    ///
    /// Rejects non-finite cells up front: a single NaN would silently
    /// poison the whole covariance matrix and surface much later as an
    /// eigensolver convergence failure.
    ///
    /// # Errors
    ///
    /// [`RatioRuleError::WidthMismatch`] if the row is not `m` wide;
    /// [`RatioRuleError::Invalid`] if any cell is non-finite. A rejected
    /// row is not absorbed and the accumulator stays usable.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.m {
            return Err(RatioRuleError::WidthMismatch {
                expected: self.m,
                actual: row.len(),
            });
        }
        if let Some(j) = row.iter().position(|v| !v.is_finite()) {
            return Err(RatioRuleError::Invalid(format!(
                "non-finite value {} at column {j} of row {}",
                row[j],
                self.n + 1
            )));
        }
        self.panel[self.panel_rows * self.m..(self.panel_rows + 1) * self.m].copy_from_slice(row);
        self.panel_rows += 1;
        self.n += 1;
        if self.panel_rows == self.block_rows {
            self.flush();
        }
        Ok(())
    }

    /// Absorbs `rows` rows packed row-major in `block` — the columnar
    /// fast path. Full panels are folded straight from `block` without
    /// staging; leading/trailing partial panels go through the staging
    /// buffer. The result is bit-identical to pushing the same rows one
    /// at a time.
    ///
    /// # Errors
    ///
    /// [`RatioRuleError::Invalid`] if `block.len() != rows * m`, or if
    /// any cell is non-finite (reported with the same row/column
    /// attribution as [`CovarianceAccumulator::push_row`]). Validation
    /// runs before absorption: a rejected block leaves the accumulator
    /// untouched.
    pub fn push_block(&mut self, block: &[f64], rows: usize) -> Result<()> {
        let m = self.m;
        if block.len() != rows * m {
            return Err(RatioRuleError::WidthMismatch {
                expected: rows * m,
                actual: block.len(),
            });
        }
        if let Some(p) = block.iter().position(|v| !v.is_finite()) {
            return Err(RatioRuleError::Invalid(format!(
                "non-finite value {} at column {} of row {}",
                block[p],
                p % m,
                self.n + p / m + 1
            )));
        }
        if rows == 0 || m == 0 {
            self.n += rows;
            return Ok(());
        }
        let mut rest = block;
        // Top up a partially-filled panel first so row order is kept.
        if self.panel_rows > 0 {
            let take = (self.block_rows - self.panel_rows).min(rest.len() / m);
            self.panel[self.panel_rows * m..(self.panel_rows + take) * m]
                .copy_from_slice(&rest[..take * m]);
            self.panel_rows += take;
            rest = &rest[take * m..];
            if self.panel_rows == self.block_rows {
                self.flush();
            }
        }
        // Fold full panels zero-copy, straight from the caller's block.
        while rest.len() >= self.block_rows * m {
            let (panel, tail) = rest.split_at(self.block_rows * m);
            fold_panel_timed(m, &mut self.col_sums, &mut self.raw_upper, panel, self.block_rows);
            rest = tail;
        }
        // Stage the tail for the next push or flush. If the top-up did
        // not fill the panel, `rest` is already empty and the buffered
        // rows stay in place.
        if !rest.is_empty() {
            debug_assert_eq!(self.panel_rows, 0);
            self.panel[..rest.len()].copy_from_slice(rest);
            self.panel_rows = rest.len() / m;
        }
        self.n += rows;
        Ok(())
    }

    /// Folds any buffered partial panel into the moment state. Called
    /// automatically by every observer ([`CovarianceAccumulator::parts`],
    /// [`CovarianceAccumulator::finalize`], ...); public so callers with
    /// latency deadlines can pick the flush point themselves.
    pub fn flush(&mut self) {
        if self.panel_rows == 0 {
            return;
        }
        let rows = self.panel_rows;
        fold_panel_timed(
            self.m,
            &mut self.col_sums,
            &mut self.raw_upper,
            &self.panel[..rows * self.m],
            rows,
        );
        self.panel_rows = 0;
    }

    /// The fully-folded `(col_sums, raw_upper)` state: a copy of the
    /// moment arrays with any buffered panel rows folded in, without
    /// mutating `self`.
    fn folded_state(&self) -> (Vec<f64>, Vec<f64>) {
        let mut col_sums = self.col_sums.clone();
        let mut raw_upper = self.raw_upper.clone();
        if self.panel_rows > 0 {
            fold_panel(
                self.m,
                &mut col_sums,
                &mut raw_upper,
                &self.panel[..self.panel_rows * self.m],
                self.panel_rows,
            );
        }
        (col_sums, raw_upper)
    }

    /// Merges another accumulator (same width) into this one. Both sides'
    /// pending panels are folded first, so merge order only reassociates
    /// across shard boundaries, never within a shard.
    ///
    /// # Errors
    ///
    /// [`RatioRuleError::WidthMismatch`] if the widths differ.
    pub fn merge(&mut self, other: &CovarianceAccumulator) -> Result<()> {
        if other.m != self.m {
            return Err(RatioRuleError::WidthMismatch {
                expected: self.m,
                actual: other.m,
            });
        }
        linalg::sanitize::check_finite_slice("covariance merge col_sums", &other.col_sums);
        linalg::sanitize::check_finite_slice("covariance merge raw_upper", &other.raw_upper);
        self.flush();
        self.n += other.n;
        for (a, b) in self.col_sums.iter_mut().zip(&other.col_sums) {
            *a += b;
        }
        for (a, b) in self.raw_upper.iter_mut().zip(&other.raw_upper) {
            *a += b;
        }
        // Rows still buffered on the other side fold directly into the
        // merged state, preserving their arrival order.
        if other.panel_rows > 0 {
            fold_panel_timed(
                self.m,
                &mut self.col_sums,
                &mut self.raw_upper,
                &other.panel[..other.panel_rows * other.m],
                other.panel_rows,
            );
        }
        Ok(())
    }

    /// Fully-folded internals `(n, col_sums, raw_upper)` for
    /// checkpointing — any buffered panel rows are folded into the
    /// returned copies. The packed layout of `raw_upper` is documented on
    /// the field; together with [`CovarianceAccumulator::from_parts`]
    /// this round-trips the accumulator bit-for-bit, including
    /// checkpoints taken mid-panel.
    pub fn parts(&self) -> (usize, Vec<f64>, Vec<f64>) {
        let (col_sums, raw_upper) = self.folded_state();
        (self.n, col_sums, raw_upper)
    }

    /// Rebuilds an accumulator from checkpointed internals. Inverse of
    /// [`CovarianceAccumulator::parts`]; lengths are validated against
    /// `m`. The restored accumulator starts with an empty panel and the
    /// default panel height.
    ///
    /// # Errors
    ///
    /// [`RatioRuleError::Invalid`] if the array lengths are inconsistent
    /// with `m`.
    pub fn from_parts(m: usize, n: usize, col_sums: Vec<f64>, raw_upper: Vec<f64>) -> Result<Self> {
        if col_sums.len() != m {
            return Err(RatioRuleError::Invalid(format!(
                "checkpoint has {} column sums for {m} attributes",
                col_sums.len()
            )));
        }
        let want = m * (m + 1) / 2;
        if raw_upper.len() != want {
            return Err(RatioRuleError::Invalid(format!(
                "checkpoint has {} moment entries, expected {want}",
                raw_upper.len()
            )));
        }
        // A checkpoint bypasses push_row's input validation, so this is
        // where a corrupted snapshot can smuggle a NaN into the scan.
        linalg::sanitize::check_finite_slice("covariance checkpoint col_sums", &col_sums);
        linalg::sanitize::check_finite_slice("covariance checkpoint raw_upper", &raw_upper);
        Ok(CovarianceAccumulator {
            m,
            n,
            col_sums,
            raw_upper,
            block_rows: DEFAULT_BLOCK_ROWS,
            panel: vec![0.0; DEFAULT_BLOCK_ROWS * m],
            panel_rows: 0,
        })
    }

    /// Column averages seen so far (buffered rows included).
    pub fn column_means(&self) -> Vec<f64> {
        if self.n == 0 {
            return vec![0.0; self.m];
        }
        let mut sums = self.col_sums.clone();
        for r in 0..self.panel_rows {
            let row = &self.panel[r * self.m..(r + 1) * self.m];
            for (s, x) in sums.iter_mut().zip(row) {
                *s += x;
            }
        }
        sums.iter().map(|s| s / self.n as f64).collect()
    }

    /// Finalizes into `(C, means, n)` where `C = Xc^t Xc` is the scatter
    /// matrix of the centered data (paper Eq. 2; the paper does not divide
    /// by `N`, and the eigenvectors are identical either way).
    ///
    /// # Errors
    ///
    /// [`RatioRuleError::EmptyInput`] if no rows have been absorbed.
    pub fn finalize(&self) -> Result<(Matrix, Vec<f64>, usize)> {
        if self.n == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        let (col_sums, raw_upper) = self.folded_state();
        let means: Vec<f64> = col_sums.iter().map(|s| s / self.n as f64).collect();
        let mut c = Matrix::zeros(self.m, self.m);
        for j in 0..self.m {
            for l in j..self.m {
                let raw = raw_upper[self.upper_index(j, l)];
                let v = raw - self.n as f64 * means[j] * means[l];
                c[(j, l)] = v;
                c[(l, j)] = v;
            }
        }
        linalg::sanitize::check_finite_slice("finalized scatter matrix", c.data());
        linalg::sanitize::check_symmetric("finalized scatter matrix", c.data(), self.m, self.m, 0.0);
        Ok((c, means, self.n))
    }
}

/// The rank-B panel fold: adds `rows` rows (row-major in `panel`) to the
/// column sums and the packed upper triangle.
///
/// Per triangle entry the accumulator is loaded once, receives exactly
/// one `+= x_j * x_l` per row in row order, and is stored once — the same
/// f64 operation sequence as the historical per-row walk (no FMA
/// contraction in Rust), so the fold is bit-exact regardless of how rows
/// were grouped into panels. Speed comes from streaming the triangle
/// once per panel and from the [`TILE`]-wide inner loop whose independent
/// accumulators auto-vectorize.
fn fold_panel(m: usize, col_sums: &mut [f64], raw_upper: &mut [f64], panel: &[f64], rows: usize) {
    debug_assert_eq!(panel.len(), rows * m);
    // Column sums: row-major sweep, vectorizes across columns, keeps the
    // per-column addition order identical to per-row pushes.
    for r in 0..rows {
        let row = &panel[r * m..(r + 1) * m];
        for (s, x) in col_sums.iter_mut().zip(row) {
            *s += x;
        }
    }
    // Upper triangle, column-blocked: for pivot column j, entries
    // (j, j..m) occupy the contiguous packed range [base, base + m - j).
    let mut base = 0usize;
    for j in 0..m {
        let width = m - j;
        let mut off = 0usize;
        while off + TILE <= width {
            let acc = &mut raw_upper[base + off..base + off + TILE];
            let mut tile = [0.0f64; TILE];
            tile.copy_from_slice(acc);
            for r in 0..rows {
                let row = &panel[r * m..(r + 1) * m];
                let xj = row[j];
                let xl = &row[j + off..j + off + TILE];
                for k in 0..TILE {
                    tile[k] += xj * xl[k];
                }
            }
            acc.copy_from_slice(&tile);
            off += TILE;
        }
        while off < width {
            let mut acc = raw_upper[base + off];
            for r in 0..rows {
                let row = &panel[r * m..(r + 1) * m];
                acc += row[j] * row[j + off];
            }
            raw_upper[base + off] = acc;
            off += 1;
        }
        base += width;
    }
}

/// State-advancing fold: the kernel plus block telemetry. The read-only
/// view folds in [`CovarianceAccumulator::parts`]/`finalize` bypass this
/// so observers do not inflate the block counters.
fn fold_panel_timed(
    m: usize,
    col_sums: &mut [f64],
    raw_upper: &mut [f64],
    panel: &[f64],
    rows: usize,
) {
    // rrlint-allow: RR003 panel-fold timing feeds the scan_flush_ns histogram; an obs span cannot wrap a split mutable borrow
    let t0 = obs::enabled().then(std::time::Instant::now);
    fold_panel(m, col_sums, raw_upper, panel, rows);
    obs::counter_add(obs::names::SCAN_BLOCKS_TOTAL, 1);
    if let Some(t0) = t0 {
        // Log-bucketed quantile: serve dashboards read p99 flush time
        // without committing to fixed bounds up front.
        obs::observe_quantile(obs::names::SCAN_FLUSH_NS, t0.elapsed().as_nanos() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::stats;
    use rand::{Rng, SeedableRng};

    fn x() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 5.0, -2.0],
            &[2.0, 3.0, 0.0],
            &[4.0, -1.0, 1.0],
            &[0.5, 2.0, 7.0],
            &[3.0, 3.0, 3.0],
        ])
        .unwrap()
    }

    fn accumulate(m: &Matrix) -> CovarianceAccumulator {
        let mut acc = CovarianceAccumulator::new(m.cols());
        for row in m.row_iter() {
            acc.push_row(row).unwrap();
        }
        acc
    }

    /// The historical per-row rank-1 triangular walk, kept verbatim as
    /// the bit-exactness oracle for the blocked kernel.
    struct ScalarReference {
        m: usize,
        n: usize,
        col_sums: Vec<f64>,
        raw_upper: Vec<f64>,
    }

    impl ScalarReference {
        fn new(m: usize) -> Self {
            ScalarReference {
                m,
                n: 0,
                col_sums: vec![0.0; m],
                raw_upper: vec![0.0; m * (m + 1) / 2],
            }
        }

        fn push_row(&mut self, row: &[f64]) {
            assert_eq!(row.len(), self.m);
            self.n += 1;
            let mut idx = 0usize;
            for j in 0..self.m {
                let xj = row[j];
                self.col_sums[j] += xj;
                for &xl in &row[j..] {
                    self.raw_upper[idx] += xj * xl;
                    idx += 1;
                }
            }
        }
    }

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: entry {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_two_pass_reference() {
        let m = x();
        let acc = accumulate(&m);
        let (c, means, n) = acc.finalize().unwrap();
        assert_eq!(n, 5);

        let reference = stats::covariance_two_pass(&m).unwrap();
        assert!(
            c.max_abs_diff(&reference).unwrap() < 1e-10,
            "single-pass covariance deviates from two-pass oracle"
        );
        let ref_stats = stats::column_stats(&m);
        for (a, b) in means.iter().zip(&ref_stats.means) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn finalize_is_symmetric() {
        let (c, _, _) = accumulate(&x()).finalize().unwrap();
        assert!(c.is_symmetric(0.0));
    }

    #[test]
    fn rejects_wrong_width_row() {
        let mut acc = CovarianceAccumulator::new(3);
        assert!(matches!(
            acc.push_row(&[1.0, 2.0]),
            Err(RatioRuleError::WidthMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn rejects_non_finite_cells() {
        let mut acc = CovarianceAccumulator::new(2);
        acc.push_row(&[1.0, 2.0]).unwrap();
        let err = acc.push_row(&[f64::NAN, 1.0]).unwrap_err();
        assert!(err.to_string().contains("column 0"));
        assert!(acc.push_row(&[1.0, f64::INFINITY]).is_err());
        assert!(acc.push_row(&[1.0, f64::NEG_INFINITY]).is_err());
        // The accumulator stays usable: the poisoned rows were not
        // absorbed.
        acc.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(acc.n_rows(), 2);
        let (c, _, _) = acc.finalize().unwrap();
        assert!(c.is_finite());
    }

    #[test]
    fn empty_accumulator_cannot_finalize() {
        let acc = CovarianceAccumulator::new(3);
        assert!(matches!(acc.finalize(), Err(RatioRuleError::EmptyInput)));
        assert_eq!(acc.column_means(), vec![0.0; 3]);
    }

    #[test]
    fn merge_equals_single_scan() {
        let m = x();
        let whole = accumulate(&m);

        // Split rows 0..2 and 2..5 into two accumulators and merge.
        let mut a = CovarianceAccumulator::new(3);
        let mut b = CovarianceAccumulator::new(3);
        for (i, row) in m.row_iter().enumerate() {
            if i < 2 {
                a.push_row(row).unwrap();
            } else {
                b.push_row(row).unwrap();
            }
        }
        a.merge(&b).unwrap();

        let (c1, m1, n1) = whole.finalize().unwrap();
        let (c2, m2, n2) = a.finalize().unwrap();
        assert_eq!(n1, n2);
        assert!(c1.max_abs_diff(&c2).unwrap() < 1e-10);
        for (x, y) in m1.iter().zip(&m2) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_rejects_mismatched_width() {
        let mut a = CovarianceAccumulator::new(3);
        let b = CovarianceAccumulator::new(2);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn single_row_gives_zero_covariance() {
        let mut acc = CovarianceAccumulator::new(2);
        acc.push_row(&[3.0, 4.0]).unwrap();
        let (c, means, n) = acc.finalize().unwrap();
        assert_eq!(n, 1);
        assert_eq!(means, vec![3.0, 4.0]);
        assert!(c.max_abs() < 1e-12);
    }

    #[test]
    fn upper_triangle_indexing_is_bijective() {
        let acc = CovarianceAccumulator::new(6);
        let mut seen = std::collections::HashSet::new();
        for j in 0..6 {
            for l in j..6 {
                assert!(seen.insert(acc.upper_index(j, l)));
            }
        }
        assert_eq!(seen.len(), 21);
        assert_eq!(*seen.iter().max().unwrap(), 20);
    }

    #[test]
    fn cancellation_error_is_bounded_for_shifted_data() {
        // The raw-moment formula loses precision when means are huge
        // relative to the variance. Document that the error stays small
        // for a moderate shift (1e6) — the regime the paper assumes.
        let shift = 1e6;
        let m = Matrix::from_fn(50, 2, |i, j| {
            shift + (i as f64) * 0.1 + (j as f64) * 0.01 * (i as f64 % 7.0)
        });
        let (c, _, _) = accumulate(&m).finalize().unwrap();
        let reference = stats::covariance_two_pass(&m).unwrap();
        let rel = c.max_abs_diff(&reference).unwrap() / reference.max_abs().max(1e-30);
        assert!(rel < 1e-3, "relative cancellation error {rel}");
    }

    /// Property: the blocked kernel equals the scalar per-row walk
    /// bit-for-bit across random shapes, including N < B, N not
    /// divisible by B, and a final partial panel.
    #[test]
    fn blocked_equals_scalar_bitwise_across_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB10C);
        for &(n, m, b) in &[
            (1usize, 1usize, 1usize),
            (1, 7, 64),     // N < B
            (5, 3, 2),      // N odd multiple of B + 1
            (64, 16, 64),   // N == B, M == TILE
            (65, 17, 64),   // one full panel + 1, M == TILE + 1
            (130, 33, 32),  // several panels + partial tail
            (200, 5, 7),    // B not a divisor of N, tiny M
            (97, 40, 128),  // B > N with wide rows
        ] {
            let data: Vec<f64> = (0..n * m).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let mut scalar = ScalarReference::new(m);
            let mut blocked = CovarianceAccumulator::with_block_rows(m, b);
            for r in 0..n {
                scalar.push_row(&data[r * m..(r + 1) * m]);
                blocked.push_row(&data[r * m..(r + 1) * m]).unwrap();
            }
            let (bn, bcs, bru) = blocked.parts();
            assert_eq!(bn, scalar.n, "shape ({n},{m},{b})");
            assert_bits_eq(&bcs, &scalar.col_sums, "col_sums");
            assert_bits_eq(&bru, &scalar.raw_upper, "raw_upper");
        }
    }

    /// Property: push_block equals push_row bit-for-bit for arbitrary
    /// block segmentations of the same row stream.
    #[test]
    fn push_block_equals_push_row_bitwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
        let (n, m) = (151usize, 9usize);
        let data: Vec<f64> = (0..n * m).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        let mut by_row = CovarianceAccumulator::with_block_rows(m, 16);
        for r in 0..n {
            by_row.push_row(&data[r * m..(r + 1) * m]).unwrap();
        }
        for trial in 0..8 {
            let mut by_block = CovarianceAccumulator::with_block_rows(m, 16);
            let mut r = 0usize;
            while r < n {
                let take = 1 + rng.gen_range(0..(n - r).min(40 + trial));
                by_block
                    .push_block(&data[r * m..(r + take) * m], take)
                    .unwrap();
                r += take;
            }
            let (n1, c1, u1) = by_row.parts();
            let (n2, c2, u2) = by_block.parts();
            assert_eq!(n1, n2);
            assert_bits_eq(&c1, &c2, "col_sums");
            assert_bits_eq(&u1, &u2, "raw_upper");
        }
    }

    /// A checkpoint taken mid-panel round-trips exactly: resuming from
    /// parts()/from_parts and finishing the stream is bit-identical to
    /// the uninterrupted scan.
    #[test]
    fn checkpoint_mid_panel_roundtrips_bitwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC4EC);
        let (n, m, b) = (100usize, 6usize, 32usize);
        let data: Vec<f64> = (0..n * m).map(|_| rng.gen::<f64>()).collect();
        for cut in [1usize, 31, 32, 33, 50, 99] {
            let mut whole = CovarianceAccumulator::with_block_rows(m, b);
            let mut first = CovarianceAccumulator::with_block_rows(m, b);
            for r in 0..n {
                whole.push_row(&data[r * m..(r + 1) * m]).unwrap();
                if r < cut {
                    first.push_row(&data[r * m..(r + 1) * m]).unwrap();
                }
            }
            let (cn, ccs, cru) = first.parts();
            assert_eq!(cn, cut);
            let mut resumed = CovarianceAccumulator::from_parts(m, cn, ccs, cru).unwrap();
            for r in cut..n {
                resumed.push_row(&data[r * m..(r + 1) * m]).unwrap();
            }
            let (n1, c1, u1) = whole.parts();
            let (n2, c2, u2) = resumed.parts();
            assert_eq!(n1, n2, "cut {cut}");
            assert_bits_eq(&c1, &c2, "col_sums");
            assert_bits_eq(&u1, &u2, "raw_upper");
        }
    }

    #[test]
    fn flush_is_idempotent_and_explicit() {
        let mut acc = CovarianceAccumulator::with_block_rows(2, 8);
        acc.push_row(&[1.0, 2.0]).unwrap();
        acc.flush();
        acc.flush();
        let (n, cs, _) = acc.parts();
        assert_eq!(n, 1);
        assert_eq!(cs[0].to_bits(), 1.0f64.to_bits());
        // Observers see buffered rows without an explicit flush too.
        let mut buffered = CovarianceAccumulator::with_block_rows(2, 8);
        buffered.push_row(&[1.0, 2.0]).unwrap();
        assert_eq!(buffered.column_means(), vec![1.0, 2.0]);
        let (c, _, _) = buffered.finalize().unwrap();
        assert!(c.max_abs() < 1e-12);
    }

    #[test]
    fn push_block_validates_before_absorbing() {
        let mut acc = CovarianceAccumulator::with_block_rows(3, 4);
        // Length mismatch.
        assert!(matches!(
            acc.push_block(&[1.0; 7], 2),
            Err(RatioRuleError::WidthMismatch {
                expected: 6,
                actual: 7
            })
        ));
        // Non-finite cell in the middle of the second row: attribution
        // names the absolute row (1-based) and column; nothing absorbed.
        acc.push_row(&[0.5; 3]).unwrap();
        let mut block = vec![1.0f64; 9];
        block[4] = f64::NAN;
        let msg = acc.push_block(&block, 3).unwrap_err().to_string();
        assert!(msg.contains("column 1"), "{msg}");
        assert!(msg.contains("row 3"), "{msg}");
        assert_eq!(acc.n_rows(), 1);
        // A clean block still lands.
        acc.push_block(&vec![2.0f64; 9], 3).unwrap();
        assert_eq!(acc.n_rows(), 4);
    }

    #[test]
    fn merge_folds_both_pending_panels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x3E11);
        let m = 4usize;
        let rows: Vec<Vec<f64>> = (0..21)
            .map(|_| (0..m).map(|_| rng.gen::<f64>()).collect())
            .collect();
        // Serial scan of all rows.
        let mut serial = CovarianceAccumulator::with_block_rows(m, 8);
        for r in &rows {
            serial.push_row(r).unwrap();
        }
        // Two halves with mid-panel leftovers on both sides, merged.
        let mut left = CovarianceAccumulator::with_block_rows(m, 8);
        let mut right = CovarianceAccumulator::with_block_rows(m, 8);
        for (i, r) in rows.iter().enumerate() {
            if i < 11 {
                left.push_row(r).unwrap();
            } else {
                right.push_row(r).unwrap();
            }
        }
        left.merge(&right).unwrap();
        assert_eq!(left.n_rows(), serial.n_rows());
        let (c1, _, _) = serial.finalize().unwrap();
        let (c2, _, _) = left.finalize().unwrap();
        assert!(c1.max_abs_diff(&c2).unwrap() < 1e-12);
    }

    /// Seeded NaN injection: `push_row` rejects non-finite input, so the
    /// realistic smuggling route is a corrupted checkpoint restored via
    /// `from_parts`. With the sanitizer active that must trap at the
    /// restore boundary, not thirty QL sweeps later.
    #[cfg(all(feature = "numeric-sanitizer", debug_assertions))]
    #[test]
    fn sanitizer_traps_nan_smuggled_through_checkpoint() {
        let acc = accumulate(&x());
        let (n, col_sums, raw_upper) = acc.parts();
        let mut poisoned = raw_upper.clone();
        poisoned[2] = f64::NAN;
        let trapped = std::panic::catch_unwind(|| {
            CovarianceAccumulator::from_parts(3, n, col_sums.clone(), poisoned)
        })
        .is_err();
        assert!(trapped, "sanitizer must trap the poisoned checkpoint");

        // An intact checkpoint still restores and finalizes cleanly.
        let ok =
            CovarianceAccumulator::from_parts(3, n, col_sums.clone(), raw_upper.clone()).unwrap();
        ok.finalize().unwrap();
    }

    /// The merge boundary is the other sanitized entry point: a worker
    /// shard whose accumulator went non-finite (overflow) must be caught
    /// when merged, before it contaminates the scatter matrix.
    #[cfg(all(feature = "numeric-sanitizer", debug_assertions))]
    #[test]
    fn sanitizer_traps_nonfinite_merge() {
        let m = x();
        let mut left = accumulate(&m);
        let right = accumulate(&m);
        let mut poisoned = right.clone();
        poisoned.flush();
        poisoned.col_sums[0] = f64::INFINITY;
        let trapped = std::panic::catch_unwind(move || left.merge(&poisoned)).is_err();
        assert!(trapped, "sanitizer must trap the overflowed shard at merge");

        // A healthy merge still works.
        let mut left = accumulate(&m);
        left.merge(&right).unwrap();
        left.finalize().unwrap();
    }
}
