//! Cutoff policies: how many Ratio Rules to keep.
//!
//! The paper's Eq. 1 keeps the smallest `k` whose eigenvalues cover at
//! least 85% of the total spectral energy ("the simplest textbook
//! heuristic", Jolliffe p. 94). Alternative policies are provided for the
//! cutoff ablation experiment.

use crate::{RatioRuleError, Result};
use serde::{Deserialize, Serialize};

/// Policy selecting the number of retained rules `k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Cutoff {
    /// Keep the smallest `k` with `sum_{i<=k} lambda_i / sum lambda_j >=
    /// fraction` (paper Eq. 1; the paper uses 0.85).
    EnergyFraction(f64),
    /// Keep exactly `k` rules (clamped to the number of attributes).
    FixedK(usize),
    /// Keep every rule with a positive eigenvalue.
    All,
}

impl Default for Cutoff {
    /// The paper's default: 85% energy.
    fn default() -> Self {
        Cutoff::EnergyFraction(0.85)
    }
}

impl Cutoff {
    /// Selects `k` for a spectrum sorted in descending order. Negative
    /// eigenvalues (numerical noise — a covariance matrix is PSD) are
    /// treated as zero energy.
    pub fn select(&self, eigenvalues: &[f64]) -> Result<usize> {
        if eigenvalues.is_empty() {
            return Err(RatioRuleError::Invalid("empty spectrum".into()));
        }
        match *self {
            Cutoff::EnergyFraction(f) => {
                if !(0.0 < f && f <= 1.0) {
                    return Err(RatioRuleError::Invalid(format!(
                        "energy fraction must be in (0, 1], got {f}"
                    )));
                }
                let total: f64 = eigenvalues.iter().map(|l| l.max(0.0)).sum();
                if total <= 0.0 {
                    // Degenerate spectrum (constant data): keep one rule so
                    // downstream code has something to work with.
                    return Ok(1);
                }
                let mut acc = 0.0;
                for (i, l) in eigenvalues.iter().enumerate() {
                    acc += l.max(0.0);
                    if acc / total >= f {
                        return Ok(i + 1);
                    }
                }
                Ok(eigenvalues.len())
            }
            Cutoff::FixedK(k) => {
                if k == 0 {
                    return Err(RatioRuleError::Invalid("FixedK(0) keeps no rules".into()));
                }
                Ok(k.min(eigenvalues.len()))
            }
            Cutoff::All => {
                let positive = eigenvalues.iter().filter(|&&l| l > 0.0).count();
                Ok(positive.max(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_85_percent_rule() {
        // Spectrum 8, 1, 1: k=1 covers 80% (<85), k=2 covers 90%.
        let k = Cutoff::EnergyFraction(0.85)
            .select(&[8.0, 1.0, 1.0])
            .unwrap();
        assert_eq!(k, 2);
        // Spectrum 9, 1: k=1 covers 90%.
        let k = Cutoff::EnergyFraction(0.85).select(&[9.0, 1.0]).unwrap();
        assert_eq!(k, 1);
    }

    #[test]
    fn full_energy_keeps_all() {
        let k = Cutoff::EnergyFraction(1.0)
            .select(&[5.0, 3.0, 2.0])
            .unwrap();
        assert_eq!(k, 3);
    }

    #[test]
    fn negative_tail_ignored() {
        // Tiny negative values are rounding noise from the eigensolver.
        let k = Cutoff::EnergyFraction(0.85)
            .select(&[10.0, -1e-14])
            .unwrap();
        assert_eq!(k, 1);
    }

    #[test]
    fn zero_spectrum_keeps_one() {
        let k = Cutoff::EnergyFraction(0.85).select(&[0.0, 0.0]).unwrap();
        assert_eq!(k, 1);
    }

    #[test]
    fn fixed_k_clamped() {
        assert_eq!(Cutoff::FixedK(2).select(&[3.0, 2.0, 1.0]).unwrap(), 2);
        assert_eq!(Cutoff::FixedK(10).select(&[3.0, 2.0, 1.0]).unwrap(), 3);
        assert!(Cutoff::FixedK(0).select(&[3.0]).is_err());
    }

    #[test]
    fn all_counts_positive() {
        assert_eq!(Cutoff::All.select(&[3.0, 2.0, 0.0, -1e-20]).unwrap(), 2);
        assert_eq!(Cutoff::All.select(&[0.0, 0.0]).unwrap(), 1);
    }

    #[test]
    fn invalid_inputs() {
        assert!(Cutoff::EnergyFraction(0.0).select(&[1.0]).is_err());
        assert!(Cutoff::EnergyFraction(1.5).select(&[1.0]).is_err());
        assert!(Cutoff::EnergyFraction(0.85).select(&[]).is_err());
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(Cutoff::default(), Cutoff::EnergyFraction(0.85));
    }
}
