//! Model diagnostics: a "model card" for a mined rule set.
//!
//! The paper argues the guessing error lets developers and end-users
//! judge whether "the derived rules have captured the essence of this
//! dataset". This module packages that judgement: scree data (per-rule
//! energy), per-column guessing errors against the col-avgs yardstick,
//! and a plain-text report.

use crate::guessing::GuessingErrorEvaluator;
use crate::predictor::{ColAvgs, RuleSetPredictor};
use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Quality report for a rule set against a held-out test matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelCard {
    /// Rules retained.
    pub k: usize,
    /// Attribute count.
    pub m: usize,
    /// Training rows.
    pub n_train: usize,
    /// Fraction of spectral energy retained.
    pub retained_energy: f64,
    /// Per-rule energy fractions (descending).
    pub rule_energy: Vec<f64>,
    /// Aggregate `GE_1` of the rules on the test matrix.
    pub ge1: f64,
    /// Aggregate `GE_1` of col-avgs on the same matrix.
    pub ge1_baseline: f64,
    /// Per-attribute `(label, ge_rr, ge_colavgs)`.
    pub per_column: Vec<(String, f64, f64)>,
}

impl ModelCard {
    /// Builds the card by evaluating both contenders on `test`.
    pub fn evaluate(rules: &RuleSet, test: &Matrix) -> Result<ModelCard> {
        if test.rows() == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        if test.cols() != rules.n_attributes() {
            return Err(RatioRuleError::WidthMismatch {
                expected: rules.n_attributes(),
                actual: test.cols(),
            });
        }
        let total: f64 = rules.spectrum().iter().map(|l| l.max(0.0)).sum();
        let rule_energy = rules
            .rules()
            .iter()
            .map(|r| {
                if total > 0.0 {
                    r.eigenvalue.max(0.0) / total
                } else {
                    0.0
                }
            })
            .collect();

        let ev = GuessingErrorEvaluator::default();
        let rr = RuleSetPredictor::new(rules.clone());
        let baseline = ColAvgs::new(rules.column_means().to_vec())?;
        let ge1 = ev.ge1(&rr, test)?;
        let ge1_baseline = ev.ge1(&baseline, test)?;
        let rr_cols = ev.ge1_per_column(&rr, test)?;
        let ca_cols = ev.ge1_per_column(&baseline, test)?;
        let per_column = rules
            .attribute_labels()
            .iter()
            .cloned()
            .zip(rr_cols)
            .zip(ca_cols)
            .map(|((label, a), b)| (label, a, b))
            .collect();

        Ok(ModelCard {
            k: rules.k(),
            m: rules.n_attributes(),
            n_train: rules.n_train(),
            retained_energy: rules.retained_energy(),
            rule_energy,
            ge1,
            ge1_baseline,
            per_column,
        })
    }

    /// Ratio of the rules' guessing error to the baseline's (the paper's
    /// Fig. 7 number; < 1 means the rules add value).
    pub fn improvement_ratio(&self) -> f64 {
        if self.ge1_baseline > 0.0 {
            self.ge1 / self.ge1_baseline
        } else {
            1.0
        }
    }

    /// Labels of attributes whose RR guessing error is not *meaningfully*
    /// better than the baseline's (within 5%) — the attributes the rules
    /// fail to explain.
    pub fn unexplained_attributes(&self) -> Vec<&str> {
        self.per_column
            .iter()
            .filter(|(_, rr, ca)| *rr >= 0.95 * ca)
            .map(|(label, _, _)| label.as_str())
            .collect()
    }

    /// Renders the card as a plain-text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "model card: {} rules / {} attributes, trained on {} rows\n",
            self.k, self.m, self.n_train
        ));
        out.push_str(&format!(
            "energy retained: {:.1}% (per rule:",
            self.retained_energy * 100.0
        ));
        for e in &self.rule_energy {
            out.push_str(&format!(" {:.1}%", e * 100.0));
        }
        out.push_str(")\n");
        out.push_str(&format!(
            "GE_1: {:.4} vs col-avgs {:.4} ({:.1}% of baseline)\n\n",
            self.ge1,
            self.ge1_baseline,
            self.improvement_ratio() * 100.0
        ));
        let width = self
            .per_column
            .iter()
            .map(|(l, _, _)| l.len())
            .max()
            .unwrap_or(9)
            .max(9);
        out.push_str(&format!(
            "{:width$}  {:>10}  {:>10}  {:>8}\n",
            "attribute", "GE(RR)", "GE(avg)", "ratio"
        ));
        for (label, rr, ca) in &self.per_column {
            let ratio = if *ca > 0.0 { rr / ca } else { 1.0 };
            let marker = if ratio >= 0.95 {
                "  <- unexplained"
            } else {
                ""
            };
            out.push_str(&format!(
                "{label:width$}  {rr:>10.4}  {ca:>10.4}  {:>7.1}%{marker}\n",
                ratio * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;

    fn mixed_quality_data() -> Matrix {
        // Two correlated attributes + one independent alternating one.
        Matrix::from_fn(50, 3, |i, j| {
            let t = 1.0 + i as f64;
            match j {
                0 => 3.0 * t,
                1 => 2.0 * t,
                _ => {
                    if i % 2 == 0 {
                        8.0
                    } else {
                        -8.0
                    }
                }
            }
        })
    }

    #[test]
    fn card_reports_quality_structure() {
        let x = mixed_quality_data();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let card = ModelCard::evaluate(&rules, &x).unwrap();
        assert_eq!(card.k, 1);
        assert_eq!(card.m, 3);
        assert!(card.improvement_ratio() < 1.0);
        assert_eq!(card.rule_energy.len(), 1);
        assert!(card.rule_energy[0] > 0.9);
        // The alternating attribute is flagged as unexplained.
        let unexplained = card.unexplained_attributes();
        assert_eq!(unexplained, vec!["attr2"]);
    }

    #[test]
    fn render_is_complete() {
        let x = mixed_quality_data();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let card = ModelCard::evaluate(&rules, &x).unwrap();
        let text = card.render();
        assert!(text.contains("model card: 1 rules"));
        assert!(text.contains("attr0"));
        assert!(text.contains("unexplained"));
        // Header + blank-line separated table with one row per attribute.
        assert!(text.lines().count() >= 7);
    }

    #[test]
    fn serde_roundtrip() {
        let x = mixed_quality_data();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let card = ModelCard::evaluate(&rules, &x).unwrap();
        let json = serde_json::to_string(&card).unwrap();
        let back: ModelCard = serde_json::from_str(&json).unwrap();
        assert_eq!(back, card);
        assert_eq!(back.per_column.len(), 3);
        assert_eq!(back.render(), card.render());
    }

    #[test]
    fn validation() {
        let x = mixed_quality_data();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        assert!(ModelCard::evaluate(&rules, &Matrix::zeros(0, 3)).is_err());
        assert!(ModelCard::evaluate(&rules, &Matrix::zeros(5, 2)).is_err());
    }
}
