//! Error type for the Ratio Rules core crate.

use std::fmt;

/// Errors from mining or applying Ratio Rules.
#[derive(Debug)]
pub enum RatioRuleError {
    /// Underlying linear algebra failure.
    Linalg(linalg::LinalgError),
    /// Underlying dataset failure (streaming, holes...).
    Dataset(dataset::DatasetError),
    /// A row has a different width than the model.
    WidthMismatch {
        /// Width the model was trained with.
        expected: usize,
        /// Width of the offending row.
        actual: usize,
    },
    /// The input stream yielded no rows.
    EmptyInput,
    /// A quarantine scan exceeded its bad-row budget (see
    /// `resilience::ScanPolicy::Quarantine`). Carried separately from
    /// `Invalid` so callers (the CLI) can map it to a distinct exit code.
    BudgetExhausted {
        /// Rows quarantined when the budget tripped.
        quarantined: usize,
        /// Rows consumed from the stream so far.
        scanned: usize,
        /// Human-readable description of the exhausted limit.
        limit: String,
    },
    /// Invalid argument (bad cutoff, no holes, ...).
    Invalid(String),
}

impl fmt::Display for RatioRuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatioRuleError::Linalg(e) => write!(f, "linalg error: {e}"),
            RatioRuleError::Dataset(e) => write!(f, "dataset error: {e}"),
            RatioRuleError::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "row width {actual} does not match model width {expected}"
                )
            }
            RatioRuleError::EmptyInput => write!(f, "input stream yielded no rows"),
            RatioRuleError::BudgetExhausted {
                quarantined,
                scanned,
                limit,
            } => {
                write!(
                    f,
                    "error budget exhausted: {quarantined} of {scanned} scanned rows \
                     quarantined (limit: {limit})"
                )
            }
            RatioRuleError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for RatioRuleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RatioRuleError::Linalg(e) => Some(e),
            RatioRuleError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<linalg::LinalgError> for RatioRuleError {
    fn from(e: linalg::LinalgError) -> Self {
        RatioRuleError::Linalg(e)
    }
}

impl From<dataset::DatasetError> for RatioRuleError {
    fn from(e: dataset::DatasetError) -> Self {
        RatioRuleError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = RatioRuleError::WidthMismatch {
            expected: 5,
            actual: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.source().is_none());

        let e: RatioRuleError = linalg::LinalgError::Singular { op: "solve" }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("singular"));

        let e: RatioRuleError = dataset::DatasetError::Invalid("bad".into()).into();
        assert!(e.source().is_some());

        assert!(RatioRuleError::EmptyInput.to_string().contains("no rows"));

        let e = RatioRuleError::BudgetExhausted {
            quarantined: 7,
            scanned: 50,
            limit: "max_bad_rows = 5".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains("50") && msg.contains("max_bad_rows"));
        assert!(e.source().is_none());
    }
}
