//! The "guessing error": a quantifiable measure of rule quality
//! (paper Sec. 4.3, Definitions 1 and 2).
//!
//! Pretend cells of a held-out test matrix are hidden, reconstruct them
//! from the rules, and report the root-mean-square error. `GE_1` hides one
//! cell at a time and sweeps every cell; `GE_h` hides `h` cells at a time
//! over a set `H_h` of hole combinations ("some subset of the (M choose h)
//! combinations", per Definition 2 — we sample it deterministically).

use crate::predictor::Predictor;
use crate::{RatioRuleError, Result};
use dataset::holes::{sample_hole_sets, HoleSet};
use linalg::Matrix;

/// Evaluator configuration for `GE_h`.
#[derive(Debug, Clone, Copy)]
pub struct GuessingErrorEvaluator {
    /// Maximum number of hole sets per `h` (Definition 2's `|H_h|`).
    pub max_hole_sets: usize,
    /// Seed for hole-set sampling.
    pub seed: u64,
}

impl Default for GuessingErrorEvaluator {
    fn default() -> Self {
        GuessingErrorEvaluator {
            max_hole_sets: 32,
            seed: 0x5EED,
        }
    }
}

impl GuessingErrorEvaluator {
    /// Single-hole guessing error `GE_1` (Definition 1): RMS over all
    /// `N x M` cells of the test matrix, hiding one cell at a time.
    pub fn ge1<P: Predictor + ?Sized>(&self, predictor: &P, test: &Matrix) -> Result<f64> {
        let (n, m) = test.shape();
        if n == 0 || m == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        if predictor.n_attributes() != m {
            return Err(RatioRuleError::WidthMismatch {
                expected: predictor.n_attributes(),
                actual: m,
            });
        }
        let mut sum_sq = 0.0_f64;
        for i in 0..n {
            let row = test.row(i);
            for j in 0..m {
                let hs = HoleSet::new(vec![j], m)?;
                let holed = hs.apply(row)?;
                let filled = predictor.fill(&holed)?;
                let err = filled[j] - row[j];
                sum_sq += err * err;
            }
        }
        Ok((sum_sq / (n * m) as f64).sqrt())
    }

    /// `h`-hole guessing error `GE_h` (Definition 2): RMS over rows and
    /// sampled hole sets, `h` holes at a time.
    pub fn ge_h<P: Predictor + ?Sized>(
        &self,
        predictor: &P,
        test: &Matrix,
        h: usize,
    ) -> Result<f64> {
        let (n, m) = test.shape();
        if n == 0 || m == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        if predictor.n_attributes() != m {
            return Err(RatioRuleError::WidthMismatch {
                expected: predictor.n_attributes(),
                actual: m,
            });
        }
        if h == 0 || h >= m {
            return Err(RatioRuleError::Invalid(format!(
                "need 0 < h < M, got h={h}, M={m}"
            )));
        }
        let hole_sets = sample_hole_sets(m, h, self.max_hole_sets, self.seed)?;
        let mut sum_sq = 0.0_f64;
        for i in 0..n {
            let row = test.row(i);
            for hs in &hole_sets {
                let holed = hs.apply(row)?;
                let filled = predictor.fill(&holed)?;
                for &l in hs.holes() {
                    let err = filled[l] - row[l];
                    sum_sq += err * err;
                }
            }
        }
        let denom = (n * h * hole_sets.len()) as f64;
        Ok((sum_sq / denom).sqrt())
    }

    /// Per-column breakdown of `GE_1`: the RMS guessing error of each
    /// attribute separately. Columns the rules capture well score low;
    /// columns carrying independent variance score near their standard
    /// deviation. Useful for diagnosing *which* attributes a rule set
    /// actually explains.
    pub fn ge1_per_column<P: Predictor + ?Sized>(
        &self,
        predictor: &P,
        test: &Matrix,
    ) -> Result<Vec<f64>> {
        let (n, m) = test.shape();
        if n == 0 || m == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        if predictor.n_attributes() != m {
            return Err(RatioRuleError::WidthMismatch {
                expected: predictor.n_attributes(),
                actual: m,
            });
        }
        let mut sums = vec![0.0_f64; m];
        for i in 0..n {
            let row = test.row(i);
            for (j, sum) in sums.iter_mut().enumerate() {
                let hs = HoleSet::new(vec![j], m)?;
                let filled = predictor.fill(&hs.apply(row)?)?;
                let err = filled[j] - row[j];
                *sum += err * err;
            }
        }
        Ok(sums.into_iter().map(|s| (s / n as f64).sqrt()).collect())
    }

    /// `GE_h` for a range of `h` values: the curve of the paper's Fig. 6.
    pub fn ge_curve<P: Predictor + ?Sized>(
        &self,
        predictor: &P,
        test: &Matrix,
        h_max: usize,
    ) -> Result<Vec<(usize, f64)>> {
        (1..=h_max)
            .map(|h| Ok((h, self.ge_h(predictor, test, h)?)))
            .collect()
    }

    /// Multi-threaded `GE_1`: rows are sharded over `n_threads` crossbeam
    /// scoped threads. Bit-identical to [`GuessingErrorEvaluator::ge1`]
    /// up to the final summation order (each cell's squared error is
    /// computed independently; per-shard partial sums are added in shard
    /// order).
    pub fn ge1_parallel<P: Predictor + Sync + ?Sized>(
        &self,
        predictor: &P,
        test: &Matrix,
        n_threads: usize,
    ) -> Result<f64> {
        let (n, m) = test.shape();
        if n == 0 || m == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        if predictor.n_attributes() != m {
            return Err(RatioRuleError::WidthMismatch {
                expected: predictor.n_attributes(),
                actual: m,
            });
        }
        let n_threads = n_threads.clamp(1, n);
        let chunk = n.div_ceil(n_threads);

        let mut partials: Vec<Result<f64>> = Vec::new();
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..n_threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                handles.push(scope.spawn(move |_| -> Result<f64> {
                    let mut sum_sq = 0.0_f64;
                    for i in lo..hi {
                        let row = test.row(i);
                        for j in 0..m {
                            let hs = HoleSet::new(vec![j], m)?;
                            let filled = predictor.fill(&hs.apply(row)?)?;
                            let err = filled[j] - row[j];
                            sum_sq += err * err;
                        }
                    }
                    Ok(sum_sq)
                }));
            }
            partials = handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(RatioRuleError::Invalid("GE worker thread panicked".into()))
                    })
                })
                .collect();
        })
        .map_err(|_| RatioRuleError::Invalid("GE worker thread panicked".into()))?;

        let mut total = 0.0_f64;
        for p in partials {
            total += p?;
        }
        Ok((total / (n * m) as f64).sqrt())
    }

    /// Multi-threaded `GE_h`: rows are sharded over `n_threads` crossbeam
    /// scoped threads, all evaluating the *same* deterministically sampled
    /// hole sets as [`GuessingErrorEvaluator::ge_h`]. Per-shard partial
    /// sums are added in shard order, so the result matches the serial
    /// value up to summation order (well inside 1e-10 relative).
    ///
    /// With a caching predictor (e.g. [`crate::predictor::RuleSetPredictor`])
    /// the shards share one solver cache: each hole pattern is factored
    /// once, warm fills are two matvecs.
    pub fn ge_h_parallel<P: Predictor + Sync + ?Sized>(
        &self,
        predictor: &P,
        test: &Matrix,
        h: usize,
        n_threads: usize,
    ) -> Result<f64> {
        let (n, m) = test.shape();
        if n == 0 || m == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        if predictor.n_attributes() != m {
            return Err(RatioRuleError::WidthMismatch {
                expected: predictor.n_attributes(),
                actual: m,
            });
        }
        if h == 0 || h >= m {
            return Err(RatioRuleError::Invalid(format!(
                "need 0 < h < M, got h={h}, M={m}"
            )));
        }
        let hole_sets = sample_hole_sets(m, h, self.max_hole_sets, self.seed)?;
        let hole_sets = &hole_sets;
        let n_threads = n_threads.clamp(1, n);
        let chunk = n.div_ceil(n_threads);

        // Workers return (partial sum, rows scanned, wall ns) so all
        // metric recording happens here after the join — no registry
        // contention on the hot path.
        let mut partials: Vec<Result<(f64, u64, u64)>> = Vec::new();
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..n_threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                handles.push(scope.spawn(move |_| -> Result<(f64, u64, u64)> {
                    // rrlint-allow: RR003 wall clock feeds obs throughput gauges only, never results
                    let start = obs::enabled().then(std::time::Instant::now);
                    let mut sum_sq = 0.0_f64;
                    for i in lo..hi {
                        let row = test.row(i);
                        for hs in hole_sets {
                            let filled = predictor.fill(&hs.apply(row)?)?;
                            for &l in hs.holes() {
                                let err = filled[l] - row[l];
                                sum_sq += err * err;
                            }
                        }
                    }
                    let ns = start.map_or(0, |s| s.elapsed().as_nanos() as u64);
                    Ok((sum_sq, (hi - lo) as u64, ns))
                }));
            }
            partials = handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(RatioRuleError::Invalid("GE worker thread panicked".into()))
                    })
                })
                .collect();
        })
        .map_err(|_| RatioRuleError::Invalid("GE worker thread panicked".into()))?;

        let mut total = 0.0_f64;
        let mut shards: Vec<(u64, u64)> = Vec::with_capacity(partials.len());
        for p in partials {
            let (sum_sq, rows, ns) = p?;
            total += sum_sq;
            shards.push((rows, ns));
        }
        record_shard_metrics(&shards);
        let denom = (n * h * hole_sets.len()) as f64;
        Ok((total / denom).sqrt())
    }

    /// Multi-threaded [`GuessingErrorEvaluator::ge_curve`]: each `h` of
    /// the curve runs through [`GuessingErrorEvaluator::ge_h_parallel`].
    pub fn ge_curve_parallel<P: Predictor + Sync + ?Sized>(
        &self,
        predictor: &P,
        test: &Matrix,
        h_max: usize,
        n_threads: usize,
    ) -> Result<Vec<(usize, f64)>> {
        (1..=h_max)
            .map(|h| Ok((h, self.ge_h_parallel(predictor, test, h, n_threads)?)))
            .collect()
    }
}

/// Publishes per-shard GE_h row counts and wall times plus the max/min
/// imbalance, post-join. No-op while observability is disabled.
fn record_shard_metrics(shards: &[(u64, u64)]) {
    if !obs::enabled() || shards.is_empty() {
        return;
    }
    // 1 us .. 10 s in decades.
    let bounds = obs::exponential_bounds(1_000.0, 10.0, 8);
    let mut max_ns = 0_u64;
    let mut min_ns = u64::MAX;
    for (i, &(rows, ns)) in shards.iter().enumerate() {
        obs::gauge_set(&format!("ge_h_shard_{i}_rows"), rows as f64);
        obs::gauge_set(&format!("ge_h_shard_{i}_ns"), ns as f64);
        obs::observe("ge_h_shard_ns", &bounds, ns as f64);
        max_ns = max_ns.max(ns);
        min_ns = min_ns.min(ns);
    }
    obs::gauge_set("ge_h_shard_max_ns", max_ns as f64);
    obs::gauge_set("ge_h_shard_min_ns", min_ns as f64);
    if min_ns > 0 {
        obs::gauge_set("ge_h_shard_imbalance", max_ns as f64 / min_ns as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;
    use crate::predictor::{ColAvgs, RuleSetPredictor};

    fn linear(n: usize) -> Matrix {
        Matrix::from_fn(n, 3, |i, j| {
            let t = 1.0 + i as f64;
            t * [3.0, 2.0, 1.0][j]
        })
    }

    #[test]
    fn ge1_is_zero_for_perfect_predictor_on_exact_data() {
        let train = linear(20);
        let test = linear(7);
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&train)
            .unwrap();
        let p = RuleSetPredictor::new(rules);
        let ge = GuessingErrorEvaluator::default().ge1(&p, &test).unwrap();
        assert!(ge < 1e-8, "GE1 = {ge}");
    }

    #[test]
    fn ge1_of_col_avgs_equals_rms_deviation() {
        // For col-avgs, the guess for cell (i, j) is always mean_j, so
        // GE1^2 = mean over cells of (x_ij - mean_j)^2 = average column
        // variance (when means come from the same matrix).
        let test = linear(10);
        let p = ColAvgs::fit(&test).unwrap();
        let ge = GuessingErrorEvaluator::default().ge1(&p, &test).unwrap();
        let stats = dataset::stats::column_stats(&test);
        let expected = (stats.variances.iter().sum::<f64>() / 3.0).sqrt();
        assert!((ge - expected).abs() < 1e-10, "GE1 {ge} vs {expected}");
    }

    #[test]
    fn rr_beats_col_avgs_on_correlated_data() {
        // Correlated data with noise: RR must have smaller guessing error.
        let train = Matrix::from_fn(100, 3, |i, j| {
            let t = i as f64;
            let noise = ((i * 13 + j * 7) % 17) as f64 * 0.05;
            t * [3.0, 2.0, 1.0][j] + noise
        });
        let test = Matrix::from_fn(20, 3, |i, j| {
            let t = (i * 5) as f64 + 0.5;
            let noise = ((i * 11 + j * 3) % 13) as f64 * 0.05;
            t * [3.0, 2.0, 1.0][j] + noise
        });
        let rules = RatioRuleMiner::paper_defaults().fit_matrix(&train).unwrap();
        let rr = RuleSetPredictor::new(rules);
        let baseline = ColAvgs::fit(&train).unwrap();
        let ev = GuessingErrorEvaluator::default();
        let ge_rr = ev.ge1(&rr, &test).unwrap();
        let ge_ca = ev.ge1(&baseline, &test).unwrap();
        assert!(
            ge_rr < ge_ca / 5.0,
            "RR ({ge_rr}) should be at least 5x better than col-avgs ({ge_ca})"
        );
    }

    #[test]
    fn ge_h_constant_for_col_avgs() {
        // The paper notes GE_h is constant in h for col-avgs: each hole's
        // guess never depends on the other values.
        let test = linear(12);
        let p = ColAvgs::fit(&test).unwrap();
        let ev = GuessingErrorEvaluator {
            max_hole_sets: 3,
            seed: 1,
        }; // C(3,h) tiny: enumerated
        let ge1 = ev.ge_h(&p, &test, 1).unwrap();
        let ge2 = ev.ge_h(&p, &test, 2).unwrap();
        // Both are RMS over (cell, hole-set) pairs of the same per-cell
        // errors; with full enumeration every cell appears equally often,
        // so the values coincide.
        assert!((ge1 - ge2).abs() < 1e-10, "GE1 {ge1} vs GE2 {ge2}");
    }

    #[test]
    fn per_column_breakdown_identifies_unexplained_attribute() {
        // Attributes 0 and 1 are perfectly correlated; attribute 2 is an
        // independent alternating signal the single rule cannot explain.
        let train = Matrix::from_fn(60, 3, |i, j| {
            let t = 1.0 + i as f64;
            match j {
                0 => 3.0 * t,
                1 => 2.0 * t,
                _ => {
                    if i % 2 == 0 {
                        10.0
                    } else {
                        -10.0
                    }
                }
            }
        });
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&train)
            .unwrap();
        let p = RuleSetPredictor::new(rules);
        let ev = GuessingErrorEvaluator::default();
        let per_col = ev.ge1_per_column(&p, &train).unwrap();
        assert_eq!(per_col.len(), 3);
        assert!(per_col[0] < 1.0, "col 0 GE {}", per_col[0]);
        assert!(per_col[1] < 1.0, "col 1 GE {}", per_col[1]);
        assert!(per_col[2] > 5.0, "col 2 GE {} should be large", per_col[2]);

        // The aggregate GE1 is the RMS of the per-column values.
        let ge1 = ev.ge1(&p, &train).unwrap();
        let rms = (per_col.iter().map(|g| g * g).sum::<f64>() / 3.0).sqrt();
        assert!((ge1 - rms).abs() < 1e-10);
    }

    #[test]
    fn ge_curve_has_requested_length() {
        let test = linear(8);
        let p = ColAvgs::fit(&test).unwrap();
        let curve = GuessingErrorEvaluator::default()
            .ge_curve(&p, &test, 2)
            .unwrap();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].0, 1);
        assert_eq!(curve[1].0, 2);
    }

    #[test]
    fn parallel_ge1_matches_serial() {
        let train = Matrix::from_fn(60, 3, |i, j| {
            let t = 1.0 + i as f64;
            t * [3.0, 2.0, 1.0][j] + ((i * 7 + j * 3) % 5) as f64 * 0.05
        });
        let test = Matrix::from_fn(23, 3, |i, j| {
            let t = 2.0 + i as f64 * 1.7;
            t * [3.0, 2.0, 1.0][j] + ((i * 11 + j) % 7) as f64 * 0.05
        });
        let rules = RatioRuleMiner::paper_defaults().fit_matrix(&train).unwrap();
        let p = RuleSetPredictor::new(rules);
        let ev = GuessingErrorEvaluator::default();
        let serial = ev.ge1(&p, &test).unwrap();
        for threads in [1usize, 2, 4, 16] {
            let parallel = ev.ge1_parallel(&p, &test, threads).unwrap();
            assert!(
                (serial - parallel).abs() < 1e-12 * serial.max(1.0),
                "threads={threads}: {serial} vs {parallel}"
            );
        }
        // Validation paths.
        assert!(ev.ge1_parallel(&p, &Matrix::zeros(0, 3), 2).is_err());
        assert!(ev.ge1_parallel(&p, &Matrix::zeros(5, 2), 2).is_err());
    }

    #[test]
    fn parallel_ge_h_matches_serial() {
        // The PR's acceptance bar: GE_h parallel == serial within 1e-10
        // for 1, 2, 4, and 16 threads, on a predictor with a shared
        // solver cache.
        let train = Matrix::from_fn(80, 5, |i, j| {
            let t = 1.0 + i as f64;
            t * [5.0, 4.0, 3.0, 2.0, 1.0][j] + ((i * 7 + j * 3) % 11) as f64 * 0.05
        });
        let test = Matrix::from_fn(33, 5, |i, j| {
            let t = 2.0 + i as f64 * 1.3;
            t * [5.0, 4.0, 3.0, 2.0, 1.0][j] + ((i * 13 + j * 5) % 7) as f64 * 0.05
        });
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&train)
            .unwrap();
        let p = RuleSetPredictor::new(rules);
        let ev = GuessingErrorEvaluator::default();
        for h in [1usize, 2, 3] {
            let serial = ev.ge_h(&p, &test, h).unwrap();
            for threads in [1usize, 2, 4, 16] {
                let parallel = ev.ge_h_parallel(&p, &test, h, threads).unwrap();
                assert!(
                    (serial - parallel).abs() < 1e-10 * serial.max(1.0),
                    "h={h} threads={threads}: {serial} vs {parallel}"
                );
            }
        }
        // Validation paths mirror the serial ones.
        assert!(ev.ge_h_parallel(&p, &Matrix::zeros(0, 5), 1, 2).is_err());
        assert!(ev.ge_h_parallel(&p, &test, 0, 2).is_err());
        assert!(ev.ge_h_parallel(&p, &test, 5, 2).is_err());
    }

    #[test]
    fn parallel_ge_curve_matches_serial() {
        let test = linear(10);
        let p = ColAvgs::fit(&test).unwrap();
        let ev = GuessingErrorEvaluator::default();
        let serial = ev.ge_curve(&p, &test, 2).unwrap();
        let parallel = ev.ge_curve_parallel(&p, &test, 2, 4).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for ((h_s, ge_s), (h_p, ge_p)) in serial.iter().zip(&parallel) {
            assert_eq!(h_s, h_p);
            assert!((ge_s - ge_p).abs() < 1e-10 * ge_s.max(1.0));
        }
    }

    #[test]
    fn parallel_ge_h_publishes_shard_metrics() {
        // Enable-only (other tests in this binary may record too, so only
        // presence and per-shard sanity are asserted).
        obs::set_enabled(true);
        let test = linear(12);
        let p = ColAvgs::fit(&test).unwrap();
        let ev = GuessingErrorEvaluator::default();
        ev.ge_h_parallel(&p, &test, 1, 3).unwrap();
        let snap = obs::global().snapshot();
        assert!(snap.gauge("ge_h_shard_0_rows").unwrap() >= 1.0);
        assert!(snap.gauge("ge_h_shard_0_ns").unwrap() >= 0.0);
        assert!(snap.gauge("ge_h_shard_max_ns").unwrap() >= 0.0);
        assert!(snap.gauge("ge_h_shard_min_ns").unwrap() >= 0.0);
        assert!(snap.get("ge_h_shard_ns").is_some(), "histogram missing");
    }

    #[test]
    fn deterministic_given_seed() {
        let test = linear(10);
        let p = ColAvgs::fit(&test).unwrap();
        let ev = GuessingErrorEvaluator {
            max_hole_sets: 5,
            seed: 42,
        };
        assert_eq!(
            ev.ge_h(&p, &test, 2).unwrap(),
            ev.ge_h(&p, &test, 2).unwrap()
        );
    }

    #[test]
    fn input_validation() {
        let test = linear(5);
        let p = ColAvgs::fit(&test).unwrap();
        let ev = GuessingErrorEvaluator::default();
        assert!(ev.ge1(&p, &Matrix::zeros(0, 3)).is_err());
        assert!(ev.ge_h(&p, &test, 0).is_err());
        assert!(ev.ge_h(&p, &test, 3).is_err());
        let narrow = ColAvgs::new(vec![0.0, 0.0]).unwrap();
        assert!(ev.ge1(&narrow, &test).is_err());
        assert!(ev.ge_h(&narrow, &test, 1).is_err());
    }
}
