//! Training on incomplete data: EM-style iterative imputation
//! (extension beyond the paper).
//!
//! The paper mines rules from a *complete* training matrix and uses them
//! to fill holes in new records. Real warehouse tables are often already
//! holey. This module closes the loop with the classic EM-flavoured
//! iteration:
//!
//! 1. initialize every hole with its column mean (the col-avgs guess);
//! 2. mine Ratio Rules from the completed matrix;
//! 3. re-fill every hole using the rules (Sec. 4.4 reconstruction);
//! 4. repeat until the filled values stop moving (or an iteration cap).
//!
//! On data that genuinely lies near a low-dimensional RR-hyperplane this
//! converges in a handful of iterations and recovers far better values
//! than the initial means — the same reason the paper's guessing error
//! beats col-avgs.

use crate::cutoff::Cutoff;
use crate::miner::RatioRuleMiner;
use crate::reconstruct::SolverCache;
use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use dataset::holes::HoledRow;
use linalg::Matrix;

/// Configuration for the imputation loop.
#[derive(Debug, Clone, Copy)]
pub struct Imputer {
    /// Cutoff used for the per-iteration mining.
    pub cutoff: Cutoff,
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Stop when the largest change of any filled cell drops below this
    /// fraction of the data scale.
    pub rel_tolerance: f64,
}

impl Default for Imputer {
    fn default() -> Self {
        Imputer {
            cutoff: Cutoff::default(),
            max_iterations: 25,
            rel_tolerance: 1e-6,
        }
    }
}

/// Result of an imputation run.
#[derive(Debug, Clone)]
pub struct Imputed {
    /// The completed matrix (holes filled, known cells untouched).
    pub matrix: Matrix,
    /// Rules mined from the final completed matrix.
    pub rules: RuleSet,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Final largest relative change (`< rel_tolerance` unless the
    /// iteration cap was hit).
    pub final_delta: f64,
}

impl Imputer {
    /// Fills every `None` cell of `data`, leaving known cells untouched.
    ///
    /// Rows with no known values are rejected (nothing anchors them);
    /// rows with no holes just participate in mining.
    pub fn impute(&self, data: &[Vec<Option<f64>>]) -> Result<Imputed> {
        let n = data.len();
        if n == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        let m = data[0].len();
        if m == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        for (i, row) in data.iter().enumerate() {
            if row.len() != m {
                return Err(RatioRuleError::WidthMismatch {
                    expected: m,
                    actual: row.len(),
                });
            }
            if row.iter().all(Option::is_none) {
                return Err(RatioRuleError::Invalid(format!(
                    "row {i} has no known values; it cannot be imputed"
                )));
            }
        }

        // Column means over known cells only.
        let mut means = vec![0.0_f64; m];
        let mut counts = vec![0usize; m];
        for row in data {
            for (j, v) in row.iter().enumerate() {
                if let Some(x) = v {
                    means[j] += x;
                    counts[j] += 1;
                }
            }
        }
        for (mj, &c) in means.iter_mut().zip(&counts) {
            if c > 0 {
                *mj /= c as f64;
            }
        }

        // Step 1: initialize.
        let mut completed = Matrix::from_fn(n, m, |i, j| data[i][j].unwrap_or(means[j]));
        let scale = completed.max_abs().max(1.0);

        let mut rules = RatioRuleMiner::new(self.cutoff).fit_matrix(&completed)?;
        let mut iterations = 0usize;
        let mut final_delta = f64::INFINITY;

        for _ in 0..self.max_iterations {
            iterations += 1;
            let mut delta = 0.0_f64;
            // Rules change every iteration, but within one iteration the
            // holey rows share a handful of hole patterns: factor each
            // pattern once per iteration instead of once per row.
            let cache = SolverCache::new(&rules);
            for (i, row) in data.iter().enumerate() {
                if row.iter().all(Option::is_some) {
                    continue;
                }
                let filled = cache.fill(&HoledRow::new(row.clone()))?;
                for (j, v) in row.iter().enumerate() {
                    if v.is_none() {
                        delta = delta.max((filled.values[j] - completed[(i, j)]).abs());
                        completed[(i, j)] = filled.values[j];
                    }
                }
            }
            final_delta = delta / scale;
            drop(cache);
            rules = RatioRuleMiner::new(self.cutoff).fit_matrix(&completed)?;
            if final_delta < self.rel_tolerance {
                break;
            }
        }

        Ok(Imputed {
            matrix: completed,
            rules,
            iterations,
            final_delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank-1 ground truth with a deterministic hole mask.
    fn masked_rank1(n: usize, hole_every: usize) -> (Matrix, Vec<Vec<Option<f64>>>) {
        let truth = Matrix::from_fn(n, 3, |i, j| {
            let t = 1.0 + i as f64;
            t * [3.0, 2.0, 1.0][j]
        });
        let data: Vec<Vec<Option<f64>>> = (0..n)
            .map(|i| {
                (0..3)
                    .map(|j| {
                        if (i * 3 + j) % hole_every == 0 && i % 2 == 1 {
                            None
                        } else {
                            Some(truth[(i, j)])
                        }
                    })
                    .collect()
            })
            .collect();
        (truth, data)
    }

    #[test]
    fn recovers_rank1_holes_exactly() {
        let (truth, data) = masked_rank1(40, 5);
        let result = Imputer {
            cutoff: Cutoff::FixedK(1),
            rel_tolerance: 1e-12,
            ..Imputer::default()
        }
        .impute(&data)
        .unwrap();
        let err = result.matrix.max_abs_diff(&truth).unwrap();
        assert!(err < 1e-6, "max recovery error {err}");
        assert!(result.iterations >= 1);
        assert!(result.final_delta < 1e-10);
    }

    #[test]
    fn beats_mean_imputation() {
        let (truth, data) = masked_rank1(60, 4);
        // Mean imputation error for comparison.
        let result = Imputer {
            cutoff: Cutoff::FixedK(1),
            ..Imputer::default()
        }
        .impute(&data)
        .unwrap();

        let mut mean_err = 0.0_f64;
        let mut em_err = 0.0_f64;
        let col_mean = |j: usize| {
            let known: Vec<f64> = data.iter().filter_map(|row| row[j]).collect();
            known.iter().sum::<f64>() / known.len() as f64
        };
        let means = [col_mean(0), col_mean(1), col_mean(2)];
        for (i, row) in data.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                if v.is_none() {
                    mean_err += (means[j] - truth[(i, j)]).powi(2);
                    em_err += (result.matrix[(i, j)] - truth[(i, j)]).powi(2);
                }
            }
        }
        assert!(
            em_err < mean_err / 100.0,
            "EM {em_err} should crush mean imputation {mean_err}"
        );
    }

    #[test]
    fn known_cells_are_never_touched() {
        let (_, data) = masked_rank1(30, 5);
        let result = Imputer::default().impute(&data).unwrap();
        for (i, row) in data.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                if let Some(x) = v {
                    assert_eq!(result.matrix[(i, j)], *x, "cell ({i},{j}) modified");
                }
            }
        }
    }

    #[test]
    fn complete_data_converges_immediately() {
        let truth = Matrix::from_fn(20, 3, |i, j| (i + j) as f64);
        let data: Vec<Vec<Option<f64>>> = (0..20)
            .map(|i| (0..3).map(|j| Some(truth[(i, j)])).collect())
            .collect();
        let result = Imputer::default().impute(&data).unwrap();
        assert_eq!(result.matrix, truth);
        assert_eq!(result.iterations, 1);
        assert_eq!(result.final_delta, 0.0);
    }

    #[test]
    fn input_validation() {
        assert!(Imputer::default().impute(&[]).is_err());
        assert!(Imputer::default().impute(&[vec![]]).is_err());
        // Ragged.
        assert!(Imputer::default()
            .impute(&[vec![Some(1.0), Some(2.0)], vec![Some(1.0)]])
            .is_err());
        // All-hole row.
        assert!(Imputer::default()
            .impute(&[vec![Some(1.0), Some(2.0)], vec![None, None]])
            .is_err());
    }

    #[test]
    fn iteration_cap_is_respected() {
        let (_, data) = masked_rank1(30, 5);
        let result = Imputer {
            cutoff: Cutoff::FixedK(1),
            max_iterations: 2,
            rel_tolerance: 0.0, // never converges by tolerance
        }
        .impute(&data)
        .unwrap();
        assert_eq!(result.iterations, 2);
    }
}
