//! Incremental mining (extension beyond the paper).
//!
//! The paper's single-pass accumulator is a sum over rows, so a mined
//! model can be kept *live* as new transactions arrive: absorb each row
//! into the accumulator in O(M^2) and re-derive the rules (an O(M^3)
//! eigensolve) whenever fresh rules are needed. Nothing is ever
//! rescanned — the natural fit for the paper's data-warehouse setting,
//! where yesterday's matrix has already been archived. Accumulators from
//! independent shards merge losslessly, so distributed ingest works the
//! same way.

use crate::covariance::CovarianceAccumulator;
use crate::cutoff::Cutoff;
use crate::miner::{EigenSolver, RatioRuleMiner};
use crate::rules::RuleSet;
use crate::Result;
use dataset::source::RowSource;
use linalg::Matrix;

/// A continuously updatable Ratio Rules model.
#[derive(Debug, Clone)]
pub struct IncrementalMiner {
    acc: CovarianceAccumulator,
    cutoff: Cutoff,
    solver: EigenSolver,
    labels: Option<Vec<String>>,
}

impl IncrementalMiner {
    /// Creates an empty model over `m` attributes.
    pub fn new(m: usize, cutoff: Cutoff) -> Self {
        IncrementalMiner {
            acc: CovarianceAccumulator::new(m),
            cutoff,
            solver: EigenSolver::Dense,
            labels: None,
        }
    }

    /// Rebuilds a live model from a checkpointed accumulator (e.g. a
    /// [`crate::resilience::ScanCheckpoint`] restored after a crash):
    /// ingest continues exactly where the interrupted scan stopped.
    pub fn from_accumulator(acc: CovarianceAccumulator, cutoff: Cutoff) -> Self {
        IncrementalMiner {
            acc,
            cutoff,
            solver: EigenSolver::Dense,
            labels: None,
        }
    }

    /// The underlying accumulator (checkpoint it with
    /// [`crate::resilience::ScanCheckpoint`]).
    pub fn accumulator(&self) -> &CovarianceAccumulator {
        &self.acc
    }

    /// Selects an eigensolver backend for rule derivation.
    pub fn with_solver(mut self, solver: EigenSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Attaches attribute labels.
    pub fn with_labels(mut self, labels: Vec<String>) -> Self {
        self.labels = Some(labels);
        self
    }

    /// Number of rows absorbed so far.
    pub fn n_seen(&self) -> usize {
        self.acc.n_rows()
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.acc.n_cols()
    }

    /// Absorbs one new row (O(M^2)).
    pub fn observe(&mut self, row: &[f64]) -> Result<()> {
        self.acc.push_row(row)
    }

    /// Absorbs every row of a matrix.
    pub fn observe_matrix(&mut self, x: &Matrix) -> Result<()> {
        for row in x.row_iter() {
            self.acc.push_row(row)?;
        }
        Ok(())
    }

    /// Drains a row stream into the model.
    pub fn observe_source<S: RowSource>(&mut self, source: &mut S) -> Result<()> {
        source.rewind()?;
        let mut buf = vec![0.0_f64; self.acc.n_cols()];
        while source.next_row(&mut buf)? {
            self.acc.push_row(&buf)?;
        }
        Ok(())
    }

    /// Merges another incremental model (e.g. from a parallel shard).
    pub fn absorb(&mut self, other: &IncrementalMiner) -> Result<()> {
        self.acc.merge(&other.acc)
    }

    /// Derives the current rule set from everything seen so far
    /// (O(M^3); no data is rescanned).
    pub fn rules(&self) -> Result<RuleSet> {
        let mut miner = RatioRuleMiner::new(self.cutoff).with_solver(self.solver);
        if let Some(labels) = &self.labels {
            miner = miner.with_labels(labels.clone());
        }
        miner.finish(&self.acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::source::MatrixSource;

    fn chunk(start: usize, n: usize, slope: f64) -> Matrix {
        Matrix::from_fn(n, 3, |i, j| {
            let t = (start + i) as f64;
            t * [3.0, slope, 1.0][j] + ((start + i) * 7 % 5) as f64 * 0.01
        })
    }

    #[test]
    fn incremental_equals_batch() {
        let a = chunk(0, 50, 2.0);
        let b = chunk(50, 30, 2.0);

        // Batch over the concatenation.
        let mut all_rows: Vec<f64> = a.data().to_vec();
        all_rows.extend_from_slice(b.data());
        let combined = Matrix::from_vec(80, 3, all_rows).unwrap();
        let batch = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&combined)
            .unwrap();

        // Incremental over the two chunks.
        let mut inc = IncrementalMiner::new(3, Cutoff::FixedK(2));
        inc.observe_matrix(&a).unwrap();
        inc.observe_matrix(&b).unwrap();
        let live = inc.rules().unwrap();

        assert_eq!(inc.n_seen(), 80);
        assert_eq!(live.n_train(), 80);
        for (x, y) in batch.rules().iter().zip(live.rules()) {
            assert!((x.eigenvalue - y.eigenvalue).abs() < 1e-9 * x.eigenvalue.max(1.0));
            for (p, q) in x.loadings.iter().zip(&y.loadings) {
                assert!((p - q).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn model_tracks_drift() {
        // Start with ratio 2:1 between attrs 1 and 2, then feed a large
        // regime where the ratio is 6:1; the mined direction must move.
        let mut inc = IncrementalMiner::new(3, Cutoff::FixedK(1));
        inc.observe_matrix(&chunk(0, 60, 2.0)).unwrap();
        let before = inc.rules().unwrap();
        let r_before = before.rule(0).loadings[1] / before.rule(0).loadings[2];

        inc.observe_matrix(&chunk(60, 600, 6.0)).unwrap();
        let after = inc.rules().unwrap();
        let r_after = after.rule(0).loadings[1] / after.rule(0).loadings[2];

        assert!((r_before - 2.0).abs() < 0.1, "initial ratio {r_before}");
        assert!(r_after > 4.0, "drifted ratio {r_after} should approach 6");
    }

    #[test]
    fn sharded_ingest_merges_losslessly() {
        let a = chunk(0, 40, 2.0);
        let b = chunk(40, 40, 2.0);
        let mut shard1 = IncrementalMiner::new(3, Cutoff::FixedK(1));
        shard1.observe_matrix(&a).unwrap();
        let mut shard2 = IncrementalMiner::new(3, Cutoff::FixedK(1));
        shard2.observe_matrix(&b).unwrap();
        shard1.absorb(&shard2).unwrap();
        assert_eq!(shard1.n_seen(), 80);

        let mut single = IncrementalMiner::new(3, Cutoff::FixedK(1));
        single.observe_matrix(&a).unwrap();
        single.observe_matrix(&b).unwrap();
        let merged = shard1.rules().unwrap();
        let serial = single.rules().unwrap();
        for (p, q) in merged.rule(0).loadings.iter().zip(&serial.rule(0).loadings) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn observe_source_and_labels() {
        let a = chunk(0, 30, 2.0);
        let mut src = MatrixSource::new(&a);
        let mut inc = IncrementalMiner::new(3, Cutoff::FixedK(1)).with_labels(vec![
            "x".into(),
            "y".into(),
            "z".into(),
        ]);
        inc.observe_source(&mut src).unwrap();
        let rules = inc.rules().unwrap();
        assert_eq!(rules.attribute_labels(), &["x", "y", "z"]);
        assert_eq!(inc.n_attributes(), 3);
    }

    #[test]
    fn checkpointed_model_resumes_identically() {
        use crate::resilience::ScanCheckpoint;
        let a = chunk(0, 45, 2.0);
        let b = chunk(45, 35, 2.0);

        // Uninterrupted ingest.
        let mut whole = IncrementalMiner::new(3, Cutoff::FixedK(2));
        whole.observe_matrix(&a).unwrap();
        whole.observe_matrix(&b).unwrap();

        // Ingest chunk a, checkpoint through JSON (simulating a crash),
        // restore, ingest chunk b.
        let mut first = IncrementalMiner::new(3, Cutoff::FixedK(2));
        first.observe_matrix(&a).unwrap();
        let cp = ScanCheckpoint::from_accumulator(first.accumulator());
        let text = cp.to_json();
        let restored = ScanCheckpoint::from_json(&text).unwrap();
        let mut resumed =
            IncrementalMiner::from_accumulator(restored.accumulator().unwrap(), Cutoff::FixedK(2));
        resumed.observe_matrix(&b).unwrap();

        assert_eq!(resumed.n_seen(), whole.n_seen());
        let (n1, s1, r1) = whole.accumulator().parts();
        let (n2, s2, r2) = resumed.accumulator().parts();
        assert_eq!(n1, n2);
        assert_eq!(s1, s2, "column sums survive the JSON round-trip bit-for-bit");
        assert_eq!(r1, r2, "moments survive the JSON round-trip bit-for-bit");
        // And the derived rules agree exactly.
        let rw = whole.rules().unwrap();
        let rr = resumed.rules().unwrap();
        for (x, y) in rw.rules().iter().zip(rr.rules()) {
            assert_eq!(x.eigenvalue.to_bits(), y.eigenvalue.to_bits());
        }
    }

    #[test]
    fn empty_model_cannot_derive_rules() {
        let inc = IncrementalMiner::new(3, Cutoff::default());
        assert!(inc.rules().is_err());
    }

    #[test]
    fn wrong_width_rejected() {
        let mut inc = IncrementalMiner::new(3, Cutoff::default());
        assert!(inc.observe(&[1.0, 2.0]).is_err());
        let other = IncrementalMiner::new(2, Cutoff::default());
        assert!(inc.absorb(&other).is_err());
    }
}
