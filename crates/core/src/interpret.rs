//! Rule interpretation (paper Sec. 6.2, Fig. 10 and Table 2).
//!
//! The paper's methodology: display each retained rule as a histogram over
//! attributes, observe positive/negative correlations, and read off the
//! meaning ("RR1 is court action; RR2 separates guards from forwards").
//! This module renders exactly that: a Table-2 style report of significant
//! loadings, the sign structure, and the headline ratio between the two
//! dominant attributes.

use crate::rules::{RatioRule, RuleSet};

/// One attribute's appearance in a rule summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadingEntry {
    /// Attribute index.
    pub attribute: usize,
    /// Attribute label.
    pub label: String,
    /// Signed loading.
    pub loading: f64,
}

/// A digested, human-readable view of one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSummary {
    /// 0-based rule index (RR1 is index 0).
    pub index: usize,
    /// Eigenvalue (variance captured).
    pub eigenvalue: f64,
    /// Significant loadings, by decreasing magnitude.
    pub significant: Vec<LoadingEntry>,
    /// Attributes loading positively (among the significant ones).
    pub positive: Vec<usize>,
    /// Attributes loading negatively (among the significant ones).
    pub negative: Vec<usize>,
    /// The "a : b = x : y" reading between the two dominant attributes,
    /// when at least two attributes are significant.
    pub headline_ratio: Option<(String, String, f64, f64)>,
}

/// Summarizes all rules of a set, keeping loadings with
/// `|loading| >= threshold` (the paper's Table 2 blanks small entries;
/// 0.05 reproduces its look).
pub fn summarize(rules: &RuleSet, threshold: f64) -> Vec<RuleSummary> {
    rules
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| summarize_rule(r, i, rules.attribute_labels(), threshold))
        .collect()
}

fn summarize_rule(
    rule: &RatioRule,
    index: usize,
    labels: &[String],
    threshold: f64,
) -> RuleSummary {
    let mut significant: Vec<LoadingEntry> = rule
        .loadings
        .iter()
        .enumerate()
        .filter(|(_, &l)| l.abs() >= threshold)
        .map(|(a, &l)| LoadingEntry {
            attribute: a,
            label: labels[a].clone(),
            loading: l,
        })
        .collect();
    significant.sort_by(|a, b| b.loading.abs().partial_cmp(&a.loading.abs()).unwrap_or(std::cmp::Ordering::Equal));

    let positive = significant
        .iter()
        .filter(|e| e.loading > 0.0)
        .map(|e| e.attribute)
        .collect();
    let negative = significant
        .iter()
        .filter(|e| e.loading < 0.0)
        .map(|e| e.attribute)
        .collect();
    let headline_ratio = if significant.len() >= 2 {
        let a = &significant[0];
        let b = &significant[1];
        Some((a.label.clone(), b.label.clone(), a.loading, b.loading))
    } else {
        None
    };
    RuleSummary {
        index,
        eigenvalue: rule.eigenvalue,
        significant,
        positive,
        negative,
        headline_ratio,
    }
}

/// Renders the Table-2 style text report: one column per rule, one row per
/// attribute, blanks below the threshold.
pub fn table(rules: &RuleSet, threshold: f64) -> String {
    let labels = rules.attribute_labels();
    let label_width = labels.iter().map(String::len).max().unwrap_or(5).max(5);
    let k = rules.k();

    let mut out = String::new();
    out.push_str(&format!("{:label_width$}", "field"));
    for i in 0..k {
        out.push_str(&format!(" {:>8}", format!("RR{}", i + 1)));
    }
    out.push('\n');
    for (a, label) in labels.iter().enumerate() {
        out.push_str(&format!("{label:label_width$}"));
        for rule in rules.rules() {
            let l = rule.loadings[a];
            if l.abs() >= threshold {
                out.push_str(&format!(" {l:>8.3}"));
            } else {
                out.push_str(&format!(" {:>8}", ""));
            }
        }
        out.push('\n');
    }
    out
}

/// Generates a one-sentence English description per rule, following the
/// paper's Sec. 6.2 reading style: a rule with same-sign significant
/// loadings is a "volume" factor with a headline ratio; a rule with
/// mixed signs "contrasts" one group against the other.
pub fn describe(rules: &RuleSet, threshold: f64) -> Vec<String> {
    summarize(rules, threshold)
        .into_iter()
        .map(|s| {
            let labels = |idx: &[usize]| {
                idx.iter()
                    .map(|&a| rules.attribute_labels()[a].clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let energy = {
                let total: f64 = rules.spectrum().iter().map(|l| l.max(0.0)).sum();
                if total > 0.0 {
                    s.eigenvalue.max(0.0) / total * 100.0
                } else {
                    0.0
                }
            };
            if s.significant.is_empty() {
                format!("RR{}: no attribute loads above the threshold.", s.index + 1)
            } else if s.negative.is_empty() || s.positive.is_empty() {
                // Volume factor.
                let mut text = format!(
                    "RR{} ({energy:.0}% of variance): {{{}}} rise and fall together",
                    s.index + 1,
                    labels(
                        &s.positive
                            .iter()
                            .chain(&s.negative)
                            .copied()
                            .collect::<Vec<_>>()
                    ),
                );
                if let Some((a, b, la, lb)) = &s.headline_ratio {
                    text.push_str(&format!(
                        "; typical ratio {a} : {b} = {:.2} : 1",
                        (la / lb).abs()
                    ));
                }
                text.push('.');
                text
            } else {
                format!(
                    "RR{} ({energy:.0}% of variance): contrasts {{{}}} against {{{}}}.",
                    s.index + 1,
                    labels(&s.positive),
                    labels(&s.negative)
                )
            }
        })
        .collect()
}

/// Renders a horizontal ASCII histogram of one rule's loadings — the
/// paper's Fig. 10 step 3 ("display Ratio Rules graphically in a
/// histogram").
pub fn histogram(rules: &RuleSet, rule_index: usize, bar_width: usize) -> String {
    let rule = rules.rule(rule_index);
    let labels = rules.attribute_labels();
    let label_width = labels.iter().map(String::len).max().unwrap_or(5);
    let max_abs = rule
        .loadings
        .iter()
        .fold(0.0_f64, |m, &l| m.max(l.abs()))
        .max(1e-12);
    let half = bar_width.max(10) / 2;

    let mut out = format!("RR{} (eigenvalue {:.4})\n", rule_index + 1, rule.eigenvalue);
    for (a, label) in labels.iter().enumerate() {
        let l = rule.loadings[a];
        let len = ((l.abs() / max_abs) * half as f64).round() as usize;
        let mut bar = String::new();
        if l < 0.0 {
            bar.push_str(&" ".repeat(half - len));
            bar.push_str(&"<".repeat(len));
            bar.push('|');
            bar.push_str(&" ".repeat(half));
        } else {
            bar.push_str(&" ".repeat(half));
            bar.push('|');
            bar.push_str(&">".repeat(len));
            bar.push_str(&" ".repeat(half - len));
        }
        out.push_str(&format!("{label:label_width$} {bar} {l:+.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;
    use dataset::DataMatrix;
    use linalg::Matrix;

    fn rules() -> RuleSet {
        // Factor 1: (a, b) move together; factor 2: c alone.
        let x = Matrix::from_fn(60, 3, |i, j| {
            let t = (i % 12) as f64;
            let u = (i % 5) as f64;
            match j {
                0 => 4.0 * t,
                1 => 2.0 * t,
                _ => 3.0 * u,
            }
        });
        let dm = DataMatrix::with_labels(
            x,
            (0..60).map(|i| format!("r{i}")).collect(),
            vec!["minutes".into(), "points".into(), "rebounds".into()],
        )
        .unwrap();
        RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_data(&dm)
            .unwrap()
    }

    #[test]
    fn summaries_identify_dominant_attributes() {
        let rs = rules();
        let sums = summarize(&rs, 0.05);
        assert_eq!(sums.len(), 2);
        // RR1: minutes and points dominate, minutes first (larger scale),
        // both positive.
        let rr1 = &sums[0];
        assert_eq!(rr1.significant[0].label, "minutes");
        assert_eq!(rr1.significant[1].label, "points");
        assert!(rr1.negative.is_empty());
        // Headline ratio minutes : points = 2 : 1.
        let (a, b, la, lb) = rr1.headline_ratio.clone().unwrap();
        assert_eq!(a, "minutes");
        assert_eq!(b, "points");
        assert!((la / lb - 2.0).abs() < 0.05, "ratio {}", la / lb);
    }

    #[test]
    fn threshold_filters_small_loadings() {
        let rs = rules();
        let sums = summarize(&rs, 0.05);
        // RR1 barely loads on rebounds (independent factor).
        assert!(sums[0].significant.iter().all(|e| e.label != "rebounds"));
        // With a zero threshold everything appears.
        let all = summarize(&rs, 0.0);
        assert_eq!(all[0].significant.len(), 3);
    }

    #[test]
    fn single_significant_attribute_has_no_headline() {
        let rs = rules();
        // RR2 is essentially the rebounds axis.
        let sums = summarize(&rs, 0.5);
        let rr2 = &sums[1];
        assert_eq!(rr2.significant.len(), 1);
        assert_eq!(rr2.significant[0].label, "rebounds");
        assert!(rr2.headline_ratio.is_none());
    }

    #[test]
    fn table_renders_blanks_and_values() {
        let rs = rules();
        let t = table(&rs, 0.05);
        assert!(t.contains("RR1"));
        assert!(t.contains("RR2"));
        assert!(t.contains("minutes"));
        // "rebounds" row: blank under RR1, value under RR2.
        let row = t.lines().find(|l| l.starts_with("rebounds")).unwrap();
        assert!(row.contains("0.9") || row.contains("1.0"), "row: {row}");
        // Header + one line per attribute.
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn describe_reads_volume_and_contrast_factors() {
        let rs = rules();
        let sentences = describe(&rs, 0.05);
        assert_eq!(sentences.len(), 2);
        // RR1: minutes and points move together, ratio ~2:1.
        assert!(
            sentences[0].contains("rise and fall together"),
            "{}",
            sentences[0]
        );
        assert!(sentences[0].contains("minutes"));
        assert!(sentences[0].contains("2.0"), "{}", sentences[0]);

        // Build a contrast rule: attr0 up, attr1 down.
        let x = Matrix::from_fn(50, 2, |i, j| {
            let t = (i % 9) as f64 - 4.0;
            if j == 0 {
                10.0 + t
            } else {
                10.0 - t
            }
        });
        let contrast = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let sentences = describe(&contrast, 0.05);
        assert!(sentences[0].contains("contrasts"), "{}", sentences[0]);
    }

    #[test]
    fn describe_handles_empty_significance() {
        let rs = rules();
        let sentences = describe(&rs, 10.0); // nothing passes
        assert!(sentences[0].contains("no attribute"));
    }

    #[test]
    fn histogram_marks_signs() {
        // Build a rule set with a genuinely negative loading: points vs
        // rebounds contrast.
        let x = Matrix::from_fn(50, 2, |i, j| {
            let t = (i % 9) as f64 - 4.0;
            if j == 0 {
                10.0 + t
            } else {
                10.0 - t
            }
        });
        let rs = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let h = histogram(&rs, 0, 20);
        assert!(h.contains('>'), "missing positive bar:\n{h}");
        assert!(h.contains('<'), "missing negative bar:\n{h}");
        assert!(h.contains("eigenvalue"));
    }
}
