//! Ratio Rules — a reproduction of Korn, Labrinidis, Kotidis, Faloutsos,
//! *"Ratio Rules: A New Paradigm for Fast, Quantifiable Data Mining"*,
//! VLDB 1998.
//!
//! Given an `N x M` data matrix (e.g. customers x products with dollar
//! amounts), Ratio Rules are the top-`k` eigenvectors of the covariance
//! matrix of the column-centered data. They capture correlations as
//! *ratios* — "customers spend bread : milk : butter = 1 : 2 : 5" — and,
//! unlike boolean/quantitative association rules, support principled
//! estimation of missing values, which in turn enables forecasting,
//! what-if scenarios, outlier detection, and a *quantifiable* measure of
//! rule quality (the "guessing error").
//!
//! # Quick start
//!
//! ```
//! use linalg::Matrix;
//! use ratio_rules::cutoff::Cutoff;
//! use ratio_rules::miner::RatioRuleMiner;
//! use dataset::holes::HoledRow;
//!
//! // Customers x {bread, butter}: spendings follow a 2:1 ratio.
//! let x = Matrix::from_rows(&[
//!     &[2.0, 1.0],
//!     &[4.0, 2.1],
//!     &[6.0, 2.9],
//!     &[8.0, 4.0],
//! ]).unwrap();
//!
//! let rules = RatioRuleMiner::new(Cutoff::EnergyFraction(0.85))
//!     .fit_matrix(&x)
//!     .unwrap();
//!
//! // Guess the butter spending of a customer who bought $10 of bread.
//! let row = HoledRow::new(vec![Some(10.0), None]);
//! let filled = ratio_rules::reconstruct::fill_holes(&rules, &row).unwrap();
//! assert!((filled.values[1] - 5.0).abs() < 0.3);
//! ```
//!
//! # Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`covariance`] | Fig. 2a | single-pass covariance accumulator |
//! | [`miner`] | Fig. 2 | end-to-end mining from a row stream |
//! | [`cutoff`] | Eq. 1 | how many rules to keep |
//! | [`rules`] | Sec. 4.1 | `RatioRule` / `RuleSet` model types |
//! | [`reconstruct`] | Sec. 4.4 | hole filling (CASEs 1–3), pattern-keyed solver cache |
//! | [`predictor`] | Sec. 5 | `Predictor` trait, RR and col-avgs impls |
//! | [`guessing`] | Sec. 4.3 | `GE_1` / `GE_h` metrics |
//! | [`outlier`] | Sec. 3, 6.1 | reconstruction-based outlier scores |
//! | [`whatif`] | Sec. 3 | what-if scenario API |
//! | [`visualize`] | Sec. 6.1 | RR-space projections and ASCII plots |
//! | [`interpret`] | Sec. 6.2 | Table-2 style rule rendering |
//! | [`parallel`] | extension | multi-threaded covariance scan, panic-isolated shards |
//! | [`resilience`] | extension | scan policies, checkpoint/resume, eigensolve ladder |
//! | [`incremental`] | extension | live model maintenance, shard merging |
//! | [`impute`] | extension | EM imputation of holey training tables |
//! | [`diagnostics`] | extension | model cards (per-attribute GE) |
//! | [`regression`] | Sec. 5 | MLR baseline (strict / mean-fallback) |

#![warn(missing_docs)]

pub mod batch;
pub mod covariance;
pub mod cutoff;
pub mod diagnostics;
pub mod error;
pub mod guessing;
pub mod impute;
pub mod incremental;
pub mod interpret;
pub mod miner;
pub mod model_json;
pub mod outlier;
pub mod parallel;
pub mod predictor;
pub mod reconstruct;
pub mod regression;
pub mod resilience;
pub mod rules;
pub mod visualize;
pub mod whatif;

pub use error::RatioRuleError;
pub use rules::{RatioRule, RuleSet};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RatioRuleError>;
