//! End-to-end Ratio Rule mining — the paper's Fig. 2 pipeline.
//!
//! `fit` makes exactly one pass over a [`dataset::source::RowSource`]
//! (one `rewind`, then each row once), builds the covariance via
//! [`crate::covariance`], solves the eigensystem with the
//! [`linalg::eigen`] substrate, and keeps the top rules per the
//! [`crate::cutoff`] policy. The integration tests use
//! [`dataset::source::CountingSource`] to prove the single-pass claim.

use crate::covariance::CovarianceAccumulator;
use crate::cutoff::Cutoff;
use crate::resilience::{ScanPolicy, ScanReport, Scanner};
use crate::rules::{RatioRule, RuleSet};
use crate::{RatioRuleError, Result};
use dataset::source::{MatrixSource, RowSource};
use dataset::DataMatrix;
use linalg::eigen::SymmetricEigen;
use linalg::lanczos::lanczos_top_k;
use linalg::Matrix;

/// Eigensolver backend for the Fig. 2(b) step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EigenSolver {
    /// Full dense decomposition (Householder + implicit QL). The right
    /// choice for the paper's regime (`M` up to ~1000).
    #[default]
    Dense,
    /// Lanczos top-`max_k` solve — the paper's footnote-1 alternative for
    /// very wide matrices. The Eq. 1 energy denominator uses
    /// `trace(C) = sum of all eigenvalues`, which the accumulator knows
    /// exactly, so the energy cutoff still works without the full
    /// spectrum.
    Lanczos {
        /// Upper bound on rules to extract (the Krylov solve computes
        /// this many Ritz pairs).
        max_k: usize,
    },
}

/// Mines rules by SVD of the centered data matrix instead of
/// eigendecomposing the covariance — numerically the superior route
/// (singular values of `X_c` are computed without ever squaring the
/// condition number), at the cost of a second pass and `O(N M)` memory.
///
/// This is *not* the paper's algorithm (which insists on one pass and
/// `O(M^2)` memory); it exists as the numerical-accuracy ablation:
/// `bench/src/bin/ablation_numerics.rs` measures where the paper's
/// raw-moment formula starts losing digits and this path does not.
pub fn fit_svd(x: &Matrix, cutoff: Cutoff, labels: Option<Vec<String>>) -> Result<RuleSet> {
    let (n, m) = x.shape();
    if n == 0 || m == 0 {
        return Err(RatioRuleError::EmptyInput);
    }
    let (xc, means) = dataset::stats::center_columns(x);
    let svd = linalg::svd::Svd::new(&xc)?;
    // Eigenvalues of the scatter matrix are squared singular values.
    let spectrum: Vec<f64> = svd.singular_values.iter().map(|s| s * s).collect();
    let k = cutoff.select(&spectrum)?;
    let rules: Vec<RatioRule> = (0..k)
        .map(|j| {
            let mut loadings = svd.v.col(j);
            linalg::vector::canonicalize_sign(&mut loadings);
            RatioRule {
                loadings,
                eigenvalue: spectrum[j],
            }
        })
        .collect();
    let labels = labels.unwrap_or_else(|| (0..m).map(|j| format!("attr{j}")).collect());
    RuleSet::new(rules, means, spectrum, labels, n)
}

/// Publishes eigensolver convergence to the global metrics registry
/// (no-op while observability is disabled).
fn record_eigen_convergence(iterations: usize, residual: f64, asymmetry: f64) {
    if !obs::enabled() {
        return;
    }
    obs::gauge_set("eigen_iterations", iterations as f64);
    obs::gauge_set("eigen_residual", residual);
    obs::gauge_set("eigen_asymmetry", asymmetry);
    if asymmetry > 0.0 {
        // The solver tolerated (rather than rejected) a nonzero asymmetry.
        obs::counter_add("eigen_symmetry_tolerance_hits_total", 1);
    }
}

/// Configurable miner for Ratio Rules.
#[derive(Debug, Clone, Default)]
pub struct RatioRuleMiner {
    cutoff: Cutoff,
    solver: EigenSolver,
    attribute_labels: Option<Vec<String>>,
    policy: ScanPolicy,
}

impl RatioRuleMiner {
    /// Creates a miner with the given cutoff policy.
    pub fn new(cutoff: Cutoff) -> Self {
        RatioRuleMiner {
            cutoff,
            solver: EigenSolver::Dense,
            attribute_labels: None,
            policy: ScanPolicy::Strict,
        }
    }

    /// Miner with the paper's defaults (85% energy cutoff).
    pub fn paper_defaults() -> Self {
        Self::new(Cutoff::default())
    }

    /// Selects the eigensolver backend.
    pub fn with_solver(mut self, solver: EigenSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Attaches attribute labels to mined rule sets.
    pub fn with_labels(mut self, labels: Vec<String>) -> Self {
        self.attribute_labels = Some(labels);
        self
    }

    /// Selects the scan error policy (default [`ScanPolicy::Strict`]).
    pub fn with_scan_policy(mut self, policy: ScanPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Mines rules from a row stream in a single pass, applying the
    /// configured [`ScanPolicy`].
    pub fn fit<S: RowSource>(&self, source: &mut S) -> Result<RuleSet> {
        match self.policy {
            // The historical hot loop: no per-row policy dispatch, no
            // quarantine bookkeeping.
            ScanPolicy::Strict => {
                let acc = crate::resilience::scan_strict(source)?;
                self.finish(&acc)
            }
            ScanPolicy::Quarantine { .. } => Ok(self.fit_with_report(source)?.0),
        }
    }

    /// Like [`RatioRuleMiner::fit`] but also returns the [`ScanReport`]
    /// (rows absorbed / quarantined, reasons, retries).
    pub fn fit_with_report<S: RowSource>(&self, source: &mut S) -> Result<(RuleSet, ScanReport)> {
        let mut scanner = Scanner::new(source.n_cols(), self.policy);
        scanner.scan(source)?;
        let (acc, report) = scanner.into_parts();
        Ok((self.finish(&acc)?, report))
    }

    /// Mines rules from an in-memory matrix.
    pub fn fit_matrix(&self, x: &Matrix) -> Result<RuleSet> {
        let mut src = MatrixSource::new(x);
        self.fit(&mut src)
    }

    /// Mines rules from a labeled data matrix (labels are carried onto the
    /// rule set unless explicitly overridden).
    pub fn fit_data(&self, data: &DataMatrix) -> Result<RuleSet> {
        let mut src = MatrixSource::new(data.matrix());
        let labels = self
            .attribute_labels
            .clone()
            .unwrap_or_else(|| data.col_labels().to_vec());
        let miner = RatioRuleMiner {
            cutoff: self.cutoff,
            solver: self.solver,
            attribute_labels: Some(labels),
            policy: self.policy,
        };
        miner.fit(&mut src)
    }

    /// Turns a filled accumulator into a rule set: eigensolve + cutoff
    /// (the paper's Fig. 2b). Public so parallel / distributed scans can
    /// merge accumulators and finish here.
    pub fn finish(&self, acc: &CovarianceAccumulator) -> Result<RuleSet> {
        let (c, means, n) = acc.finalize()?;
        let (eigenvalues, vectors, spectrum) = {
            let _span = obs::Span::enter("eigensolve");
            match self.solver {
                EigenSolver::Dense => {
                    let eig = SymmetricEigen::new(&c)?;
                    record_eigen_convergence(
                        eig.convergence.iterations,
                        eig.convergence.residual,
                        eig.convergence.asymmetry,
                    );
                    let vecs: Vec<Vec<f64>> = (0..eig.dim()).map(|j| eig.eigenvector(j)).collect();
                    (eig.eigenvalues.clone(), vecs, eig.eigenvalues)
                }
                EigenSolver::Lanczos { max_k } => {
                    let m = c.rows();
                    let k_req = max_k.clamp(1, m);
                    let lz = lanczos_top_k(&c, k_req, None)?;
                    let asymmetry = if obs::enabled() { c.max_asymmetry() } else { 0.0 };
                    record_eigen_convergence(lz.steps, lz.residual, asymmetry);
                    let vecs: Vec<Vec<f64>> = (0..k_req).map(|j| lz.eigenvectors.col(j)).collect();
                    // Pad the spectrum so the Eq. 1 denominator is exact:
                    // trace(C) = sum of ALL eigenvalues, so the unseen tail
                    // collectively holds trace - sum(top). Spreading it over
                    // the remaining slots keeps the list descending "enough"
                    // for reporting; the cutoff only needs the total.
                    let top_sum: f64 = lz.eigenvalues.iter().sum();
                    let tail = (c.trace() - top_sum).max(0.0);
                    let remaining = m - k_req;
                    let mut spectrum = lz.eigenvalues.clone();
                    if remaining > 0 {
                        spectrum.extend(std::iter::repeat_n(tail / remaining as f64, remaining));
                    }
                    (lz.eigenvalues, vecs, spectrum)
                }
            }
        };
        let k = self.cutoff.select(&spectrum)?;
        if k > eigenvalues.len() {
            return Err(RatioRuleError::Invalid(format!(
                "cutoff wants {k} rules but the Lanczos solver only extracted {}; \
                 raise EigenSolver::Lanczos max_k",
                eigenvalues.len()
            )));
        }

        let rules: Vec<RatioRule> = (0..k)
            .map(|j| RatioRule {
                loadings: vectors[j].clone(),
                eigenvalue: eigenvalues[j],
            })
            .collect();
        let labels = self
            .attribute_labels
            .clone()
            .unwrap_or_else(|| (0..acc.n_cols()).map(|j| format!("attr{j}")).collect());
        RuleSet::new(rules, means, spectrum, labels, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::source::CountingSource;

    /// The paper's Figure 1 data matrix: five customers, (bread, butter)
    /// dollar amounts. The paper reports the first eigenvector as
    /// (0.866, 0.5) — a 30-degree direction.
    fn figure1_matrix() -> Matrix {
        Matrix::from_rows(&[
            &[0.89, 0.49],
            &[3.34, 1.85],
            &[5.00, 3.09],
            &[1.78, 0.99],
            &[4.02, 2.61],
        ])
        .unwrap()
    }

    #[test]
    fn figure1_first_rule_direction() {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&figure1_matrix())
            .unwrap();
        assert_eq!(rules.k(), 1);
        let v = &rules.rule(0).loadings;
        // The paper reports (0.866, 0.5); the actual numbers in their table
        // give a direction within a couple degrees of that.
        assert!((v[0] - 0.866).abs() < 0.03, "bread loading {}", v[0]);
        assert!((v[1] - 0.5).abs() < 0.05, "butter loading {}", v[1]);
        // Unit norm.
        assert!((linalg::vector::norm(v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mining_is_single_pass() {
        let m = figure1_matrix();
        let mut src = CountingSource::new(MatrixSource::new(&m));
        let _ = RatioRuleMiner::paper_defaults().fit(&mut src).unwrap();
        assert_eq!(src.rewinds, 1, "miner must rewind exactly once");
        assert_eq!(
            src.rows_delivered, 5,
            "miner must read each row exactly once"
        );
    }

    #[test]
    fn energy_cutoff_on_planted_low_rank_data() {
        // Rank-1 data plus tiny noise: 85% cutoff must keep exactly 1 rule.
        let x = Matrix::from_fn(200, 4, |i, j| {
            let t = i as f64 / 10.0;
            let dir = [2.0, 1.0, 0.5, 0.25][j];
            t * dir + ((i * 7 + j * 3) % 11) as f64 * 1e-3
        });
        let rules = RatioRuleMiner::paper_defaults().fit_matrix(&x).unwrap();
        assert_eq!(rules.k(), 1);
        assert!(rules.retained_energy() > 0.99);
    }

    #[test]
    fn spectrum_is_complete_and_descending() {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&figure1_matrix())
            .unwrap();
        assert_eq!(rules.spectrum().len(), 2);
        assert!(rules.spectrum()[0] >= rules.spectrum()[1]);
    }

    #[test]
    fn labels_flow_from_data_matrix() {
        let dm = DataMatrix::with_labels(
            figure1_matrix(),
            (0..5).map(|i| format!("cust{i}")).collect(),
            vec!["bread".into(), "butter".into()],
        )
        .unwrap();
        let rules = RatioRuleMiner::paper_defaults().fit_data(&dm).unwrap();
        assert_eq!(rules.attribute_labels(), &["bread", "butter"]);

        let rules = RatioRuleMiner::paper_defaults()
            .with_labels(vec!["x".into(), "y".into()])
            .fit_data(&dm)
            .unwrap();
        assert_eq!(rules.attribute_labels(), &["x", "y"]);
    }

    #[test]
    fn empty_stream_is_an_error() {
        let m = Matrix::zeros(0, 3);
        let err = RatioRuleMiner::paper_defaults().fit_matrix(&m).unwrap_err();
        assert!(matches!(err, crate::RatioRuleError::EmptyInput));
    }

    #[test]
    fn rules_match_covariance_eigenvectors() {
        let x = figure1_matrix();
        let rules = RatioRuleMiner::new(Cutoff::All).fit_matrix(&x).unwrap();
        let c = dataset::stats::covariance_two_pass(&x).unwrap();
        let eig = SymmetricEigen::new(&c).unwrap();
        for (j, rule) in rules.rules().iter().enumerate() {
            assert!((rule.eigenvalue - eig.eigenvalues[j]).abs() < 1e-9);
            let v = eig.eigenvector(j);
            for (a, b) in rule.loadings.iter().zip(&v) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn lanczos_solver_matches_dense_on_top_rules() {
        let x = figure1_matrix();
        let dense = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let lanczos = RatioRuleMiner::new(Cutoff::FixedK(1))
            .with_solver(EigenSolver::Lanczos { max_k: 2 })
            .fit_matrix(&x)
            .unwrap();
        assert!((dense.rule(0).eigenvalue - lanczos.rule(0).eigenvalue).abs() < 1e-8);
        for (a, b) in dense.rule(0).loadings.iter().zip(&lanczos.rule(0).loadings) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn lanczos_energy_cutoff_uses_trace() {
        // Rank-1-ish data: the 85% cutoff must pick k = 1 even though the
        // Lanczos solver never saw the tail eigenvalues (trace covers it).
        let x = Matrix::from_fn(60, 6, |i, j| {
            let t = i as f64 / 7.0;
            t * (j as f64 + 1.0) + ((i * 5 + j * 3) % 7) as f64 * 1e-3
        });
        let rules = RatioRuleMiner::paper_defaults()
            .with_solver(EigenSolver::Lanczos { max_k: 3 })
            .fit_matrix(&x)
            .unwrap();
        assert_eq!(rules.k(), 1);
        assert!(rules.retained_energy() > 0.85);
    }

    #[test]
    fn svd_mining_matches_covariance_mining() {
        let x = figure1_matrix();
        let cov_rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let svd_rules = fit_svd(&x, Cutoff::FixedK(2), None).unwrap();
        assert_eq!(svd_rules.k(), 2);
        assert_eq!(svd_rules.n_train(), 5);
        for (a, b) in cov_rules.rules().iter().zip(svd_rules.rules()) {
            assert!(
                (a.eigenvalue - b.eigenvalue).abs() < 1e-9 * a.eigenvalue.max(1.0),
                "{} vs {}",
                a.eigenvalue,
                b.eigenvalue
            );
            for (p, q) in a.loadings.iter().zip(&b.loadings) {
                assert!((p - q).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn svd_mining_survives_large_offsets_better() {
        // Shift the data by 1e8: the raw-moment covariance loses ~16
        // digits to cancellation while the SVD path centers first.
        let shift = 1e8;
        let x = Matrix::from_fn(100, 2, |i, j| {
            let t = i as f64 * 0.01;
            shift + t * [2.0, 1.0][j]
        });
        let svd_rules = fit_svd(&x, Cutoff::FixedK(1), None).unwrap();
        let v = &svd_rules.rule(0).loadings;
        let expected = [2.0 / 5.0_f64.sqrt(), 1.0 / 5.0_f64.sqrt()];
        assert!((v[0] - expected[0]).abs() < 1e-9, "{v:?}");
        assert!((v[1] - expected[1]).abs() < 1e-9, "{v:?}");
    }

    #[test]
    fn svd_mining_validates() {
        assert!(fit_svd(&Matrix::zeros(0, 2), Cutoff::default(), None).is_err());
        let x = figure1_matrix();
        let labeled = fit_svd(
            &x,
            Cutoff::FixedK(1),
            Some(vec!["bread".into(), "butter".into()]),
        )
        .unwrap();
        assert_eq!(labeled.attribute_labels(), &["bread", "butter"]);
    }

    #[test]
    fn lanczos_with_insufficient_max_k_errors() {
        // Full-rank data with a flat spectrum and a high energy cutoff:
        // 1 extracted rule cannot cover 99.9% energy.
        let x = Matrix::from_fn(40, 5, |i, j| (((i * 31 + j * 17) % 23) as f64).sin() * 10.0);
        let result = RatioRuleMiner::new(Cutoff::EnergyFraction(0.999))
            .with_solver(EigenSolver::Lanczos { max_k: 1 })
            .fit_matrix(&x);
        assert!(matches!(result, Err(crate::RatioRuleError::Invalid(_))));
    }

    #[test]
    fn column_means_recorded() {
        let rules = RatioRuleMiner::paper_defaults()
            .fit_matrix(&figure1_matrix())
            .unwrap();
        let means = rules.column_means();
        assert!((means[0] - 3.006).abs() < 1e-12);
        assert!((means[1] - 1.806).abs() < 1e-12);
    }

    #[test]
    fn quarantine_policy_rides_out_injected_faults() {
        use dataset::fault::{FaultPlan, FaultyRowSource};
        let x = Matrix::from_fn(120, 3, |i, j| {
            let t = i as f64 / 10.0;
            t * (j as f64 + 1.0) + ((i * 7 + j * 3) % 11) as f64 * 1e-3
        });
        let plan = FaultPlan {
            seed: 5,
            transient_rate: 0.05,
            corrupt_rate: 0.05,
            arity_rate: 0.0,
            truncate_after: None,
        };
        let miner = RatioRuleMiner::paper_defaults()
            .with_scan_policy(crate::resilience::ScanPolicy::quarantine_unlimited());
        let mut src = FaultyRowSource::new(MatrixSource::new(&x), plan);
        let (rules, report) = miner.fit_with_report(&mut src).unwrap();
        assert!(report.rows_quarantined > 0);
        assert_eq!(report.rows_absorbed + report.rows_quarantined, 120);
        // Identical to mining the plan's clean rows strictly.
        let clean: Vec<&[f64]> = (0..120)
            .filter(|&p| plan.row_is_clean(p, 3))
            .map(|p| x.row(p))
            .collect();
        let clean_x = Matrix::from_rows(&clean).unwrap();
        let reference = RatioRuleMiner::paper_defaults().fit_matrix(&clean_x).unwrap();
        assert_eq!(rules.k(), reference.k());
        for (a, b) in rules.rules().iter().zip(reference.rules()) {
            assert_eq!(a.eigenvalue.to_bits(), b.eigenvalue.to_bits());
            for (p, q) in a.loadings.iter().zip(&b.loadings) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
        // Strict mode over the same faulty stream fails fast.
        let mut src = FaultyRowSource::new(MatrixSource::new(&x), plan);
        assert!(RatioRuleMiner::paper_defaults().fit(&mut src).is_err());
    }

    #[test]
    fn mining_publishes_observability_metrics() {
        // Enable-only (never disable): other tests in this binary may be
        // recording concurrently, so assertions are tolerant (>=, exists).
        obs::set_enabled(true);
        let _ = RatioRuleMiner::paper_defaults()
            .fit_matrix(&figure1_matrix())
            .unwrap();
        let snap = obs::global().snapshot();
        assert!(snap.counter("covariance_rows_scanned_total").unwrap() >= 5);
        assert!(snap.gauge("covariance_rows_per_s").unwrap() > 0.0);
        assert!(snap.gauge("eigen_iterations").is_some());
        let residual = snap.gauge("eigen_residual").unwrap();
        assert!(residual.is_finite() && residual >= 0.0);
        assert!(snap.gauge("eigen_asymmetry").unwrap() >= 0.0);
        // The spans landed in the trace with the scan preceding the solve.
        let trace = obs::take_trace();
        let names: Vec<&str> = trace.iter().map(|r| r.name.as_str()).collect();
        let scan = names.iter().position(|n| *n == "covariance_scan");
        let solve = names.iter().position(|n| *n == "eigensolve");
        assert!(scan.is_some() && solve.is_some());
        assert!(scan.unwrap() < solve.unwrap());
    }
}
