//! Model (de)serialization over the zero-dependency obs JSON layer.
//!
//! Model files on disk keep the exact field layout the serde derives on
//! [`RuleSet`] produce (`rules` / `column_means` / `spectrum` /
//! `attribute_labels` / `n_train`), so files written by either path read
//! under the other. The degraded col-avgs floor from the resilience
//! ladder is a one-key document, `{"col_avgs": [...]}`;
//! [`model_from_str`] tells the two apart so a server or CLI can load
//! whatever a mine run left behind.
//!
//! Numbers round-trip bit-exactly: the obs writer emits the shortest
//! `f64` representation that parses back to the same bits, which is also
//! what `serde_json` with `float_roundtrip` accepts.

use crate::predictor::ColAvgs;
use crate::resilience::ServedModel;
use crate::rules::{RatioRule, RuleSet};
use crate::{RatioRuleError, Result};
use obs::json::JsonValue;

fn num_arr(values: &[f64]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::Num(v)).collect())
}

/// Builds the on-disk JSON document for a rule set.
#[must_use]
pub fn rules_to_json(rules: &RuleSet) -> JsonValue {
    let rule_objs: Vec<JsonValue> = rules
        .rules()
        .iter()
        .map(|r| {
            JsonValue::Obj(vec![
                ("loadings".into(), num_arr(&r.loadings)),
                ("eigenvalue".into(), JsonValue::Num(r.eigenvalue)),
            ])
        })
        .collect();
    let labels: Vec<JsonValue> = rules
        .attribute_labels()
        .iter()
        .map(|l| JsonValue::Str(l.clone()))
        .collect();
    JsonValue::Obj(vec![
        ("rules".into(), JsonValue::Arr(rule_objs)),
        ("column_means".into(), num_arr(rules.column_means())),
        ("spectrum".into(), num_arr(rules.spectrum())),
        ("attribute_labels".into(), JsonValue::Arr(labels)),
        (
            "n_train".into(),
            JsonValue::Num(rules.n_train() as f64),
        ),
    ])
}

/// Pretty-printed model document, ready for `fs::write`.
#[must_use]
pub fn rules_to_string(rules: &RuleSet) -> String {
    rules_to_json(rules).write(true)
}

/// The degraded-model document: `{"col_avgs": [...]}`.
#[must_use]
pub fn col_avgs_to_string(means: &[f64]) -> String {
    JsonValue::Obj(vec![("col_avgs".into(), num_arr(means))]).write(true)
}

fn invalid(what: &str) -> RatioRuleError {
    RatioRuleError::Invalid(format!("model JSON: {what}"))
}

fn get<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a JsonValue> {
    obj.get(key)
        .ok_or_else(|| invalid(&format!("missing field {key:?}")))
}

fn f64_field(v: &JsonValue, what: &str) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| invalid(&format!("{what} is not a number")))
}

fn f64_vec(v: &JsonValue, what: &str) -> Result<Vec<f64>> {
    v.as_arr()
        .ok_or_else(|| invalid(&format!("{what} is not an array")))?
        .iter()
        .map(|x| f64_field(x, what))
        .collect()
}

/// Rebuilds a [`RuleSet`] from its parsed JSON document.
///
/// # Errors
/// Fails when a field is missing or mistyped, or when the decoded parts
/// violate [`RuleSet::new`]'s shape invariants.
pub fn rules_from_json(v: &JsonValue) -> Result<RuleSet> {
    let rule_objs = get(v, "rules")?
        .as_arr()
        .ok_or_else(|| invalid("rules is not an array"))?;
    let mut rules = Vec::with_capacity(rule_objs.len());
    for (i, r) in rule_objs.iter().enumerate() {
        rules.push(RatioRule {
            loadings: f64_vec(get(r, "loadings")?, &format!("rules[{i}].loadings"))?,
            eigenvalue: f64_field(get(r, "eigenvalue")?, &format!("rules[{i}].eigenvalue"))?,
        });
    }
    let column_means = f64_vec(get(v, "column_means")?, "column_means")?;
    let spectrum = f64_vec(get(v, "spectrum")?, "spectrum")?;
    let labels = get(v, "attribute_labels")?
        .as_arr()
        .ok_or_else(|| invalid("attribute_labels is not an array"))?
        .iter()
        .map(|l| {
            l.as_str()
                .map(str::to_owned)
                .ok_or_else(|| invalid("attribute_labels entry is not a string"))
        })
        .collect::<Result<Vec<String>>>()?;
    let n_train = f64_field(get(v, "n_train")?, "n_train")?;
    // rrlint-allow: RR002 exact integrality check on a decoded count, not a tolerance comparison
    if !(n_train.is_finite() && n_train >= 0.0 && n_train.fract() == 0.0) {
        return Err(invalid("n_train is not a nonnegative integer"));
    }
    RuleSet::new(rules, column_means, spectrum, labels, n_train as usize)
}

/// Parses a rule-set model document.
///
/// # Errors
/// Fails on malformed JSON or on any condition [`rules_from_json`]
/// rejects.
pub fn rules_from_str(s: &str) -> Result<RuleSet> {
    let v = obs::json::parse(s).map_err(|e| invalid(&e.to_string()))?;
    rules_from_json(&v)
}

/// Loads whatever kind of model a mine run wrote: a full rule set, or
/// the `{"col_avgs": [...]}` floor the degradation ladder leaves behind.
///
/// # Errors
/// Fails on malformed JSON, on a col-avgs document with no columns, or
/// on a rule-set document [`rules_from_json`] rejects.
pub fn model_from_str(s: &str) -> Result<ServedModel> {
    let v = obs::json::parse(s).map_err(|e| invalid(&e.to_string()))?;
    if let Some(means) = v.get("col_avgs") {
        let means = f64_vec(means, "col_avgs")?;
        return Ok(ServedModel::ColAvgs(ColAvgs::new(means)?));
    }
    Ok(ServedModel::Rules(rules_from_json(&v)?))
}

/// Writes either model kind in its on-disk format.
#[must_use]
pub fn model_to_string(model: &ServedModel) -> String {
    match model {
        ServedModel::Rules(rs) => rules_to_string(rs),
        ServedModel::ColAvgs(ca) => col_avgs_to_string(ca.means()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;
    use linalg::Matrix;

    fn mined() -> RuleSet {
        let x = Matrix::from_fn(40, 3, |i, j| {
            let t = (i + 1) as f64;
            t * [3.0, 2.0, 1.0][j] + ((i * 7 + j * 13) % 5) as f64 * 0.01
        });
        RatioRuleMiner::new(Cutoff::FixedK(2)).fit_matrix(&x).unwrap()
    }

    #[test]
    fn ruleset_round_trips_bit_exactly() {
        let rules = mined();
        let doc = rules_to_string(&rules);
        let back = rules_from_str(&doc).unwrap();
        assert_eq!(back, rules);
    }

    #[test]
    fn model_loader_distinguishes_rules_from_col_avgs() {
        let rules = mined();
        match model_from_str(&rules_to_string(&rules)).unwrap() {
            ServedModel::Rules(rs) => assert_eq!(rs, rules),
            ServedModel::ColAvgs(_) => panic!("full rule set decoded as col-avgs"),
        }
        let doc = col_avgs_to_string(&[1.5, 2.5, 3.5]);
        match model_from_str(&doc).unwrap() {
            ServedModel::ColAvgs(ca) => assert_eq!(ca.means(), &[1.5, 2.5, 3.5]),
            ServedModel::Rules(_) => panic!("col-avgs doc decoded as rules"),
        }
    }

    #[test]
    fn model_to_string_round_trips_both_kinds() {
        let rules = mined();
        for model in [
            ServedModel::Rules(rules),
            ServedModel::ColAvgs(ColAvgs::new(vec![4.0, 5.0]).unwrap()),
        ] {
            let doc = model_to_string(&model);
            let back = model_from_str(&doc).unwrap();
            assert_eq!(model_to_string(&back), doc);
        }
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        for (doc, needle) in [
            ("{", "model JSON"),
            ("{}", "missing field \"rules\""),
            (r#"{"rules": 3}"#, "rules is not an array"),
            (r#"{"col_avgs": []}"#, "no columns"),
            (
                r#"{"rules":[{"loadings":[1.0],"eigenvalue":"x"}]}"#,
                "eigenvalue is not a number",
            ),
        ] {
            let err = model_from_str(doc).unwrap_err().to_string();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn n_train_must_be_a_nonnegative_integer() {
        let rules = mined();
        let doc = rules_to_string(&rules).replace(
            &format!("\"n_train\": {}", rules.n_train()),
            "\"n_train\": 39.5",
        );
        assert!(rules_from_str(&doc).unwrap_err().to_string().contains("n_train"));
    }
}
