//! Outlier detection by reconstruction (paper Sec. 3, 4.4 and 6.1).
//!
//! The paper's recipe: hide a cell, reconstruct it from the rules, and
//! flag the cell when the reconstruction differs from the actual value by
//! more than a threshold ("e.g., two standard deviations"). Row-level
//! outliers fall out of the same machinery via the residual distance of a
//! row from the RR-hyperplane — that is how Jordan and Rodman pop out of
//! the `nba` scatter plots.

use crate::reconstruct::fill_holes;
use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use dataset::holes::HoleSet;
use linalg::Matrix;

/// A flagged cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutlier {
    /// Row index in the scored matrix.
    pub row: usize,
    /// Column (attribute) index.
    pub col: usize,
    /// Actual value.
    pub actual: f64,
    /// Reconstructed (expected) value.
    pub expected: f64,
    /// `|actual - expected|` in units of the column's residual standard
    /// deviation.
    pub z_score: f64,
}

/// A row scored by its distance from the RR-hyperplane.
#[derive(Debug, Clone, PartialEq)]
pub struct RowScore {
    /// Row index in the scored matrix.
    pub row: usize,
    /// Euclidean distance between the row and its projection onto the
    /// rule subspace.
    pub residual: f64,
}

/// Reconstruction-based outlier detector.
#[derive(Debug, Clone)]
pub struct OutlierDetector<'a> {
    rules: &'a RuleSet,
    /// Flag cells whose |actual - expected| exceeds this many residual
    /// standard deviations (paper suggests 2.0).
    pub z_threshold: f64,
}

impl<'a> OutlierDetector<'a> {
    /// Creates a detector with the paper's suggested 2-sigma threshold.
    pub fn new(rules: &'a RuleSet) -> Self {
        OutlierDetector {
            rules,
            z_threshold: 2.0,
        }
    }

    /// Overrides the flagging threshold.
    pub fn with_threshold(mut self, z: f64) -> Self {
        self.z_threshold = z;
        self
    }

    /// Scores every cell of `data` by leave-one-cell-out reconstruction
    /// and returns the flagged outliers, most extreme first.
    ///
    /// Residual scale is estimated per column from the reconstruction
    /// errors themselves (RMS), so a column that the rules predict well
    /// gets a tight threshold and a noisy column a loose one.
    pub fn cell_outliers(&self, data: &Matrix) -> Result<Vec<CellOutlier>> {
        let (n, m) = data.shape();
        if n == 0 || m == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        if m != self.rules.n_attributes() {
            return Err(RatioRuleError::WidthMismatch {
                expected: self.rules.n_attributes(),
                actual: m,
            });
        }
        // Pass 1: all reconstruction errors.
        let mut expected = Matrix::zeros(n, m);
        for i in 0..n {
            let row = data.row(i);
            for j in 0..m {
                let hs = HoleSet::new(vec![j], m)?;
                let filled = fill_holes(self.rules, &hs.apply(row)?)?;
                expected[(i, j)] = filled.values[j];
            }
        }
        // Per-column residual RMS.
        let mut col_rms = vec![0.0_f64; m];
        for i in 0..n {
            for j in 0..m {
                let e = expected[(i, j)] - data[(i, j)];
                col_rms[j] += e * e;
            }
        }
        for r in &mut col_rms {
            *r = (*r / n as f64).sqrt();
        }
        // Pass 2: flag.
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..m {
                let scale = col_rms[j];
                if scale <= 0.0 {
                    continue;
                }
                let z = (expected[(i, j)] - data[(i, j)]).abs() / scale;
                if z > self.z_threshold {
                    out.push(CellOutlier {
                        row: i,
                        col: j,
                        actual: data[(i, j)],
                        expected: expected[(i, j)],
                        z_score: z,
                    });
                }
            }
        }
        out.sort_by(|a, b| b.z_score.partial_cmp(&a.z_score).unwrap_or(std::cmp::Ordering::Equal));
        Ok(out)
    }

    /// Scores every row by its distance from the rule subspace (the part
    /// of the centered row not explained by the retained rules), most
    /// extreme first.
    pub fn row_scores(&self, data: &Matrix) -> Result<Vec<RowScore>> {
        let (n, m) = data.shape();
        if n == 0 || m == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        if m != self.rules.n_attributes() {
            return Err(RatioRuleError::WidthMismatch {
                expected: self.rules.n_attributes(),
                actual: m,
            });
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let row = data.row(i);
            let concept = self.rules.project_row(row)?;
            let back = self.rules.reconstruct_row(&concept)?;
            let residual = row
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            out.push(RowScore { row: i, residual });
        }
        out.sort_by(|a, b| b.residual.partial_cmp(&a.residual).unwrap_or(std::cmp::Ordering::Equal));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;

    /// Clean rank-1 data with one corrupted cell.
    fn data_with_planted_outliers() -> Matrix {
        let mut x = Matrix::from_fn(30, 3, |i, j| {
            let t = 1.0 + i as f64;
            t * [3.0, 2.0, 1.0][j]
        });
        // Corrupt cell (5, 1): should be 12, make it 40.
        x[(5, 1)] = 40.0;
        x
    }

    #[test]
    fn corrupted_cell_is_flagged_first() {
        let x = data_with_planted_outliers();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let det = OutlierDetector::new(&rules);
        let outliers = det.cell_outliers(&x).unwrap();
        assert!(!outliers.is_empty());
        // All flagged cells live in the corrupted row: the bad value also
        // poisons the reconstruction of its neighbours, so the whole row
        // lights up (which is what a user investigating "which record is
        // broken" needs).
        assert!(outliers.iter().all(|o| o.row == 5), "flagged {outliers:?}");
        // The corrupted cell itself is among them, with the expected value
        // close to the uncorrupted 12.
        let bad = outliers
            .iter()
            .find(|o| o.col == 1)
            .expect("cell (5,1) not flagged");
        assert!(bad.z_score > det.z_threshold);
        assert!(
            (bad.expected - 12.0).abs() < 2.0,
            "expected {}",
            bad.expected
        );
    }

    #[test]
    fn clean_data_yields_no_cell_outliers() {
        let x = Matrix::from_fn(25, 3, |i, j| {
            let t = 1.0 + i as f64;
            // Small deterministic noise so column RMS is nonzero.
            t * [3.0, 2.0, 1.0][j] + ((i * 7 + j * 3) % 5) as f64 * 0.01
        });
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let outliers = OutlierDetector::new(&rules)
            .with_threshold(5.0)
            .cell_outliers(&x)
            .unwrap();
        assert!(outliers.is_empty(), "flagged {outliers:?}");
    }

    #[test]
    fn row_scores_rank_off_plane_row_first() {
        let mut x = Matrix::from_fn(20, 3, |i, j| {
            let t = 1.0 + i as f64;
            t * [3.0, 2.0, 1.0][j]
        });
        // Row 7 pushed orthogonally off the (3,2,1) line.
        x[(7, 0)] += 5.0;
        x[(7, 1)] -= 7.0;
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let scores = OutlierDetector::new(&rules).row_scores(&x).unwrap();
        assert_eq!(scores[0].row, 7);
        assert!(scores[0].residual > 4.0 * scores[1].residual.max(1e-12));
    }

    #[test]
    fn on_plane_rows_have_tiny_residual() {
        let x = Matrix::from_fn(15, 3, |i, j| {
            let t = 1.0 + i as f64;
            t * [3.0, 2.0, 1.0][j]
        });
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let scores = OutlierDetector::new(&rules).row_scores(&x).unwrap();
        for s in scores {
            assert!(s.residual < 1e-8);
        }
    }

    #[test]
    fn input_validation() {
        let x = data_with_planted_outliers();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let det = OutlierDetector::new(&rules);
        assert!(det.cell_outliers(&Matrix::zeros(0, 3)).is_err());
        assert!(det.cell_outliers(&Matrix::zeros(2, 2)).is_err());
        assert!(det.row_scores(&Matrix::zeros(0, 3)).is_err());
        assert!(det.row_scores(&Matrix::zeros(2, 2)).is_err());
    }
}
