//! Parallel covariance scan (extension beyond the paper).
//!
//! The single-pass accumulator in [`crate::covariance`] is mergeable, so
//! the one pass parallelizes trivially: shard the rows, scan each shard on
//! its own thread, merge the partial accumulators. On 1998 hardware the
//! paper ran serially; on a modern multicore box this is the natural
//! implementation, and `bench/benches/covariance.rs` quantifies the
//! speedup. The mining result is *bit-for-bit identical* to the serial
//! scan up to floating-point reassociation across shard boundaries (the
//! per-shard sums are exact partial sums, merged once).

use crate::covariance::CovarianceAccumulator;
use crate::cutoff::Cutoff;
use crate::miner::RatioRuleMiner;
use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use linalg::Matrix;
use parking_lot::Mutex;

/// Generic sharded accumulation: splits `0..n` into `n_threads`
/// contiguous shards and runs `shard_fn(lo, hi, &mut local)` for each on
/// its own scoped thread, merging the partial accumulators. Every shard
/// runs under `catch_unwind`, so a panicking worker surfaces as an
/// ordinary [`RatioRuleError`] instead of aborting the process — the
/// other shards finish normally and the first failure (error or panic)
/// wins. Tests inject panicking shard closures through this entry point.
pub fn covariance_sharded<F>(
    n: usize,
    m: usize,
    n_threads: usize,
    shard_fn: F,
) -> Result<CovarianceAccumulator>
where
    F: Fn(usize, usize, &mut CovarianceAccumulator) -> Result<()> + Sync,
{
    if n == 0 || m == 0 {
        return Err(RatioRuleError::EmptyInput);
    }
    let n_threads = n_threads.clamp(1, n);
    let chunk = n.div_ceil(n_threads);

    let merged = Mutex::new(CovarianceAccumulator::new(m));
    let mut first_error: Mutex<Option<RatioRuleError>> = Mutex::new(None);

    crossbeam::scope(|scope| {
        for t in 0..n_threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                continue;
            }
            let merged = &merged;
            let first_error = &first_error;
            let shard_fn = &shard_fn;
            scope.spawn(move |_| {
                // Keep the *first* reported error: a later shard must not
                // overwrite an earlier shard's failure under the lock.
                let report = |e: RatioRuleError| {
                    first_error.lock().get_or_insert(e);
                };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut local = CovarianceAccumulator::new(m);
                    shard_fn(lo, hi, &mut local).map(|()| local)
                }));
                match outcome {
                    Ok(Ok(local)) => {
                        if let Err(e) = merged.lock().merge(&local) {
                            report(e);
                        }
                    }
                    Ok(Err(e)) => report(e),
                    Err(payload) => {
                        obs::counter_add("scan_worker_panics_total", 1);
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic".into());
                        report(RatioRuleError::Invalid(format!(
                            "worker shard {t} (rows {lo}..{hi}) panicked: {msg}"
                        )));
                    }
                }
            });
        }
    })
    .map_err(|_| RatioRuleError::Invalid("worker thread panicked".into()))?;

    if let Some(e) = first_error.get_mut().take() {
        return Err(e);
    }
    Ok(merged.into_inner())
}

/// Builds the covariance accumulator for `x` using `n_threads` crossbeam
/// scoped threads over row shards.
pub fn covariance_parallel(x: &Matrix, n_threads: usize) -> Result<CovarianceAccumulator> {
    covariance_sharded(x.rows(), x.cols(), n_threads, |lo, hi, local| {
        for i in lo..hi {
            local.push_row(x.row(i))?;
        }
        Ok(())
    })
}

/// Mines a rule set using the parallel covariance scan, then the usual
/// eigensolve + cutoff.
pub fn fit_parallel(x: &Matrix, cutoff: Cutoff, n_threads: usize) -> Result<RuleSet> {
    let acc = covariance_parallel(x, n_threads)?;
    RatioRuleMiner::new(cutoff).finish(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_fn(257, 5, |i, j| {
            let t = i as f64;
            (t * [3.0, 2.0, 1.0, 0.5, 0.1][j]).sin() * 10.0 + t * 0.01 * (j as f64 + 1.0)
        })
    }

    #[test]
    fn parallel_matches_serial_covariance() {
        let x = data();
        let mut serial = CovarianceAccumulator::new(5);
        for row in x.row_iter() {
            serial.push_row(row).unwrap();
        }
        let (c_serial, m_serial, n_serial) = serial.finalize().unwrap();

        for threads in [1, 2, 3, 8] {
            let par = covariance_parallel(&x, threads).unwrap();
            let (c_par, m_par, n_par) = par.finalize().unwrap();
            assert_eq!(n_serial, n_par);
            assert!(
                c_serial.max_abs_diff(&c_par).unwrap() < 1e-8,
                "threads = {threads}"
            );
            for (a, b) in m_serial.iter().zip(&m_par) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn parallel_mining_matches_serial_rules() {
        let x = data();
        let serial = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let parallel = fit_parallel(&x, Cutoff::FixedK(2), 4).unwrap();
        assert_eq!(serial.k(), parallel.k());
        for (rs, rp) in serial.rules().iter().zip(parallel.rules()) {
            assert!((rs.eigenvalue - rp.eigenvalue).abs() < 1e-6);
            for (a, b) in rs.loadings.iter().zip(&rp.loadings) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn thread_count_is_clamped() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        // More threads than rows must still work.
        let acc = covariance_parallel(&x, 64).unwrap();
        assert_eq!(acc.n_rows(), 2);
        // Zero threads clamps to one.
        let acc = covariance_parallel(&x, 0).unwrap();
        assert_eq!(acc.n_rows(), 2);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(covariance_parallel(&Matrix::zeros(0, 3), 2).is_err());
    }

    #[test]
    fn panicking_shard_is_an_error_not_an_abort() {
        // One shard panics mid-scan; the caller gets a descriptive error
        // while the process (and the other shards) survive.
        let x = data();
        let err = covariance_sharded(x.rows(), x.cols(), 4, |lo, hi, local| {
            for i in lo..hi {
                if i == 100 {
                    panic!("simulated worker crash at row {i}");
                }
                local.push_row(x.row(i))?;
            }
            Ok(())
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("panicked"), "{msg}");
        assert!(msg.contains("simulated worker crash"), "{msg}");

        // A healthy run through the same generic entry point matches the
        // dedicated parallel scan.
        let via_sharded = covariance_sharded(x.rows(), x.cols(), 4, |lo, hi, local| {
            for i in lo..hi {
                local.push_row(x.row(i))?;
            }
            Ok(())
        })
        .unwrap();
        let direct = covariance_parallel(&x, 4).unwrap();
        assert_eq!(via_sharded.n_rows(), direct.n_rows());
        let (c1, _, _) = via_sharded.finalize().unwrap();
        let (c2, _, _) = direct.finalize().unwrap();
        assert!(c1.max_abs_diff(&c2).unwrap() < 1e-12);
    }

    #[test]
    fn poisoned_row_surfaces_exactly_one_error() {
        // Poison one row in *every* shard so several workers fail
        // concurrently: the scan must still return a single, coherent
        // error (the first one reported wins; none is overwritten).
        let n = 64;
        let threads = 8;
        let x = Matrix::from_fn(n, 3, |i, j| {
            if i % (n / threads) == 3 && j == 1 {
                f64::NAN
            } else {
                (i * 3 + j) as f64
            }
        });
        for t in [1usize, 2, threads] {
            let err = covariance_parallel(&x, t).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("non-finite") && msg.contains("column 1"),
                "threads={t}: unexpected error {msg}"
            );
        }
    }
}
