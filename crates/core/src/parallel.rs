//! Parallel covariance scan (extension beyond the paper).
//!
//! The single-pass accumulator in [`crate::covariance`] is mergeable, so
//! the one pass parallelizes trivially: shard the rows, scan each shard on
//! its own thread, merge the partial accumulators. On 1998 hardware the
//! paper ran serially; on a modern multicore box this is the natural
//! implementation, and `bench/benches/covariance.rs` quantifies the
//! speedup. The mining result is *bit-for-bit identical* to the serial
//! scan up to floating-point reassociation across shard boundaries (the
//! per-shard sums are exact partial sums, merged once).

use crate::covariance::CovarianceAccumulator;
use crate::cutoff::Cutoff;
use crate::miner::RatioRuleMiner;
use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use linalg::Matrix;
use parking_lot::Mutex;

/// Builds the covariance accumulator for `x` using `n_threads` crossbeam
/// scoped threads over row shards.
pub fn covariance_parallel(x: &Matrix, n_threads: usize) -> Result<CovarianceAccumulator> {
    let n = x.rows();
    let m = x.cols();
    if n == 0 || m == 0 {
        return Err(RatioRuleError::EmptyInput);
    }
    let n_threads = n_threads.clamp(1, n);
    let chunk = n.div_ceil(n_threads);

    let merged = Mutex::new(CovarianceAccumulator::new(m));
    let mut first_error: Mutex<Option<RatioRuleError>> = Mutex::new(None);

    crossbeam::scope(|scope| {
        for t in 0..n_threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                continue;
            }
            let merged = &merged;
            let first_error = &first_error;
            scope.spawn(move |_| {
                // Keep the *first* reported error: a later shard must not
                // overwrite an earlier shard's failure under the lock.
                let report = |e: RatioRuleError| {
                    first_error.lock().get_or_insert(e);
                };
                let mut local = CovarianceAccumulator::new(m);
                for i in lo..hi {
                    if let Err(e) = local.push_row(x.row(i)) {
                        report(e);
                        return;
                    }
                }
                if let Err(e) = merged.lock().merge(&local) {
                    report(e);
                }
            });
        }
    })
    .map_err(|_| RatioRuleError::Invalid("worker thread panicked".into()))?;

    if let Some(e) = first_error.get_mut().take() {
        return Err(e);
    }
    Ok(merged.into_inner())
}

/// Mines a rule set using the parallel covariance scan, then the usual
/// eigensolve + cutoff.
pub fn fit_parallel(x: &Matrix, cutoff: Cutoff, n_threads: usize) -> Result<RuleSet> {
    let acc = covariance_parallel(x, n_threads)?;
    RatioRuleMiner::new(cutoff).finish(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_fn(257, 5, |i, j| {
            let t = i as f64;
            (t * [3.0, 2.0, 1.0, 0.5, 0.1][j]).sin() * 10.0 + t * 0.01 * (j as f64 + 1.0)
        })
    }

    #[test]
    fn parallel_matches_serial_covariance() {
        let x = data();
        let mut serial = CovarianceAccumulator::new(5);
        for row in x.row_iter() {
            serial.push_row(row).unwrap();
        }
        let (c_serial, m_serial, n_serial) = serial.finalize().unwrap();

        for threads in [1, 2, 3, 8] {
            let par = covariance_parallel(&x, threads).unwrap();
            let (c_par, m_par, n_par) = par.finalize().unwrap();
            assert_eq!(n_serial, n_par);
            assert!(
                c_serial.max_abs_diff(&c_par).unwrap() < 1e-8,
                "threads = {threads}"
            );
            for (a, b) in m_serial.iter().zip(&m_par) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn parallel_mining_matches_serial_rules() {
        let x = data();
        let serial = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let parallel = fit_parallel(&x, Cutoff::FixedK(2), 4).unwrap();
        assert_eq!(serial.k(), parallel.k());
        for (rs, rp) in serial.rules().iter().zip(parallel.rules()) {
            assert!((rs.eigenvalue - rp.eigenvalue).abs() < 1e-6);
            for (a, b) in rs.loadings.iter().zip(&rp.loadings) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn thread_count_is_clamped() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        // More threads than rows must still work.
        let acc = covariance_parallel(&x, 64).unwrap();
        assert_eq!(acc.n_rows(), 2);
        // Zero threads clamps to one.
        let acc = covariance_parallel(&x, 0).unwrap();
        assert_eq!(acc.n_rows(), 2);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(covariance_parallel(&Matrix::zeros(0, 3), 2).is_err());
    }

    #[test]
    fn poisoned_row_surfaces_exactly_one_error() {
        // Poison one row in *every* shard so several workers fail
        // concurrently: the scan must still return a single, coherent
        // error (the first one reported wins; none is overwritten).
        let n = 64;
        let threads = 8;
        let x = Matrix::from_fn(n, 3, |i, j| {
            if i % (n / threads) == 3 && j == 1 {
                f64::NAN
            } else {
                (i * 3 + j) as f64
            }
        });
        for t in [1usize, 2, threads] {
            let err = covariance_parallel(&x, t).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("non-finite") && msg.contains("column 1"),
                "threads={t}: unexpected error {msg}"
            );
        }
    }
}
