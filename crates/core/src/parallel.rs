//! Parallel covariance scan (extension beyond the paper).
//!
//! The single-pass accumulator in [`crate::covariance`] is mergeable, so
//! the one pass parallelizes trivially: shard the rows into contiguous
//! ranges, scan each shard on its own thread into a **shard-local**
//! accumulator, then combine. On 1998 hardware the paper ran serially;
//! on a modern multicore box this is the natural implementation, and
//! `bench/benches/covariance.rs` quantifies the speedup.
//!
//! # Determinism
//!
//! Everything about the combine step is a pure function of
//! `(n, n_threads)`:
//!
//! * the partition is fixed (`chunk = ceil(n / n_threads)` contiguous
//!   ranges),
//! * every shard accumulates into its own accumulator (no shared
//!   `Mutex` absorbing partials in completion order),
//! * finished shards land in **indexed slots** and are reduced by a
//!   fixed-shape pairwise tree merge in shard order,
//! * when several shards fail, the error from the lowest shard index
//!   wins.
//!
//! Thread scheduling therefore cannot influence the result: two runs at
//! the same thread count are bit-for-bit identical, and both equal a
//! serial fold of the same partition through the same merge tree
//! (`sharded_scan_is_deterministic` proves both). Relative to the serial
//! single-accumulator scan the result differs only by floating-point
//! reassociation across shard boundaries — the per-shard sums are exact
//! partial sums, merged once.

use crate::covariance::CovarianceAccumulator;
use crate::cutoff::Cutoff;
use crate::miner::RatioRuleMiner;
use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use linalg::Matrix;

/// One shard's outcome, parked in its indexed slot until the scope ends.
type ShardSlot = Option<Result<CovarianceAccumulator>>;

/// Generic sharded accumulation: splits `0..n` into `n_threads`
/// contiguous shards and runs `shard_fn(lo, hi, &mut local)` for each on
/// its own scoped thread with a truly shard-local accumulator. Every
/// shard runs under `catch_unwind`, so a panicking worker surfaces as an
/// ordinary [`RatioRuleError`] instead of aborting the process — the
/// other shards finish normally. Deterministic by construction: see the
/// module docs. Tests inject panicking shard closures through this entry
/// point.
///
/// # Errors
///
/// [`RatioRuleError::EmptyInput`] for an empty row range or zero
/// attributes; otherwise the failure (error or contained panic) of the
/// lowest-indexed failing shard.
pub fn covariance_sharded<F>(
    n: usize,
    m: usize,
    n_threads: usize,
    shard_fn: F,
) -> Result<CovarianceAccumulator>
where
    F: Fn(usize, usize, &mut CovarianceAccumulator) -> Result<()> + Sync,
{
    if n == 0 || m == 0 {
        return Err(RatioRuleError::EmptyInput);
    }
    let n_threads = n_threads.clamp(1, n);
    let chunk = n.div_ceil(n_threads);

    // One slot per shard, written only by that shard's thread; shard
    // order (not completion order) decides everything downstream.
    let mut slots: Vec<ShardSlot> = Vec::new();
    slots.resize_with(n_threads, || None);

    crossbeam::scope(|scope| {
        for (t, slot) in slots.iter_mut().enumerate() {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                continue;
            }
            let shard_fn = &shard_fn;
            scope.spawn(move |_| {
                *slot = Some(run_shard(t, lo, hi, m, shard_fn));
            });
        }
    })
    .map_err(|_| RatioRuleError::Invalid("worker thread panicked".into()))?;

    // Lowest failing shard index wins, independent of completion order.
    let mut shards = Vec::with_capacity(n_threads);
    for outcome in slots.into_iter().flatten() {
        shards.push(outcome?);
    }
    tree_merge(shards)
}

/// Runs one shard body under `catch_unwind`, timing it for the
/// per-shard throughput gauge.
fn run_shard<F>(t: usize, lo: usize, hi: usize, m: usize, shard_fn: &F) -> Result<CovarianceAccumulator>
where
    F: Fn(usize, usize, &mut CovarianceAccumulator) -> Result<()> + Sync,
{
    // rrlint-allow: RR003 per-shard wall time feeds the scan_shard_<i>_rows_per_s gauge; obs spans key on one global name
    let t0 = obs::enabled().then(std::time::Instant::now);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut local = CovarianceAccumulator::new(m);
        shard_fn(lo, hi, &mut local).map(|()| local)
    }));
    match outcome {
        Ok(result) => {
            if let (Some(t0), Ok(_)) = (t0, &result) {
                let dt = t0.elapsed().as_secs_f64();
                if dt > 0.0 {
                    obs::gauge_set(
                        &obs::names::scan_shard_rows_per_s(t),
                        (hi - lo) as f64 / dt,
                    );
                }
            }
            result
        }
        Err(payload) => {
            obs::counter_add(obs::names::SCAN_WORKER_PANICS_TOTAL, 1);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".into());
            Err(RatioRuleError::Invalid(format!(
                "worker shard {t} (rows {lo}..{hi}) panicked: {msg}"
            )))
        }
    }
}

/// Fixed-shape pairwise reduction in shard order: `(0+1), (2+3), ...`
/// per round until one accumulator remains. The merge tree is a pure
/// function of the shard count, so the reduction is bit-identical across
/// runs and equal to folding the same shards serially through the same
/// tree. Public so distributed coordinators can merge wire-delivered
/// shard accumulators through the exact tree the in-process scan uses.
///
/// Every shard is flushed before the reduction, so each merge adds
/// fully-folded scalars. Without this, a shard with buffered panel rows
/// would fold them into the *merged* state (a different association),
/// and a live accumulator would merge to different bits than the same
/// shard round-tripped through a checkpoint — which stores only the
/// folded scalars. Flushing first makes in-process and wire-delivered
/// shards merge identically by construction.
///
/// # Errors
///
/// [`RatioRuleError::EmptyInput`] for an empty shard list; a width
/// mismatch or non-finite parts from any [`CovarianceAccumulator::merge`].
pub fn tree_merge(mut shards: Vec<CovarianceAccumulator>) -> Result<CovarianceAccumulator> {
    for shard in &mut shards {
        shard.flush();
    }
    while shards.len() > 1 {
        let mut next = Vec::with_capacity(shards.len().div_ceil(2));
        let mut it = shards.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge(&b)?;
            }
            next.push(a);
        }
        shards = next;
    }
    shards.pop().ok_or(RatioRuleError::EmptyInput)
}

/// Builds the covariance accumulator for `x` using `n_threads` crossbeam
/// scoped threads over row shards. Each shard feeds its contiguous
/// row-major slice to the blocked kernel via
/// [`CovarianceAccumulator::push_block`], so full panels fold zero-copy
/// straight from the matrix storage.
///
/// # Errors
///
/// [`RatioRuleError::EmptyInput`] for an empty matrix; any shard failure
/// otherwise (lowest shard index wins).
pub fn covariance_parallel(x: &Matrix, n_threads: usize) -> Result<CovarianceAccumulator> {
    let m = x.cols();
    let data = x.data();
    covariance_sharded(x.rows(), m, n_threads, |lo, hi, local| {
        local.push_block(&data[lo * m..hi * m], hi - lo)
    })
}

/// Mines a rule set using the parallel covariance scan, then the usual
/// eigensolve + cutoff.
///
/// # Errors
///
/// Anything [`covariance_parallel`] or the eigensolver ladder can
/// return.
pub fn fit_parallel(x: &Matrix, cutoff: Cutoff, n_threads: usize) -> Result<RuleSet> {
    let acc = covariance_parallel(x, n_threads)?;
    RatioRuleMiner::new(cutoff).finish(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_fn(257, 5, |i, j| {
            let t = i as f64;
            (t * [3.0, 2.0, 1.0, 0.5, 0.1][j]).sin() * 10.0 + t * 0.01 * (j as f64 + 1.0)
        })
    }

    fn assert_parts_bits_eq(a: &CovarianceAccumulator, b: &CovarianceAccumulator) {
        let (n1, c1, u1) = a.parts();
        let (n2, c2, u2) = b.parts();
        assert_eq!(n1, n2);
        for (x, y) in c1.iter().zip(&c2) {
            assert_eq!(x.to_bits(), y.to_bits(), "col_sums diverge");
        }
        for (x, y) in u1.iter().zip(&u2) {
            assert_eq!(x.to_bits(), y.to_bits(), "raw_upper diverge");
        }
    }

    #[test]
    fn parallel_matches_serial_covariance() {
        let x = data();
        let mut serial = CovarianceAccumulator::new(5);
        for row in x.row_iter() {
            serial.push_row(row).unwrap();
        }
        let (c_serial, m_serial, n_serial) = serial.finalize().unwrap();

        for threads in [1, 2, 3, 8] {
            let par = covariance_parallel(&x, threads).unwrap();
            let (c_par, m_par, n_par) = par.finalize().unwrap();
            assert_eq!(n_serial, n_par);
            assert!(
                c_serial.max_abs_diff(&c_par).unwrap() < 1e-8,
                "threads = {threads}"
            );
            for (a, b) in m_serial.iter().zip(&m_par) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    /// Satellite regression: the same sharded scan run twice at the same
    /// thread count is bit-for-bit identical, and equals a *serial* fold
    /// of the same partition through the same merge tree — thread
    /// scheduling has no influence on the result.
    #[test]
    fn sharded_scan_is_deterministic() {
        let x = data();
        let (n, m) = (x.rows(), x.cols());
        for threads in [2usize, 3, 5, 8] {
            let run1 = covariance_parallel(&x, threads).unwrap();
            let run2 = covariance_parallel(&x, threads).unwrap();
            assert_parts_bits_eq(&run1, &run2);

            // Reproduce the partition and merge tree without threads.
            let clamped = threads.clamp(1, n);
            let chunk = n.div_ceil(clamped);
            let mut shards = Vec::new();
            for t in 0..clamped {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                let mut local = CovarianceAccumulator::new(m);
                local
                    .push_block(&x.data()[lo * m..hi * m], hi - lo)
                    .unwrap();
                shards.push(local);
            }
            let serial_tree = tree_merge(shards).unwrap();
            assert_parts_bits_eq(&run1, &serial_tree);
        }
    }

    #[test]
    fn parallel_mining_matches_serial_rules() {
        let x = data();
        let serial = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let parallel = fit_parallel(&x, Cutoff::FixedK(2), 4).unwrap();
        assert_eq!(serial.k(), parallel.k());
        for (rs, rp) in serial.rules().iter().zip(parallel.rules()) {
            assert!((rs.eigenvalue - rp.eigenvalue).abs() < 1e-6);
            for (a, b) in rs.loadings.iter().zip(&rp.loadings) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn thread_count_is_clamped() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        // More threads than rows must still work.
        let acc = covariance_parallel(&x, 64).unwrap();
        assert_eq!(acc.n_rows(), 2);
        // Zero threads clamps to one.
        let acc = covariance_parallel(&x, 0).unwrap();
        assert_eq!(acc.n_rows(), 2);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(covariance_parallel(&Matrix::zeros(0, 3), 2).is_err());
    }

    #[test]
    fn panicking_shard_is_an_error_not_an_abort() {
        // One shard panics mid-scan; the caller gets a descriptive error
        // while the process (and the other shards) survive.
        let x = data();
        let err = covariance_sharded(x.rows(), x.cols(), 4, |lo, hi, local| {
            for i in lo..hi {
                if i == 100 {
                    panic!("simulated worker crash at row {i}");
                }
                local.push_row(x.row(i))?;
            }
            Ok(())
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("panicked"), "{msg}");
        assert!(msg.contains("simulated worker crash"), "{msg}");

        // A healthy run through the same generic entry point matches the
        // dedicated parallel scan.
        let via_sharded = covariance_sharded(x.rows(), x.cols(), 4, |lo, hi, local| {
            for i in lo..hi {
                local.push_row(x.row(i))?;
            }
            Ok(())
        })
        .unwrap();
        let direct = covariance_parallel(&x, 4).unwrap();
        assert_eq!(via_sharded.n_rows(), direct.n_rows());
        let (c1, _, _) = via_sharded.finalize().unwrap();
        let (c2, _, _) = direct.finalize().unwrap();
        assert!(c1.max_abs_diff(&c2).unwrap() < 1e-12);
    }

    #[test]
    fn poisoned_row_surfaces_exactly_one_error() {
        // Poison one row in *every* shard so several workers fail
        // concurrently: the scan must still return a single, coherent
        // error — the lowest-indexed shard's failure, every time.
        let n = 64;
        let threads = 8;
        let x = Matrix::from_fn(n, 3, |i, j| {
            if i % (n / threads) == 3 && j == 1 {
                f64::NAN
            } else {
                (i * 3 + j) as f64
            }
        });
        for t in [1usize, 2, threads] {
            let err = covariance_parallel(&x, t).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("non-finite") && msg.contains("column 1"),
                "threads={t}: unexpected error {msg}"
            );
        }
    }

    #[test]
    fn failing_shard_error_is_from_lowest_index() {
        // Shards 1 and 3 both fail; shard 1's error must win regardless
        // of which thread finishes first.
        let x = data();
        for _ in 0..4 {
            let err = covariance_sharded(x.rows(), x.cols(), 4, |lo, hi, local| {
                let shard = lo / x.rows().div_ceil(4);
                if shard == 1 || shard == 3 {
                    return Err(RatioRuleError::Invalid(format!("shard {shard} failed")));
                }
                for i in lo..hi {
                    local.push_row(x.row(i))?;
                }
                Ok(())
            })
            .unwrap_err();
            assert_eq!(err.to_string(), "invalid argument: shard 1 failed");
        }
    }
}
