//! The [`Predictor`] abstraction and the paper's two contenders.
//!
//! The guessing-error metric (Sec. 4.3) applies to "any type of rules, as
//! long as they can do estimation of hidden values"; `Predictor` is that
//! contract. Implementations here: [`RuleSetPredictor`] (the proposed
//! method) and [`ColAvgs`] (the paper's straightforward competitor, which
//! it notes equals Ratio Rules with `k = 0`).

use crate::reconstruct::fill_holes;
use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use dataset::holes::HoledRow;
use linalg::Matrix;

/// Anything that can fill holes in a partially known row.
pub trait Predictor {
    /// Human-readable name for experiment tables.
    fn name(&self) -> &str;

    /// Expected row width `M`.
    fn n_attributes(&self) -> usize;

    /// Returns the full row with holes filled (known values must pass
    /// through unchanged).
    fn fill(&self, row: &HoledRow) -> Result<Vec<f64>>;
}

/// Ratio-Rules predictor: wraps a [`RuleSet`] and fills holes via the
/// Sec. 4.4 reconstruction.
#[derive(Debug, Clone)]
pub struct RuleSetPredictor {
    rules: RuleSet,
    name: String,
}

impl RuleSetPredictor {
    /// Wraps a mined rule set.
    pub fn new(rules: RuleSet) -> Self {
        let name = format!("RR(k={})", rules.k());
        RuleSetPredictor { rules, name }
    }

    /// The wrapped rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }
}

impl Predictor for RuleSetPredictor {
    fn name(&self) -> &str {
        &self.name
    }

    fn n_attributes(&self) -> usize {
        self.rules.n_attributes()
    }

    fn fill(&self, row: &HoledRow) -> Result<Vec<f64>> {
        Ok(fill_holes(&self.rules, row)?.values)
    }
}

/// The paper's baseline: fill every hole with the training column average.
#[derive(Debug, Clone)]
pub struct ColAvgs {
    means: Vec<f64>,
}

impl ColAvgs {
    /// Builds from explicit column means.
    pub fn new(means: Vec<f64>) -> Result<Self> {
        if means.is_empty() {
            return Err(RatioRuleError::Invalid("no columns".into()));
        }
        Ok(ColAvgs { means })
    }

    /// Computes the column means of a training matrix.
    pub fn fit(train: &Matrix) -> Result<Self> {
        if train.rows() == 0 || train.cols() == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        Self::new(dataset::stats::column_stats(train).means)
    }

    /// The stored means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }
}

impl Predictor for ColAvgs {
    fn name(&self) -> &str {
        "col-avgs"
    }

    fn n_attributes(&self) -> usize {
        self.means.len()
    }

    fn fill(&self, row: &HoledRow) -> Result<Vec<f64>> {
        if row.width() != self.means.len() {
            return Err(RatioRuleError::WidthMismatch {
                expected: self.means.len(),
                actual: row.width(),
            });
        }
        Ok(row
            .values
            .iter()
            .zip(&self.means)
            .map(|(v, &m)| v.unwrap_or(m))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;

    fn linear() -> Matrix {
        Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 2.0], &[6.0, 3.0], &[8.0, 4.0]]).unwrap()
    }

    #[test]
    fn ruleset_predictor_fills_along_rule() {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear())
            .unwrap();
        let p = RuleSetPredictor::new(rules);
        assert_eq!(p.name(), "RR(k=1)");
        assert_eq!(p.n_attributes(), 2);
        let filled = p.fill(&HoledRow::new(vec![Some(10.0), None])).unwrap();
        assert!((filled[1] - 5.0).abs() < 1e-9);
        assert_eq!(filled[0], 10.0);
        assert_eq!(p.rules().k(), 1);
    }

    #[test]
    fn col_avgs_fills_with_means() {
        let p = ColAvgs::fit(&linear()).unwrap();
        assert_eq!(p.name(), "col-avgs");
        assert_eq!(p.means(), &[5.0, 2.5]);
        let filled = p.fill(&HoledRow::new(vec![None, Some(9.0)])).unwrap();
        assert_eq!(filled, vec![5.0, 9.0]);
    }

    #[test]
    fn col_avgs_ignores_known_values_when_filling() {
        // The baseline has no cross-attribute structure: the fill for a
        // hole is the same whatever the known values are.
        let p = ColAvgs::fit(&linear()).unwrap();
        let a = p.fill(&HoledRow::new(vec![Some(100.0), None])).unwrap();
        let b = p.fill(&HoledRow::new(vec![Some(-3.0), None])).unwrap();
        assert_eq!(a[1], b[1]);
    }

    #[test]
    fn col_avgs_validation() {
        assert!(ColAvgs::new(vec![]).is_err());
        assert!(ColAvgs::fit(&Matrix::zeros(0, 2)).is_err());
        let p = ColAvgs::new(vec![1.0, 2.0]).unwrap();
        assert!(p.fill(&HoledRow::new(vec![None])).is_err());
    }

    #[test]
    fn predictors_are_object_safe() {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear())
            .unwrap();
        let predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(RuleSetPredictor::new(rules)),
            Box::new(ColAvgs::fit(&linear()).unwrap()),
        ];
        for p in &predictors {
            let filled = p.fill(&HoledRow::new(vec![Some(4.0), None])).unwrap();
            assert_eq!(filled.len(), 2);
        }
    }
}
