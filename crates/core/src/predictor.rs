//! The [`Predictor`] abstraction and the paper's two contenders.
//!
//! The guessing-error metric (Sec. 4.3) applies to "any type of rules, as
//! long as they can do estimation of hidden values"; `Predictor` is that
//! contract. Implementations here: [`RuleSetPredictor`] (the proposed
//! method) and [`ColAvgs`] (the paper's straightforward competitor, which
//! it notes equals Ratio Rules with `k = 0`).

use std::collections::HashMap;
use std::sync::Arc;

use crate::reconstruct::{fill_holes, CacheStats, PatternKey, PatternSolver};
use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use dataset::holes::HoledRow;
use linalg::Matrix;
use obs::StripedCounter;
use parking_lot::RwLock;

/// Anything that can fill holes in a partially known row.
pub trait Predictor {
    /// Human-readable name for experiment tables.
    fn name(&self) -> &str;

    /// Expected row width `M`.
    fn n_attributes(&self) -> usize;

    /// Returns the full row with holes filled (known values must pass
    /// through unchanged).
    fn fill(&self, row: &HoledRow) -> Result<Vec<f64>>;
}

/// Ratio-Rules predictor: wraps a [`RuleSet`] and fills holes via the
/// Sec. 4.4 reconstruction.
///
/// By default the predictor memoizes the factored solver for every hole
/// pattern it sees (the factorization depends only on the pattern, not
/// the row values), so evaluation loops like `GE_1`/`GE_h` — which fill
/// thousands of rows over a handful of patterns — pay for each SVD/LU
/// once. Cached and uncached fills are bit-for-bit identical; see
/// [`crate::reconstruct`]. [`RuleSetPredictor::uncached`] opts out, which
/// exists mainly so benchmarks can measure the cache against the naive
/// factor-per-row path.
#[derive(Debug)]
pub struct RuleSetPredictor {
    rules: RuleSet,
    name: String,
    /// `None` disables memoization (the factor-per-row reference path).
    solvers: Option<RwLock<HashMap<PatternKey, Arc<PatternSolver>>>>,
    /// Cache lookups served from `solvers` (striped: the parallel GE
    /// loops hit this from many threads). Always 0 when caching is off.
    hits: StripedCounter,
    /// Cache lookups that had to factor a solver.
    misses: StripedCounter,
}

impl Clone for RuleSetPredictor {
    fn clone(&self) -> Self {
        RuleSetPredictor {
            rules: self.rules.clone(),
            name: self.name.clone(),
            // Cached solvers are shared Arcs; cloning the map is cheap.
            // Hit/miss counters start fresh: they describe one predictor's
            // lookup history, not the shared solvers.
            solvers: self
                .solvers
                .as_ref()
                .map(|s| RwLock::new(s.read().clone())),
            hits: StripedCounter::new(),
            misses: StripedCounter::new(),
        }
    }
}

impl RuleSetPredictor {
    /// Wraps a mined rule set, with solver caching on.
    pub fn new(rules: RuleSet) -> Self {
        let name = format!("RR(k={})", rules.k());
        RuleSetPredictor {
            rules,
            name,
            solvers: Some(RwLock::new(HashMap::new())),
            hits: StripedCounter::new(),
            misses: StripedCounter::new(),
        }
    }

    /// Wraps a mined rule set with solver caching *off*: every fill
    /// re-factors its hole pattern, as the paper's pseudo-code is written.
    pub fn uncached(rules: RuleSet) -> Self {
        let mut p = Self::new(rules);
        p.solvers = None;
        p
    }

    /// The wrapped rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Number of distinct hole patterns factored so far (0 when caching
    /// is disabled).
    pub fn cached_patterns(&self) -> usize {
        self.solvers.as_ref().map_or(0, |s| s.read().len())
    }

    /// Snapshot of this predictor's solver-cache statistics. All zeros in
    /// uncached mode (the factor-per-row path never consults the cache).
    pub fn cache_stats(&self) -> CacheStats {
        match &self.solvers {
            Some(cache) => {
                let map = cache.read();
                CacheStats::from_parts(
                    self.hits.get(),
                    self.misses.get(),
                    map.values().map(Arc::as_ref),
                )
            }
            None => CacheStats::default(),
        }
    }

    /// Publishes [`RuleSetPredictor::cache_stats`] as `solver_cache_*`
    /// gauges on the global metrics registry. No-op while disabled.
    pub fn publish_metrics(&self) {
        self.cache_stats().publish();
    }

    /// The factored solver for a hole pattern, shared through the cache
    /// when caching is on (a cache miss factors and inserts it). In
    /// uncached mode every call factors afresh — same answers, paper-style
    /// cost. This is the building block batch serving uses to pay for a
    /// pattern's factorization once per batch group instead of once per
    /// row; see [`crate::batch::BatchPredictor`].
    ///
    /// # Errors
    /// Fails when the pattern is invalid for this rule set's width (out
    /// of range, empty, or all holes).
    pub fn pattern_solver(&self, holes: &[usize]) -> Result<Arc<PatternSolver>> {
        match &self.solvers {
            Some(cache) => self.solver_for(cache, holes),
            None => Ok(Arc::new(PatternSolver::build(&self.rules, holes)?)),
        }
    }

    fn solver_for(
        &self,
        cache: &RwLock<HashMap<PatternKey, Arc<PatternSolver>>>,
        holes: &[usize],
    ) -> Result<Arc<PatternSolver>> {
        let key = PatternKey::new(holes, self.rules.n_attributes())?;
        if let Some(solver) = cache.read().get(&key) {
            self.hits.inc();
            return Ok(Arc::clone(solver));
        }
        self.misses.inc();
        // Factor outside the write lock; first insert wins.
        let built = Arc::new(PatternSolver::build(&self.rules, holes)?);
        Ok(Arc::clone(cache.write().entry(key).or_insert(built)))
    }
}

impl Predictor for RuleSetPredictor {
    fn name(&self) -> &str {
        &self.name
    }

    fn n_attributes(&self) -> usize {
        self.rules.n_attributes()
    }

    fn fill(&self, row: &HoledRow) -> Result<Vec<f64>> {
        match &self.solvers {
            Some(cache) => {
                if row.width() != self.rules.n_attributes() {
                    return Err(RatioRuleError::WidthMismatch {
                        expected: self.rules.n_attributes(),
                        actual: row.width(),
                    });
                }
                let solver = self.solver_for(cache, &row.hole_indices())?;
                Ok(solver.fill(row)?.values)
            }
            None => Ok(fill_holes(&self.rules, row)?.values),
        }
    }
}

/// The paper's baseline: fill every hole with the training column average.
#[derive(Debug, Clone)]
pub struct ColAvgs {
    means: Vec<f64>,
}

impl ColAvgs {
    /// Builds from explicit column means.
    pub fn new(means: Vec<f64>) -> Result<Self> {
        if means.is_empty() {
            return Err(RatioRuleError::Invalid("no columns".into()));
        }
        Ok(ColAvgs { means })
    }

    /// Computes the column means of a training matrix.
    pub fn fit(train: &Matrix) -> Result<Self> {
        if train.rows() == 0 || train.cols() == 0 {
            return Err(RatioRuleError::EmptyInput);
        }
        Self::new(dataset::stats::column_stats(train).means)
    }

    /// The stored means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }
}

impl Predictor for ColAvgs {
    fn name(&self) -> &str {
        "col-avgs"
    }

    fn n_attributes(&self) -> usize {
        self.means.len()
    }

    fn fill(&self, row: &HoledRow) -> Result<Vec<f64>> {
        if row.width() != self.means.len() {
            return Err(RatioRuleError::WidthMismatch {
                expected: self.means.len(),
                actual: row.width(),
            });
        }
        Ok(row
            .values
            .iter()
            .zip(&self.means)
            .map(|(v, &m)| v.unwrap_or(m))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;

    fn linear() -> Matrix {
        Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 2.0], &[6.0, 3.0], &[8.0, 4.0]]).unwrap()
    }

    #[test]
    fn ruleset_predictor_fills_along_rule() {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear())
            .unwrap();
        let p = RuleSetPredictor::new(rules);
        assert_eq!(p.name(), "RR(k=1)");
        assert_eq!(p.n_attributes(), 2);
        let filled = p.fill(&HoledRow::new(vec![Some(10.0), None])).unwrap();
        assert!((filled[1] - 5.0).abs() < 1e-9);
        assert_eq!(filled[0], 10.0);
        assert_eq!(p.rules().k(), 1);
    }

    #[test]
    fn col_avgs_fills_with_means() {
        let p = ColAvgs::fit(&linear()).unwrap();
        assert_eq!(p.name(), "col-avgs");
        assert_eq!(p.means(), &[5.0, 2.5]);
        let filled = p.fill(&HoledRow::new(vec![None, Some(9.0)])).unwrap();
        assert_eq!(filled, vec![5.0, 9.0]);
    }

    #[test]
    fn col_avgs_ignores_known_values_when_filling() {
        // The baseline has no cross-attribute structure: the fill for a
        // hole is the same whatever the known values are.
        let p = ColAvgs::fit(&linear()).unwrap();
        let a = p.fill(&HoledRow::new(vec![Some(100.0), None])).unwrap();
        let b = p.fill(&HoledRow::new(vec![Some(-3.0), None])).unwrap();
        assert_eq!(a[1], b[1]);
    }

    #[test]
    fn col_avgs_validation() {
        assert!(ColAvgs::new(vec![]).is_err());
        assert!(ColAvgs::fit(&Matrix::zeros(0, 2)).is_err());
        let p = ColAvgs::new(vec![1.0, 2.0]).unwrap();
        assert!(p.fill(&HoledRow::new(vec![None])).is_err());
    }

    #[test]
    fn cached_and_uncached_predictors_agree_bitwise() {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear())
            .unwrap();
        let cached = RuleSetPredictor::new(rules.clone());
        let uncached = RuleSetPredictor::uncached(rules);
        assert_eq!(cached.cached_patterns(), 0);
        assert_eq!(uncached.cached_patterns(), 0);
        for row in [
            HoledRow::new(vec![Some(10.0), None]),
            HoledRow::new(vec![Some(-2.5), None]),
            HoledRow::new(vec![None, Some(3.0)]),
        ] {
            let a = cached.fill(&row).unwrap();
            let b = uncached.fill(&row).unwrap();
            assert_eq!(a, b);
        }
        // Two distinct patterns were seen; the uncached path never caches.
        assert_eq!(cached.cached_patterns(), 2);
        assert_eq!(uncached.cached_patterns(), 0);
        // Clones carry the warmed cache.
        assert_eq!(cached.clone().cached_patterns(), 2);
    }

    #[test]
    fn cache_stats_track_lookups_and_reset_on_clone() {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear())
            .unwrap();
        let p = RuleSetPredictor::new(rules.clone());
        p.fill(&HoledRow::new(vec![Some(10.0), None])).unwrap();
        p.fill(&HoledRow::new(vec![Some(12.0), None])).unwrap();
        p.fill(&HoledRow::new(vec![None, Some(3.0)])).unwrap();
        let s = p.cache_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.entries, 2);
        assert_eq!(s.case1_exact, 2);
        // Clones share the warm solvers but start new lookup counters.
        let c = p.clone().cache_stats();
        assert_eq!(c.entries, 2);
        assert_eq!(c.hits + c.misses, 0);
        // Uncached mode never touches the cache.
        let u = RuleSetPredictor::uncached(rules);
        u.fill(&HoledRow::new(vec![Some(10.0), None])).unwrap();
        assert_eq!(u.cache_stats(), crate::reconstruct::CacheStats::default());
    }

    #[test]
    fn predictors_are_object_safe() {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear())
            .unwrap();
        let predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(RuleSetPredictor::new(rules)),
            Box::new(ColAvgs::fit(&linear()).unwrap()),
        ];
        for p in &predictors {
            let filled = p.fill(&HoledRow::new(vec![Some(4.0), None])).unwrap();
            assert_eq!(filled.len(), 2);
        }
    }
}
