//! Hole filling: determining hidden and unknown values (paper Sec. 4.4).
//!
//! Given a row with holes `H`, the retained rules span a `k`-dimensional
//! "RR-hyperplane" on or near which data points lie, while the known
//! values constrain the answer to an `h`-dimensional "feasible solution
//! space". Intersecting the two means solving `V' x_concept = b'`, where
//! `V' = E_H V` keeps the known rows of the rule matrix and `b'` stacks
//! the known (centered) values. Three shapes arise (paper Fig. 4–5):
//!
//! * **CASE 1, exactly-specified** (`M - h == k`): square system, direct
//!   solve (Eq. 6).
//! * **CASE 2, over-specified** (`M - h > k`): least squares via the
//!   Moore–Penrose pseudo-inverse of `V'` (Eqs. 7–9).
//! * **CASE 3, under-specified** (`M - h < k`): infinitely many solutions;
//!   the paper keeps the one needing the fewest eigenvectors, i.e. it
//!   drops the `(k + h) - M` weakest rules and solves the resulting
//!   exactly-specified system.
//!
//! One practical addition over the paper's pseudo-code: when the CASE 1 /
//! CASE 3 square system is singular (e.g. the known attributes carry no
//! information about some retained rule), we fall back to the
//! pseudo-inverse rather than failing — the pseudo-inverse solution
//! coincides with the exact one whenever the exact one exists.
//!
//! # The hole-pattern solver cache
//!
//! The factorization of `V'` depends only on the *hole pattern* `H` and
//! the rule set — not on the row's values. The guessing-error loops
//! (`GE_1`, `GE_h`) and the EM imputer solve the same few patterns for
//! thousands of rows, so re-factoring per row wastes almost all the work.
//! [`PatternSolver`] captures one pattern's factorization
//! (LU or factored SVD), and [`SolverCache`] memoizes solvers keyed by a
//! [`PatternKey`] bitmask, turning `O(rows x holes)` factorizations into
//! `O(distinct patterns)` factorizations plus cheap per-row matvecs.
//! [`fill_holes`] itself builds a one-shot [`PatternSolver`], so cached
//! and uncached fills execute bit-for-bit identical arithmetic.

use std::collections::HashMap;
use std::sync::Arc;

use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use dataset::holes::HoledRow;
use linalg::lu::Lu;
use linalg::pinv::DEFAULT_RANK_TOL;
use linalg::solver::SvdSolver;
use linalg::Matrix;
use obs::StripedCounter;
use parking_lot::RwLock;

/// Which of the paper's three cases a reconstruction hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveCase {
    /// `M - h == k`: direct solve (paper CASE 1).
    ExactlySpecified,
    /// `M - h > k`: pseudo-inverse least squares (paper CASE 2).
    OverSpecified,
    /// `M - h < k`: weakest rules dropped, then direct solve (paper
    /// CASE 3). The payload is the number of rules actually used.
    UnderSpecified {
        /// Number of strongest rules retained for the solve (`M - h`).
        rules_used: usize,
    },
}

/// A reconstructed row.
#[derive(Debug, Clone, PartialEq)]
pub struct FilledRow {
    /// The full row: known values passed through, holes filled.
    pub values: Vec<f64>,
    /// The solved RR-space coordinates `x_concept` (length = rules used).
    pub concept: Vec<f64>,
    /// Which solve shape was used.
    pub case: SolveCase,
}

/// Hash key identifying a hole pattern for a fixed attribute count `M`.
///
/// For `M <= 64` the pattern packs into a single `u64` bitmask (bit `j`
/// set means attribute `j` is a hole) — zero-allocation hashing on the
/// hot path. Wider schemas fall back to a `Vec<bool>` mask.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatternKey {
    /// Bitmask for `M <= 64`.
    Small(u64),
    /// Boolean mask (length `M`) for wider schemas.
    Large(Vec<bool>),
}

impl PatternKey {
    /// Builds the key for `holes` over `m` attributes.
    ///
    /// Indices `>= m` are rejected so a malformed pattern cannot silently
    /// alias another one.
    pub fn new(holes: &[usize], m: usize) -> Result<Self> {
        if let Some(&j) = holes.iter().find(|&&j| j >= m) {
            return Err(RatioRuleError::Invalid(format!(
                "hole index {j} out of range for {m} attributes"
            )));
        }
        if m <= 64 {
            let mut bits = 0_u64;
            for &j in holes {
                bits |= 1_u64 << j;
            }
            Ok(PatternKey::Small(bits))
        } else {
            let mut mask = vec![false; m];
            for &j in holes {
                mask[j] = true;
            }
            Ok(PatternKey::Large(mask))
        }
    }
}

/// The factorization used by a [`PatternSolver`].
#[derive(Debug, Clone)]
enum SolverKind {
    /// Square system, LU with partial pivoting (CASEs 1 and 3).
    Direct(Lu),
    /// Factored SVD least squares (CASE 2, and the singular-square
    /// fallback of CASEs 1 and 3).
    LeastSquares(SvdSolver),
}

/// The reusable, value-independent part of one hole-filling solve.
///
/// Everything that depends only on the rule set and the hole pattern is
/// computed once at construction: the case, the (possibly truncated) rule
/// matrix, and the factorization of `V'`. [`PatternSolver::fill`] then
/// costs two triangular solves or two matvecs per row.
///
/// The solver owns copies of the means and rule matrix it needs, so it
/// can be shared across threads behind an [`Arc`] with no lifetime ties
/// to the originating [`RuleSet`].
#[derive(Debug, Clone)]
pub struct PatternSolver {
    /// Sorted hole indices this solver was built for.
    holes: Vec<usize>,
    /// Sorted known indices (complement of `holes`).
    known: Vec<usize>,
    /// Column means of the training data (length `M`).
    means: Vec<f64>,
    /// The `M x k_used` rule matrix used for reconstruction.
    v_used: Matrix,
    /// Which of the paper's cases this pattern falls in.
    case: SolveCase,
    kind: SolverKind,
}

impl PatternSolver {
    /// Factors the solver for the given hole pattern.
    ///
    /// `holes` may be in any order and contain duplicates; the pattern is
    /// canonicalized internally. Errors mirror [`fill_holes`]: all-holes
    /// and no-holes patterns are rejected.
    pub fn build(rules: &RuleSet, holes: &[usize]) -> Result<Self> {
        let m = rules.n_attributes();
        if let Some(&j) = holes.iter().find(|&&j| j >= m) {
            return Err(RatioRuleError::Invalid(format!(
                "hole index {j} out of range for {m} attributes"
            )));
        }
        let mut is_hole = vec![false; m];
        for &j in holes {
            is_hole[j] = true;
        }
        let holes: Vec<usize> = (0..m).filter(|&j| is_hole[j]).collect();
        let known: Vec<usize> = (0..m).filter(|&j| !is_hole[j]).collect();
        let h = holes.len();
        if h == 0 {
            return Err(RatioRuleError::Invalid("row has no holes to fill".into()));
        }
        if h == m {
            return Err(RatioRuleError::Invalid("row has no known values".into()));
        }

        let k = rules.k();
        let known_count = m - h; // rows of V'

        // Decide the case and pick the rule matrix to use.
        let (v_used, case) = if known_count < k {
            // CASE 3: keep only the strongest (M - h) rules.
            (
                rules.v_matrix_truncated(known_count),
                SolveCase::UnderSpecified {
                    rules_used: known_count,
                },
            )
        } else if known_count == k {
            (rules.v_matrix(), SolveCase::ExactlySpecified)
        } else {
            (rules.v_matrix(), SolveCase::OverSpecified)
        };

        // V' = E_H V: keep the known rows, and factor it once.
        let v_prime = v_used.select_rows(&known);
        let kind = match case {
            SolveCase::OverSpecified => {
                SolverKind::LeastSquares(SvdSolver::new(&v_prime, DEFAULT_RANK_TOL)?)
            }
            _ => match Lu::new(&v_prime) {
                Ok(lu) => SolverKind::Direct(lu),
                // Singular square system: minimum-norm solution instead.
                Err(_) => SolverKind::LeastSquares(SvdSolver::new(&v_prime, DEFAULT_RANK_TOL)?),
            },
        };
        if obs::enabled() {
            if let SolverKind::LeastSquares(s) = &kind {
                obs::gauge_set("svd_sweeps", s.sweeps() as f64);
                obs::gauge_set("svd_condition", s.condition());
            }
        }

        Ok(PatternSolver {
            holes,
            known,
            means: rules.column_means().to_vec(),
            v_used,
            case,
            kind,
        })
    }

    /// The hole pattern (sorted indices) this solver was built for.
    pub fn holes(&self) -> &[usize] {
        &self.holes
    }

    /// Which of the paper's cases this pattern falls in.
    pub fn case(&self) -> SolveCase {
        self.case
    }

    /// Whether a nominally-square CASE 1 / CASE 3 system turned out
    /// singular and fell back to the minimum-norm pseudo-inverse.
    pub fn used_singular_fallback(&self) -> bool {
        matches!(self.kind, SolverKind::LeastSquares(_))
            && !matches!(self.case, SolveCase::OverSpecified)
    }

    /// Solves the already-factored system for one row's centered known
    /// values, returning the RR-space coordinates `x_concept`.
    pub fn solve_concept(&self, b: &[f64]) -> Result<Vec<f64>> {
        match &self.kind {
            SolverKind::Direct(lu) => lu.solve(b),
            SolverKind::LeastSquares(s) => s.solve(b),
        }
        .map_err(RatioRuleError::from)
    }

    /// Fills one row whose hole pattern matches this solver's pattern.
    pub fn fill(&self, row: &HoledRow) -> Result<FilledRow> {
        let m = self.means.len();
        if row.width() != m {
            return Err(RatioRuleError::WidthMismatch {
                expected: m,
                actual: row.width(),
            });
        }
        if row.hole_indices() != self.holes {
            return Err(RatioRuleError::Invalid(
                "row hole pattern does not match the solver's pattern".into(),
            ));
        }
        if let Some(&j) = self
            .known
            .iter()
            .find(|&&j| !row.values[j].unwrap_or(f64::NAN).is_finite())
        {
            return Err(RatioRuleError::Invalid(format!(
                "non-finite known value at attribute {j}"
            )));
        }

        // b' = centered known values.
        let b: Vec<f64> = self
            .known
            .iter()
            .map(|&j| row.values[j].unwrap_or(f64::NAN) - self.means[j])
            .collect();
        let concept = self.solve_concept(&b)?;

        // x_hat = V x_concept + means; then overwrite known positions with
        // the given values (paper step 5).
        let mut values = reconstruct_from(&self.v_used, &concept, &self.means)?;
        for &j in &self.known {
            values[j] = row.values[j].unwrap_or(f64::NAN);
        }

        Ok(FilledRow {
            values,
            concept,
            case: self.case,
        })
    }
}

/// Memoized [`PatternSolver`]s for one rule set, keyed by hole pattern.
///
/// Thread-safe: concurrent readers share cached solvers via [`Arc`]; a
/// miss factors outside the lock and the first insert wins, so racing
/// builders agree on the stored solver. Typical use:
///
/// ```
/// use linalg::Matrix;
/// use ratio_rules::cutoff::Cutoff;
/// use ratio_rules::miner::RatioRuleMiner;
/// use ratio_rules::reconstruct::SolverCache;
/// use dataset::holes::HoledRow;
///
/// let x = Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 2.0], &[6.0, 3.0]])?;
/// let rules = RatioRuleMiner::new(Cutoff::FixedK(1)).fit_matrix(&x)?;
/// let cache = SolverCache::new(&rules);
/// // Same pattern, many rows: one factorization total.
/// for bread in [5.0, 7.0, 9.0] {
///     let filled = cache.fill(&HoledRow::new(vec![Some(bread), None]))?;
///     assert!((filled.values[1] - bread / 2.0).abs() < 1e-9);
/// }
/// assert_eq!(cache.len(), 1);
/// # Ok::<(), ratio_rules::RatioRuleError>(())
/// ```
#[derive(Debug)]
pub struct SolverCache<'r> {
    rules: &'r RuleSet,
    solvers: RwLock<HashMap<PatternKey, Arc<PatternSolver>>>,
    /// Lookups served from the cache. Striped so the parallel GE_h scan
    /// does not ping-pong a shared cache line; counts unconditionally
    /// (stats work even with observability disabled).
    hits: StripedCounter,
    /// Lookups that had to factor a solver.
    misses: StripedCounter,
}

/// Point-in-time statistics of a [`SolverCache`] (see
/// [`SolverCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to factor a solver (including losers of a
    /// first-insert-wins race, who factored but did not insert).
    pub misses: u64,
    /// Distinct hole patterns currently cached.
    pub entries: usize,
    /// Cached patterns in the paper's CASE 1 (exactly specified).
    pub case1_exact: usize,
    /// Cached patterns in CASE 2 (over-specified, least squares).
    pub case2_over: usize,
    /// Cached patterns in CASE 3 (under-specified, weakest rules dropped).
    pub case3_under: usize,
    /// Cached square systems that were singular and fell back to the
    /// minimum-norm pseudo-inverse.
    pub singular_fallbacks: usize,
}

impl CacheStats {
    /// Tallies the per-case breakdown from the cached solvers.
    pub(crate) fn from_parts<'a>(
        hits: u64,
        misses: u64,
        solvers: impl Iterator<Item = &'a PatternSolver>,
    ) -> Self {
        let mut stats = CacheStats {
            hits,
            misses,
            ..CacheStats::default()
        };
        // rrlint-allow: RR012 order-independent tallies over a generic iterator (shares the cache field's name)
        for solver in solvers {
            stats.entries += 1;
            match solver.case() {
                SolveCase::ExactlySpecified => stats.case1_exact += 1,
                SolveCase::OverSpecified => stats.case2_over += 1,
                SolveCase::UnderSpecified { .. } => stats.case3_under += 1,
            }
            if solver.used_singular_fallback() {
                stats.singular_fallbacks += 1;
            }
        }
        stats
    }

    /// Publishes this snapshot as `solver_cache_*` gauges on the global
    /// metrics registry. No-op while observability is disabled.
    pub fn publish(&self) {
        if !obs::enabled() {
            return;
        }
        obs::gauge_set("solver_cache_hits", self.hits as f64);
        obs::gauge_set("solver_cache_misses", self.misses as f64);
        obs::gauge_set("solver_cache_entries", self.entries as f64);
        obs::gauge_set("solver_cache_case1_exact", self.case1_exact as f64);
        obs::gauge_set("solver_cache_case2_over", self.case2_over as f64);
        obs::gauge_set("solver_cache_case3_under", self.case3_under as f64);
        obs::gauge_set(
            "solver_cache_singular_fallbacks",
            self.singular_fallbacks as f64,
        );
    }
}

impl<'r> SolverCache<'r> {
    /// Creates an empty cache over `rules`.
    pub fn new(rules: &'r RuleSet) -> Self {
        SolverCache {
            rules,
            solvers: RwLock::new(HashMap::new()),
            hits: StripedCounter::new(),
            misses: StripedCounter::new(),
        }
    }

    /// The rule set this cache serves.
    pub fn rules(&self) -> &'r RuleSet {
        self.rules
    }

    /// Number of distinct hole patterns factored so far.
    pub fn len(&self) -> usize {
        self.solvers.read().len()
    }

    /// Whether no pattern has been factored yet.
    pub fn is_empty(&self) -> bool {
        self.solvers.read().is_empty()
    }

    /// Returns the solver for `holes`, factoring and caching it on first
    /// use.
    pub fn solver_for(&self, holes: &[usize]) -> Result<Arc<PatternSolver>> {
        let key = PatternKey::new(holes, self.rules.n_attributes())?;
        if let Some(solver) = self.solvers.read().get(&key) {
            self.hits.inc();
            return Ok(Arc::clone(solver));
        }
        self.misses.inc();
        // Factor outside the write lock so concurrent misses on *other*
        // patterns are not serialized behind this SVD/LU.
        let built = Arc::new(PatternSolver::build(self.rules, holes)?);
        let mut map = self.solvers.write();
        Ok(Arc::clone(map.entry(key).or_insert(built)))
    }

    /// Snapshot of hit/miss counters and per-case cached-pattern counts.
    ///
    /// Hits and misses count every [`SolverCache::solver_for`] lookup
    /// (including those made through [`SolverCache::fill`]); the per-case
    /// breakdown is derived from the solvers currently cached.
    pub fn stats(&self) -> CacheStats {
        let map = self.solvers.read();
        CacheStats::from_parts(
            self.hits.get(),
            self.misses.get(),
            // rrlint-allow: RR012 per-case counts are order-independent sums, never numeric results
            map.values().map(Arc::as_ref),
        )
    }

    /// Publishes the current [`CacheStats`] as `solver_cache_*` gauges on
    /// the global metrics registry. No-op while observability is disabled.
    pub fn publish_metrics(&self) {
        self.stats().publish();
    }

    /// Fills `row`, reusing (or creating) the cached solver for its hole
    /// pattern. Identical results to [`fill_holes`], amortized.
    pub fn fill(&self, row: &HoledRow) -> Result<FilledRow> {
        let m = self.rules.n_attributes();
        if row.width() != m {
            return Err(RatioRuleError::WidthMismatch {
                expected: m,
                actual: row.width(),
            });
        }
        self.solver_for(&row.hole_indices())?.fill(row)
    }
}

/// Fills the holes of `row` using the rule set (paper Fig. 3 pseudo-code).
///
/// One-shot: factors the row's hole pattern and solves it once. Loops
/// that fill many rows should use a [`SolverCache`] (or a
/// [`PatternSolver`] directly) to amortize the factorization; the results
/// are bit-for-bit identical because this function runs the exact same
/// code path.
pub fn fill_holes(rules: &RuleSet, row: &HoledRow) -> Result<FilledRow> {
    let m = rules.n_attributes();
    if row.width() != m {
        return Err(RatioRuleError::WidthMismatch {
            expected: m,
            actual: row.width(),
        });
    }
    PatternSolver::build(rules, &row.hole_indices())?.fill(row)
}

/// Classifies the conditioning of the linear system a hole-filling call
/// would solve for this row (the `V'` matrix), *without* solving it.
///
/// [`linalg::norms::Conditioning::Poor`] means the known attributes
/// barely constrain some retained rule, so the fill will technically
/// succeed (minimum-norm fallback) but should not be trusted. Downstream
/// users can gate automated repairs on this.
pub fn system_conditioning(rules: &RuleSet, row: &HoledRow) -> Result<linalg::norms::Conditioning> {
    let m = rules.n_attributes();
    if row.width() != m {
        return Err(RatioRuleError::WidthMismatch {
            expected: m,
            actual: row.width(),
        });
    }
    let holes = row.hole_indices();
    let h = holes.len();
    if h == 0 || h == m {
        return Err(RatioRuleError::Invalid(
            "conditioning is defined for rows with 0 < holes < M".into(),
        ));
    }
    let known = row.known_indices();
    let known_count = m - h;
    let v_used = if known_count < rules.k() {
        rules.v_matrix_truncated(known_count)
    } else {
        rules.v_matrix()
    };
    let v_prime = v_used.select_rows(&known);
    Ok(linalg::norms::classify_conditioning(&v_prime)?)
}

/// `V x + means` for an `M x k` rule matrix.
fn reconstruct_from(v: &Matrix, concept: &[f64], means: &[f64]) -> Result<Vec<f64>> {
    let full = v.mul_vec(concept)?;
    Ok(full.iter().zip(means).map(|(x, m)| x + m).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;
    use dataset::holes::HoleSet;

    /// Perfectly linear data along direction (2, 1): bread = 2 * butter.
    fn linear_2d() -> Matrix {
        Matrix::from_rows(&[
            &[2.0, 1.0],
            &[4.0, 2.0],
            &[6.0, 3.0],
            &[8.0, 4.0],
            &[10.0, 5.0],
        ])
        .unwrap()
    }

    /// Rank-2 data in 4-d: rows are a*d1 + b*d2 with orthogonal d1, d2.
    fn rank2_4d() -> Matrix {
        let d1 = [2.0, 1.0, 0.0, 1.0];
        let d2 = [0.0, 1.0, 3.0, -1.0];
        Matrix::from_fn(40, 4, |i, j| {
            let a = (i as f64 % 7.0) - 3.0;
            let b = (i as f64 % 5.0) - 2.0;
            a * d1[j] + b * d2[j]
        })
    }

    #[test]
    fn exactly_specified_2d_fig4a() {
        // M = 2, k = 1, h = 1: the paper's Fig. 4(a).
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear_2d())
            .unwrap();
        let row = HoledRow::new(vec![Some(7.0), None]);
        let filled = fill_holes(&rules, &row).unwrap();
        assert_eq!(filled.case, SolveCase::ExactlySpecified);
        // bread = 7 lies on the line bread = 2 * butter -> butter = 3.5.
        assert!(
            (filled.values[1] - 3.5).abs() < 1e-9,
            "got {}",
            filled.values[1]
        );
        // Known value is passed through untouched.
        assert_eq!(filled.values[0], 7.0);
    }

    #[test]
    fn paper_fig12_extrapolation() {
        // The paper's Fig. 12: given $8.50 of bread on a linear dataset,
        // RRs predict ~$6.10 of butter (their fictitious data has slope
        // ~0.72). Construct data with exactly that slope.
        let x = Matrix::from_fn(30, 2, |i, j| {
            let bread = 1.0 + 0.25 * i as f64;
            if j == 0 {
                bread
            } else {
                0.7176 * bread
            }
        });
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let row = HoledRow::new(vec![Some(8.5), None]);
        let filled = fill_holes(&rules, &row).unwrap();
        assert!(
            (filled.values[1] - 6.1).abs() < 0.01,
            "butter guess {}",
            filled.values[1]
        );
    }

    #[test]
    fn over_specified_uses_pseudo_inverse() {
        // M = 4, k = 1, h = 1 -> M - h = 3 > 1.
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&rank2_4d())
            .unwrap();
        let hs = HoleSet::new(vec![2], 4).unwrap();
        let original = [4.0, 2.0, 0.0, 2.0]; // 2 * d1, on the first factor
        let row = hs.apply(&original).unwrap();
        let filled = fill_holes(&rules, &row).unwrap();
        assert_eq!(filled.case, SolveCase::OverSpecified);
        assert_eq!(filled.concept.len(), 1);
    }

    #[test]
    fn over_specified_recovers_exact_rank2_point() {
        // Keep k = 2 on rank-2 data; hide 1 of 4 values: M - h = 3 > 2.
        // Points lie exactly on the RR-plane, so recovery is exact.
        let x = rank2_4d();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        for i in [0usize, 7, 13] {
            let original: Vec<f64> = x.row(i).to_vec();
            for hole in 0..4 {
                let hs = HoleSet::new(vec![hole], 4).unwrap();
                let row = hs.apply(&original).unwrap();
                let filled = fill_holes(&rules, &row).unwrap();
                assert_eq!(filled.case, SolveCase::OverSpecified);
                assert!(
                    (filled.values[hole] - original[hole]).abs() < 1e-8,
                    "row {i} hole {hole}: {} vs {}",
                    filled.values[hole],
                    original[hole]
                );
            }
        }
    }

    #[test]
    fn under_specified_drops_weakest_rules_fig5() {
        // M = 4, k = 3, h = 2 -> M - h = 2 < 3: the paper's CASE 3 keeps
        // the 2 strongest rules.
        let x = rank2_4d();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(3))
            .fit_matrix(&x)
            .unwrap();
        assert_eq!(rules.k(), 3);
        let hs = HoleSet::new(vec![1, 3], 4).unwrap();
        let original: Vec<f64> = x.row(9).to_vec();
        let row = hs.apply(&original).unwrap();
        let filled = fill_holes(&rules, &row).unwrap();
        assert_eq!(filled.case, SolveCase::UnderSpecified { rules_used: 2 });
        assert_eq!(filled.concept.len(), 2);
        // Data is exactly rank 2 and the 2 strongest rules span it, so the
        // holes are recovered exactly.
        for &hole in &[1usize, 3] {
            assert!(
                (filled.values[hole] - original[hole]).abs() < 1e-8,
                "hole {hole}: {} vs {}",
                filled.values[hole],
                original[hole]
            );
        }
    }

    #[test]
    fn k0_equivalent_behaviour_is_column_means() {
        // With a single rule on pure-noise data the guess degrades towards
        // the column mean; verify the centering/uncentering plumbing by
        // checking the reconstruction of a row whose known value equals
        // the column mean: the fill must then be exactly the hole's mean.
        let x = linear_2d();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let means = rules.column_means().to_vec();
        let row = HoledRow::new(vec![Some(means[0]), None]);
        let filled = fill_holes(&rules, &row).unwrap();
        assert!((filled.values[1] - means[1]).abs() < 1e-9);
    }

    #[test]
    fn multiple_simultaneous_holes() {
        // M = 4, k = 2, h = 2 -> exactly specified.
        let x = rank2_4d();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let hs = HoleSet::new(vec![0, 2], 4).unwrap();
        let original: Vec<f64> = x.row(11).to_vec();
        let row = hs.apply(&original).unwrap();
        let filled = fill_holes(&rules, &row).unwrap();
        assert_eq!(filled.case, SolveCase::ExactlySpecified);
        assert!((filled.values[0] - original[0]).abs() < 1e-8);
        assert!((filled.values[2] - original[2]).abs() < 1e-8);
    }

    #[test]
    fn singular_square_system_falls_back_to_pinv() {
        // Rules from data where attribute 0 carries all the variance; if
        // the only known attribute has zero loading on the retained rule,
        // the square system is singular. The fallback must return the
        // minimum-norm solution (concept = 0 -> fill with column means).
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[3.0, 5.0], &[4.0, 5.0]]).unwrap();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        // RR1 = (1, 0): attribute 1 is constant.
        assert!(rules.rule(0).loadings[1].abs() < 1e-9);
        // Know only attribute 1 (zero loading), hide attribute 0.
        let row = HoledRow::new(vec![None, Some(5.0)]);
        let filled = fill_holes(&rules, &row).unwrap();
        // Minimum-norm: concept 0, hole filled with its column mean (2.5).
        assert!(
            (filled.values[0] - 2.5).abs() < 1e-9,
            "got {}",
            filled.values[0]
        );
    }

    #[test]
    fn conditioning_flags_uninformative_systems() {
        use linalg::norms::Conditioning;
        // Well-posed: rule (0.894, 0.447); knowing bread constrains it.
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear_2d())
            .unwrap();
        let good = system_conditioning(&rules, &HoledRow::new(vec![Some(7.0), None])).unwrap();
        assert_eq!(good, Conditioning::Good);

        // Ill-posed: attribute 1 is constant -> its rule loading is ~0;
        // knowing only attribute 1 constrains nothing.
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[3.0, 5.0], &[4.0, 5.0]]).unwrap();
        let degenerate = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let poor = system_conditioning(&degenerate, &HoledRow::new(vec![None, Some(5.0)])).unwrap();
        assert_eq!(poor, Conditioning::Poor);

        // Validation.
        assert!(system_conditioning(&rules, &HoledRow::new(vec![Some(1.0)])).is_err());
        assert!(system_conditioning(&rules, &HoledRow::new(vec![Some(1.0), Some(2.0)])).is_err());
        assert!(system_conditioning(&rules, &HoledRow::new(vec![None, None])).is_err());
    }

    #[test]
    fn input_validation() {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear_2d())
            .unwrap();
        // Wrong width.
        let row = HoledRow::new(vec![Some(1.0), None, None]);
        assert!(matches!(
            fill_holes(&rules, &row),
            Err(RatioRuleError::WidthMismatch { .. })
        ));
        // No holes.
        let row = HoledRow::new(vec![Some(1.0), Some(2.0)]);
        assert!(fill_holes(&rules, &row).is_err());
        // All holes.
        let row = HoledRow::new(vec![None, None]);
        assert!(fill_holes(&rules, &row).is_err());
        // Non-finite known value.
        let row = HoledRow::new(vec![Some(f64::NAN), None]);
        assert!(matches!(
            fill_holes(&rules, &row),
            Err(RatioRuleError::Invalid(_))
        ));
        let row = HoledRow::new(vec![Some(f64::INFINITY), None]);
        assert!(fill_holes(&rules, &row).is_err());
    }

    #[test]
    fn pattern_key_bitmask_and_mask_forms() {
        // Small schema: order and duplicates do not change the key.
        let a = PatternKey::new(&[1, 3], 4).unwrap();
        let b = PatternKey::new(&[3, 1, 3], 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, PatternKey::Small(0b1010));
        assert_ne!(a, PatternKey::new(&[1, 2], 4).unwrap());
        // Out-of-range holes are rejected, not silently aliased.
        assert!(PatternKey::new(&[4], 4).is_err());

        // Wide schema: falls back to the mask form.
        let wide = PatternKey::new(&[0, 70], 100).unwrap();
        match wide {
            PatternKey::Large(mask) => {
                assert_eq!(mask.len(), 100);
                assert!(mask[0] && mask[70]);
                assert_eq!(mask.iter().filter(|&&b| b).count(), 2);
            }
            PatternKey::Small(_) => panic!("expected Large key for M = 100"),
        }
    }

    #[test]
    fn cache_reuses_one_solver_per_pattern() {
        let x = rank2_4d();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let cache = SolverCache::new(&rules);
        assert!(cache.is_empty());

        let s1 = cache.solver_for(&[0, 2]).unwrap();
        let s2 = cache.solver_for(&[2, 0]).unwrap(); // same pattern, reordered
        assert!(Arc::ptr_eq(&s1, &s2), "same pattern must share one solver");
        assert_eq!(cache.len(), 1);

        cache.solver_for(&[1]).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_fill_is_bit_identical_to_uncached_all_cases() {
        let x = rank2_4d();
        // k = 1 (over), k = 2 (exact for h = 2), k = 3 (under for h = 2).
        for k in 1..=3 {
            let rules = RatioRuleMiner::new(Cutoff::FixedK(k))
                .fit_matrix(&x)
                .unwrap();
            let cache = SolverCache::new(&rules);
            for hole_set in [vec![0], vec![2], vec![1, 3], vec![0, 2]] {
                let hs = HoleSet::new(hole_set, 4).unwrap();
                for i in [0usize, 5, 11, 23] {
                    let row = hs.apply(x.row(i)).unwrap();
                    let uncached = fill_holes(&rules, &row).unwrap();
                    let cached = cache.fill(&row).unwrap();
                    // Bit-for-bit: both paths run the same factorization
                    // and matvec code.
                    assert_eq!(uncached, cached, "k={k} row={i}");
                }
            }
        }
    }

    #[test]
    fn cache_stats_count_hits_misses_and_cases() {
        let x = rank2_4d();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let cache = SolverCache::new(&rules);
        assert_eq!(cache.stats(), CacheStats::default());

        cache.solver_for(&[0, 2]).unwrap(); // exact (M - h = 2 = k)
        cache.solver_for(&[0, 2]).unwrap(); // hit
        cache.solver_for(&[1]).unwrap(); // over (M - h = 3 > k)
        cache.solver_for(&[0, 1, 2]).unwrap(); // under (M - h = 1 < k)
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.entries, 3);
        assert_eq!(s.case1_exact, 1);
        assert_eq!(s.case2_over, 1);
        assert_eq!(s.case3_under, 1);
        assert_eq!(s.singular_fallbacks, 0);
    }

    #[test]
    fn cache_stats_flag_singular_fallbacks() {
        // Attribute 1 is constant, so knowing only it leaves a singular
        // square system: the cached solver records the pinv fallback.
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[3.0, 5.0], &[4.0, 5.0]]).unwrap();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let cache = SolverCache::new(&rules);
        let solver = cache.solver_for(&[0]).unwrap();
        assert!(solver.used_singular_fallback());
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.case1_exact, 1);
        assert_eq!(s.singular_fallbacks, 1);
    }

    #[test]
    fn concurrent_first_insert_wins_and_stats_balance() {
        let x = rank2_4d();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let cache = SolverCache::new(&rules);
        const N_THREADS: usize = 8;
        let solvers: Vec<Arc<PatternSolver>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..N_THREADS)
                .map(|_| scope.spawn(|| cache.solver_for(&[0, 2]).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // First insert wins: every racer got the same cached solver.
        let winner = cache.solver_for(&[0, 2]).unwrap();
        for s in &solvers {
            assert!(Arc::ptr_eq(s, &winner), "racers must share one solver");
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        // Every lookup counted exactly once (the +1 is the winner fetch).
        assert_eq!(stats.hits + stats.misses, N_THREADS as u64 + 1);
        assert!(stats.misses >= 1, "someone had to factor");
        assert!(stats.hits >= 1, "the post-race fetch must hit");
    }

    #[test]
    fn publish_metrics_lands_in_global_registry() {
        obs::set_enabled(true);
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear_2d())
            .unwrap();
        let cache = SolverCache::new(&rules);
        cache.fill(&HoledRow::new(vec![Some(7.0), None])).unwrap();
        cache.fill(&HoledRow::new(vec![Some(9.0), None])).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        cache.publish_metrics();
        // Gauges are global and other tests may republish concurrently, so
        // only assert presence and sanity, not exact values.
        let snap = obs::global().snapshot();
        for name in [
            "solver_cache_hits",
            "solver_cache_misses",
            "solver_cache_entries",
        ] {
            assert!(snap.gauge(name).unwrap() >= 0.0, "{name} missing");
        }
    }

    #[test]
    fn pattern_solver_rejects_mismatched_rows() {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear_2d())
            .unwrap();
        let solver = PatternSolver::build(&rules, &[1]).unwrap();
        assert_eq!(solver.holes(), &[1]);
        assert_eq!(solver.case(), SolveCase::ExactlySpecified);
        // Different pattern.
        assert!(solver.fill(&HoledRow::new(vec![None, Some(1.0)])).is_err());
        // Wrong width.
        assert!(matches!(
            solver.fill(&HoledRow::new(vec![Some(1.0), None, None])),
            Err(RatioRuleError::WidthMismatch { .. })
        ));
        // Pattern-level validation mirrors fill_holes.
        assert!(PatternSolver::build(&rules, &[]).is_err());
        assert!(PatternSolver::build(&rules, &[0, 1]).is_err());
        assert!(PatternSolver::build(&rules, &[7]).is_err());
    }

    /// Deterministic splitmix64 step; unit tests avoid the rand crate so
    /// reruns are reproducible across toolchains.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in [0, 1) from the top 53 bits.
    fn uniform(state: &mut u64) -> f64 {
        (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn case_routing_follows_known_count_vs_k_for_random_shapes() {
        // Property: for any (M, h, k), the solver takes CASE 1 when
        // M - h == k, CASE 2 when M - h > k, and CASE 3 (dropping down
        // to M - h rules) when M - h < k — and in every case a row whose
        // knowns sit at the column means fills to the means, i.e. all
        // three paths agree with the k = 0 column-averages baseline.
        let mut rng: u64 = 0x5EED_CAFE;
        for trial in 0..60 {
            let m = 2 + (splitmix64(&mut rng) % 7) as usize; // 2..=8
            let h = 1 + (splitmix64(&mut rng) as usize) % (m - 1); // 1..=m-1
            let requested = 1 + (splitmix64(&mut rng) as usize) % m; // 1..=m

            // Dense random data is full rank with probability one, so
            // FixedK keeps exactly `requested` rules; still read back
            // rules.k() rather than assuming.
            let n = 4 * m + 8;
            let x = Matrix::from_fn(n, m, |_, _| 10.0 * uniform(&mut rng) - 5.0);
            let rules = RatioRuleMiner::new(Cutoff::FixedK(requested))
                .fit_matrix(&x)
                .unwrap();
            let k = rules.k();

            // A random h-subset of the columns (partial Fisher-Yates).
            let mut idx: Vec<usize> = (0..m).collect();
            for i in 0..h {
                let j = i + (splitmix64(&mut rng) as usize) % (m - i);
                idx.swap(i, j);
            }
            let holes = &idx[..h];

            let solver = PatternSolver::build(&rules, holes).unwrap();
            let known = m - h;
            let expected = if known == k {
                SolveCase::ExactlySpecified
            } else if known > k {
                SolveCase::OverSpecified
            } else {
                SolveCase::UnderSpecified { rules_used: known }
            };
            assert_eq!(solver.case(), expected, "trial {trial}: M={m} h={h} k={k}");

            // Knowns at the column means => centered right-hand side is
            // zero => concept is zero on every solve path (direct, least
            // squares, rule-dropping, and the singular fallback alike),
            // so the fill is exactly the means.
            let means = rules.column_means().to_vec();
            let cells: Vec<Option<f64>> = (0..m)
                .map(|c| {
                    if holes.contains(&c) {
                        None
                    } else {
                        Some(means[c])
                    }
                })
                .collect();
            let filled = solver.fill(&HoledRow::new(cells)).unwrap();
            assert_eq!(filled.case, expected, "trial {trial}");
            for c in 0..m {
                assert!(
                    (filled.values[c] - means[c]).abs() < 1e-8,
                    "trial {trial}: col {c} filled {} vs mean {}",
                    filled.values[c],
                    means[c]
                );
            }
        }
    }
}
