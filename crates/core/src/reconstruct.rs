//! Hole filling: determining hidden and unknown values (paper Sec. 4.4).
//!
//! Given a row with holes `H`, the retained rules span a `k`-dimensional
//! "RR-hyperplane" on or near which data points lie, while the known
//! values constrain the answer to an `h`-dimensional "feasible solution
//! space". Intersecting the two means solving `V' x_concept = b'`, where
//! `V' = E_H V` keeps the known rows of the rule matrix and `b'` stacks
//! the known (centered) values. Three shapes arise (paper Fig. 4–5):
//!
//! * **CASE 1, exactly-specified** (`M - h == k`): square system, direct
//!   solve (Eq. 6).
//! * **CASE 2, over-specified** (`M - h > k`): least squares via the
//!   Moore–Penrose pseudo-inverse of `V'` (Eqs. 7–9).
//! * **CASE 3, under-specified** (`M - h < k`): infinitely many solutions;
//!   the paper keeps the one needing the fewest eigenvectors, i.e. it
//!   drops the `(k + h) - M` weakest rules and solves the resulting
//!   exactly-specified system.
//!
//! One practical addition over the paper's pseudo-code: when the CASE 1 /
//! CASE 3 square system is singular (e.g. the known attributes carry no
//! information about some retained rule), we fall back to the
//! pseudo-inverse rather than failing — the pseudo-inverse solution
//! coincides with the exact one whenever the exact one exists.

use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use dataset::holes::HoledRow;
use linalg::lu::Lu;
use linalg::pinv::pseudo_inverse;
use linalg::Matrix;

/// Which of the paper's three cases a reconstruction hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveCase {
    /// `M - h == k`: direct solve (paper CASE 1).
    ExactlySpecified,
    /// `M - h > k`: pseudo-inverse least squares (paper CASE 2).
    OverSpecified,
    /// `M - h < k`: weakest rules dropped, then direct solve (paper
    /// CASE 3). The payload is the number of rules actually used.
    UnderSpecified {
        /// Number of strongest rules retained for the solve (`M - h`).
        rules_used: usize,
    },
}

/// A reconstructed row.
#[derive(Debug, Clone, PartialEq)]
pub struct FilledRow {
    /// The full row: known values passed through, holes filled.
    pub values: Vec<f64>,
    /// The solved RR-space coordinates `x_concept` (length = rules used).
    pub concept: Vec<f64>,
    /// Which solve shape was used.
    pub case: SolveCase,
}

/// Fills the holes of `row` using the rule set (paper Fig. 3 pseudo-code).
pub fn fill_holes(rules: &RuleSet, row: &HoledRow) -> Result<FilledRow> {
    let m = rules.n_attributes();
    if row.width() != m {
        return Err(RatioRuleError::WidthMismatch {
            expected: m,
            actual: row.width(),
        });
    }
    let holes = row.hole_indices();
    let h = holes.len();
    if h == 0 {
        return Err(RatioRuleError::Invalid("row has no holes to fill".into()));
    }
    if h == m {
        return Err(RatioRuleError::Invalid("row has no known values".into()));
    }

    let known = row.known_indices();
    if let Some(&j) = known.iter().find(|&&j| !row.values[j].unwrap().is_finite()) {
        return Err(RatioRuleError::Invalid(format!(
            "non-finite known value at attribute {j}"
        )));
    }
    let k = rules.k();
    let known_count = m - h; // rows of V'

    // b' = centered known values.
    let means = rules.column_means();
    let b: Vec<f64> = known
        .iter()
        .map(|&j| row.values[j].unwrap() - means[j])
        .collect();

    // Decide the case and pick the rule matrix to use.
    let (v_used, case) = if known_count < k {
        // CASE 3: keep only the strongest (M - h) rules.
        (
            rules.v_matrix_truncated(known_count),
            SolveCase::UnderSpecified {
                rules_used: known_count,
            },
        )
    } else if known_count == k {
        (rules.v_matrix(), SolveCase::ExactlySpecified)
    } else {
        (rules.v_matrix(), SolveCase::OverSpecified)
    };

    // V' = E_H V: keep the known rows.
    let v_prime = v_used.select_rows(&known);

    // Solve V' x = b'.
    let concept = match case {
        SolveCase::OverSpecified => {
            let pinv = pseudo_inverse(&v_prime, 1e-12)?;
            pinv.mul_vec(&b)?
        }
        _ => match Lu::new(&v_prime).and_then(|lu| lu.solve(&b)) {
            Ok(x) => x,
            // Singular square system: minimum-norm solution instead.
            Err(_) => {
                let pinv = pseudo_inverse(&v_prime, 1e-12)?;
                pinv.mul_vec(&b)?
            }
        },
    };

    // x_hat = V x_concept + means; then overwrite known positions with the
    // given values (paper step 5).
    let reconstructed = reconstruct_from(&v_used, &concept, means)?;
    let mut values = reconstructed;
    for &j in &known {
        values[j] = row.values[j].unwrap();
    }

    Ok(FilledRow {
        values,
        concept,
        case,
    })
}

/// Classifies the conditioning of the linear system a hole-filling call
/// would solve for this row (the `V'` matrix), *without* solving it.
///
/// [`linalg::norms::Conditioning::Poor`] means the known attributes
/// barely constrain some retained rule, so the fill will technically
/// succeed (minimum-norm fallback) but should not be trusted. Downstream
/// users can gate automated repairs on this.
pub fn system_conditioning(rules: &RuleSet, row: &HoledRow) -> Result<linalg::norms::Conditioning> {
    let m = rules.n_attributes();
    if row.width() != m {
        return Err(RatioRuleError::WidthMismatch {
            expected: m,
            actual: row.width(),
        });
    }
    let holes = row.hole_indices();
    let h = holes.len();
    if h == 0 || h == m {
        return Err(RatioRuleError::Invalid(
            "conditioning is defined for rows with 0 < holes < M".into(),
        ));
    }
    let known = row.known_indices();
    let known_count = m - h;
    let v_used = if known_count < rules.k() {
        rules.v_matrix_truncated(known_count)
    } else {
        rules.v_matrix()
    };
    let v_prime = v_used.select_rows(&known);
    Ok(linalg::norms::classify_conditioning(&v_prime)?)
}

/// `V x + means` for an `M x k` rule matrix.
fn reconstruct_from(v: &Matrix, concept: &[f64], means: &[f64]) -> Result<Vec<f64>> {
    let full = v.mul_vec(concept)?;
    Ok(full.iter().zip(means).map(|(x, m)| x + m).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;
    use dataset::holes::HoleSet;

    /// Perfectly linear data along direction (2, 1): bread = 2 * butter.
    fn linear_2d() -> Matrix {
        Matrix::from_rows(&[
            &[2.0, 1.0],
            &[4.0, 2.0],
            &[6.0, 3.0],
            &[8.0, 4.0],
            &[10.0, 5.0],
        ])
        .unwrap()
    }

    /// Rank-2 data in 4-d: rows are a*d1 + b*d2 with orthogonal d1, d2.
    fn rank2_4d() -> Matrix {
        let d1 = [2.0, 1.0, 0.0, 1.0];
        let d2 = [0.0, 1.0, 3.0, -1.0];
        Matrix::from_fn(40, 4, |i, j| {
            let a = (i as f64 % 7.0) - 3.0;
            let b = (i as f64 % 5.0) - 2.0;
            a * d1[j] + b * d2[j]
        })
    }

    #[test]
    fn exactly_specified_2d_fig4a() {
        // M = 2, k = 1, h = 1: the paper's Fig. 4(a).
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear_2d())
            .unwrap();
        let row = HoledRow::new(vec![Some(7.0), None]);
        let filled = fill_holes(&rules, &row).unwrap();
        assert_eq!(filled.case, SolveCase::ExactlySpecified);
        // bread = 7 lies on the line bread = 2 * butter -> butter = 3.5.
        assert!(
            (filled.values[1] - 3.5).abs() < 1e-9,
            "got {}",
            filled.values[1]
        );
        // Known value is passed through untouched.
        assert_eq!(filled.values[0], 7.0);
    }

    #[test]
    fn paper_fig12_extrapolation() {
        // The paper's Fig. 12: given $8.50 of bread on a linear dataset,
        // RRs predict ~$6.10 of butter (their fictitious data has slope
        // ~0.72). Construct data with exactly that slope.
        let x = Matrix::from_fn(30, 2, |i, j| {
            let bread = 1.0 + 0.25 * i as f64;
            if j == 0 {
                bread
            } else {
                0.7176 * bread
            }
        });
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let row = HoledRow::new(vec![Some(8.5), None]);
        let filled = fill_holes(&rules, &row).unwrap();
        assert!(
            (filled.values[1] - 6.1).abs() < 0.01,
            "butter guess {}",
            filled.values[1]
        );
    }

    #[test]
    fn over_specified_uses_pseudo_inverse() {
        // M = 4, k = 1, h = 1 -> M - h = 3 > 1.
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&rank2_4d())
            .unwrap();
        let hs = HoleSet::new(vec![2], 4).unwrap();
        let original = [4.0, 2.0, 0.0, 2.0]; // 2 * d1, on the first factor
        let row = hs.apply(&original).unwrap();
        let filled = fill_holes(&rules, &row).unwrap();
        assert_eq!(filled.case, SolveCase::OverSpecified);
        assert_eq!(filled.concept.len(), 1);
    }

    #[test]
    fn over_specified_recovers_exact_rank2_point() {
        // Keep k = 2 on rank-2 data; hide 1 of 4 values: M - h = 3 > 2.
        // Points lie exactly on the RR-plane, so recovery is exact.
        let x = rank2_4d();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        for i in [0usize, 7, 13] {
            let original: Vec<f64> = x.row(i).to_vec();
            for hole in 0..4 {
                let hs = HoleSet::new(vec![hole], 4).unwrap();
                let row = hs.apply(&original).unwrap();
                let filled = fill_holes(&rules, &row).unwrap();
                assert_eq!(filled.case, SolveCase::OverSpecified);
                assert!(
                    (filled.values[hole] - original[hole]).abs() < 1e-8,
                    "row {i} hole {hole}: {} vs {}",
                    filled.values[hole],
                    original[hole]
                );
            }
        }
    }

    #[test]
    fn under_specified_drops_weakest_rules_fig5() {
        // M = 4, k = 3, h = 2 -> M - h = 2 < 3: the paper's CASE 3 keeps
        // the 2 strongest rules.
        let x = rank2_4d();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(3))
            .fit_matrix(&x)
            .unwrap();
        assert_eq!(rules.k(), 3);
        let hs = HoleSet::new(vec![1, 3], 4).unwrap();
        let original: Vec<f64> = x.row(9).to_vec();
        let row = hs.apply(&original).unwrap();
        let filled = fill_holes(&rules, &row).unwrap();
        assert_eq!(filled.case, SolveCase::UnderSpecified { rules_used: 2 });
        assert_eq!(filled.concept.len(), 2);
        // Data is exactly rank 2 and the 2 strongest rules span it, so the
        // holes are recovered exactly.
        for &hole in &[1usize, 3] {
            assert!(
                (filled.values[hole] - original[hole]).abs() < 1e-8,
                "hole {hole}: {} vs {}",
                filled.values[hole],
                original[hole]
            );
        }
    }

    #[test]
    fn k0_equivalent_behaviour_is_column_means() {
        // With a single rule on pure-noise data the guess degrades towards
        // the column mean; verify the centering/uncentering plumbing by
        // checking the reconstruction of a row whose known value equals
        // the column mean: the fill must then be exactly the hole's mean.
        let x = linear_2d();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let means = rules.column_means().to_vec();
        let row = HoledRow::new(vec![Some(means[0]), None]);
        let filled = fill_holes(&rules, &row).unwrap();
        assert!((filled.values[1] - means[1]).abs() < 1e-9);
    }

    #[test]
    fn multiple_simultaneous_holes() {
        // M = 4, k = 2, h = 2 -> exactly specified.
        let x = rank2_4d();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let hs = HoleSet::new(vec![0, 2], 4).unwrap();
        let original: Vec<f64> = x.row(11).to_vec();
        let row = hs.apply(&original).unwrap();
        let filled = fill_holes(&rules, &row).unwrap();
        assert_eq!(filled.case, SolveCase::ExactlySpecified);
        assert!((filled.values[0] - original[0]).abs() < 1e-8);
        assert!((filled.values[2] - original[2]).abs() < 1e-8);
    }

    #[test]
    fn singular_square_system_falls_back_to_pinv() {
        // Rules from data where attribute 0 carries all the variance; if
        // the only known attribute has zero loading on the retained rule,
        // the square system is singular. The fallback must return the
        // minimum-norm solution (concept = 0 -> fill with column means).
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[3.0, 5.0], &[4.0, 5.0]]).unwrap();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        // RR1 = (1, 0): attribute 1 is constant.
        assert!(rules.rule(0).loadings[1].abs() < 1e-9);
        // Know only attribute 1 (zero loading), hide attribute 0.
        let row = HoledRow::new(vec![None, Some(5.0)]);
        let filled = fill_holes(&rules, &row).unwrap();
        // Minimum-norm: concept 0, hole filled with its column mean (2.5).
        assert!(
            (filled.values[0] - 2.5).abs() < 1e-9,
            "got {}",
            filled.values[0]
        );
    }

    #[test]
    fn conditioning_flags_uninformative_systems() {
        use linalg::norms::Conditioning;
        // Well-posed: rule (0.894, 0.447); knowing bread constrains it.
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear_2d())
            .unwrap();
        let good = system_conditioning(&rules, &HoledRow::new(vec![Some(7.0), None])).unwrap();
        assert_eq!(good, Conditioning::Good);

        // Ill-posed: attribute 1 is constant -> its rule loading is ~0;
        // knowing only attribute 1 constrains nothing.
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[3.0, 5.0], &[4.0, 5.0]]).unwrap();
        let degenerate = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let poor = system_conditioning(&degenerate, &HoledRow::new(vec![None, Some(5.0)])).unwrap();
        assert_eq!(poor, Conditioning::Poor);

        // Validation.
        assert!(system_conditioning(&rules, &HoledRow::new(vec![Some(1.0)])).is_err());
        assert!(system_conditioning(&rules, &HoledRow::new(vec![Some(1.0), Some(2.0)])).is_err());
        assert!(system_conditioning(&rules, &HoledRow::new(vec![None, None])).is_err());
    }

    #[test]
    fn input_validation() {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&linear_2d())
            .unwrap();
        // Wrong width.
        let row = HoledRow::new(vec![Some(1.0), None, None]);
        assert!(matches!(
            fill_holes(&rules, &row),
            Err(RatioRuleError::WidthMismatch { .. })
        ));
        // No holes.
        let row = HoledRow::new(vec![Some(1.0), Some(2.0)]);
        assert!(fill_holes(&rules, &row).is_err());
        // All holes.
        let row = HoledRow::new(vec![None, None]);
        assert!(fill_holes(&rules, &row).is_err());
        // Non-finite known value.
        let row = HoledRow::new(vec![Some(f64::NAN), None]);
        assert!(matches!(
            fill_holes(&rules, &row),
            Err(RatioRuleError::Invalid(_))
        ));
        let row = HoledRow::new(vec![Some(f64::INFINITY), None]);
        assert!(fill_holes(&rules, &row).is_err());
    }
}
