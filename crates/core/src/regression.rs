//! Multiple linear regression baseline (paper Sec. 5, "Methods").
//!
//! The paper positions MLR as the closest classical technique: "it can
//! predict missing values for a given, specified column of the data
//! matrix, if everything else is known. Our method is more general
//! because it can predict arbitrary choices of arbitrary numbers of
//! missing columns." This module makes that comparison executable: one
//! ordinary-least-squares model per column (each column regressed on all
//! the others plus an intercept, solved by QR).
//!
//! Two behaviours for rows with *multiple* holes:
//!
//! * [`MissingPolicy::Strict`] — refuse, exactly as the paper describes
//!   MLR's limitation;
//! * [`MissingPolicy::MeanFallback`] — substitute training means for the
//!   other missing predictors, the kindest practical workaround, used to
//!   draw the `GE_h` degradation curve against Ratio Rules.

use crate::predictor::Predictor;
use crate::{RatioRuleError, Result};
use dataset::holes::HoledRow;
use linalg::qr::Qr;
use linalg::Matrix;

/// What to do when a row has more than one hole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissingPolicy {
    /// Error out (the paper's characterization of MLR).
    Strict,
    /// Replace other missing predictors with their training means.
    MeanFallback,
}

/// Per-column OLS models: column `j` predicted from all other columns.
#[derive(Debug, Clone)]
pub struct LinearRegressionPredictor {
    /// `models[j]` = (intercept, coefficients over the other M-1 columns
    /// in ascending column order).
    models: Vec<(f64, Vec<f64>)>,
    /// Training column means (for the fallback policy).
    means: Vec<f64>,
    policy: MissingPolicy,
    name: String,
}

impl LinearRegressionPredictor {
    /// Fits one OLS model per column on the training matrix.
    ///
    /// Requires `N > M` rows (enough equations for every design matrix);
    /// rank-deficient designs (perfectly collinear predictors) fall back
    /// to the pseudo-inverse solution.
    pub fn fit(train: &Matrix, policy: MissingPolicy) -> Result<Self> {
        let (n, m) = train.shape();
        if n == 0 || m < 2 {
            return Err(RatioRuleError::Invalid(format!(
                "MLR needs at least 2 columns and 1 row, got {n}x{m}"
            )));
        }
        if n <= m {
            return Err(RatioRuleError::Invalid(format!(
                "MLR needs more rows than columns, got {n}x{m}"
            )));
        }
        let means = dataset::stats::column_stats(train).means;

        let mut models = Vec::with_capacity(m);
        for target in 0..m {
            // Design: intercept + all other columns.
            let design = Matrix::from_fn(n, m, |i, c| {
                if c == 0 {
                    1.0
                } else {
                    let src = if c - 1 < target { c - 1 } else { c };
                    train[(i, src)]
                }
            });
            let y = train.col(target);
            let beta = match Qr::new(&design).and_then(|qr| qr.solve(&y)) {
                Ok(b) => b,
                // Collinear predictors: minimum-norm least squares.
                Err(_) => linalg::pinv::solve_least_squares(&design, &y, 1e-10)?,
            };
            models.push((beta[0], beta[1..].to_vec()));
        }
        Ok(LinearRegressionPredictor {
            models,
            means,
            policy,
            name: format!(
                "MLR({})",
                match policy {
                    MissingPolicy::Strict => "strict",
                    MissingPolicy::MeanFallback => "mean-fallback",
                }
            ),
        })
    }

    /// Predicts column `target` given the other values (`predictors` has
    /// length M; the entry at `target` is ignored).
    fn predict_column(&self, target: usize, predictors: &[f64]) -> f64 {
        let (intercept, coefs) = &self.models[target];
        let mut y = *intercept;
        let mut c = 0;
        for (j, &v) in predictors.iter().enumerate() {
            if j == target {
                continue;
            }
            y += coefs[c] * v;
            c += 1;
        }
        y
    }
}

impl Predictor for LinearRegressionPredictor {
    fn name(&self) -> &str {
        &self.name
    }

    fn n_attributes(&self) -> usize {
        self.means.len()
    }

    fn fill(&self, row: &HoledRow) -> Result<Vec<f64>> {
        let m = self.means.len();
        if row.width() != m {
            return Err(RatioRuleError::WidthMismatch {
                expected: m,
                actual: row.width(),
            });
        }
        let holes = row.hole_indices();
        if holes.is_empty() {
            return Err(RatioRuleError::Invalid("row has no holes".into()));
        }
        if holes.len() > 1 && self.policy == MissingPolicy::Strict {
            return Err(RatioRuleError::Invalid(format!(
                "MLR (strict) can only fill a single hole; row has {}",
                holes.len()
            )));
        }
        // Predictor vector: known values, means for the (other) holes.
        let base: Vec<f64> = row
            .values
            .iter()
            .enumerate()
            .map(|(j, v)| v.unwrap_or(self.means[j]))
            .collect();
        let mut out = base.clone();
        for &target in &holes {
            out[target] = self.predict_column(target, &base);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y2 = 3 + 2*y0 - y1 exactly, plus independent y0/y1.
    fn exact_linear() -> Matrix {
        Matrix::from_fn(60, 3, |i, j| {
            let a = (i % 8) as f64;
            let b = ((i / 8) % 8) as f64;
            match j {
                0 => a,
                1 => b,
                _ => 3.0 + 2.0 * a - b,
            }
        })
    }

    #[test]
    fn recovers_exact_linear_relation() {
        let x = exact_linear();
        let mlr = LinearRegressionPredictor::fit(&x, MissingPolicy::Strict).unwrap();
        assert_eq!(mlr.n_attributes(), 3);
        assert!(mlr.name().contains("strict"));
        // Hide column 2, predict from (5, 2): expect 3 + 10 - 2 = 11.
        let filled = mlr
            .fill(&HoledRow::new(vec![Some(5.0), Some(2.0), None]))
            .unwrap();
        assert!((filled[2] - 11.0).abs() < 1e-8, "got {}", filled[2]);
        // Known values untouched.
        assert_eq!(filled[0], 5.0);
        assert_eq!(filled[1], 2.0);
    }

    #[test]
    fn strict_policy_refuses_multiple_holes() {
        let x = exact_linear();
        let mlr = LinearRegressionPredictor::fit(&x, MissingPolicy::Strict).unwrap();
        let err = mlr
            .fill(&HoledRow::new(vec![Some(1.0), None, None]))
            .unwrap_err();
        assert!(err.to_string().contains("single hole"), "{err}");
    }

    #[test]
    fn fallback_policy_fills_multiple_holes() {
        let x = exact_linear();
        let mlr = LinearRegressionPredictor::fit(&x, MissingPolicy::MeanFallback).unwrap();
        let filled = mlr
            .fill(&HoledRow::new(vec![Some(1.0), None, None]))
            .unwrap();
        assert!(filled.iter().all(|v| v.is_finite()));
        assert_eq!(filled[0], 1.0, "known value must pass through");
        // The two fills must at least be mutually consistent with the
        // exact relation c = 3 + 2a - b *if* the model were coherent;
        // mean-fallback breaks that coherence (each hole is predicted
        // from mean-filled versions of the others), which is precisely
        // the degradation the paper's generality argument predicts.
        // Document it: the residual of the planted relation is nonzero.
        let residual = (filled[2] - (3.0 + 2.0 * filled[0] - filled[1])).abs();
        assert!(
            residual > 0.1,
            "fallback should NOT satisfy the relation, residual {residual}"
        );
    }

    #[test]
    fn collinear_design_survives_via_pinv() {
        // Column 1 is an exact copy of column 0: the design for target 2
        // is rank deficient.
        let x = Matrix::from_fn(30, 3, |i, j| {
            let t = i as f64;
            match j {
                0 | 1 => t,
                _ => 2.0 * t + 1.0,
            }
        });
        let mlr = LinearRegressionPredictor::fit(&x, MissingPolicy::Strict).unwrap();
        let filled = mlr
            .fill(&HoledRow::new(vec![Some(4.0), Some(4.0), None]))
            .unwrap();
        assert!((filled[2] - 9.0).abs() < 1e-6, "got {}", filled[2]);
    }

    #[test]
    fn validation() {
        assert!(
            LinearRegressionPredictor::fit(&Matrix::zeros(0, 3), MissingPolicy::Strict).is_err()
        );
        assert!(LinearRegressionPredictor::fit(
            &Matrix::from_fn(5, 1, |i, _| i as f64),
            MissingPolicy::Strict
        )
        .is_err());
        // N <= M rejected.
        assert!(LinearRegressionPredictor::fit(
            &Matrix::from_fn(3, 3, |i, j| (i + j) as f64),
            MissingPolicy::Strict
        )
        .is_err());
        let x = exact_linear();
        let mlr = LinearRegressionPredictor::fit(&x, MissingPolicy::Strict).unwrap();
        assert!(mlr
            .fill(&HoledRow::new(vec![Some(1.0), Some(2.0)]))
            .is_err());
        assert!(mlr
            .fill(&HoledRow::new(vec![Some(1.0), Some(2.0), Some(3.0)]))
            .is_err());
    }

    #[test]
    fn matches_rr_on_single_holes_of_noiseless_rank1_data() {
        // On rank-1 data both methods are exact for single holes — the
        // paper's point is generality (h > 1), not single-hole accuracy.
        let x = Matrix::from_fn(50, 3, |i, j| {
            let t = 1.0 + i as f64;
            t * [3.0, 2.0, 1.0][j]
        });
        let mlr = LinearRegressionPredictor::fit(&x, MissingPolicy::Strict).unwrap();
        let rules = crate::miner::RatioRuleMiner::new(crate::cutoff::Cutoff::FixedK(1))
            .fit_matrix(&x)
            .unwrap();
        let row = HoledRow::new(vec![Some(30.0), Some(20.0), None]);
        let a = mlr.fill(&row).unwrap();
        let b = crate::reconstruct::fill_holes(&rules, &row).unwrap().values;
        assert!((a[2] - 10.0).abs() < 1e-6);
        assert!((b[2] - 10.0).abs() < 1e-6);
    }
}
