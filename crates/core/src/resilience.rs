//! Fault tolerance for the mining pipeline (extension beyond the paper).
//!
//! The paper's single-pass scan targets data "far larger than memory" —
//! the regime where real deployments meet corrupt cells, ragged rows,
//! torn reads, and mid-scan crashes. This module keeps the pipeline
//! serving through all of them, degrading *quantifiably* instead of
//! failing:
//!
//! * [`ScanPolicy`] — `Strict` (any bad row aborts, today's behaviour)
//!   vs `Quarantine` (skip bad rows, log why, abort only when an error
//!   *budget* is exhausted). Because the accumulator is a plain sum,
//!   quarantining a bad row yields **bit-identical** rules to scanning
//!   only the good rows — the property the proptests pin.
//! * [`Scanner`] — the scan loop itself, with quarantine accounting,
//!   obs counters, and [`ScanCheckpoint`] save/resume: the accumulator
//!   `(n, column sums, moment matrix)` serializes exactly through the
//!   obs JSON machinery (integers and shortest-round-trip floats), so a
//!   resumed scan equals an uninterrupted one to the last bit.
//! * [`ResilientMiner`] — a graceful-degradation ladder for the
//!   eigensolve: Jacobi → tridiagonal QL → Lanczos, each attempt
//!   validated by the residual `‖Cv - λv‖`, falling back to fewer rules
//!   than the cutoff wanted and ultimately to the paper's own `k = 0`
//!   baseline (column averages, Sec. 5). A [`DegradationReport`] records
//!   which level served and why.

use crate::covariance::CovarianceAccumulator;
use crate::cutoff::Cutoff;
use crate::miner::RatioRuleMiner;
use crate::predictor::{ColAvgs, Predictor};
use crate::rules::{RatioRule, RuleSet};
use crate::{RatioRuleError, Result};
use dataset::columnar::ColumnarBlockSource;
use dataset::source::RowSource;
use dataset::DatasetError;
use linalg::Matrix;
use obs::json::JsonValue;

/// How many consecutive `next_row` errors a quarantine scan tolerates
/// before concluding the source is wedged (a persistent error that never
/// consumes a row would otherwise spin forever under an unlimited
/// budget).
const MAX_CONSECUTIVE_SOURCE_ERRORS: usize = 1024;

/// How many per-row quarantine records a [`ScanReport`] keeps verbatim
/// (counts are always exact; only the detailed log is capped).
const MAX_QUARANTINE_DETAILS: usize = 64;

/// Error-handling policy for the covariance scan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ScanPolicy {
    /// Any bad row or source error aborts the scan with the original
    /// error — the paper's implicit policy and this crate's historical
    /// behaviour.
    #[default]
    Strict,
    /// Skip bad rows, recording each with a reason, and abort only when
    /// the error budget is exhausted. `None` limits are unlimited.
    Quarantine {
        /// Abort (with [`RatioRuleError::BudgetExhausted`]) as soon as
        /// more than this many rows have been quarantined.
        max_bad_rows: Option<usize>,
        /// Abort at end of scan if the quarantined fraction of all
        /// consumed rows exceeds this (checked at the end because the
        /// denominator is only known then).
        max_bad_fraction: Option<f64>,
    },
}

impl ScanPolicy {
    /// Quarantine policy with unlimited budget (never aborts on bad
    /// rows, only counts them).
    pub fn quarantine_unlimited() -> Self {
        ScanPolicy::Quarantine {
            max_bad_rows: None,
            max_bad_fraction: None,
        }
    }
}

/// Why a row was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// A cell was non-finite, unparseable, or empty.
    CorruptCell,
    /// The row had the wrong number of fields.
    ArityMismatch,
    /// The source failed in a row-consuming, non-transient way.
    SourceError,
}

impl QuarantineReason {
    /// Stable lowercase name (used in logs and metric names).
    pub fn name(&self) -> &'static str {
        match self {
            QuarantineReason::CorruptCell => "corrupt_cell",
            QuarantineReason::ArityMismatch => "arity_mismatch",
            QuarantineReason::SourceError => "source_error",
        }
    }
}

/// One quarantined row: where, why, and the original error text.
#[derive(Debug, Clone)]
pub struct QuarantinedRow {
    /// 0-based position in the stream (over consumed rows).
    pub position: usize,
    /// Classification of the failure.
    pub reason: QuarantineReason,
    /// Original error message.
    pub detail: String,
}

/// Outcome of a scan: how many rows went where.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Rows absorbed into the accumulator.
    pub rows_absorbed: usize,
    /// Rows quarantined (all reasons).
    pub rows_quarantined: usize,
    /// Quarantined rows by reason: `(corrupt, arity, source_error)`.
    pub by_reason: (usize, usize, usize),
    /// Transient source errors ridden out in-loop (row re-read, not
    /// lost).
    pub transient_retries: usize,
    /// First [`MAX_QUARANTINE_DETAILS`] quarantined rows, verbatim.
    pub details: Vec<QuarantinedRow>,
    /// Stream position this scan resumed from (0 = fresh scan).
    pub resumed_from: usize,
}

impl ScanReport {
    fn record(&mut self, position: usize, reason: QuarantineReason, detail: String) {
        self.rows_quarantined += 1;
        match reason {
            QuarantineReason::CorruptCell => self.by_reason.0 += 1,
            QuarantineReason::ArityMismatch => self.by_reason.1 += 1,
            QuarantineReason::SourceError => self.by_reason.2 += 1,
        }
        obs::counter_add("scan_rows_quarantined_total", 1);
        obs::counter_add(
            &format!("scan_rows_quarantined_{}_total", reason.name()),
            1,
        );
        obs::flight_event(
            obs::names::EVENT_SCAN_ROW_QUARANTINED,
            position as u64,
            reason as u64,
            0.0,
        );
        if self.details.len() < MAX_QUARANTINE_DETAILS {
            self.details.push(QuarantinedRow {
                position,
                reason,
                detail,
            });
        }
    }
}

/// Classifies a dataset error for quarantine purposes. Transient errors
/// are handled separately (the row was *not* consumed).
fn classify(err: &DatasetError) -> QuarantineReason {
    match err {
        DatasetError::RaggedRows { .. } => QuarantineReason::ArityMismatch,
        DatasetError::Parse { .. }
        | DatasetError::EmptyCell { .. }
        | DatasetError::NonFinite { .. } => QuarantineReason::CorruptCell,
        _ => QuarantineReason::SourceError,
    }
}

/// The single-pass covariance scan with a [`ScanPolicy`], quarantine
/// accounting, and checkpoint/resume. [`crate::miner::RatioRuleMiner`]
/// drives one of these internally; use it directly when you need
/// checkpoints or the [`ScanReport`].
#[derive(Debug, Clone)]
pub struct Scanner {
    acc: CovarianceAccumulator,
    policy: ScanPolicy,
    /// Rows consumed from the stream (absorbed + quarantined). This is
    /// the resume cursor: a fresh source skips this many consumed rows.
    rows_consumed: usize,
    /// Absolute consumption cap (exclusive): the scan stops once this
    /// many rows have been consumed, leaving the rest of the stream
    /// untouched. `None` scans to the end.
    limit: Option<usize>,
    report: ScanReport,
}

impl Scanner {
    /// Fresh scanner over `m` attributes.
    pub fn new(m: usize, policy: ScanPolicy) -> Self {
        Scanner {
            acc: CovarianceAccumulator::new(m),
            policy,
            rows_consumed: 0,
            limit: None,
            report: ScanReport::default(),
        }
    }

    /// Starts the consumption cursor at absolute stream row `start`
    /// with no accumulated state — the entry point for shard workers
    /// that own a row range. The prefix is skipped exactly like a
    /// checkpoint resume (data-error rows count as consumed), so a
    /// shard scan over `[start, limit)` is bit-identical to the same
    /// rows' contribution in a whole-stream scan. Only meaningful
    /// before the first scan call.
    #[must_use]
    pub fn with_start_row(mut self, start: usize) -> Self {
        self.rows_consumed = start;
        self
    }

    /// Caps consumption at absolute stream row `limit` (exclusive).
    /// Combined with [`Scanner::with_start_row`] this scans exactly
    /// the shard range `[start, limit)`.
    #[must_use]
    pub fn with_consumed_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Rebuilds a scanner from a checkpoint; the next
    /// [`Scanner::scan`] skips the already-consumed prefix and picks up
    /// exactly where the checkpointed scan stopped.
    pub fn resume(checkpoint: &ScanCheckpoint, policy: ScanPolicy) -> Result<Self> {
        let acc = checkpoint.accumulator()?;
        let mut report = ScanReport {
            rows_absorbed: acc.n_rows(),
            rows_quarantined: checkpoint.rows_quarantined,
            by_reason: checkpoint.by_reason,
            resumed_from: checkpoint.rows_consumed,
            ..ScanReport::default()
        };
        report.details.clear();
        Ok(Scanner {
            acc,
            policy,
            rows_consumed: checkpoint.rows_consumed,
            limit: None,
            report,
        })
    }

    /// The accumulator filled so far.
    pub fn accumulator(&self) -> &CovarianceAccumulator {
        &self.acc
    }

    /// Consumes the scanner, returning the accumulator and report.
    pub fn into_parts(self) -> (CovarianceAccumulator, ScanReport) {
        (self.acc, self.report)
    }

    /// The scan outcome so far.
    pub fn report(&self) -> &ScanReport {
        &self.report
    }

    /// Snapshot for [`Scanner::resume`]. Serialize with
    /// [`ScanCheckpoint::to_json`].
    pub fn checkpoint(&self) -> ScanCheckpoint {
        ScanCheckpoint::capture(&self.acc, self.rows_consumed, &self.report)
    }

    /// Scans `source` to completion under the policy, absorbing good
    /// rows. Rewinds first; when resuming, the consumed prefix is
    /// skipped before absorption restarts. Returns the report (also
    /// available via [`Scanner::report`]).
    ///
    /// Strict mode adds nothing to the per-row happy path beyond one
    /// predictable branch: the loop body is `next_row` + `push_row`,
    /// exactly as before this module existed.
    pub fn scan<S: RowSource>(&mut self, source: &mut S) -> Result<&ScanReport> {
        let _span = obs::Span::enter("covariance_scan");
        // rrlint-allow: RR003 wall clock feeds obs throughput gauges only, never results
        let start = obs::enabled().then(std::time::Instant::now);
        // Register the resilience counters at zero so a clean scan still
        // shows them in metric dumps (a silent absence reads as "not
        // instrumented", not "no faults").
        obs::counter_add("scan_rows_quarantined_total", 0);
        obs::counter_add("scan_transient_retries_total", 0);
        obs::gauge_set(obs::names::COVARIANCE_BLOCK_ROWS, self.acc.block_rows() as f64);
        source.rewind()?;
        self.skip_consumed_prefix(source)?;
        let mut buf = vec![0.0_f64; self.acc.n_cols()];
        let mut rows = 0u64;
        let mut consecutive_errors = 0usize;
        loop {
            if self.limit.is_some_and(|l| self.rows_consumed >= l) {
                break;
            }
            match source.next_row(&mut buf) {
                Ok(true) => {
                    consecutive_errors = 0;
                    let position = self.rows_consumed;
                    self.rows_consumed += 1;
                    match self.acc.push_row(&buf) {
                        Ok(()) => {
                            self.report.rows_absorbed += 1;
                            rows += 1;
                        }
                        Err(e) => match self.policy {
                            ScanPolicy::Strict => return Err(e),
                            ScanPolicy::Quarantine { .. } => {
                                self.report.record(
                                    position,
                                    QuarantineReason::CorruptCell,
                                    e.to_string(),
                                );
                                self.check_row_budget()?;
                            }
                        },
                    }
                }
                Ok(false) => break,
                Err(e) => match self.policy {
                    ScanPolicy::Strict => return Err(e.into()),
                    ScanPolicy::Quarantine { .. } => {
                        consecutive_errors += 1;
                        if consecutive_errors > MAX_CONSECUTIVE_SOURCE_ERRORS {
                            return Err(RatioRuleError::Invalid(format!(
                                "source failed {MAX_CONSECUTIVE_SOURCE_ERRORS} times in a row \
                                 without yielding a row; last error: {e}"
                            )));
                        }
                        if e.is_transient() {
                            // The row was not consumed: loop back and
                            // re-read it. (A RetryingSource underneath
                            // makes this invisible; this is the last
                            // line of defence.)
                            self.report.transient_retries += 1;
                            obs::counter_add("scan_transient_retries_total", 1);
                        } else {
                            // Row-consuming data error (bad cell, ragged
                            // row): quarantine and move on.
                            let position = self.rows_consumed;
                            self.rows_consumed += 1;
                            self.report.record(position, classify(&e), e.to_string());
                            self.check_row_budget()?;
                        }
                    }
                },
            }
        }
        self.check_fraction_budget()?;
        if let Some(start) = start {
            obs::counter_add("covariance_rows_scanned_total", rows);
            let secs = start.elapsed().as_secs_f64();
            if secs > 0.0 {
                obs::gauge_set("covariance_rows_per_s", rows as f64 / secs);
                obs::gauge_set(obs::names::SCAN_SHARD_0_ROWS_PER_S, rows as f64 / secs);
            }
        }
        Ok(&self.report)
    }

    /// Scans an `RRCB` block file to completion under the policy,
    /// feeding whole panels to the blocked covariance kernel via
    /// [`CovarianceAccumulator::push_block`]. Quarantine accounting runs
    /// at **block granularity**: a clean block is absorbed and counted
    /// in one step, and only a rejected block is replayed row by row for
    /// exact per-row attribution — the result is bit-identical to the
    /// row-at-a-time scan either way. Resume seeks straight to the
    /// consumed prefix (fixed-width records make that O(1)).
    ///
    /// Unlike [`Scanner::scan`], source I/O errors are fatal under both
    /// policies: the file's length was validated at open, so a short
    /// read means the file changed underneath the scan.
    ///
    /// # Errors
    ///
    /// Strict mode returns the first rejected cell; quarantine mode
    /// fails only on an exhausted budget, an I/O error, or a checkpoint
    /// that consumed more rows than the file holds.
    pub fn scan_columnar(&mut self, source: &mut ColumnarBlockSource) -> Result<&ScanReport> {
        let _span = obs::Span::enter("covariance_scan");
        // rrlint-allow: RR003 wall clock feeds obs throughput gauges only, never results
        let start = obs::enabled().then(std::time::Instant::now);
        obs::counter_add("scan_rows_quarantined_total", 0);
        obs::gauge_set(obs::names::COVARIANCE_BLOCK_ROWS, self.acc.block_rows() as f64);
        if self.rows_consumed > source.n_rows() {
            return Err(RatioRuleError::Invalid(format!(
                "cannot resume: block file has {} rows but the checkpoint consumed {}",
                source.n_rows(),
                self.rows_consumed
            )));
        }
        source.seek_row(self.rows_consumed)?;
        let m = self.acc.n_cols();
        let block_rows = self.acc.block_rows();
        let mut buf = Vec::new();
        let mut rows = 0u64;
        loop {
            let want = match self.limit {
                Some(l) if self.rows_consumed >= l => 0,
                Some(l) => block_rows.min(l - self.rows_consumed),
                None => block_rows,
            };
            if want == 0 {
                break;
            }
            let got = source.read_block(&mut buf, want)?;
            if got == 0 {
                break;
            }
            match self.acc.push_block(&buf, got) {
                Ok(()) => {
                    self.rows_consumed += got;
                    self.report.rows_absorbed += got;
                    rows += got as u64;
                }
                Err(e) => match self.policy {
                    ScanPolicy::Strict => return Err(e),
                    ScanPolicy::Quarantine { .. } => {
                        // Per-row attribution: replay the rejected block
                        // one row at a time so the report names exactly
                        // the bad rows, and the good ones still land.
                        for r in 0..got {
                            let position = self.rows_consumed;
                            self.rows_consumed += 1;
                            match self.acc.push_row(&buf[r * m..(r + 1) * m]) {
                                Ok(()) => {
                                    self.report.rows_absorbed += 1;
                                    rows += 1;
                                }
                                Err(row_err) => {
                                    self.report.record(
                                        position,
                                        QuarantineReason::CorruptCell,
                                        row_err.to_string(),
                                    );
                                    self.check_row_budget()?;
                                }
                            }
                        }
                    }
                },
            }
        }
        self.check_fraction_budget()?;
        if let Some(start) = start {
            obs::counter_add("covariance_rows_scanned_total", rows);
            let secs = start.elapsed().as_secs_f64();
            if secs > 0.0 {
                obs::gauge_set("covariance_rows_per_s", rows as f64 / secs);
                obs::gauge_set(obs::names::SCAN_SHARD_0_ROWS_PER_S, rows as f64 / secs);
            }
        }
        Ok(&self.report)
    }

    /// Skips the rows a previous (checkpointed) scan already consumed.
    /// Quarantined rows were consumed too, so errors during the skip are
    /// counted against the cursor, not re-quarantined; transient errors
    /// leave the cursor alone (the row was never consumed).
    fn skip_consumed_prefix<S: RowSource>(&mut self, source: &mut S) -> Result<()> {
        let mut skipped = 0usize;
        let mut buf = vec![0.0_f64; self.acc.n_cols()];
        let mut consecutive_errors = 0usize;
        while skipped < self.rows_consumed {
            match source.next_row(&mut buf) {
                Ok(true) => {
                    skipped += 1;
                    consecutive_errors = 0;
                }
                Ok(false) => {
                    return Err(RatioRuleError::Invalid(format!(
                        "cannot resume: stream ended after {skipped} rows but the \
                         checkpoint consumed {}",
                        self.rows_consumed
                    )));
                }
                Err(e) if e.is_transient() => {
                    consecutive_errors += 1;
                    if consecutive_errors > MAX_CONSECUTIVE_SOURCE_ERRORS {
                        return Err(e.into());
                    }
                }
                Err(e) => {
                    // A consumed (and previously quarantined) bad row.
                    match self.policy {
                        ScanPolicy::Strict => return Err(e.into()),
                        ScanPolicy::Quarantine { .. } => {
                            skipped += 1;
                            consecutive_errors = 0;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn check_row_budget(&self) -> Result<()> {
        if let ScanPolicy::Quarantine {
            max_bad_rows: Some(limit),
            ..
        } = self.policy
        {
            if self.report.rows_quarantined > limit {
                obs::counter_add("scan_budget_exhausted_total", 1);
                obs::flight_event(
                    obs::names::EVENT_SCAN_BUDGET_EXHAUSTED,
                    self.report.rows_quarantined as u64,
                    self.rows_consumed as u64,
                    0.0,
                );
                return Err(RatioRuleError::BudgetExhausted {
                    quarantined: self.report.rows_quarantined,
                    scanned: self.rows_consumed,
                    limit: format!("max_bad_rows = {limit}"),
                });
            }
        }
        Ok(())
    }

    fn check_fraction_budget(&self) -> Result<()> {
        if let ScanPolicy::Quarantine {
            max_bad_fraction: Some(limit),
            ..
        } = self.policy
        {
            let consumed = self.rows_consumed.max(1);
            let fraction = self.report.rows_quarantined as f64 / consumed as f64;
            if fraction > limit {
                obs::counter_add("scan_budget_exhausted_total", 1);
                obs::flight_event(
                    obs::names::EVENT_SCAN_BUDGET_EXHAUSTED,
                    self.report.rows_quarantined as u64,
                    self.rows_consumed as u64,
                    fraction,
                );
                return Err(RatioRuleError::BudgetExhausted {
                    quarantined: self.report.rows_quarantined,
                    scanned: self.rows_consumed,
                    limit: format!("max_bad_fraction = {limit} (observed {fraction:.4})"),
                });
            }
        }
        Ok(())
    }
}

/// Serializable snapshot of a [`Scanner`] mid-scan: the accumulator
/// internals plus the stream cursor and quarantine counts. JSON numbers
/// round-trip exactly (integral values as integers, everything else in
/// shortest-representation form), so `resume(checkpoint)` equals the
/// uninterrupted scan bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanCheckpoint {
    /// Number of attributes `M`.
    pub m: usize,
    /// Rows absorbed into the accumulator.
    pub n: usize,
    /// Rows consumed from the stream (absorbed + quarantined).
    pub rows_consumed: usize,
    /// Rows quarantined so far.
    pub rows_quarantined: usize,
    /// Quarantined rows by reason `(corrupt, arity, source_error)`.
    pub by_reason: (usize, usize, usize),
    /// Column sums.
    pub col_sums: Vec<f64>,
    /// Packed upper triangle of the raw moment matrix.
    pub raw_upper: Vec<f64>,
}

impl ScanCheckpoint {
    /// Checkpoints a bare accumulator (no quarantine history) — the
    /// entry point for [`crate::incremental::IncrementalMiner`], whose
    /// ingest has no stream cursor beyond the rows absorbed.
    pub fn from_accumulator(acc: &CovarianceAccumulator) -> Self {
        Self::capture(acc, acc.n_rows(), &ScanReport::default())
    }

    fn capture(acc: &CovarianceAccumulator, rows_consumed: usize, report: &ScanReport) -> Self {
        // parts() folds any buffered panel rows into the returned copies,
        // so a checkpoint taken mid-panel is complete.
        let (n, col_sums, raw_upper) = acc.parts();
        ScanCheckpoint {
            m: acc.n_cols(),
            n,
            rows_consumed,
            rows_quarantined: report.rows_quarantined,
            by_reason: report.by_reason,
            col_sums,
            raw_upper,
        }
    }

    /// Rebuilds the accumulator held in this checkpoint.
    pub fn accumulator(&self) -> Result<CovarianceAccumulator> {
        CovarianceAccumulator::from_parts(
            self.m,
            self.n,
            self.col_sums.clone(),
            self.raw_upper.clone(),
        )
    }

    /// Serializes to JSON (via the obs machinery — no serde needed).
    pub fn to_json(&self) -> String {
        self.to_json_value().write(true)
    }

    /// The checkpoint as a [`JsonValue`] tree, for embedding inside a
    /// larger wire message (the shard protocol carries checkpoints in
    /// its request/response bodies). Numbers round-trip f64-exactly.
    pub fn to_json_value(&self) -> JsonValue {
        let nums = |v: &[f64]| JsonValue::Arr(v.iter().map(|&x| JsonValue::Num(x)).collect());
        JsonValue::Obj(vec![
            ("version".into(), JsonValue::Num(1.0)),
            ("m".into(), JsonValue::Num(self.m as f64)),
            ("n".into(), JsonValue::Num(self.n as f64)),
            (
                "rows_consumed".into(),
                JsonValue::Num(self.rows_consumed as f64),
            ),
            (
                "rows_quarantined".into(),
                JsonValue::Num(self.rows_quarantined as f64),
            ),
            (
                "quarantined_corrupt".into(),
                JsonValue::Num(self.by_reason.0 as f64),
            ),
            (
                "quarantined_arity".into(),
                JsonValue::Num(self.by_reason.1 as f64),
            ),
            (
                "quarantined_source".into(),
                JsonValue::Num(self.by_reason.2 as f64),
            ),
            ("col_sums".into(), nums(&self.col_sums)),
            ("raw_upper".into(), nums(&self.raw_upper)),
        ])
    }

    /// Parses a checkpoint previously written by
    /// [`ScanCheckpoint::to_json`].
    ///
    /// # Errors
    ///
    /// Malformed JSON, a missing/mistyped field, an unsupported
    /// version, or parts that fail accumulator validation.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = obs::json::parse(text)
            .map_err(|e| RatioRuleError::Invalid(format!("checkpoint: {e}")))?;
        Self::from_json_value(&doc)
    }

    /// Parses a checkpoint from an already-parsed [`JsonValue`] tree
    /// (e.g. one field of a shard protocol message).
    ///
    /// # Errors
    ///
    /// Missing/mistyped fields, an unsupported version, or parts that
    /// fail accumulator validation.
    pub fn from_json_value(doc: &JsonValue) -> Result<Self> {
        let bad = |what: &str| RatioRuleError::Invalid(format!("checkpoint: {what}"));
        let int = |key: &str| -> Result<usize> {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .map(|v| v as usize)
                .ok_or_else(|| bad(&format!("missing integer field {key:?}")))
        };
        let floats = |key: &str| -> Result<Vec<f64>> {
            doc.get(key)
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| bad(&format!("missing array field {key:?}")))?
                .iter()
                .map(|v| v.as_f64().ok_or_else(|| bad("non-numeric array entry")))
                .collect()
        };
        if int("version")? != 1 {
            return Err(bad("unsupported version"));
        }
        let cp = ScanCheckpoint {
            m: int("m")?,
            n: int("n")?,
            rows_consumed: int("rows_consumed")?,
            rows_quarantined: int("rows_quarantined")?,
            by_reason: (
                int("quarantined_corrupt")?,
                int("quarantined_arity")?,
                int("quarantined_source")?,
            ),
            col_sums: floats("col_sums")?,
            raw_upper: floats("raw_upper")?,
        };
        // Validate shape eagerly so corrupt checkpoints fail at load.
        cp.accumulator()?;
        Ok(cp)
    }
}

// ---------------------------------------------------------------------
// Graceful-degradation ladder for the eigensolve
// ---------------------------------------------------------------------

/// One rung of the eigensolve ladder: produces `(eigenvalues,
/// eigenvectors-as-columns)` in descending order, or a failure message.
/// Implementations must not panic. Partial solvers (Lanczos) may return
/// fewer than `M` pairs; the caller pads the spectrum via the trace.
pub trait EigenStage {
    /// Stable name for reports and metrics.
    fn name(&self) -> &'static str;

    /// Attempts the decomposition.
    fn solve(&self, c: &Matrix) -> std::result::Result<(Vec<f64>, Vec<Vec<f64>>), String>;
}

/// Cyclic Jacobi (the default first rung: slowest but most robust to
/// mild asymmetry and clustered eigenvalues).
#[derive(Debug, Clone, Copy, Default)]
pub struct JacobiStage;

impl EigenStage for JacobiStage {
    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn solve(&self, c: &Matrix) -> std::result::Result<(Vec<f64>, Vec<Vec<f64>>), String> {
        let eig =
            linalg::jacobi::jacobi_eigen(c, linalg::eigen::DEFAULT_SYMMETRY_TOL)
                .map_err(|e| e.to_string())?;
        let vecs = (0..eig.eigenvalues.len())
            .map(|j| eig.eigenvectors.col(j))
            .collect();
        Ok((eig.eigenvalues, vecs))
    }
}

/// Householder tridiagonalization + implicit QL (the fast dense path).
#[derive(Debug, Clone, Copy, Default)]
pub struct QlStage;

impl EigenStage for QlStage {
    fn name(&self) -> &'static str {
        "tridiagonal_ql"
    }

    fn solve(&self, c: &Matrix) -> std::result::Result<(Vec<f64>, Vec<Vec<f64>>), String> {
        let eig = linalg::eigen::SymmetricEigen::new(c).map_err(|e| e.to_string())?;
        let vecs = (0..eig.dim()).map(|j| eig.eigenvector(j)).collect();
        Ok((eig.eigenvalues, vecs))
    }
}

/// Lanczos top-`k` (last resort: partial spectrum, cheapest per rule).
#[derive(Debug, Clone, Copy)]
pub struct LanczosStage {
    /// Ritz pairs to extract; `None` picks `min(M, 8)`.
    pub max_k: Option<usize>,
}

impl Default for LanczosStage {
    fn default() -> Self {
        LanczosStage { max_k: None }
    }
}

impl EigenStage for LanczosStage {
    fn name(&self) -> &'static str {
        "lanczos"
    }

    fn solve(&self, c: &Matrix) -> std::result::Result<(Vec<f64>, Vec<Vec<f64>>), String> {
        let m = c.rows();
        let k = self.max_k.unwrap_or_else(|| m.min(8)).clamp(1, m);
        let lz = linalg::lanczos::lanczos_top_k(c, k, None).map_err(|e| e.to_string())?;
        let vecs = (0..k).map(|j| lz.eigenvectors.col(j)).collect();
        Ok((lz.eigenvalues, vecs))
    }
}

/// Which level of the ladder ended up serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradationLevel {
    /// A stage delivered everything the cutoff asked for.
    FullRules,
    /// Every stage fell short of the cutoff, but some rules validated.
    FewerRules {
        /// Rules actually served.
        served: usize,
        /// Rules the cutoff wanted.
        wanted: usize,
    },
    /// No stage produced a single validated eigenpair; the paper's
    /// `k = 0` column-averages baseline serves.
    ColAvgs,
}

impl DegradationLevel {
    /// Numeric severity for the `degradation_level` gauge
    /// (0 full, 1 fewer rules, 2 col-avgs).
    pub fn severity(&self) -> u8 {
        match self {
            DegradationLevel::FullRules => 0,
            DegradationLevel::FewerRules { .. } => 1,
            DegradationLevel::ColAvgs => 2,
        }
    }
}

/// One ladder attempt: which stage, and how it fared.
#[derive(Debug, Clone)]
pub struct StageAttempt {
    /// Stage name.
    pub stage: &'static str,
    /// Eigenpairs that passed residual validation (of those wanted).
    pub validated: usize,
    /// Why the stage was insufficient (`None` when it served).
    pub failure: Option<String>,
}

/// What the degradation ladder did and why.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// Level that ended up serving.
    pub level: DegradationLevel,
    /// Stage that served (`None` for the col-avgs floor).
    pub served_by: Option<&'static str>,
    /// Rules the cutoff wanted.
    pub wanted: usize,
    /// Every attempt, in ladder order.
    pub attempts: Vec<StageAttempt>,
}

impl DegradationReport {
    /// True when anything short of a full solve happened.
    pub fn degraded(&self) -> bool {
        self.level != DegradationLevel::FullRules
    }

    /// One-line human summary for CLI output.
    pub fn summary(&self) -> String {
        let tried: Vec<String> = self
            .attempts
            .iter()
            .map(|a| match &a.failure {
                Some(why) => format!("{} failed ({why})", a.stage),
                None => format!("{} served", a.stage),
            })
            .collect();
        let level = match &self.level {
            DegradationLevel::FullRules => "full rules".to_string(),
            DegradationLevel::FewerRules { served, wanted } => {
                format!("degraded: {served}/{wanted} rules")
            }
            DegradationLevel::ColAvgs => "degraded to col-avgs baseline".to_string(),
        };
        if tried.is_empty() {
            format!("{level} [no eigensolve stages in the ladder]")
        } else {
            format!("{level} [{}]", tried.join("; "))
        }
    }
}

/// What a [`ResilientMiner`] serves: the mined rules when any stage
/// validated, or the paper's `k = 0` column-averages baseline when the
/// whole ladder failed.
#[derive(Debug, Clone)]
pub enum ServedModel {
    /// Ratio Rules (possibly fewer than the cutoff wanted).
    Rules(RuleSet),
    /// The `k = 0` floor: per-column training means.
    ColAvgs(ColAvgs),
}

impl ServedModel {
    /// Rules served (0 for the col-avgs floor).
    pub fn k(&self) -> usize {
        match self {
            ServedModel::Rules(rs) => rs.k(),
            ServedModel::ColAvgs(_) => 0,
        }
    }

    /// The rule set, when one was served.
    pub fn rules(&self) -> Option<&RuleSet> {
        match self {
            ServedModel::Rules(rs) => Some(rs),
            ServedModel::ColAvgs(_) => None,
        }
    }

    /// A hole-filling predictor for whatever was served.
    pub fn into_predictor(self) -> Box<dyn Predictor> {
        match self {
            ServedModel::Rules(rs) => Box::new(crate::predictor::RuleSetPredictor::new(rs)),
            ServedModel::ColAvgs(ca) => Box::new(ca),
        }
    }
}

/// Miner that never aborts on eigensolve failure: it walks the
/// [`EigenStage`] ladder, validates every candidate pair by residual,
/// and degrades to fewer rules or the col-avgs baseline instead of
/// erroring. Scan-side resilience lives in [`Scanner`]; this type owns
/// the solve side.
pub struct ResilientMiner {
    cutoff: Cutoff,
    labels: Option<Vec<String>>,
    ladder: Vec<Box<dyn EigenStage>>,
    /// Relative residual tolerance for accepting an eigenpair:
    /// `‖Cv - λv‖_inf <= tol * max(‖C‖_max, 1)`.
    residual_tol: f64,
}

impl std::fmt::Debug for ResilientMiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientMiner")
            .field("cutoff", &self.cutoff)
            .field(
                "ladder",
                &self.ladder.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("residual_tol", &self.residual_tol)
            .finish()
    }
}

impl ResilientMiner {
    /// Default ladder: Jacobi → tridiagonal QL → Lanczos.
    pub fn new(cutoff: Cutoff) -> Self {
        ResilientMiner {
            cutoff,
            labels: None,
            ladder: vec![
                Box::new(JacobiStage),
                Box::new(QlStage),
                Box::new(LanczosStage::default()),
            ],
            residual_tol: 1e-6,
        }
    }

    /// Replaces the ladder (tests inject failing stages here).
    pub fn with_ladder(mut self, ladder: Vec<Box<dyn EigenStage>>) -> Self {
        self.ladder = ladder;
        self
    }

    /// Attaches attribute labels.
    pub fn with_labels(mut self, labels: Vec<String>) -> Self {
        self.labels = Some(labels);
        self
    }

    /// Overrides the residual acceptance tolerance.
    pub fn with_residual_tol(mut self, tol: f64) -> Self {
        self.residual_tol = tol;
        self
    }

    /// Validated prefix length: how many leading `(λ, v)` pairs satisfy
    /// `‖Cv - λv‖_inf <= tol * max(‖C‖_max, 1)` with finite values and
    /// nonzero `v`. Stops at the first failure — rules are a top-`k`
    /// prefix, so a gap invalidates everything after it.
    fn validated_prefix(
        &self,
        c: &Matrix,
        values: &[f64],
        vectors: &[Vec<f64>],
        want: usize,
    ) -> usize {
        let m = c.rows();
        let scale = c.max_abs().max(1.0) * self.residual_tol;
        let mut ok = 0usize;
        for (lambda, v) in values.iter().zip(vectors).take(want) {
            if !lambda.is_finite() || v.len() != m {
                break;
            }
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if !norm.is_finite() || norm < 1e-12 {
                break;
            }
            // ‖Cv - λv‖_inf, computed row by row.
            let mut worst = 0.0_f64;
            for i in 0..m {
                let mut cv = 0.0;
                for (j, vj) in v.iter().enumerate() {
                    cv += c[(i, j)] * vj;
                }
                worst = worst.max((cv - lambda * v[i]).abs());
            }
            if !worst.is_finite() || worst > scale * norm.max(1.0) {
                break;
            }
            ok += 1;
        }
        ok
    }

    /// Pads a (possibly partial) spectrum to length `M` so the Eq. 1
    /// energy denominator equals `trace(C)` exactly — same construction
    /// as the Lanczos path in [`crate::miner`].
    fn pad_spectrum(c: &Matrix, values: &[f64]) -> Vec<f64> {
        let m = c.rows();
        let mut spectrum = values.to_vec();
        if spectrum.len() < m {
            let top_sum: f64 = spectrum.iter().sum();
            let tail = (c.trace() - top_sum).max(0.0);
            let remaining = m - spectrum.len();
            spectrum.extend(std::iter::repeat_n(tail / remaining as f64, remaining));
        }
        spectrum
    }

    /// Runs the ladder over a filled accumulator. Only truly unrecoverable
    /// conditions (an empty accumulator) return `Err`; everything else
    /// degrades and reports.
    pub fn finish(
        &self,
        acc: &CovarianceAccumulator,
    ) -> Result<(ServedModel, DegradationReport)> {
        let _span = obs::Span::enter("eigensolve_ladder");
        let (c, means, n) = acc.finalize()?;
        let labels = self
            .labels
            .clone()
            .unwrap_or_else(|| (0..acc.n_cols()).map(|j| format!("attr{j}")).collect());

        let mut attempts: Vec<StageAttempt> = Vec::new();
        // Best partial result seen so far: (validated, values, vectors,
        // spectrum, stage).
        let mut best: Option<(usize, Vec<f64>, Vec<Vec<f64>>, Vec<f64>, &'static str)> = None;
        let mut wanted_overall = 0usize;

        for stage in &self.ladder {
            let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                stage.solve(&c)
            }))
            .unwrap_or_else(|p| {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".into());
                Err(format!("stage panicked: {msg}"))
            });
            match solved {
                Err(why) => {
                    obs::counter_add("eigen_stage_failures_total", 1);
                    let panicked = u64::from(why.starts_with("stage panicked"));
                    obs::flight_event(
                        obs::names::EVENT_EIGEN_STAGE_FAILED,
                        attempts.len() as u64,
                        panicked,
                        0.0,
                    );
                    attempts.push(StageAttempt {
                        stage: stage.name(),
                        validated: 0,
                        failure: Some(why),
                    });
                }
                Ok((values, vectors)) => {
                    let spectrum = Self::pad_spectrum(&c, &values);
                    let wanted = match self.cutoff.select(&spectrum) {
                        Ok(k) => k,
                        Err(e) => {
                            obs::counter_add("eigen_stage_failures_total", 1);
                            obs::flight_event(
                                obs::names::EVENT_EIGEN_STAGE_FAILED,
                                attempts.len() as u64,
                                0,
                                0.0,
                            );
                            attempts.push(StageAttempt {
                                stage: stage.name(),
                                validated: 0,
                                failure: Some(format!("cutoff rejected spectrum: {e}")),
                            });
                            continue;
                        }
                    };
                    wanted_overall = wanted_overall.max(wanted);
                    let usable = wanted.min(values.len()).min(vectors.len());
                    let validated = self.validated_prefix(&c, &values, &vectors, usable);
                    if validated >= wanted {
                        attempts.push(StageAttempt {
                            stage: stage.name(),
                            validated,
                            failure: None,
                        });
                        let rules = self.assemble(
                            &values, &vectors, spectrum, wanted, means, labels, n,
                        )?;
                        let report = DegradationReport {
                            level: DegradationLevel::FullRules,
                            served_by: Some(stage.name()),
                            wanted,
                            attempts,
                        };
                        Self::publish(&report);
                        return Ok((ServedModel::Rules(rules), report));
                    }
                    obs::counter_add("eigen_stage_failures_total", 1);
                    obs::flight_event(
                        obs::names::EVENT_EIGEN_STAGE_FAILED,
                        attempts.len() as u64,
                        0,
                        0.0,
                    );
                    attempts.push(StageAttempt {
                        stage: stage.name(),
                        validated,
                        failure: Some(format!(
                            "only {validated} of {wanted} eigenpairs passed residual validation"
                        )),
                    });
                    let better = best
                        .as_ref()
                        .is_none_or(|(v, ..)| validated > *v);
                    if validated > 0 && better {
                        best = Some((validated, values, vectors, spectrum, stage.name()));
                    }
                }
            }
        }

        // No stage satisfied the cutoff: serve the best partial, else
        // the col-avgs floor.
        if let Some((served, values, vectors, spectrum, stage)) = best {
            let rules =
                self.assemble(&values, &vectors, spectrum, served, means, labels, n)?;
            let report = DegradationReport {
                level: DegradationLevel::FewerRules {
                    served,
                    wanted: wanted_overall.max(served),
                },
                served_by: Some(stage),
                wanted: wanted_overall.max(served),
                attempts,
            };
            Self::publish(&report);
            return Ok((ServedModel::Rules(rules), report));
        }
        let report = DegradationReport {
            level: DegradationLevel::ColAvgs,
            served_by: None,
            wanted: wanted_overall,
            attempts,
        };
        Self::publish(&report);
        Ok((ServedModel::ColAvgs(ColAvgs::new(means)?), report))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        values: &[f64],
        vectors: &[Vec<f64>],
        spectrum: Vec<f64>,
        k: usize,
        means: Vec<f64>,
        labels: Vec<String>,
        n: usize,
    ) -> Result<RuleSet> {
        let rules: Vec<RatioRule> = (0..k)
            .map(|j| RatioRule {
                loadings: vectors[j].clone(),
                eigenvalue: values[j],
            })
            .collect();
        RuleSet::new(rules, means, spectrum, labels, n)
    }

    fn publish(report: &DegradationReport) {
        obs::gauge_set("degradation_level", report.level.severity() as f64);
        let served = match report.level {
            DegradationLevel::FullRules => report.wanted,
            DegradationLevel::FewerRules { served, .. } => served,
            DegradationLevel::ColAvgs => 0,
        };
        obs::flight_event(
            obs::names::EVENT_DEGRADATION_SERVED,
            u64::from(report.level.severity()),
            0,
            served as f64,
        );
        if report.degraded() {
            obs::counter_add("degraded_results_total", 1);
        }
    }
}

/// Convenience: full resilient pipeline over a row source — quarantine
/// scan (under `policy`) then the degradation ladder. Returns the served
/// model plus both reports.
pub fn mine_resilient<S: RowSource>(
    source: &mut S,
    cutoff: Cutoff,
    policy: ScanPolicy,
    labels: Option<Vec<String>>,
) -> Result<(ServedModel, ScanReport, DegradationReport)> {
    let mut scanner = Scanner::new(source.n_cols(), policy);
    scanner.scan(source)?;
    let (acc, scan_report) = scanner.into_parts();
    let mut miner = ResilientMiner::new(cutoff);
    if let Some(labels) = labels {
        miner = miner.with_labels(labels);
    }
    let (model, degradation) = miner.finish(&acc)?;
    Ok((model, scan_report, degradation))
}

/// Convenience: the columnar twin of [`mine_resilient`] — quarantine
/// scan over an `RRCB` block file (block-granularity accounting, blocked
/// kernel) then the degradation ladder.
///
/// # Errors
///
/// Anything [`Scanner::scan_columnar`] or the degradation ladder can
/// return.
pub fn mine_resilient_columnar(
    source: &mut ColumnarBlockSource,
    cutoff: Cutoff,
    policy: ScanPolicy,
    labels: Option<Vec<String>>,
) -> Result<(ServedModel, ScanReport, DegradationReport)> {
    let mut scanner = Scanner::new(source.n_cols(), policy);
    scanner.scan_columnar(source)?;
    let (acc, scan_report) = scanner.into_parts();
    let mut miner = ResilientMiner::new(cutoff);
    if let Some(labels) = labels {
        miner = miner.with_labels(labels);
    }
    let (model, degradation) = miner.finish(&acc)?;
    Ok((model, scan_report, degradation))
}

/// Strict single-pass scan used by [`RatioRuleMiner::fit`] — kept here
/// so the policy-aware machinery and the historical hot loop live side
/// by side. Equivalent to `Scanner::new(m, Strict).scan(source)` but
/// without the per-row policy dispatch.
pub(crate) fn scan_strict<S: RowSource>(source: &mut S) -> Result<CovarianceAccumulator> {
    let m = source.n_cols();
    let mut acc = CovarianceAccumulator::new(m);
    source.rewind()?;
    let mut buf = vec![0.0_f64; m];
    let _span = obs::Span::enter("covariance_scan");
    // rrlint-allow: RR003 wall clock feeds obs throughput gauges only, never results
    let start = obs::enabled().then(std::time::Instant::now);
    obs::gauge_set(obs::names::COVARIANCE_BLOCK_ROWS, acc.block_rows() as f64);
    let mut rows = 0u64;
    while source.next_row(&mut buf)? {
        acc.push_row(&buf)?;
        rows += 1;
    }
    if let Some(start) = start {
        obs::counter_add("covariance_rows_scanned_total", rows);
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            obs::gauge_set("covariance_rows_per_s", rows as f64 / secs);
            obs::gauge_set(obs::names::SCAN_SHARD_0_ROWS_PER_S, rows as f64 / secs);
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::fault::{FaultPlan, FaultyRowSource};
    use dataset::source::MatrixSource;

    fn data(n: usize, m: usize) -> Matrix {
        Matrix::from_fn(n, m, |i, j| {
            let t = i as f64;
            t * (j as f64 + 1.0) + ((i * 7 + j * 3) % 11) as f64 * 0.01
        })
    }

    fn scan_matrix(x: &Matrix, policy: ScanPolicy) -> (CovarianceAccumulator, ScanReport) {
        let mut scanner = Scanner::new(x.cols(), policy);
        let mut src = MatrixSource::new(x);
        scanner.scan(&mut src).unwrap();
        scanner.into_parts()
    }

    #[test]
    fn strict_scan_matches_plain_accumulation() {
        let x = data(40, 3);
        let (acc, report) = scan_matrix(&x, ScanPolicy::Strict);
        assert_eq!(report.rows_absorbed, 40);
        assert_eq!(report.rows_quarantined, 0);
        let mut plain = CovarianceAccumulator::new(3);
        for row in x.row_iter() {
            plain.push_row(row).unwrap();
        }
        let (c1, m1, _) = acc.finalize().unwrap();
        let (c2, m2, _) = plain.finalize().unwrap();
        assert_eq!(m1, m2, "bit-identical means");
        assert_eq!(c1.max_abs_diff(&c2).unwrap(), 0.0, "bit-identical scatter");
    }

    #[test]
    fn strict_scan_fails_fast_on_faults() {
        let x = data(100, 3);
        let plan = FaultPlan {
            seed: 9,
            transient_rate: 0.0,
            corrupt_rate: 0.1,
            arity_rate: 0.0,
            truncate_after: None,
        };
        let mut src = FaultyRowSource::new(MatrixSource::new(&x), plan);
        let mut scanner = Scanner::new(3, ScanPolicy::Strict);
        let err = scanner.scan(&mut src).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    /// The tentpole equivalence: a quarantine scan over a faulty stream
    /// produces the exact accumulator of a clean scan over only the
    /// good rows.
    #[test]
    fn quarantine_equals_clean_subset_bitwise() {
        let x = data(250, 4);
        for (seed, rate) in [(1u64, 0.01), (2, 0.1), (3, 0.25)] {
            let plan = FaultPlan {
                seed,
                transient_rate: rate,
                corrupt_rate: rate,
                arity_rate: rate,
                truncate_after: None,
            };
            let mut faulty = FaultyRowSource::new(MatrixSource::new(&x), plan);
            let mut scanner = Scanner::new(4, ScanPolicy::quarantine_unlimited());
            scanner.scan(&mut faulty).unwrap();
            let (acc, report) = scanner.into_parts();

            // Reference: push exactly the plan's clean rows.
            let mut reference = CovarianceAccumulator::new(4);
            let mut clean = 0usize;
            for pos in 0..250 {
                if plan.row_is_clean(pos, 4) {
                    reference.push_row(x.row(pos)).unwrap();
                    clean += 1;
                }
            }
            assert_eq!(acc.n_rows(), clean, "seed {seed} rate {rate}");
            assert_eq!(report.rows_absorbed, clean);
            assert_eq!(report.rows_quarantined, 250 - clean);
            let (n1, s1, r1) = acc.parts();
            let (n2, s2, r2) = reference.parts();
            assert_eq!(n1, n2);
            assert_eq!(s1, s2, "column sums must be bit-identical");
            assert_eq!(r1, r2, "moment matrix must be bit-identical");
            // Transients were ridden out, not quarantined.
            let injected = faulty.log();
            assert_eq!(report.transient_retries, injected.transient);
            assert_eq!(report.by_reason.0, injected.corrupt);
            assert_eq!(report.by_reason.1, injected.arity);
        }
    }

    #[test]
    fn max_bad_rows_budget_aborts_with_distinct_error() {
        let x = data(200, 3);
        let plan = FaultPlan {
            seed: 4,
            transient_rate: 0.0,
            corrupt_rate: 0.2,
            arity_rate: 0.0,
            truncate_after: None,
        };
        let mut src = FaultyRowSource::new(MatrixSource::new(&x), plan);
        let mut scanner = Scanner::new(
            3,
            ScanPolicy::Quarantine {
                max_bad_rows: Some(3),
                max_bad_fraction: None,
            },
        );
        let err = scanner.scan(&mut src).unwrap_err();
        match err {
            RatioRuleError::BudgetExhausted {
                quarantined, limit, ..
            } => {
                assert_eq!(quarantined, 4, "aborts on the first row over budget");
                assert!(limit.contains("max_bad_rows"));
            }
            other => panic!("expected BudgetExhausted, got {other}"),
        }
    }

    #[test]
    fn max_bad_fraction_budget_checked_at_end() {
        let x = data(100, 3);
        let plan = FaultPlan {
            seed: 4,
            transient_rate: 0.0,
            corrupt_rate: 0.2,
            arity_rate: 0.0,
            truncate_after: None,
        };
        // Generous fraction: passes.
        let mut src = FaultyRowSource::new(MatrixSource::new(&x), plan);
        let mut scanner = Scanner::new(
            3,
            ScanPolicy::Quarantine {
                max_bad_rows: None,
                max_bad_fraction: Some(0.9),
            },
        );
        scanner.scan(&mut src).unwrap();
        let quarantined = scanner.report().rows_quarantined;
        assert!(quarantined > 0);
        // Tight fraction: the same stream trips the budget.
        let mut src = FaultyRowSource::new(MatrixSource::new(&x), plan);
        let mut scanner = Scanner::new(
            3,
            ScanPolicy::Quarantine {
                max_bad_rows: None,
                max_bad_fraction: Some(0.01),
            },
        );
        let err = scanner.scan(&mut src).unwrap_err();
        assert!(matches!(err, RatioRuleError::BudgetExhausted { .. }));
    }

    #[test]
    fn checkpoint_json_roundtrips_exactly() {
        let x = data(37, 5);
        let (acc, _) = scan_matrix(&x, ScanPolicy::Strict);
        let report = ScanReport {
            rows_quarantined: 3,
            by_reason: (2, 1, 0),
            ..ScanReport::default()
        };
        let cp = ScanCheckpoint::capture(&acc, 40, &report);
        let text = cp.to_json();
        let back = ScanCheckpoint::from_json(&text).unwrap();
        assert_eq!(cp, back, "exact f64 round-trip through JSON");
        let acc2 = back.accumulator().unwrap();
        let (n1, s1, r1) = acc.parts();
        let (n2, s2, r2) = acc2.parts();
        assert_eq!(n1, n2);
        assert_eq!(s1, s2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn checkpoint_rejects_corrupt_documents() {
        assert!(ScanCheckpoint::from_json("not json").is_err());
        assert!(ScanCheckpoint::from_json("{}").is_err());
        // Wrong moment-vector length.
        let bad = r#"{"version":1,"m":3,"n":2,"rows_consumed":2,
            "rows_quarantined":0,"quarantined_corrupt":0,
            "quarantined_arity":0,"quarantined_source":0,
            "col_sums":[1,2,3],"raw_upper":[1,2]}"#;
        assert!(ScanCheckpoint::from_json(bad).is_err());
    }

    /// The tentpole resume property: checkpoint at any row + resume over
    /// the same stream == one uninterrupted scan, bit for bit.
    #[test]
    fn checkpoint_resume_equals_uninterrupted() {
        let x = data(120, 4);
        let plan = FaultPlan {
            seed: 21,
            transient_rate: 0.05,
            corrupt_rate: 0.05,
            arity_rate: 0.05,
            truncate_after: None,
        };
        // Uninterrupted quarantine scan.
        let mut whole = Scanner::new(4, ScanPolicy::quarantine_unlimited());
        whole
            .scan(&mut FaultyRowSource::new(MatrixSource::new(&x), plan))
            .unwrap();
        let (acc_whole, rep_whole) = whole.into_parts();

        for stop_after in [1usize, 13, 57, 119] {
            // First scan, truncated by an injected crash.
            let crash_plan = FaultPlan {
                truncate_after: Some(stop_after),
                ..plan
            };
            let mut first = Scanner::new(4, ScanPolicy::quarantine_unlimited());
            first
                .scan(&mut FaultyRowSource::new(MatrixSource::new(&x), crash_plan))
                .unwrap();
            let cp = ScanCheckpoint::from_json(&first.checkpoint().to_json()).unwrap();
            assert!(cp.rows_consumed <= stop_after + 1);

            // Resume over a fresh faulty stream (transients re-armed:
            // a new process would see them again; they must not shift
            // the cursor).
            let mut resumed = Scanner::resume(&cp, ScanPolicy::quarantine_unlimited()).unwrap();
            resumed
                .scan(&mut FaultyRowSource::new(MatrixSource::new(&x), plan))
                .unwrap();
            let (acc_res, rep_res) = resumed.into_parts();

            let (n1, s1, r1) = acc_whole.parts();
            let (n2, s2, r2) = acc_res.parts();
            assert_eq!(n1, n2, "stop_after {stop_after}");
            assert_eq!(s1, s2, "stop_after {stop_after}: column sums");
            assert_eq!(r1, r2, "stop_after {stop_after}: moments");
            assert_eq!(rep_whole.rows_quarantined, rep_res.rows_quarantined);
            assert_eq!(rep_res.resumed_from, cp.rows_consumed);
        }
    }

    #[test]
    fn resume_past_end_of_stream_is_an_error() {
        let x = data(10, 3);
        let (acc, _) = scan_matrix(&x, ScanPolicy::Strict);
        let cp = ScanCheckpoint::capture(&acc, 99, &ScanReport::default());
        let mut scanner = Scanner::resume(&cp, ScanPolicy::Strict).unwrap();
        let err = scanner.scan(&mut MatrixSource::new(&x)).unwrap_err();
        assert!(err.to_string().contains("cannot resume"), "{err}");
    }

    #[test]
    fn wedged_source_is_cut_off() {
        /// Fails transiently forever without ever yielding a row — the
        /// pathological case the consecutive-error cap exists for.
        struct WedgedSrc;
        impl dataset::source::RowSource for WedgedSrc {
            fn n_cols(&self) -> usize {
                2
            }
            fn next_row(&mut self, _buf: &mut [f64]) -> dataset::Result<bool> {
                Err(dataset::DatasetError::Transient("stuck".into()))
            }
            fn rewind(&mut self) -> dataset::Result<()> {
                Ok(())
            }
        }
        let mut scanner = Scanner::new(2, ScanPolicy::quarantine_unlimited());
        let err = scanner.scan(&mut WedgedSrc).unwrap_err();
        assert!(err.to_string().contains("without yielding a row"), "{err}");
    }

    // ------------------------------------------------------------------
    // Ladder tests
    // ------------------------------------------------------------------

    /// A stage that always fails (for ladder tests).
    struct FailStage;
    impl EigenStage for FailStage {
        fn name(&self) -> &'static str {
            "always_fail"
        }
        fn solve(&self, _c: &Matrix) -> std::result::Result<(Vec<f64>, Vec<Vec<f64>>), String> {
            Err("injected failure".into())
        }
    }

    /// A stage that panics (proving panic isolation in the ladder).
    struct PanicStage;
    impl EigenStage for PanicStage {
        fn name(&self) -> &'static str {
            "panics"
        }
        fn solve(&self, _c: &Matrix) -> std::result::Result<(Vec<f64>, Vec<Vec<f64>>), String> {
            panic!("solver exploded");
        }
    }

    /// A stage returning garbage eigenpairs that cannot pass validation.
    struct GarbageStage;
    impl EigenStage for GarbageStage {
        fn name(&self) -> &'static str {
            "garbage"
        }
        fn solve(&self, c: &Matrix) -> std::result::Result<(Vec<f64>, Vec<Vec<f64>>), String> {
            let m = c.rows();
            Ok((vec![1.0; m], vec![vec![1.0; m]; m]))
        }
    }

    fn filled_acc(x: &Matrix) -> CovarianceAccumulator {
        let mut acc = CovarianceAccumulator::new(x.cols());
        for row in x.row_iter() {
            acc.push_row(row).unwrap();
        }
        acc
    }

    #[test]
    fn healthy_ladder_matches_plain_miner() {
        let x = data(80, 4);
        let acc = filled_acc(&x);
        let (model, report) = ResilientMiner::new(Cutoff::FixedK(2))
            .finish(&acc)
            .unwrap();
        assert_eq!(report.level, DegradationLevel::FullRules);
        assert_eq!(report.served_by, Some("jacobi"));
        assert!(!report.degraded());
        let rules = model.rules().unwrap();
        let plain = RatioRuleMiner::new(Cutoff::FixedK(2)).finish(&acc).unwrap();
        assert_eq!(rules.k(), plain.k());
        for (a, b) in rules.rules().iter().zip(plain.rules()) {
            assert!((a.eigenvalue - b.eigenvalue).abs() < 1e-8 * a.eigenvalue.max(1.0));
            for (p, q) in a.loadings.iter().zip(&b.loadings) {
                assert!((p - q).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn ladder_falls_through_failing_and_panicking_stages() {
        let x = data(60, 3);
        let acc = filled_acc(&x);
        let (model, report) = ResilientMiner::new(Cutoff::FixedK(1))
            .with_ladder(vec![
                Box::new(FailStage),
                Box::new(PanicStage),
                Box::new(QlStage),
            ])
            .finish(&acc)
            .unwrap();
        assert_eq!(report.level, DegradationLevel::FullRules);
        assert_eq!(report.served_by, Some("tridiagonal_ql"));
        assert_eq!(report.attempts.len(), 3);
        assert!(report.attempts[0].failure.as_deref() == Some("injected failure"));
        assert!(report.attempts[1]
            .failure
            .as_deref()
            .unwrap()
            .contains("solver exploded"));
        assert!(model.rules().is_some());
    }

    #[test]
    fn total_ladder_failure_degrades_to_col_avgs() {
        let x = data(60, 3);
        let acc = filled_acc(&x);
        let (model, report) = ResilientMiner::new(Cutoff::FixedK(2))
            .with_ladder(vec![Box::new(FailStage), Box::new(GarbageStage)])
            .finish(&acc)
            .unwrap();
        assert_eq!(report.level, DegradationLevel::ColAvgs);
        assert_eq!(report.level.severity(), 2);
        assert!(report.served_by.is_none());
        assert!(report.degraded());
        assert_eq!(model.k(), 0);
        // The floor serves the exact training means — the paper's k = 0
        // baseline.
        let means = acc.column_means();
        match &model {
            ServedModel::ColAvgs(ca) => assert_eq!(ca.means(), &means[..]),
            other => panic!("expected col-avgs, got {other:?}"),
        }
        // And it still predicts.
        let p = model.into_predictor();
        let filled = p
            .fill(&dataset::holes::HoledRow::new(vec![None, Some(1.0), None]))
            .unwrap();
        assert_eq!(filled[0], means[0]);
        assert_eq!(filled[2], means[2]);
        // Every attempt is on record.
        assert!(report.summary().contains("col-avgs"));
        assert!(report.summary().contains("always_fail"));
    }

    #[test]
    fn partial_validation_serves_fewer_rules() {
        // A stage that returns the true top-1 pair plus garbage for the
        // rest: validation keeps the good prefix only.
        struct Top1Stage;
        impl EigenStage for Top1Stage {
            fn name(&self) -> &'static str {
                "top1"
            }
            fn solve(
                &self,
                c: &Matrix,
            ) -> std::result::Result<(Vec<f64>, Vec<Vec<f64>>), String> {
                let eig = linalg::eigen::SymmetricEigen::new(c).map_err(|e| e.to_string())?;
                let m = c.rows();
                let mut values = vec![eig.eigenvalues[0]];
                let mut vectors = vec![eig.eigenvector(0)];
                for _ in 1..m {
                    values.push(f64::NAN);
                    vectors.push(vec![0.0; m]);
                }
                Ok((values, vectors))
            }
        }
        let x = data(60, 3);
        let acc = filled_acc(&x);
        let (model, report) = ResilientMiner::new(Cutoff::FixedK(3))
            .with_ladder(vec![Box::new(Top1Stage)])
            .finish(&acc)
            .unwrap();
        match report.level {
            DegradationLevel::FewerRules { served, wanted } => {
                assert_eq!(served, 1);
                assert_eq!(wanted, 3);
            }
            ref other => panic!("expected FewerRules, got {other:?}"),
        }
        assert_eq!(model.k(), 1);
        assert!(report.summary().contains("1/3"));
    }

    #[test]
    fn empty_accumulator_is_still_an_error() {
        let acc = CovarianceAccumulator::new(3);
        assert!(ResilientMiner::new(Cutoff::default()).finish(&acc).is_err());
    }

    #[test]
    fn mine_resilient_end_to_end_over_faulty_stream() {
        let x = data(150, 3);
        let plan = FaultPlan {
            seed: 77,
            transient_rate: 0.02,
            corrupt_rate: 0.05,
            arity_rate: 0.02,
            truncate_after: None,
        };
        let mut src = FaultyRowSource::new(MatrixSource::new(&x), plan);
        let (model, scan, degradation) = mine_resilient(
            &mut src,
            Cutoff::default(),
            ScanPolicy::quarantine_unlimited(),
            Some(vec!["a".into(), "b".into(), "c".into()]),
        )
        .unwrap();
        assert!(scan.rows_quarantined > 0);
        assert!(scan.rows_absorbed + scan.rows_quarantined == 150);
        assert_eq!(degradation.level, DegradationLevel::FullRules);
        let rules = model.rules().unwrap();
        assert_eq!(rules.attribute_labels(), &["a", "b", "c"]);
        // Matches mining the clean subset directly.
        let mut reference = CovarianceAccumulator::new(3);
        for pos in 0..150 {
            if plan.row_is_clean(pos, 3) {
                reference.push_row(x.row(pos)).unwrap();
            }
        }
        let ref_rules = RatioRuleMiner::new(Cutoff::default())
            .finish(&reference)
            .unwrap();
        assert_eq!(rules.k(), ref_rules.k());
        for (a, b) in rules.rules().iter().zip(ref_rules.rules()) {
            assert!((a.eigenvalue - b.eigenvalue).abs() < 1e-7 * a.eigenvalue.max(1.0));
        }
    }

    #[test]
    fn scan_publishes_resilience_metrics() {
        // One non-transient I/O error mid-stream, so the source_error
        // quarantine reason fires alongside corrupt cells and ragged
        // rows. The error consumes a row position but no inner row.
        struct OneIoError<S> {
            inner: S,
            fired: bool,
        }
        impl<S: RowSource> RowSource for OneIoError<S> {
            fn n_cols(&self) -> usize {
                self.inner.n_cols()
            }
            fn next_row(&mut self, buf: &mut [f64]) -> dataset::Result<bool> {
                if !self.fired {
                    self.fired = true;
                    return Err(dataset::DatasetError::Io(std::io::Error::other(
                        "disk hiccup",
                    )));
                }
                self.inner.next_row(buf)
            }
            fn rewind(&mut self) -> dataset::Result<()> {
                self.inner.rewind()
            }
        }
        obs::set_enabled(true);
        let x = data(100, 3);
        let plan = FaultPlan {
            seed: 8,
            transient_rate: 0.05,
            corrupt_rate: 0.1,
            arity_rate: 0.1,
            truncate_after: None,
        };
        let mut src = OneIoError {
            inner: FaultyRowSource::new(MatrixSource::new(&x), plan),
            fired: false,
        };
        let mut scanner = Scanner::new(3, ScanPolicy::quarantine_unlimited());
        scanner.scan(&mut src).unwrap();
        let snap = obs::global().snapshot();
        assert!(snap.counter("scan_rows_quarantined_total").unwrap() >= 3);
        // Every per-reason counter the registry declares is actually
        // produced (rrlint's dead-name check keys off these constants).
        assert!(
            snap.counter(obs::names::SCAN_ROWS_QUARANTINED_CORRUPT_CELL_TOTAL)
                .unwrap()
                >= 1
        );
        assert!(
            snap.counter(obs::names::SCAN_ROWS_QUARANTINED_ARITY_MISMATCH_TOTAL)
                .unwrap()
                >= 1
        );
        assert!(
            snap.counter(obs::names::SCAN_ROWS_QUARANTINED_SOURCE_ERROR_TOTAL)
                .unwrap()
                >= 1
        );
        assert!(snap.counter("faults_injected_corrupt_total").unwrap() >= 1);
    }

    fn block_file(name: &str, x: &Matrix) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rr_resilience_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        dataset::columnar::write_block_file(&path, x.cols(), x.rows(), x.data()).unwrap();
        path
    }

    #[test]
    fn columnar_scan_matches_row_scan_bitwise() {
        let x = data(137, 5);
        let path = block_file("clean.rrcb", &x);
        let (row_acc, _) = scan_matrix(&x, ScanPolicy::Strict);
        for policy in [ScanPolicy::Strict, ScanPolicy::quarantine_unlimited()] {
            let mut src = ColumnarBlockSource::open(&path).unwrap();
            let mut scanner = Scanner::new(5, policy);
            scanner.scan_columnar(&mut src).unwrap();
            let (acc, report) = scanner.into_parts();
            assert_eq!(report.rows_absorbed, 137);
            assert_eq!(report.rows_quarantined, 0);
            let (n1, s1, r1) = acc.parts();
            let (n2, s2, r2) = row_acc.parts();
            assert_eq!(n1, n2);
            assert_eq!(s1, s2, "column sums must be bit-identical");
            assert_eq!(r1, r2, "moment matrix must be bit-identical");
        }
    }

    #[test]
    fn columnar_quarantine_attributes_exact_rows() {
        // Poison two rows in different panels; the block file stores
        // them verbatim (the container is format-agnostic), so the scan
        // policy is what catches them.
        let mut x = data(150, 4);
        let bad = [5usize, 67, 149];
        for &r in &bad {
            x.data_mut()[r * 4 + 2] = f64::NAN;
        }
        let path = block_file("poisoned.rrcb", &x);
        let mut src = ColumnarBlockSource::open(&path).unwrap();
        let mut scanner = Scanner::new(4, ScanPolicy::quarantine_unlimited());
        let report = scanner.scan_columnar(&mut src).unwrap().clone();
        assert_eq!(report.rows_absorbed, 147);
        assert_eq!(report.rows_quarantined, 3);
        assert_eq!(report.by_reason, (3, 0, 0));
        let positions: Vec<usize> = report.details.iter().map(|d| d.position).collect();
        assert_eq!(positions, bad, "per-row attribution inside rejected blocks");
        for d in &report.details {
            assert!(d.detail.contains("non-finite"), "{}", d.detail);
        }
        // Bit-identical to pushing only the clean rows.
        let (acc, _) = scanner.into_parts();
        let mut reference = CovarianceAccumulator::new(4);
        for r in 0..150 {
            if !bad.contains(&r) {
                reference.push_row(x.row(r)).unwrap();
            }
        }
        let (n1, s1, r1) = acc.parts();
        let (n2, s2, r2) = reference.parts();
        assert_eq!(n1, n2);
        assert_eq!(s1, s2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn columnar_strict_aborts_on_corrupt_block() {
        let mut x = data(40, 3);
        x.data_mut()[10 * 3 + 1] = f64::INFINITY;
        let path = block_file("strict.rrcb", &x);
        let mut src = ColumnarBlockSource::open(&path).unwrap();
        let mut scanner = Scanner::new(3, ScanPolicy::Strict);
        let err = scanner.scan_columnar(&mut src).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn columnar_checkpoint_resume_equals_uninterrupted() {
        let x = data(200, 4);
        let full = block_file("resume_full.rrcb", &x);
        // First half as its own file: the "process died here" prefix.
        let k = 83; // mid-panel on purpose
        let head = Matrix::from_fn(k, 4, |i, j| x.row(i)[j]);
        let head_path = block_file("resume_head.rrcb", &head);

        let mut first = Scanner::new(4, ScanPolicy::quarantine_unlimited());
        let mut head_src = ColumnarBlockSource::open(&head_path).unwrap();
        first.scan_columnar(&mut head_src).unwrap();
        let ckpt = first.checkpoint();
        assert_eq!(ckpt.rows_consumed, k);

        let mut resumed = Scanner::resume(&ckpt, ScanPolicy::quarantine_unlimited()).unwrap();
        let mut full_src = ColumnarBlockSource::open(&full).unwrap();
        let report = resumed.scan_columnar(&mut full_src).unwrap();
        assert_eq!(report.resumed_from, k);
        assert_eq!(report.rows_absorbed, 200);
        let (acc, _) = resumed.into_parts();

        let mut uninterrupted = Scanner::new(4, ScanPolicy::quarantine_unlimited());
        let mut src = ColumnarBlockSource::open(&full).unwrap();
        uninterrupted.scan_columnar(&mut src).unwrap();
        let (ref_acc, _) = uninterrupted.into_parts();

        let (n1, s1, r1) = acc.parts();
        let (n2, s2, r2) = ref_acc.parts();
        assert_eq!(n1, n2);
        assert_eq!(s1, s2, "resumed column sums must be bit-identical");
        assert_eq!(r1, r2, "resumed moment matrix must be bit-identical");
    }

    #[test]
    fn columnar_resume_rejects_shrunk_file() {
        let x = data(60, 3);
        let path = block_file("shrunk.rrcb", &x);
        let mut scanner = Scanner::new(3, ScanPolicy::Strict);
        let mut src = ColumnarBlockSource::open(&path).unwrap();
        scanner.scan_columnar(&mut src).unwrap();
        let ckpt = scanner.checkpoint();

        let small = Matrix::from_fn(10, 3, |i, j| x.row(i)[j]);
        let small_path = block_file("shrunk_small.rrcb", &small);
        let mut resumed = Scanner::resume(&ckpt, ScanPolicy::Strict).unwrap();
        let mut small_src = ColumnarBlockSource::open(&small_path).unwrap();
        let err = resumed.scan_columnar(&mut small_src).unwrap_err();
        assert!(err.to_string().contains("cannot resume"), "{err}");
    }

    #[test]
    fn mine_resilient_columnar_equals_row_mining_bitwise() {
        let x = data(120, 4);
        let path = block_file("mine.rrcb", &x);
        let labels: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let mut src = ColumnarBlockSource::open(&path).unwrap();
        let (model, scan, _) = mine_resilient_columnar(
            &mut src,
            Cutoff::default(),
            ScanPolicy::quarantine_unlimited(),
            Some(labels.clone()),
        )
        .unwrap();
        assert_eq!(scan.rows_absorbed, 120);
        let mut rows = MatrixSource::new(&x);
        let (ref_model, ..) = mine_resilient(
            &mut rows,
            Cutoff::default(),
            ScanPolicy::quarantine_unlimited(),
            Some(labels),
        )
        .unwrap();
        let (rules, ref_rules) = (model.rules().unwrap(), ref_model.rules().unwrap());
        assert_eq!(rules.k(), ref_rules.k());
        for (a, b) in rules.rules().iter().zip(ref_rules.rules()) {
            assert_eq!(a.eigenvalue.to_bits(), b.eigenvalue.to_bits());
            for (u, v) in a.loadings.iter().zip(&b.loadings) {
                assert_eq!(u.to_bits(), v.to_bits(), "loadings must be bit-identical");
            }
        }
    }
}
