//! Model types: [`RatioRule`] and [`RuleSet`].
//!
//! A Ratio Rule is one eigenvector of the (centered) covariance matrix; a
//! `RuleSet` is the mined model: the top-`k` rules, their eigenvalues, the
//! column means needed to center/uncenter data, and the attribute labels.
//! `RuleSet` is `serde`-serializable, so trained models can be persisted
//! and shipped.

use crate::{RatioRuleError, Result};
use linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One Ratio Rule: a unit direction over the attributes, plus its
/// eigenvalue (the variance captured along it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioRule {
    /// Unit-norm loadings over the `M` attributes.
    pub loadings: Vec<f64>,
    /// Variance captured along this direction (eigenvalue of the scatter
    /// matrix).
    pub eigenvalue: f64,
}

impl RatioRule {
    /// Restates the rule as ratios between two attributes: "attribute `a`
    /// relates to attribute `b` as `loadings[a] : loadings[b]`" — the
    /// paper's "bread : butter => 0.866 : 0.5" reading.
    pub fn ratio(&self, a: usize, b: usize) -> Option<(f64, f64)> {
        let &la = self.loadings.get(a)?;
        let &lb = self.loadings.get(b)?;
        Some((la, lb))
    }

    /// Indices of the attributes with the largest absolute loadings,
    /// descending.
    pub fn dominant_attributes(&self, count: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.loadings.len()).collect();
        idx.sort_by(|&i, &j| {
            self.loadings[j]
                .abs()
                .partial_cmp(&self.loadings[i].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(count);
        idx
    }
}

/// A mined set of Ratio Rules — the complete model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<RatioRule>,
    column_means: Vec<f64>,
    /// Full spectrum of the covariance matrix (descending), kept so the
    /// energy of the retained cut can be reported.
    spectrum: Vec<f64>,
    /// Attribute labels carried from the training data.
    attribute_labels: Vec<String>,
    /// Number of training rows.
    n_train: usize,
}

impl RuleSet {
    /// Assembles a rule set. `rules` must all have `column_means.len()`
    /// loadings.
    pub fn new(
        rules: Vec<RatioRule>,
        column_means: Vec<f64>,
        spectrum: Vec<f64>,
        attribute_labels: Vec<String>,
        n_train: usize,
    ) -> Result<Self> {
        let m = column_means.len();
        if m == 0 {
            return Err(RatioRuleError::Invalid("zero attributes".into()));
        }
        if rules.is_empty() {
            return Err(RatioRuleError::Invalid("empty rule set".into()));
        }
        for (i, r) in rules.iter().enumerate() {
            if r.loadings.len() != m {
                return Err(RatioRuleError::Invalid(format!(
                    "rule {i} has {} loadings for {m} attributes",
                    r.loadings.len()
                )));
            }
        }
        if attribute_labels.len() != m {
            return Err(RatioRuleError::Invalid(format!(
                "{} labels for {m} attributes",
                attribute_labels.len()
            )));
        }
        Ok(RuleSet {
            rules,
            column_means,
            spectrum,
            attribute_labels,
            n_train,
        })
    }

    /// Number of retained rules `k`.
    pub fn k(&self) -> usize {
        self.rules.len()
    }

    /// Number of attributes `M`.
    pub fn n_attributes(&self) -> usize {
        self.column_means.len()
    }

    /// The retained rules, strongest first.
    pub fn rules(&self) -> &[RatioRule] {
        &self.rules
    }

    /// Rule `i` (0 = strongest).
    pub fn rule(&self, i: usize) -> &RatioRule {
        &self.rules[i]
    }

    /// Column means of the training data (used for centering).
    pub fn column_means(&self) -> &[f64] {
        &self.column_means
    }

    /// Full covariance spectrum, descending.
    pub fn spectrum(&self) -> &[f64] {
        &self.spectrum
    }

    /// Attribute labels.
    pub fn attribute_labels(&self) -> &[String] {
        &self.attribute_labels
    }

    /// Number of training rows the model was mined from.
    pub fn n_train(&self) -> usize {
        self.n_train
    }

    /// The `M x k` rule matrix `V` (rules as columns) used by the
    /// hole-filling equations.
    pub fn v_matrix(&self) -> Matrix {
        let m = self.n_attributes();
        let k = self.k();
        Matrix::from_fn(m, k, |i, j| self.rules[j].loadings[i])
    }

    /// Like [`RuleSet::v_matrix`] but keeping only the first `k` rules
    /// (used by the under-specified hole case, which drops weak rules).
    pub fn v_matrix_truncated(&self, k: usize) -> Matrix {
        let m = self.n_attributes();
        let k = k.min(self.k());
        Matrix::from_fn(m, k, |i, j| self.rules[j].loadings[i])
    }

    /// Fraction of total spectral energy covered by the retained rules.
    pub fn retained_energy(&self) -> f64 {
        let total: f64 = self.spectrum.iter().map(|l| l.max(0.0)).sum();
        if total <= 0.0 {
            return 1.0;
        }
        let kept: f64 = self.rules.iter().map(|r| r.eigenvalue.max(0.0)).sum();
        (kept / total).min(1.0)
    }

    /// Centers a row: subtracts the training column means.
    pub fn center_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        if row.len() != self.n_attributes() {
            return Err(RatioRuleError::WidthMismatch {
                expected: self.n_attributes(),
                actual: row.len(),
            });
        }
        Ok(row
            .iter()
            .zip(&self.column_means)
            .map(|(v, m)| v - m)
            .collect())
    }

    /// Projects a (raw, uncentered) row onto the retained rules, returning
    /// its `k` coordinates in RR-space. This is the visualization
    /// projection of Sec. 6.1.
    pub fn project_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        let centered = self.center_row(row)?;
        Ok(self
            .rules
            .iter()
            .map(|r| linalg::vector::dot(&centered, &r.loadings))
            .collect())
    }

    /// Reconstructs a row from its RR-space coordinates (inverse of
    /// [`RuleSet::project_row`] up to the discarded directions).
    pub fn reconstruct_row(&self, concept: &[f64]) -> Result<Vec<f64>> {
        if concept.len() != self.k() {
            return Err(RatioRuleError::WidthMismatch {
                expected: self.k(),
                actual: concept.len(),
            });
        }
        let mut out = self.column_means.clone();
        for (r, &c) in self.rules.iter().zip(concept) {
            for (o, &l) in out.iter_mut().zip(&r.loadings) {
                *o += c * l;
            }
        }
        Ok(out)
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RuleSet: {} rules over {} attributes ({} training rows, {:.1}% energy)",
            self.k(),
            self.n_attributes(),
            self.n_train,
            self.retained_energy() * 100.0
        )?;
        for (i, r) in self.rules.iter().enumerate() {
            let dom = r.dominant_attributes(3);
            let parts: Vec<String> = dom
                .iter()
                .map(|&a| format!("{} {:+.3}", self.attribute_labels[a], r.loadings[a]))
                .collect();
            writeln!(
                f,
                "  RR{}: eigenvalue {:.4}; top: {}",
                i + 1,
                r.eigenvalue,
                parts.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(loadings: &[f64], eigenvalue: f64) -> RatioRule {
        RatioRule {
            loadings: loadings.to_vec(),
            eigenvalue,
        }
    }

    fn sample() -> RuleSet {
        RuleSet::new(
            vec![rule(&[0.8, 0.6], 10.0), rule(&[-0.6, 0.8], 2.0)],
            vec![5.0, 3.0],
            vec![10.0, 2.0],
            vec!["bread".into(), "butter".into()],
            100,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(RuleSet::new(vec![], vec![1.0], vec![], vec!["a".into()], 1).is_err());
        assert!(RuleSet::new(vec![rule(&[1.0], 1.0)], vec![], vec![], vec![], 1).is_err());
        assert!(RuleSet::new(
            vec![rule(&[1.0, 0.0], 1.0)],
            vec![0.0],
            vec![1.0],
            vec!["a".into()],
            1
        )
        .is_err());
        assert!(RuleSet::new(
            vec![rule(&[1.0], 1.0)],
            vec![0.0],
            vec![1.0],
            vec!["a".into(), "b".into()],
            1
        )
        .is_err());
    }

    #[test]
    fn accessors() {
        let rs = sample();
        assert_eq!(rs.k(), 2);
        assert_eq!(rs.n_attributes(), 2);
        assert_eq!(rs.n_train(), 100);
        assert_eq!(rs.rule(0).eigenvalue, 10.0);
        assert_eq!(rs.column_means(), &[5.0, 3.0]);
        assert_eq!(rs.attribute_labels(), &["bread", "butter"]);
        assert_eq!(rs.spectrum(), &[10.0, 2.0]);
        assert!((rs.retained_energy() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn v_matrix_has_rules_as_columns() {
        let rs = sample();
        let v = rs.v_matrix();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.col(0), vec![0.8, 0.6]);
        assert_eq!(v.col(1), vec![-0.6, 0.8]);
        let v1 = rs.v_matrix_truncated(1);
        assert_eq!(v1.shape(), (2, 1));
        assert_eq!(v1.col(0), vec![0.8, 0.6]);
        // Truncation clamps.
        assert_eq!(rs.v_matrix_truncated(5).shape(), (2, 2));
    }

    #[test]
    fn ratio_reading() {
        let rs = sample();
        let (a, b) = rs.rule(0).ratio(0, 1).unwrap();
        assert_eq!((a, b), (0.8, 0.6));
        assert!(rs.rule(0).ratio(0, 9).is_none());
    }

    #[test]
    fn dominant_attributes_sorted_by_magnitude() {
        let r = rule(&[0.1, -0.9, 0.5], 1.0);
        assert_eq!(r.dominant_attributes(2), vec![1, 2]);
        assert_eq!(r.dominant_attributes(10), vec![1, 2, 0]);
    }

    #[test]
    fn center_and_project_roundtrip() {
        let rs = sample();
        // Rules are orthonormal, so project + reconstruct is exact for
        // k = M.
        let row = [7.0, 4.0];
        let proj = rs.project_row(&row).unwrap();
        let back = rs.reconstruct_row(&proj).unwrap();
        assert!((back[0] - row[0]).abs() < 1e-12);
        assert!((back[1] - row[1]).abs() < 1e-12);
        assert!(rs.project_row(&[1.0]).is_err());
        assert!(rs.reconstruct_row(&[1.0]).is_err());
        assert!(rs.center_row(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn projection_of_mean_row_is_origin() {
        let rs = sample();
        let proj = rs.project_row(&[5.0, 3.0]).unwrap();
        assert!(proj.iter().all(|&c| c.abs() < 1e-12));
    }

    #[test]
    fn retained_energy_partial() {
        let rs = RuleSet::new(
            vec![rule(&[1.0, 0.0], 8.0)],
            vec![0.0, 0.0],
            vec![8.0, 2.0],
            vec!["a".into(), "b".into()],
            10,
        )
        .unwrap();
        assert!((rs.retained_energy() - 0.8).abs() < 1e-15);
    }

    #[test]
    fn display_renders_rules() {
        let text = format!("{}", sample());
        assert!(text.contains("RR1"));
        assert!(text.contains("bread"));
        assert!(text.contains("100 training rows"));
    }

    #[test]
    fn serde_roundtrip() {
        let rs = sample();
        let json = serde_json::to_string(&rs).unwrap();
        let back: RuleSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rs);
    }
}
