//! Visualization in RR-space (paper Sec. 6.1, Figs. 9 and 11).
//!
//! Ratio Rules give "visualization for free": projecting rows onto the
//! top two or three rules reveals the structure of the dataset. This
//! module computes those projections and renders terminal-friendly ASCII
//! scatter plots of the kind the paper prints — good enough to spot
//! Jordan and Rodman in the corners.

use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use linalg::Matrix;

/// A 2-d projection of a dataset onto a pair of rules.
#[derive(Debug, Clone)]
pub struct Projection2d {
    /// Per-row `(x, y)` coordinates in RR-space.
    pub points: Vec<(f64, f64)>,
    /// Which rule indexes the axes: `(x_rule, y_rule)` (0-based).
    pub axes: (usize, usize),
}

/// Projects every row of `data` onto rules `x_rule` and `y_rule`
/// (0-based; the paper's Fig. 11(a) is `(0, 1)`, Fig. 11(b) is `(1, 2)`).
pub fn project_2d(
    rules: &RuleSet,
    data: &Matrix,
    x_rule: usize,
    y_rule: usize,
) -> Result<Projection2d> {
    let k = rules.k();
    if x_rule >= k || y_rule >= k {
        return Err(RatioRuleError::Invalid(format!(
            "axes ({x_rule}, {y_rule}) out of range for k = {k} rules"
        )));
    }
    if data.cols() != rules.n_attributes() {
        return Err(RatioRuleError::WidthMismatch {
            expected: rules.n_attributes(),
            actual: data.cols(),
        });
    }
    let mut points = Vec::with_capacity(data.rows());
    for i in 0..data.rows() {
        let concept = rules.project_row(data.row(i))?;
        points.push((concept[x_rule], concept[y_rule]));
    }
    Ok(Projection2d {
        points,
        axes: (x_rule, y_rule),
    })
}

impl Projection2d {
    /// Indices of the `count` points farthest from the projection's
    /// centroid — the visually obvious outliers.
    pub fn extremes(&self, count: usize) -> Vec<usize> {
        let n = self.points.len() as f64;
        if self.points.is_empty() {
            return Vec::new();
        }
        let cx = self.points.iter().map(|p| p.0).sum::<f64>() / n;
        let cy = self.points.iter().map(|p| p.1).sum::<f64>() / n;
        let mut idx: Vec<usize> = (0..self.points.len()).collect();
        idx.sort_by(|&a, &b| {
            let da = (self.points[a].0 - cx).powi(2) + (self.points[a].1 - cy).powi(2);
            let db = (self.points[b].0 - cx).powi(2) + (self.points[b].1 - cy).powi(2);
            db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(count);
        idx
    }

    /// Renders an ASCII scatter plot (`width x height` characters).
    /// Denser cells escalate `.` -> `:` -> `*` -> `#`; `label_rows` marks
    /// specific rows with capital letters A, B, C...
    pub fn ascii_plot(&self, width: usize, height: usize, label_rows: &[usize]) -> String {
        let width = width.max(8);
        let height = height.max(4);
        if self.points.is_empty() {
            return String::from("(no points)\n");
        }
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &self.points {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        let xspan = (xmax - xmin).max(1e-12);
        let yspan = (ymax - ymin).max(1e-12);

        let mut counts = vec![vec![0usize; width]; height];
        let mut labels = vec![vec![None::<char>; width]; height];
        for (i, &(x, y)) in self.points.iter().enumerate() {
            let cx = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
            // Flip y so larger values are at the top.
            let cy = height - 1 - (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
            counts[cy][cx] += 1;
            if let Some(pos) = label_rows.iter().position(|&r| r == i) {
                labels[cy][cx] = Some((b'A' + (pos % 26) as u8) as char);
            }
        }

        let mut out = String::with_capacity((width + 3) * (height + 2));
        out.push_str(&format!(
            "RR{} (x) vs RR{} (y); x in [{:.2}, {:.2}], y in [{:.2}, {:.2}]\n",
            self.axes.0 + 1,
            self.axes.1 + 1,
            xmin,
            xmax,
            ymin,
            ymax
        ));
        for (cy, row) in counts.iter().enumerate() {
            out.push('|');
            for (cx, &c) in row.iter().enumerate() {
                let ch = if let Some(l) = labels[cy][cx] {
                    l
                } else {
                    match c {
                        0 => ' ',
                        1 => '.',
                        2..=3 => ':',
                        4..=8 => '*',
                        _ => '#',
                    }
                };
                out.push(ch);
            }
            out.push('|');
            out.push('\n');
        }
        out
    }
}

/// Renders an ASCII scree plot of the full covariance spectrum with the
/// retained-rule boundary marked — the visual counterpart of the Eq. 1
/// cutoff decision.
pub fn scree_plot(rules: &RuleSet, bar_width: usize) -> String {
    let spectrum = rules.spectrum();
    let total: f64 = spectrum.iter().map(|l| l.max(0.0)).sum();
    let max = spectrum
        .first()
        .copied()
        .unwrap_or(0.0)
        .max(f64::MIN_POSITIVE);
    let width = bar_width.max(10);

    let mut out = format!(
        "spectrum of {} eigenvalues; {} retained ({:.1}% energy)\n",
        spectrum.len(),
        rules.k(),
        rules.retained_energy() * 100.0
    );
    let mut cumulative = 0.0;
    for (i, &l) in spectrum.iter().enumerate() {
        let frac = if total > 0.0 { l.max(0.0) / total } else { 0.0 };
        cumulative += frac;
        let len = ((l.max(0.0) / max) * width as f64).round() as usize;
        let marker = if i + 1 == rules.k() {
            " <= cutoff (Eq. 1)"
        } else {
            ""
        };
        out.push_str(&format!(
            "  l{:<3} {:bar$} {:6.1}% (cum {:5.1}%){}\n",
            i + 1,
            "#".repeat(len),
            frac * 100.0,
            cumulative * 100.0,
            marker,
            bar = width
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;

    fn rank2_data() -> Matrix {
        let d1 = [2.0, 1.0, 0.0];
        let d2 = [0.0, 1.0, 2.0];
        Matrix::from_fn(30, 3, |i, j| {
            let a = (i as f64 % 6.0) - 2.5;
            let b = (i as f64 % 4.0) - 1.5;
            10.0 + 3.0 * a * d1[j] + b * d2[j]
        })
    }

    #[test]
    fn projection_shape_and_axes() {
        let x = rank2_data();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let p = project_2d(&rules, &x, 0, 1).unwrap();
        assert_eq!(p.points.len(), 30);
        assert_eq!(p.axes, (0, 1));
    }

    #[test]
    fn projection_variance_is_larger_on_first_axis() {
        let x = rank2_data();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let p = project_2d(&rules, &x, 0, 1).unwrap();
        let var = |sel: fn(&(f64, f64)) -> f64| {
            let mean = p.points.iter().map(sel).sum::<f64>() / p.points.len() as f64;
            p.points
                .iter()
                .map(|pt| (sel(pt) - mean).powi(2))
                .sum::<f64>()
        };
        assert!(var(|pt| pt.0) > var(|pt| pt.1));
    }

    #[test]
    fn extremes_finds_planted_outlier() {
        let mut x = rank2_data();
        for j in 0..3 {
            x[(17, j)] *= 10.0;
        }
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let p = project_2d(&rules, &x, 0, 1).unwrap();
        assert_eq!(p.extremes(1), vec![17]);
    }

    #[test]
    fn invalid_axes_and_width_rejected() {
        let x = rank2_data();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        assert!(project_2d(&rules, &x, 0, 5).is_err());
        assert!(project_2d(&rules, &Matrix::zeros(3, 2), 0, 1).is_err());
    }

    #[test]
    fn ascii_plot_renders_and_labels() {
        let x = rank2_data();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&x)
            .unwrap();
        let p = project_2d(&rules, &x, 0, 1).unwrap();
        let plot = p.ascii_plot(40, 12, &[3]);
        assert!(plot.contains("RR1 (x) vs RR2 (y)"));
        assert!(plot.contains('A'), "labeled point missing:\n{plot}");
        // Correct number of plot lines: header + height.
        assert_eq!(plot.lines().count(), 13);
    }

    #[test]
    fn ascii_plot_empty_projection() {
        let p = Projection2d {
            points: vec![],
            axes: (0, 1),
        };
        assert_eq!(p.ascii_plot(10, 5, &[]), "(no points)\n");
    }

    #[test]
    fn scree_plot_marks_cutoff_and_sums_to_100() {
        let x = rank2_data();
        let rules = RatioRuleMiner::new(Cutoff::EnergyFraction(0.85))
            .fit_matrix(&x)
            .unwrap();
        let plot = scree_plot(&rules, 30);
        assert!(plot.contains("<= cutoff"));
        assert!(plot.contains("l1"));
        // One line per eigenvalue + header.
        assert_eq!(plot.lines().count(), 1 + rules.spectrum().len());
        // Cumulative column ends at ~100%.
        let last = plot.lines().last().unwrap();
        assert!(last.contains("100.0%"), "last line: {last}");
    }
}
