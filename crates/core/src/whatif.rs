//! What-if scenarios (paper Sec. 3 and 4.4).
//!
//! "We expect the demand for Cheerios to double; how much milk should we
//! stock up on?" — pin some attributes to hypothetical values, let the
//! rules forecast the rest. This is hole-filling with a scenario-building
//! API on top: attributes are addressed by label, and unset attributes
//! are the holes.

use crate::reconstruct::{fill_holes, PatternSolver, SolveCase};
use crate::rules::RuleSet;
use crate::{RatioRuleError, Result};
use dataset::holes::HoledRow;

/// Builder for a what-if scenario over a rule set.
#[derive(Debug, Clone)]
pub struct Scenario<'a> {
    rules: &'a RuleSet,
    pinned: Vec<Option<f64>>,
}

/// Outcome of a scenario forecast.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// Full attribute vector: pinned values pass through, the rest are
    /// forecast.
    pub values: Vec<f64>,
    /// Which solve shape the reconstruction used.
    pub case: SolveCase,
    /// Labels aligned with `values` (cloned from the rule set).
    pub labels: Vec<String>,
}

impl Forecast {
    /// Looks up a forecast value by attribute label.
    pub fn get(&self, label: &str) -> Option<f64> {
        let idx = self.labels.iter().position(|l| l == label)?;
        Some(self.values[idx])
    }
}

impl<'a> Scenario<'a> {
    /// Starts an empty scenario (every attribute unknown).
    pub fn new(rules: &'a RuleSet) -> Self {
        Scenario {
            rules,
            pinned: vec![None; rules.n_attributes()],
        }
    }

    /// Pins an attribute by index.
    pub fn set_index(mut self, index: usize, value: f64) -> Result<Self> {
        if index >= self.pinned.len() {
            return Err(RatioRuleError::Invalid(format!(
                "attribute index {index} out of range (M = {})",
                self.pinned.len()
            )));
        }
        self.pinned[index] = Some(value);
        Ok(self)
    }

    /// Pins an attribute by label.
    pub fn set(self, label: &str, value: f64) -> Result<Self> {
        let idx = self
            .rules
            .attribute_labels()
            .iter()
            .position(|l| l == label)
            .ok_or_else(|| RatioRuleError::Invalid(format!("unknown attribute label {label:?}")))?;
        self.set_index(idx, value)
    }

    /// Pins an attribute to a multiple of its training mean — the paper's
    /// "demand for Cheerios doubles" phrasing (`factor = 2.0`).
    pub fn scale_of_mean(self, label: &str, factor: f64) -> Result<Self> {
        let idx = self
            .rules
            .attribute_labels()
            .iter()
            .position(|l| l == label)
            .ok_or_else(|| RatioRuleError::Invalid(format!("unknown attribute label {label:?}")))?;
        let mean = self.rules.column_means()[idx];
        self.set_index(idx, mean * factor)
    }

    /// Runs the forecast: fills every unpinned attribute.
    pub fn forecast(&self) -> Result<Forecast> {
        if self.pinned.iter().all(Option::is_none) {
            return Err(RatioRuleError::Invalid(
                "scenario pins no attributes".into(),
            ));
        }
        if self.pinned.iter().all(Option::is_some) {
            return Err(RatioRuleError::Invalid(
                "scenario pins every attribute; nothing to forecast".into(),
            ));
        }
        let row = HoledRow::new(self.pinned.clone());
        let filled = fill_holes(self.rules, &row)?;
        Ok(Forecast {
            values: filled.values,
            case: filled.case,
            labels: self.rules.attribute_labels().to_vec(),
        })
    }

    /// Forecasts the scenario once per value of `label`, e.g. "milk
    /// demand at 10 price points".
    ///
    /// Every forecast shares one hole pattern (the already-pinned
    /// attributes plus `label`), so the linear system is factored once
    /// via a [`PatternSolver`] and each value costs only a solve —
    /// results are identical to calling [`Scenario::forecast`] per value.
    pub fn sweep(&self, label: &str, values: &[f64]) -> Result<Vec<Forecast>> {
        let idx = self
            .rules
            .attribute_labels()
            .iter()
            .position(|l| l == label)
            .ok_or_else(|| RatioRuleError::Invalid(format!("unknown attribute label {label:?}")))?;
        let holes: Vec<usize> = self
            .pinned
            .iter()
            .enumerate()
            .filter(|&(j, v)| v.is_none() && j != idx)
            .map(|(j, _)| j)
            .collect();
        if holes.is_empty() {
            return Err(RatioRuleError::Invalid(
                "scenario pins every attribute; nothing to forecast".into(),
            ));
        }
        let solver = PatternSolver::build(self.rules, &holes)?;
        let labels = self.rules.attribute_labels().to_vec();
        values
            .iter()
            .map(|&v| {
                let mut pinned = self.pinned.clone();
                pinned[idx] = Some(v);
                let filled = solver.fill(&HoledRow::new(pinned))?;
                Ok(Forecast {
                    values: filled.values,
                    case: filled.case,
                    labels: labels.clone(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::miner::RatioRuleMiner;
    use dataset::DataMatrix;
    use linalg::Matrix;

    /// Cereal and milk move together 1 : 2.
    fn rules() -> RuleSet {
        let x = Matrix::from_fn(40, 2, |i, j| {
            let t = 1.0 + (i % 10) as f64;
            t * [1.0, 2.0][j]
        });
        let dm = DataMatrix::with_labels(
            x,
            (0..40).map(|i| format!("r{i}")).collect(),
            vec!["cheerios".into(), "milk".into()],
        )
        .unwrap();
        RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_data(&dm)
            .unwrap()
    }

    #[test]
    fn doubling_cheerios_doubles_milk() {
        let rs = rules();
        let mean_cheerios = rs.column_means()[0];
        let mean_milk = rs.column_means()[1];
        let fc = Scenario::new(&rs)
            .scale_of_mean("cheerios", 2.0)
            .unwrap()
            .forecast()
            .unwrap();
        assert!((fc.get("cheerios").unwrap() - 2.0 * mean_cheerios).abs() < 1e-12);
        // Milk follows the 1 : 2 rule: doubling cheerios doubles milk.
        assert!(
            (fc.get("milk").unwrap() - 2.0 * mean_milk).abs() < 1e-9,
            "milk {} vs {}",
            fc.get("milk").unwrap(),
            2.0 * mean_milk
        );
    }

    #[test]
    fn set_by_label_and_index_agree() {
        let rs = rules();
        let a = Scenario::new(&rs)
            .set("cheerios", 7.0)
            .unwrap()
            .forecast()
            .unwrap();
        let b = Scenario::new(&rs)
            .set_index(0, 7.0)
            .unwrap()
            .forecast()
            .unwrap();
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn forecast_values_follow_the_rule() {
        let rs = rules();
        let fc = Scenario::new(&rs)
            .set("cheerios", 8.0)
            .unwrap()
            .forecast()
            .unwrap();
        assert!((fc.get("milk").unwrap() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_label_rejected() {
        let rs = rules();
        assert!(Scenario::new(&rs).set("bread", 1.0).is_err());
        assert!(Scenario::new(&rs).scale_of_mean("bread", 2.0).is_err());
        assert!(Scenario::new(&rs).set_index(5, 1.0).is_err());
    }

    #[test]
    fn degenerate_scenarios_rejected() {
        let rs = rules();
        // Nothing pinned.
        assert!(Scenario::new(&rs).forecast().is_err());
        // Everything pinned.
        let s = Scenario::new(&rs)
            .set("cheerios", 1.0)
            .unwrap()
            .set("milk", 2.0)
            .unwrap();
        assert!(s.forecast().is_err());
    }

    #[test]
    fn under_specified_scenario_uses_strongest_rules() {
        // Four attributes in two independent factor pairs; keep 3 rules,
        // pin only one attribute -> M - h = 1 < k = 3: the reconstruction
        // must drop down to the strongest rule (paper CASE 3).
        let x = Matrix::from_fn(80, 4, |i, j| {
            let t = (i % 10) as f64;
            let u = (i % 7) as f64;
            match j {
                0 => 5.0 * t,
                1 => 2.5 * t,
                2 => 2.0 * u,
                _ => 1.0 * u,
            }
        });
        let dm = DataMatrix::with_labels(
            x,
            (0..80).map(|i| format!("r{i}")).collect(),
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
        )
        .unwrap();
        let rs = RatioRuleMiner::new(Cutoff::FixedK(3))
            .fit_data(&dm)
            .unwrap();
        let fc = Scenario::new(&rs)
            .set("a", 50.0)
            .unwrap()
            .forecast()
            .unwrap();
        assert!(matches!(
            fc.case,
            crate::reconstruct::SolveCase::UnderSpecified { rules_used: 1 }
        ));
        // The strongest rule is the t-factor (a, b): b follows a at half.
        assert!(
            (fc.get("b").unwrap() - 25.0).abs() < 1.0,
            "b = {:?}",
            fc.get("b")
        );
    }

    #[test]
    fn sweep_matches_per_value_forecasts() {
        let rs = rules();
        let scenario = Scenario::new(&rs);
        let points = [2.0, 5.0, 8.0, 11.0];
        let swept = scenario.sweep("cheerios", &points).unwrap();
        assert_eq!(swept.len(), points.len());
        for (fc, &v) in swept.iter().zip(&points) {
            let one_shot = Scenario::new(&rs)
                .set("cheerios", v)
                .unwrap()
                .forecast()
                .unwrap();
            assert_eq!(fc, &one_shot, "sweep diverged at cheerios = {v}");
        }
        // Unknown label and nothing-to-forecast errors.
        assert!(scenario.sweep("bread", &points).is_err());
        let full = Scenario::new(&rs).set("milk", 1.0).unwrap();
        assert!(full.sweep("cheerios", &points).is_err());
    }

    #[test]
    fn forecast_get_unknown_label_is_none() {
        let rs = rules();
        let fc = Scenario::new(&rs)
            .set("cheerios", 1.0)
            .unwrap()
            .forecast()
            .unwrap();
        assert!(fc.get("bread").is_none());
    }
}
