//! Categorical attributes for Ratio Rules — the paper's stated future
//! work ("Future research could focus on applying Ratio Rules to
//! datasets that contain categorical data", Sec. 7).
//!
//! The approach is the standard one the eigensystem machinery admits:
//! one-hot ("indicator") encoding. Each categorical column with `L`
//! levels becomes `L` numeric columns holding `scale * [v == level]`;
//! the centered covariance of indicator columns captures
//! category/numeric correlations, Ratio Rules mine it unchanged, and a
//! reconstructed row is decoded by arg-max over each category block.
//! The `scale` knob matters because eigenanalysis is variance-weighted:
//! it puts the indicator block on a comparable footing with the numeric
//! columns.

use crate::{DataMatrix, DatasetError, Result};
use linalg::Matrix;

/// A column of a mixed-type table.
#[derive(Debug, Clone, PartialEq)]
pub enum MixedColumn {
    /// Plain numeric attribute.
    Numeric {
        /// Attribute name.
        name: String,
        /// Values, length = number of rows.
        values: Vec<f64>,
    },
    /// Categorical attribute with string levels.
    Categorical {
        /// Attribute name.
        name: String,
        /// Values, length = number of rows.
        values: Vec<String>,
    },
}

impl MixedColumn {
    fn len(&self) -> usize {
        match self {
            MixedColumn::Numeric { values, .. } => values.len(),
            MixedColumn::Categorical { values, .. } => values.len(),
        }
    }

    fn name(&self) -> &str {
        match self {
            MixedColumn::Numeric { name, .. } => name,
            MixedColumn::Categorical { name, .. } => name,
        }
    }
}

/// How an encoded (numeric) column maps back to the mixed schema.
#[derive(Debug, Clone, PartialEq)]
enum EncodedColumn {
    Numeric { name: String },
    Indicator { attribute: usize, level: String },
}

/// A one-hot encoder fitted to a mixed table.
#[derive(Debug, Clone)]
pub struct OneHotEncoder {
    /// Distinct levels per original attribute (empty for numeric ones).
    levels: Vec<Vec<String>>,
    /// Original attribute names.
    names: Vec<String>,
    /// Which original attributes are categorical.
    categorical: Vec<bool>,
    /// Layout of the encoded matrix.
    encoded: Vec<EncodedColumn>,
    /// Indicator magnitude.
    scale: f64,
}

impl OneHotEncoder {
    /// Fits an encoder to the columns and encodes them in one step.
    ///
    /// `scale` is the indicator magnitude (must be positive). A
    /// reasonable choice is the typical numeric-column standard
    /// deviation; `1.0` works when numeric columns are O(1).
    pub fn fit_encode(columns: &[MixedColumn], scale: f64) -> Result<(Self, DataMatrix)> {
        if columns.is_empty() {
            return Err(DatasetError::Invalid("no columns".into()));
        }
        if scale <= 0.0 {
            return Err(DatasetError::Invalid(format!(
                "scale must be positive, got {scale}"
            )));
        }
        let n = columns[0].len();
        if n == 0 {
            return Err(DatasetError::Invalid("no rows".into()));
        }
        for c in columns {
            if c.len() != n {
                return Err(DatasetError::Invalid(format!(
                    "column {:?} has {} rows, expected {n}",
                    c.name(),
                    c.len()
                )));
            }
        }

        let mut levels: Vec<Vec<String>> = Vec::with_capacity(columns.len());
        let mut names = Vec::with_capacity(columns.len());
        let mut categorical = Vec::with_capacity(columns.len());
        let mut encoded: Vec<EncodedColumn> = Vec::new();
        for (a, c) in columns.iter().enumerate() {
            names.push(c.name().to_string());
            match c {
                MixedColumn::Numeric { name, .. } => {
                    levels.push(Vec::new());
                    categorical.push(false);
                    encoded.push(EncodedColumn::Numeric { name: name.clone() });
                }
                MixedColumn::Categorical { values, .. } => {
                    let mut lv: Vec<String> = values.clone();
                    lv.sort();
                    lv.dedup();
                    if lv.len() < 2 {
                        return Err(DatasetError::Invalid(format!(
                            "categorical column {:?} has {} distinct level(s); need >= 2",
                            c.name(),
                            lv.len()
                        )));
                    }
                    for l in &lv {
                        encoded.push(EncodedColumn::Indicator {
                            attribute: a,
                            level: l.clone(),
                        });
                    }
                    levels.push(lv);
                    categorical.push(true);
                }
            }
        }

        let enc = OneHotEncoder {
            levels,
            names,
            categorical,
            encoded,
            scale,
        };
        let matrix = enc.encode_columns(columns, n)?;
        Ok((enc, matrix))
    }

    fn encode_columns(&self, columns: &[MixedColumn], n: usize) -> Result<DataMatrix> {
        let m = self.encoded.len();
        let mut data = vec![0.0_f64; n * m];
        let mut j = 0usize;
        for (a, c) in columns.iter().enumerate() {
            match c {
                MixedColumn::Numeric { values, .. } => {
                    for (i, &v) in values.iter().enumerate() {
                        data[i * m + j] = v;
                    }
                    j += 1;
                }
                MixedColumn::Categorical { values, .. } => {
                    let width = self.levels[a].len();
                    for (i, v) in values.iter().enumerate() {
                        let Some(pos) = self.levels[a].iter().position(|l| l == v) else {
                            return Err(DatasetError::Invalid(format!(
                                "unknown level {v:?} for attribute {:?}",
                                self.names[a]
                            )));
                        };
                        data[i * m + j + pos] = self.scale;
                    }
                    j += width;
                }
            }
        }
        let matrix = Matrix::from_vec(n, m, data)?;
        let labels = self
            .encoded
            .iter()
            .map(|e| match e {
                EncodedColumn::Numeric { name } => name.clone(),
                EncodedColumn::Indicator { attribute, level } => {
                    format!("{}={}", self.names[*attribute], level)
                }
            })
            .collect();
        let mut dm = DataMatrix::new(matrix);
        dm.set_col_labels(labels)?;
        Ok(dm)
    }

    /// Width of the encoded matrix.
    pub fn encoded_width(&self) -> usize {
        self.encoded.len()
    }

    /// Names of the original attributes.
    pub fn attribute_names(&self) -> &[String] {
        &self.names
    }

    /// Encoded column range `[start, end)` of original attribute `a`.
    pub fn block_of(&self, a: usize) -> Result<std::ops::Range<usize>> {
        if a >= self.names.len() {
            return Err(DatasetError::Invalid(format!("attribute {a} out of range")));
        }
        let mut start = 0usize;
        for (idx, cat) in self.categorical.iter().enumerate() {
            let width = if *cat { self.levels[idx].len() } else { 1 };
            if idx == a {
                return Ok(start..start + width);
            }
            start += width;
        }
        // The bounds check above makes this unreachable; keep it an Err so
        // a future refactor that breaks the invariant degrades gracefully.
        Err(DatasetError::Invalid(format!(
            "attribute index {a} has no encoded block"
        )))
    }

    /// Decodes a reconstructed numeric row back to mixed values: numeric
    /// columns pass through; each categorical block becomes the arg-max
    /// level (with its soft score in `[0, 1]`-ish units of `scale`).
    pub fn decode_row(&self, row: &[f64]) -> Result<Vec<DecodedValue>> {
        if row.len() != self.encoded.len() {
            return Err(DatasetError::Invalid(format!(
                "row width {} != encoded width {}",
                row.len(),
                self.encoded.len()
            )));
        }
        let mut out = Vec::with_capacity(self.names.len());
        for a in 0..self.names.len() {
            let block = self.block_of(a)?;
            if !self.categorical[a] {
                out.push(DecodedValue::Numeric(row[block.start]));
            } else {
                let slice = &row[block.clone()];
                let (best, &score) = slice
                    .iter()
                    .enumerate()
                    .max_by(|x, y| {
                        x.1.partial_cmp(y.1).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .ok_or_else(|| {
                        DatasetError::Invalid(format!(
                            "categorical attribute {} has an empty level block",
                            self.names[a]
                        ))
                    })?;
                out.push(DecodedValue::Categorical {
                    level: self.levels[a][best].clone(),
                    score: score / self.scale,
                });
            }
        }
        Ok(out)
    }
}

/// A decoded mixed value.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedValue {
    /// Numeric attribute value.
    Numeric(f64),
    /// Categorical attribute: chosen level and its soft score
    /// (reconstructed indicator / scale; near 1 means confident).
    Categorical {
        /// Arg-max level.
        level: String,
        /// Soft score of that level.
        score: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> Vec<MixedColumn> {
        vec![
            MixedColumn::Numeric {
                name: "length".into(),
                values: vec![1.0, 2.0, 3.0, 4.0],
            },
            MixedColumn::Categorical {
                name: "sex".into(),
                values: vec!["M".into(), "F".into(), "I".into(), "M".into()],
            },
            MixedColumn::Numeric {
                name: "weight".into(),
                values: vec![10.0, 20.0, 30.0, 40.0],
            },
        ]
    }

    #[test]
    fn encoding_layout_and_labels() {
        let (enc, dm) = OneHotEncoder::fit_encode(&mixed(), 1.0).unwrap();
        assert_eq!(enc.encoded_width(), 5); // length, sex=F, sex=I, sex=M, weight
        assert_eq!(
            dm.col_labels(),
            &["length", "sex=F", "sex=I", "sex=M", "weight"]
        );
        assert_eq!(dm.n_rows(), 4);
        // Row 0: length 1, sex M -> indicator in the M slot, weight 10.
        assert_eq!(dm.row(0), &[1.0, 0.0, 0.0, 1.0, 10.0]);
        assert_eq!(dm.row(1), &[2.0, 1.0, 0.0, 0.0, 20.0]);
    }

    #[test]
    fn scale_is_applied() {
        let (_, dm) = OneHotEncoder::fit_encode(&mixed(), 2.5).unwrap();
        assert_eq!(dm.row(0)[3], 2.5);
    }

    #[test]
    fn block_ranges() {
        let (enc, _) = OneHotEncoder::fit_encode(&mixed(), 1.0).unwrap();
        assert_eq!(enc.block_of(0).unwrap(), 0..1);
        assert_eq!(enc.block_of(1).unwrap(), 1..4);
        assert_eq!(enc.block_of(2).unwrap(), 4..5);
        assert!(enc.block_of(3).is_err());
    }

    #[test]
    fn decode_argmax() {
        let (enc, _) = OneHotEncoder::fit_encode(&mixed(), 1.0).unwrap();
        let decoded = enc.decode_row(&[2.2, 0.1, 0.7, 0.2, 21.0]).unwrap();
        assert_eq!(decoded[0], DecodedValue::Numeric(2.2));
        match &decoded[1] {
            DecodedValue::Categorical { level, score } => {
                assert_eq!(level, "I");
                assert!((score - 0.7).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(decoded[2], DecodedValue::Numeric(21.0));
        assert!(enc.decode_row(&[1.0]).is_err());
    }

    #[test]
    fn roundtrip_encode_decode() {
        let cols = mixed();
        let (enc, dm) = OneHotEncoder::fit_encode(&cols, 1.0).unwrap();
        for i in 0..4 {
            let decoded = enc.decode_row(dm.row(i)).unwrap();
            match (&cols[1], &decoded[1]) {
                (
                    MixedColumn::Categorical { values, .. },
                    DecodedValue::Categorical { level, score },
                ) => {
                    assert_eq!(level, &values[i]);
                    assert!((score - 1.0).abs() < 1e-12);
                }
                _ => panic!("wrong decode shape"),
            }
        }
    }

    #[test]
    fn validation() {
        assert!(OneHotEncoder::fit_encode(&[], 1.0).is_err());
        assert!(OneHotEncoder::fit_encode(&mixed(), 0.0).is_err());
        let ragged = vec![
            MixedColumn::Numeric {
                name: "a".into(),
                values: vec![1.0],
            },
            MixedColumn::Numeric {
                name: "b".into(),
                values: vec![1.0, 2.0],
            },
        ];
        assert!(OneHotEncoder::fit_encode(&ragged, 1.0).is_err());
        let single_level = vec![MixedColumn::Categorical {
            name: "c".into(),
            values: vec!["x".into(), "x".into()],
        }];
        assert!(OneHotEncoder::fit_encode(&single_level, 1.0).is_err());
        let empty = vec![MixedColumn::Numeric {
            name: "a".into(),
            values: vec![],
        }];
        assert!(OneHotEncoder::fit_encode(&empty, 1.0).is_err());
    }

    #[test]
    fn unknown_level_rejected_on_reencode() {
        // Construct an encoder, then feed a column set with a new level
        // through encode_columns via fit on one set and manual misuse:
        // covered indirectly — fit_encode always sees its own levels, so
        // exercise the error by decoding width mismatch instead (above)
        // and by two-step misuse here.
        let cols_a = vec![MixedColumn::Categorical {
            name: "sex".into(),
            values: vec!["M".into(), "F".into()],
        }];
        let (enc, _) = OneHotEncoder::fit_encode(&cols_a, 1.0).unwrap();
        let cols_b = vec![MixedColumn::Categorical {
            name: "sex".into(),
            values: vec!["M".into(), "X".into()],
        }];
        assert!(enc.encode_columns(&cols_b, 2).is_err());
    }
}
