//! Columnar block ingestion: a binary row-major block file and a
//! chunked reader feeding the core crate's blocked covariance kernel.
//!
//! CSV is convenient but slow to scan: every pass re-parses every cell.
//! The `RRCB` ("Ratio Rules Columnar Block") format trades one up-front
//! conversion for scans that are a straight `read` + `f64::from_le_bytes`
//! loop — no parsing, no allocation per row, and blocks arrive in
//! exactly the shape the core crate's `CovarianceAccumulator::push_block`
//! wants. The reader is plain buffered `std` I/O — no mmap, no
//! platform-specific fast paths — so it works on any filesystem the CLI
//! can open.
//!
//! # File layout (version 1, all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RRCB"
//! 4       4     version (u32) = 1
//! 8       8     cols (u64)
//! 16      8     rows (u64)
//! 24      ...   rows * cols f64 values, row-major, little-endian
//! ```
//!
//! The file length must be exactly `24 + rows * cols * 8` bytes; readers
//! validate this up front so a truncated copy fails at open, not
//! mid-scan. Because records are fixed-width, seeking to any row is O(1)
//! — checkpoint resume over a block file skips by seek, not by re-read.

use crate::source::{CsvFileSource, RowSource};
use crate::{DatasetError, Result};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every columnar block file.
pub const MAGIC: [u8; 4] = *b"RRCB";
/// Format version written and accepted by this module.
pub const VERSION: u32 = 1;
/// Header size in bytes (`magic + version + cols + rows`).
pub const HEADER_LEN: u64 = 24;

/// Outcome of a CSV → columnar conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvertReport {
    /// Data rows written.
    pub rows: usize,
    /// Attributes per row.
    pub cols: usize,
}

/// Converts a CSV file into an `RRCB` block file, parsing each cell
/// exactly once. Conversion is strict: any unparseable, empty, or
/// non-finite cell aborts with its location (a block file must contain
/// only finite values, so quarantine belongs to the scan over the
/// original CSV, not to this step).
///
/// # Errors
///
/// Any CSV parse error (with line/column), or an I/O error reading the
/// source or writing `out`.
pub fn convert_csv_file(
    csv: impl AsRef<Path>,
    out: impl AsRef<Path>,
    has_header: bool,
) -> Result<ConvertReport> {
    let mut src = CsvFileSource::open(csv, has_header)?;
    let cols = src.n_cols();
    let file = std::fs::File::create(out.as_ref())?;
    let mut w = std::io::BufWriter::new(file);

    // Header with a rows placeholder, patched after the stream drains.
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(cols as u64).to_le_bytes())?;
    w.write_all(&0u64.to_le_bytes())?;

    let mut buf = vec![0.0_f64; cols];
    let mut rows = 0usize;
    while src.next_row(&mut buf)? {
        for v in &buf {
            w.write_all(&v.to_le_bytes())?;
        }
        rows += 1;
    }
    w.seek(SeekFrom::Start(16))?;
    w.write_all(&(rows as u64).to_le_bytes())?;
    w.flush()?;
    Ok(ConvertReport { rows, cols })
}

/// Writes a row-major slice of `rows * cols` values as an `RRCB` file —
/// the test/bench entry point that skips the CSV detour.
///
/// # Errors
///
/// [`DatasetError::Invalid`] if `data.len() != rows * cols`; any I/O
/// error otherwise.
pub fn write_block_file(
    out: impl AsRef<Path>,
    cols: usize,
    rows: usize,
    data: &[f64],
) -> Result<()> {
    if data.len() != rows * cols {
        return Err(DatasetError::Invalid(format!(
            "block of {} values is not {rows} rows x {cols} cols",
            data.len()
        )));
    }
    let file = std::fs::File::create(out.as_ref())?;
    let mut w = std::io::BufWriter::new(file);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(cols as u64).to_le_bytes())?;
    w.write_all(&(rows as u64).to_le_bytes())?;
    for v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Chunked reader over an `RRCB` block file: yields whole row blocks for
/// the blocked covariance kernel, O(1) row seeks for checkpoint resume,
/// and a [`RowSource`] impl so every existing consumer (strict scans,
/// fault injectors, the two-pass oracle) works unchanged.
pub struct ColumnarBlockSource {
    path: PathBuf,
    reader: std::io::BufReader<std::fs::File>,
    cols: usize,
    rows: usize,
    /// Next row the reader will yield.
    cursor: usize,
    /// Scratch for byte → f64 decoding.
    byte_buf: Vec<u8>,
}

impl ColumnarBlockSource {
    /// Opens and validates a block file: magic, version, and exact
    /// length (`24 + rows * cols * 8`).
    ///
    /// # Errors
    ///
    /// [`DatasetError::Invalid`] for a bad magic, unsupported version,
    /// or a length that contradicts the header; I/O errors pass through.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::open(&path)?;
        let total_len = file.metadata()?.len();
        let mut reader = std::io::BufReader::new(file);

        let mut header = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut header).map_err(|_| {
            DatasetError::Invalid(format!("{}: too short for an RRCB header", path.display()))
        })?;
        if header[..4] != MAGIC {
            return Err(DatasetError::Invalid(format!(
                "{}: not an RRCB columnar file (bad magic)",
                path.display()
            )));
        }
        let mut u32buf = [0u8; 4];
        u32buf.copy_from_slice(&header[4..8]);
        let version = u32::from_le_bytes(u32buf);
        if version != VERSION {
            return Err(DatasetError::Invalid(format!(
                "{}: RRCB version {version} is not supported (expected {VERSION})",
                path.display()
            )));
        }
        let mut u64buf = [0u8; 8];
        u64buf.copy_from_slice(&header[8..16]);
        let cols = u64::from_le_bytes(u64buf);
        u64buf.copy_from_slice(&header[16..24]);
        let rows = u64::from_le_bytes(u64buf);
        if cols == 0 {
            return Err(DatasetError::Invalid(format!(
                "{}: RRCB file declares zero columns",
                path.display()
            )));
        }
        let want = rows
            .checked_mul(cols)
            .and_then(|c| c.checked_mul(8))
            .and_then(|b| b.checked_add(HEADER_LEN));
        if want != Some(total_len) {
            return Err(DatasetError::Invalid(format!(
                "{}: truncated or padded RRCB file: {total_len} bytes for {rows} x {cols} rows",
                path.display()
            )));
        }
        Ok(ColumnarBlockSource {
            path,
            reader,
            cols: cols as usize,
            rows: rows as usize,
            cursor: 0,
            byte_buf: Vec::new(),
        })
    }

    /// Total data rows in the file.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Columns per row (fixed by the file header). Shadowed by the
    /// [`RowSource`] method of the same name, so callers get it without
    /// importing the trait.
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Next row the reader will yield (0-based).
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Seeks directly to `row` — O(1) thanks to fixed-width records.
    /// This is how a checkpointed scan resumes without re-reading the
    /// consumed prefix.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Invalid`] if `row > n_rows()`; I/O errors pass
    /// through.
    pub fn seek_row(&mut self, row: usize) -> Result<()> {
        if row > self.rows {
            return Err(DatasetError::Invalid(format!(
                "{}: cannot seek to row {row} of {}",
                self.path.display(),
                self.rows
            )));
        }
        let offset = HEADER_LEN + (row * self.cols * 8) as u64;
        self.reader.seek(SeekFrom::Start(offset))?;
        self.cursor = row;
        Ok(())
    }

    /// Reads up to `max_rows` whole rows into `out` (row-major, resized
    /// to exactly the rows read). Returns the number of rows read; 0 at
    /// end of file. The natural `max_rows` is the accumulator's block
    /// size, making each read one panel fold.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file (the length was validated at open, so
    /// a short read means the file changed underneath us).
    pub fn read_block(&mut self, out: &mut Vec<f64>, max_rows: usize) -> Result<usize> {
        let take = max_rows.min(self.rows - self.cursor);
        if take == 0 {
            out.clear();
            return Ok(0);
        }
        let bytes = take * self.cols * 8;
        self.byte_buf.resize(bytes, 0);
        self.reader.read_exact(&mut self.byte_buf)?;
        out.clear();
        out.reserve(take * self.cols);
        let mut word = [0u8; 8];
        for chunk in self.byte_buf.chunks_exact(8) {
            word.copy_from_slice(chunk);
            out.push(f64::from_le_bytes(word));
        }
        self.cursor += take;
        Ok(take)
    }
}

impl RowSource for ColumnarBlockSource {
    fn n_cols(&self) -> usize {
        self.cols
    }

    fn next_row(&mut self, buf: &mut [f64]) -> Result<bool> {
        if self.cursor >= self.rows {
            return Ok(false);
        }
        let bytes = self.cols * 8;
        self.byte_buf.resize(bytes, 0);
        self.reader.read_exact(&mut self.byte_buf)?;
        let mut word = [0u8; 8];
        for (v, chunk) in buf.iter_mut().zip(self.byte_buf.chunks_exact(8)) {
            word.copy_from_slice(chunk);
            *v = f64::from_le_bytes(word);
        }
        self.cursor += 1;
        Ok(true)
    }

    fn rewind(&mut self) -> Result<()> {
        self.seek_row(0)
    }
}

impl std::fmt::Debug for ColumnarBlockSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnarBlockSource")
            .field("path", &self.path)
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("cursor", &self.cursor)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Matrix;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rr_columnar_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn convert_roundtrips_csv_bitwise() {
        let csv = tmp("roundtrip.csv");
        std::fs::write(&csv, "a,b,c\n1.5,-2.25,3e-7\n0.1,0.2,0.3\n7,8,9\n").unwrap();
        let blk = tmp("roundtrip.rrcb");
        let report = convert_csv_file(&csv, &blk, true).unwrap();
        assert_eq!(report, ConvertReport { rows: 3, cols: 3 });

        // The block file replays the exact f64s the CSV parser produced.
        let mut csv_src = CsvFileSource::open(&csv, true).unwrap();
        let expect = csv_src.collect_matrix().unwrap();
        let mut col_src = ColumnarBlockSource::open(&blk).unwrap();
        assert_eq!(col_src.n_rows(), 3);
        let got = col_src.collect_matrix().unwrap();
        assert_eq!(got.rows(), expect.rows());
        for (a, b) in got.data().iter().zip(expect.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_file(&csv).unwrap();
        std::fs::remove_file(&blk).unwrap();
    }

    #[test]
    fn read_block_chunks_and_tails() {
        let blk = tmp("chunks.rrcb");
        let data: Vec<f64> = (0..10 * 3).map(|i| i as f64 * 0.5).collect();
        write_block_file(&blk, 3, 10, &data).unwrap();
        let mut src = ColumnarBlockSource::open(&blk).unwrap();
        let mut buf = Vec::new();
        assert_eq!(src.read_block(&mut buf, 4).unwrap(), 4);
        assert_eq!(buf.len(), 12);
        assert_eq!(buf[0].to_bits(), 0.0f64.to_bits());
        assert_eq!(src.read_block(&mut buf, 4).unwrap(), 4);
        assert_eq!(src.read_block(&mut buf, 4).unwrap(), 2, "partial tail");
        assert_eq!(buf.len(), 6);
        assert_eq!(src.read_block(&mut buf, 4).unwrap(), 0, "exhausted");
        // Rewind and stream row-wise through the RowSource impl.
        src.rewind().unwrap();
        let m = src.collect_matrix().unwrap();
        assert_eq!(m, Matrix::from_vec(10, 3, data).unwrap());
        std::fs::remove_file(&blk).unwrap();
    }

    #[test]
    fn seek_row_is_exact() {
        let blk = tmp("seek.rrcb");
        let data: Vec<f64> = (0..6 * 2).map(|i| i as f64).collect();
        write_block_file(&blk, 2, 6, &data).unwrap();
        let mut src = ColumnarBlockSource::open(&blk).unwrap();
        src.seek_row(4).unwrap();
        assert_eq!(src.position(), 4);
        let mut buf = [0.0; 2];
        assert!(src.next_row(&mut buf).unwrap());
        assert_eq!(buf, [8.0, 9.0]);
        assert!(src.seek_row(7).is_err());
        std::fs::remove_file(&blk).unwrap();
    }

    #[test]
    fn open_rejects_corrupt_headers() {
        let p = tmp("bad_magic.rrcb");
        std::fs::write(&p, b"NOPE\x01\x00\x00\x00").unwrap();
        assert!(matches!(
            ColumnarBlockSource::open(&p),
            Err(DatasetError::Invalid(msg)) if msg.contains("too short") || msg.contains("magic")
        ));
        std::fs::remove_file(&p).unwrap();

        // Truncated payload: header promises more rows than the file holds.
        let p = tmp("truncated.rrcb");
        let data: Vec<f64> = vec![1.0; 4];
        write_block_file(&p, 2, 2, &data).unwrap();
        let full = std::fs::read(&p).unwrap();
        std::fs::write(&p, &full[..full.len() - 8]).unwrap();
        let err = ColumnarBlockSource::open(&p).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_file(&p).unwrap();

        // Wrong version.
        let p = tmp("version.rrcb");
        let mut bytes = full.clone();
        bytes[4] = 9;
        std::fs::write(&p, &bytes).unwrap();
        let err = ColumnarBlockSource::open(&p).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn write_block_file_validates_shape() {
        let p = tmp("shape.rrcb");
        assert!(write_block_file(&p, 3, 2, &[0.0; 5]).is_err());
    }

    #[test]
    fn non_finite_values_survive_the_container_for_scan_policies() {
        // The container itself is value-agnostic: a corrupted file can
        // hold a NaN, and it is the *scan* layer's quarantine that must
        // catch it. The reader hands it through faithfully.
        let p = tmp("nan.rrcb");
        write_block_file(&p, 2, 2, &[1.0, f64::NAN, 3.0, 4.0]).unwrap();
        let mut src = ColumnarBlockSource::open(&p).unwrap();
        let mut buf = Vec::new();
        src.read_block(&mut buf, 2).unwrap();
        assert!(buf[1].is_nan());
        std::fs::remove_file(&p).unwrap();
    }
}
