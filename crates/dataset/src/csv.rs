//! Minimal CSV persistence for data matrices.
//!
//! Deliberately small: numeric cells only, comma separated, with an
//! optional header row of column labels. This matches how the paper's
//! datasets (NBA/baseball/abalone tables) are distributed, without pulling
//! in a CSV dependency.

use crate::{DataMatrix, DatasetError, Result};
use linalg::Matrix;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses one already-trimmed CSV cell into a *finite* `f64`.
///
/// Three failure modes, each reported with the cell's location:
/// * empty / all-whitespace cells ([`DatasetError::EmptyCell`]);
/// * tokens that are not numbers at all ([`DatasetError::Parse`]);
/// * tokens `f64::from_str` happily accepts but that would poison every
///   covariance sum downstream — `nan`, `inf`, `-inf`, `infinity` in any
///   case ([`DatasetError::NonFinite`]).
pub(crate) fn parse_cell(tok: &str, line: usize, column: usize) -> Result<f64> {
    if tok.is_empty() {
        return Err(DatasetError::EmptyCell { line, column });
    }
    let v: f64 = tok.parse().map_err(|_| DatasetError::Parse {
        line,
        column,
        token: tok.to_string(),
    })?;
    if !v.is_finite() {
        return Err(DatasetError::NonFinite {
            line,
            column,
            token: tok.to_string(),
        });
    }
    Ok(v)
}

/// Reads a matrix from CSV text.
///
/// When `has_header` is true the first line supplies column labels;
/// otherwise labels are generated. Empty lines are skipped. Every cell
/// must parse as a finite number; empty cells and literal `nan`/`inf`
/// tokens are rejected with their line and column (use
/// [`read_csv_holed`] for files where blanks mean missing values).
pub fn read_csv<R: Read>(reader: R, has_header: bool) -> Result<DataMatrix> {
    let buf = BufReader::new(reader);
    let mut header: Option<Vec<String>> = None;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut width: Option<usize> = None;

    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if has_header && header.is_none() {
            header = Some(fields.into_iter().map(String::from).collect());
            continue;
        }
        if let Some(w) = width {
            if fields.len() != w {
                return Err(DatasetError::RaggedRows {
                    line: idx + 1,
                    expected: w,
                    actual: fields.len(),
                });
            }
        } else {
            width = Some(fields.len());
        }
        let mut row = Vec::with_capacity(fields.len());
        for (col, tok) in fields.iter().enumerate() {
            row.push(parse_cell(tok, idx + 1, col)?);
        }
        rows.push(row);
    }

    let n = rows.len();
    let m = width.unwrap_or_else(|| header.as_ref().map_or(0, Vec::len));
    if n == 0 || m == 0 {
        return Err(DatasetError::Invalid("empty CSV input".into()));
    }
    if let Some(h) = &header {
        if h.len() != m {
            return Err(DatasetError::RaggedRows {
                line: 1,
                expected: m,
                actual: h.len(),
            });
        }
    }

    let mut data = Vec::with_capacity(n * m);
    for row in &rows {
        data.extend_from_slice(row);
    }
    let matrix = Matrix::from_vec(n, m, data)?;
    let mut dm = DataMatrix::new(matrix);
    if let Some(h) = header {
        dm.set_col_labels(h)?;
    }
    Ok(dm)
}

/// Reads a matrix from a CSV file on disk.
pub fn read_csv_file(path: impl AsRef<Path>, has_header: bool) -> Result<DataMatrix> {
    let file = std::fs::File::open(path)?;
    read_csv(file, has_header)
}

/// Rows of optional cells plus the column labels, as returned by the
/// holed readers.
pub type HoledRows = (Vec<Vec<Option<f64>>>, Vec<String>);

/// Reads a CSV that may contain holes: empty cells or `?` parse to
/// `None`. Returns `(rows, column_labels)` for use with the imputation
/// API.
pub fn read_csv_holed<R: Read>(reader: R, has_header: bool) -> Result<HoledRows> {
    let buf = BufReader::new(reader);
    let mut header: Option<Vec<String>> = None;
    let mut rows: Vec<Vec<Option<f64>>> = Vec::new();
    let mut width: Option<usize> = None;

    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if has_header && header.is_none() {
            header = Some(fields.into_iter().map(String::from).collect());
            continue;
        }
        if let Some(w) = width {
            if fields.len() != w {
                return Err(DatasetError::RaggedRows {
                    line: idx + 1,
                    expected: w,
                    actual: fields.len(),
                });
            }
        } else {
            width = Some(fields.len());
        }
        let mut row = Vec::with_capacity(fields.len());
        for (col, tok) in fields.iter().enumerate() {
            if tok.is_empty() || *tok == "?" {
                row.push(None);
            } else {
                // A known cell must still be a finite number: literal
                // `nan`/`inf` is corruption, not a hole.
                row.push(Some(parse_cell(tok, idx + 1, col)?));
            }
        }
        rows.push(row);
    }
    let m = width.unwrap_or(0);
    if rows.is_empty() || m == 0 {
        return Err(DatasetError::Invalid("empty CSV input".into()));
    }
    let labels = header.unwrap_or_else(|| (0..m).map(|j| format!("attr{j}")).collect());
    if labels.len() != m {
        return Err(DatasetError::RaggedRows {
            line: 1,
            expected: m,
            actual: labels.len(),
        });
    }
    Ok((rows, labels))
}

/// Reads a holed CSV from disk (see [`read_csv_holed`]).
pub fn read_csv_holed_file(path: impl AsRef<Path>, has_header: bool) -> Result<HoledRows> {
    let file = std::fs::File::open(path)?;
    read_csv_holed(file, has_header)
}

/// Writes a matrix as CSV (header row of column labels included).
pub fn write_csv<W: Write>(dm: &DataMatrix, mut writer: W) -> Result<()> {
    writeln!(writer, "{}", dm.col_labels().join(","))?;
    for i in 0..dm.n_rows() {
        let cells: Vec<String> = dm.row(i).iter().map(|v| format!("{v}")).collect();
        writeln!(writer, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Writes a matrix to a CSV file on disk.
pub fn write_csv_file(dm: &DataMatrix, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(dm, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_text() {
        let dm = DataMatrix::with_labels(
            Matrix::from_rows(&[&[1.5, 2.0], &[3.25, -4.0]]).unwrap(),
            vec!["r0".into(), "r1".into()],
            vec!["bread".into(), "butter".into()],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&dm, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("bread,butter\n"));

        let back = read_csv(&buf[..], true).unwrap();
        assert_eq!(back.matrix(), dm.matrix());
        assert_eq!(back.col_labels(), dm.col_labels());
    }

    #[test]
    fn headerless_input_gets_generated_labels() {
        let dm = read_csv("1,2\n3,4\n".as_bytes(), false).unwrap();
        assert_eq!(dm.n_rows(), 2);
        assert_eq!(dm.col_labels(), &["attr0", "attr1"]);
    }

    #[test]
    fn skips_blank_lines_and_trims_spaces() {
        let dm = read_csv("a, b\n 1 , 2 \n\n3,4\n".as_bytes(), true).unwrap();
        assert_eq!(dm.n_rows(), 2);
        assert_eq!(dm.col_labels(), &["a", "b"]);
        assert_eq!(dm.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn reports_parse_errors_with_location() {
        let err = read_csv("1,x\n".as_bytes(), false).unwrap_err();
        match err {
            DatasetError::Parse {
                line,
                column,
                token,
            } => {
                assert_eq!(line, 1);
                assert_eq!(column, 1);
                assert_eq!(token, "x");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn empty_and_whitespace_cells_located() {
        // An empty cell inside a row is reported with line and column,
        // not as a generic parse failure on "".
        let err = read_csv("1,,3\n".as_bytes(), false).unwrap_err();
        assert!(
            matches!(err, DatasetError::EmptyCell { line: 1, column: 1 }),
            "unexpected error {err}"
        );
        // Whitespace-only cells trim to empty and hit the same path.
        let err = read_csv("a,b\n1,2\n3,   \n".as_bytes(), true).unwrap_err();
        assert!(
            matches!(err, DatasetError::EmptyCell { line: 3, column: 1 }),
            "unexpected error {err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("column 1"), "{msg}");
    }

    #[test]
    fn literal_nan_and_inf_tokens_rejected() {
        // `f64::from_str` parses all of these; the reader must not let
        // them smuggle a poisoned cell into the matrix.
        for tok in ["nan", "NaN", "NAN", "inf", "Inf", "-inf", "infinity", "-Infinity"] {
            let text = format!("1,2\n3,{tok}\n");
            let err = read_csv(text.as_bytes(), false).unwrap_err();
            match err {
                DatasetError::NonFinite {
                    line,
                    column,
                    token,
                } => {
                    assert_eq!((line, column), (2, 1), "token {tok}");
                    assert_eq!(token, tok);
                }
                other => panic!("token {tok}: unexpected error {other}"),
            }
        }
        // Still a plain parse error for garbage, with location.
        assert!(matches!(
            read_csv("1,2\n3,infinite\n".as_bytes(), false),
            Err(DatasetError::Parse { line: 2, column: 1, .. })
        ));
    }

    #[test]
    fn holed_reader_rejects_non_finite_tokens() {
        // Blanks and '?' are holes, but literal nan/inf is corruption.
        let err = read_csv_holed("1,nan\n".as_bytes(), false).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::NonFinite { line: 1, column: 1, .. }
        ));
        assert!(matches!(
            read_csv_holed("1,2\n inf ,4\n".as_bytes(), false),
            Err(DatasetError::NonFinite { line: 2, column: 0, .. })
        ));
    }

    #[test]
    fn reports_ragged_rows() {
        let err = read_csv("1,2\n3\n".as_bytes(), false).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::RaggedRows {
                line: 2,
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn header_width_mismatch_detected() {
        let err = read_csv("a,b,c\n1,2\n".as_bytes(), true).unwrap_err();
        assert!(matches!(err, DatasetError::RaggedRows { .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            read_csv("".as_bytes(), false),
            Err(DatasetError::Invalid(_))
        ));
        assert!(matches!(
            read_csv("\n\n".as_bytes(), true),
            Err(DatasetError::Invalid(_))
        ));
    }

    #[test]
    fn holed_reader_parses_question_marks_and_blanks() {
        let (rows, labels) = read_csv_holed("a,b,c\n1,?,3\n4,5,\n".as_bytes(), true).unwrap();
        assert_eq!(labels, vec!["a", "b", "c"]);
        assert_eq!(rows[0], vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(rows[1], vec![Some(4.0), Some(5.0), None]);
    }

    #[test]
    fn holed_reader_validates() {
        assert!(read_csv_holed("".as_bytes(), false).is_err());
        assert!(read_csv_holed("1,2\n3\n".as_bytes(), false).is_err());
        assert!(read_csv_holed("1,x\n".as_bytes(), false).is_err());
        // Headerless gets generated labels.
        let (_, labels) = read_csv_holed("1,?\n".as_bytes(), false).unwrap();
        assert_eq!(labels, vec!["attr0", "attr1"]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("rr_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.csv");
        let dm = DataMatrix::new(Matrix::from_rows(&[&[1.0, 2.0]]).unwrap());
        write_csv_file(&dm, &path).unwrap();
        let back = read_csv_file(&path, true).unwrap();
        assert_eq!(back.matrix(), dm.matrix());
        std::fs::remove_file(&path).unwrap();
    }
}
