//! Labeled data matrix.

use crate::{DatasetError, Result};
use linalg::Matrix;
use serde::{Deserialize, Serialize};

/// An `N x M` data matrix with optional row and column labels.
///
/// Rows are the paper's "records" (customers, players, specimens) and
/// columns its "attributes" (products, statistics, measurements). Labels
/// are carried so mined rules can be rendered in attribute terms
/// ("bread : butter = 0.866 : 0.5") rather than raw indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataMatrix {
    matrix: Matrix,
    row_labels: Vec<String>,
    col_labels: Vec<String>,
}

impl DataMatrix {
    /// Wraps a matrix with generated labels (`row0...`, `attr0...`).
    pub fn new(matrix: Matrix) -> Self {
        let row_labels = (0..matrix.rows()).map(|i| format!("row{i}")).collect();
        let col_labels = (0..matrix.cols()).map(|j| format!("attr{j}")).collect();
        DataMatrix {
            matrix,
            row_labels,
            col_labels,
        }
    }

    /// Wraps a matrix with explicit labels.
    ///
    /// Label counts must match the matrix shape.
    pub fn with_labels(
        matrix: Matrix,
        row_labels: Vec<String>,
        col_labels: Vec<String>,
    ) -> Result<Self> {
        if row_labels.len() != matrix.rows() {
            return Err(DatasetError::Invalid(format!(
                "{} row labels for {} rows",
                row_labels.len(),
                matrix.rows()
            )));
        }
        if col_labels.len() != matrix.cols() {
            return Err(DatasetError::Invalid(format!(
                "{} column labels for {} columns",
                col_labels.len(),
                matrix.cols()
            )));
        }
        Ok(DataMatrix {
            matrix,
            row_labels,
            col_labels,
        })
    }

    /// Sets the column labels in place (count must match).
    pub fn set_col_labels(&mut self, labels: Vec<String>) -> Result<()> {
        if labels.len() != self.matrix.cols() {
            return Err(DatasetError::Invalid(format!(
                "{} column labels for {} columns",
                labels.len(),
                self.matrix.cols()
            )));
        }
        self.col_labels = labels;
        Ok(())
    }

    /// Number of records (rows).
    pub fn n_rows(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of attributes (columns).
    pub fn n_cols(&self) -> usize {
        self.matrix.cols()
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        self.matrix.row(i)
    }

    /// Row labels.
    pub fn row_labels(&self) -> &[String] {
        &self.row_labels
    }

    /// Column labels.
    pub fn col_labels(&self) -> &[String] {
        &self.col_labels
    }

    /// Index of the column with the given label.
    pub fn col_index(&self, label: &str) -> Option<usize> {
        self.col_labels.iter().position(|l| l == label)
    }

    /// Builds a new `DataMatrix` keeping only the given rows (labels
    /// follow).
    pub fn select_rows(&self, indices: &[usize]) -> DataMatrix {
        DataMatrix {
            matrix: self.matrix.select_rows(indices),
            row_labels: indices
                .iter()
                .map(|&i| self.row_labels[i].clone())
                .collect(),
            col_labels: self.col_labels.clone(),
        }
    }

    /// Consumes self, returning the inner matrix.
    pub fn into_matrix(self) -> Matrix {
        self.matrix
    }
}

impl From<Matrix> for DataMatrix {
    fn from(m: Matrix) -> Self {
        DataMatrix::new(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataMatrix {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        DataMatrix::with_labels(
            m,
            vec!["a".into(), "b".into(), "c".into()],
            vec!["bread".into(), "butter".into()],
        )
        .unwrap()
    }

    #[test]
    fn generated_labels() {
        let dm = DataMatrix::new(Matrix::zeros(2, 3));
        assert_eq!(dm.row_labels(), &["row0", "row1"]);
        assert_eq!(dm.col_labels(), &["attr0", "attr1", "attr2"]);
    }

    #[test]
    fn label_validation() {
        let m = Matrix::zeros(2, 2);
        assert!(
            DataMatrix::with_labels(m.clone(), vec!["x".into()], vec!["a".into(), "b".into()])
                .is_err()
        );
        assert!(
            DataMatrix::with_labels(m, vec!["x".into(), "y".into()], vec!["a".into()]).is_err()
        );

        let mut dm = DataMatrix::new(Matrix::zeros(2, 2));
        assert!(dm.set_col_labels(vec!["only-one".into()]).is_err());
        assert!(dm.set_col_labels(vec!["p".into(), "q".into()]).is_ok());
        assert_eq!(dm.col_labels(), &["p", "q"]);
    }

    #[test]
    fn col_index_lookup() {
        let dm = sample();
        assert_eq!(dm.col_index("butter"), Some(1));
        assert_eq!(dm.col_index("milk"), None);
    }

    #[test]
    fn select_rows_carries_labels() {
        let dm = sample();
        let sub = dm.select_rows(&[2, 0]);
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.row_labels(), &["c", "a"]);
        assert_eq!(sub.row(0), &[5.0, 6.0]);
        assert_eq!(sub.col_labels(), dm.col_labels());
    }

    #[test]
    fn from_matrix_conversion() {
        let dm: DataMatrix = Matrix::identity(2).into();
        assert_eq!(dm.n_rows(), 2);
        assert_eq!(dm.into_matrix(), Matrix::identity(2));
    }
}
