//! Error type for the dataset crate.

use std::fmt;

/// Errors from loading, splitting, or generating datasets.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying linear algebra failure (e.g. bad shape).
    Linalg(linalg::LinalgError),
    /// I/O failure while reading or writing a dataset file.
    Io(std::io::Error),
    /// A CSV cell could not be parsed as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        column: usize,
        /// Offending token.
        token: String,
    },
    /// Rows with inconsistent numbers of fields.
    RaggedRows {
        /// 1-based line number of the offending row.
        line: usize,
        /// Expected field count (from the first row).
        expected: usize,
        /// Actual field count.
        actual: usize,
    },
    /// Invalid argument (bad fraction, empty matrix, label mismatch...).
    Invalid(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Linalg(e) => write!(f, "linalg error: {e}"),
            DatasetError::Io(e) => write!(f, "io error: {e}"),
            DatasetError::Parse {
                line,
                column,
                token,
            } => {
                write!(
                    f,
                    "line {line}, column {column}: cannot parse {token:?} as a number"
                )
            }
            DatasetError::RaggedRows {
                line,
                expected,
                actual,
            } => {
                write!(f, "line {line}: expected {expected} fields, found {actual}")
            }
            DatasetError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Linalg(e) => Some(e),
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<linalg::LinalgError> for DatasetError {
    fn from(e: linalg::LinalgError) -> Self {
        DatasetError::Linalg(e)
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DatasetError::Parse {
            line: 3,
            column: 2,
            token: "abc".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("abc"));

        let e = DatasetError::RaggedRows {
            line: 5,
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 4"));

        let e = DatasetError::Invalid("fraction out of range".into());
        assert!(e.to_string().contains("fraction"));
    }

    #[test]
    fn conversions_preserve_source() {
        use std::error::Error;
        let e: DatasetError = linalg::LinalgError::Singular { op: "solve" }.into();
        assert!(e.source().is_some());
        let e: DatasetError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert!(e.source().is_some());
    }
}
