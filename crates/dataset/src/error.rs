//! Error type for the dataset crate.

use std::fmt;

/// Errors from loading, splitting, or generating datasets.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying linear algebra failure (e.g. bad shape).
    Linalg(linalg::LinalgError),
    /// I/O failure while reading or writing a dataset file.
    Io(std::io::Error),
    /// A CSV cell could not be parsed as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        column: usize,
        /// Offending token.
        token: String,
    },
    /// Rows with inconsistent numbers of fields.
    RaggedRows {
        /// 1-based line number of the offending row.
        line: usize,
        /// Expected field count (from the first row).
        expected: usize,
        /// Actual field count.
        actual: usize,
    },
    /// A CSV cell was empty or all whitespace where a number was
    /// required.
    EmptyCell {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        column: usize,
    },
    /// A CSV cell parsed as a non-finite number (`nan`, `inf`, ...).
    /// `f64::from_str` accepts these tokens, but a single one silently
    /// poisons every downstream covariance sum, so the readers reject
    /// them explicitly with their location.
    NonFinite {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        column: usize,
        /// Offending token as it appeared in the file.
        token: String,
    },
    /// A transient failure (torn read, timeout, injected fault) that may
    /// succeed if the same operation is retried. See
    /// [`crate::retry::RetryingSource`].
    Transient(String),
    /// Invalid argument (bad fraction, empty matrix, label mismatch...).
    Invalid(String),
}

impl DatasetError {
    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// True for [`DatasetError::Transient`] and for I/O errors whose kind
    /// is interruption/timeout-shaped; false for data errors (a corrupt
    /// cell stays corrupt no matter how often it is re-read).
    pub fn is_transient(&self) -> bool {
        match self {
            DatasetError::Transient(_) => true,
            DatasetError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Linalg(e) => write!(f, "linalg error: {e}"),
            DatasetError::Io(e) => write!(f, "io error: {e}"),
            DatasetError::Parse {
                line,
                column,
                token,
            } => {
                write!(
                    f,
                    "line {line}, column {column}: cannot parse {token:?} as a number"
                )
            }
            DatasetError::RaggedRows {
                line,
                expected,
                actual,
            } => {
                write!(f, "line {line}: expected {expected} fields, found {actual}")
            }
            DatasetError::EmptyCell { line, column } => {
                write!(
                    f,
                    "line {line}, column {column}: empty cell where a number was required"
                )
            }
            DatasetError::NonFinite {
                line,
                column,
                token,
            } => {
                write!(
                    f,
                    "line {line}, column {column}: non-finite value {token:?} is not a valid cell"
                )
            }
            DatasetError::Transient(msg) => write!(f, "transient failure: {msg}"),
            DatasetError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Linalg(e) => Some(e),
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<linalg::LinalgError> for DatasetError {
    fn from(e: linalg::LinalgError) -> Self {
        DatasetError::Linalg(e)
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DatasetError::Parse {
            line: 3,
            column: 2,
            token: "abc".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("abc"));

        let e = DatasetError::RaggedRows {
            line: 5,
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 4"));

        let e = DatasetError::Invalid("fraction out of range".into());
        assert!(e.to_string().contains("fraction"));

        let e = DatasetError::EmptyCell { line: 7, column: 1 };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("empty cell"));

        let e = DatasetError::NonFinite {
            line: 2,
            column: 0,
            token: "inf".into(),
        };
        assert!(e.to_string().contains("non-finite"));
        assert!(e.to_string().contains("inf"));

        let e = DatasetError::Transient("torn read".into());
        assert!(e.to_string().contains("torn read"));
    }

    #[test]
    fn transient_classification() {
        assert!(DatasetError::Transient("x".into()).is_transient());
        let interrupted: DatasetError =
            std::io::Error::new(std::io::ErrorKind::Interrupted, "signal").into();
        assert!(interrupted.is_transient());
        let timed_out: DatasetError =
            std::io::Error::new(std::io::ErrorKind::TimedOut, "slow disk").into();
        assert!(timed_out.is_transient());
        // Data errors never become correct by re-reading.
        let missing: DatasetError =
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(!missing.is_transient());
        assert!(!DatasetError::EmptyCell { line: 1, column: 0 }.is_transient());
        assert!(!DatasetError::NonFinite {
            line: 1,
            column: 0,
            token: "nan".into()
        }
        .is_transient());
        assert!(!DatasetError::Invalid("bad".into()).is_transient());
    }

    #[test]
    fn conversions_preserve_source() {
        use std::error::Error;
        let e: DatasetError = linalg::LinalgError::Singular { op: "solve" }.into();
        assert!(e.source().is_some());
        let e: DatasetError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert!(e.source().is_some());
    }
}
