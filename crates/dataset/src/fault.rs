//! Deterministic fault injection for [`RowSource`] streams.
//!
//! The paper's single-pass scan is aimed at data "far larger than
//! memory" — the regime where torn reads, corrupt cells, and mid-scan
//! truncation are facts of life, not test fixtures. [`FaultyRowSource`]
//! wraps any [`RowSource`] and injects four fault families at seeded,
//! position-deterministic points, so every chaos test is exactly
//! reproducible and the "good rows" subset of a faulty stream is a pure
//! function of `(seed, rates)`:
//!
//! * **transient** — `next_row` fails with [`DatasetError::Transient`]
//!   *before* consuming the underlying row, exactly once per position;
//!   a retry (or rewind) at the same position succeeds. This models the
//!   torn read / timeout family that [`crate::retry::RetryingSource`]
//!   absorbs.
//! * **corrupt cell** — one cell of the delivered row is replaced with
//!   `NaN`. The row *is* consumed; the fault is persistent, firing at
//!   the same position on every pass.
//! * **arity mismatch** — the row is consumed but reported as
//!   [`DatasetError::RaggedRows`], as if the producer dropped a field.
//!   Persistent per position.
//! * **truncation** — the stream ends early at a fixed row index, once;
//!   after a rewind the full stream is visible again (the "crash, then
//!   resume from checkpoint" scenario).
//!
//! Determinism comes from hashing `(seed, position, fault-kind salt)`
//! with SplitMix64, so faults at different positions are independent
//! and a given `(seed, rate)` pair marks the same rows on every run.

use crate::{DatasetError, Result, source::RowSource};

/// SplitMix64: tiny, high-quality 64-bit mixer (Steele et al., 2014).
/// Used as a stateless hash: same input, same output, no RNG stream to
/// keep in sync with the cursor.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const SALT_TRANSIENT: u64 = 0x7472_616e_7369; // "transi"
const SALT_CORRUPT: u64 = 0x636f_7272_7570; // "corrup"
const SALT_ARITY: u64 = 0x6172_6974_79; // "arity"
const SALT_COLUMN: u64 = 0x636f_6c75_6d6e; // "column"

/// Converts a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    // 53 high bits -> exactly representable dyadic rational.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seeded fault rates for a [`FaultyRowSource`]. All rates are
/// probabilities in `[0, 1]` evaluated independently per row position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the position hashes; same seed, same faults.
    pub seed: u64,
    /// Probability a row position raises a one-shot transient error.
    pub transient_rate: f64,
    /// Probability a delivered row has one cell replaced with `NaN`.
    pub corrupt_rate: f64,
    /// Probability a row position reports an arity mismatch.
    pub arity_rate: f64,
    /// First pass ends (`Ok(false)`) after this many delivered rows.
    pub truncate_after: Option<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing — wrapping with it is the identity.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            corrupt_rate: 0.0,
            arity_rate: 0.0,
            truncate_after: None,
        }
    }

    /// A plan injecting every fault family at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            transient_rate: rate,
            corrupt_rate: rate,
            arity_rate: rate,
            truncate_after: None,
        }
    }

    fn draw(&self, position: usize, salt: u64) -> f64 {
        unit(splitmix64(
            self.seed ^ (position as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt,
        ))
    }

    /// Whether a transient error fires (once) at this row position.
    pub fn transient_at(&self, position: usize) -> bool {
        self.transient_rate > 0.0 && self.draw(position, SALT_TRANSIENT) < self.transient_rate
    }

    /// Which column (if any) is corrupted at this row position.
    pub fn corrupt_at(&self, position: usize, n_cols: usize) -> Option<usize> {
        if n_cols > 0
            && self.corrupt_rate > 0.0
            && self.draw(position, SALT_CORRUPT) < self.corrupt_rate
        {
            Some((splitmix64(self.seed ^ position as u64 ^ SALT_COLUMN) % n_cols as u64) as usize)
        } else {
            None
        }
    }

    /// Whether an arity mismatch fires at this row position.
    pub fn arity_at(&self, position: usize) -> bool {
        self.arity_rate > 0.0 && self.draw(position, SALT_ARITY) < self.arity_rate
    }

    /// Whether the row at this position survives every *persistent*
    /// fault — i.e. belongs to the clean subset a quarantine scan must
    /// reproduce bit-for-bit. Transient faults don't disqualify a row
    /// (the row itself is intact once retried).
    pub fn row_is_clean(&self, position: usize, n_cols: usize) -> bool {
        !self.arity_at(position) && self.corrupt_at(position, n_cols).is_none()
    }
}

/// Counts of faults actually injected, by family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// One-shot transient errors raised.
    pub transient: usize,
    /// Rows delivered with a `NaN`-corrupted cell.
    pub corrupt: usize,
    /// Rows reported as arity mismatches.
    pub arity: usize,
    /// Premature end-of-stream events.
    pub truncations: usize,
}

impl FaultLog {
    /// Total faults injected across all families.
    pub fn total(&self) -> usize {
        self.transient + self.corrupt + self.arity + self.truncations
    }
}

/// A [`RowSource`] adapter that injects deterministic faults per
/// [`FaultPlan`]. See the module docs for per-family semantics.
#[derive(Debug)]
pub struct FaultyRowSource<S> {
    inner: S,
    plan: FaultPlan,
    /// Next row position (rows delivered or consumed-with-error so far
    /// in the current pass).
    position: usize,
    /// Positions whose one-shot transient has already fired (global
    /// across rewinds, so a retry pass streams clean).
    fired_transients: std::collections::HashSet<usize>,
    truncated: bool,
    log: FaultLog,
}

impl<S: RowSource> FaultyRowSource<S> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyRowSource {
            inner,
            plan,
            position: 0,
            fired_transients: std::collections::HashSet::new(),
            truncated: false,
            log: FaultLog::default(),
        }
    }

    /// Faults injected so far.
    pub fn log(&self) -> FaultLog {
        self.log
    }

    /// The plan driving the injection.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Unwraps the adapter, returning the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RowSource> RowSource for FaultyRowSource<S> {
    fn n_cols(&self) -> usize {
        self.inner.n_cols()
    }

    fn next_row(&mut self, buf: &mut [f64]) -> Result<bool> {
        let pos = self.position;
        // Transient first: fires *before* the inner row is touched so a
        // retry sees the row intact. One-shot per position.
        if self.plan.transient_at(pos) && self.fired_transients.insert(pos) {
            self.log.transient += 1;
            obs::counter_add("faults_injected_transient_total", 1);
            return Err(DatasetError::Transient(format!(
                "injected transient fault at row position {pos}"
            )));
        }
        // Truncation: a one-shot premature EOF mid-stream.
        if let Some(t) = self.plan.truncate_after {
            if pos >= t && !self.truncated {
                self.truncated = true;
                self.log.truncations += 1;
                obs::counter_add("faults_injected_truncation_total", 1);
                return Ok(false);
            }
        }
        if !self.inner.next_row(buf)? {
            return Ok(false);
        }
        // The inner row is consumed from here on: persistent faults.
        self.position += 1;
        if self.plan.arity_at(pos) {
            self.log.arity += 1;
            obs::counter_add("faults_injected_arity_total", 1);
            return Err(DatasetError::RaggedRows {
                line: pos + 1,
                expected: buf.len(),
                actual: buf.len().saturating_sub(1),
            });
        }
        if let Some(col) = self.plan.corrupt_at(pos, buf.len()) {
            self.log.corrupt += 1;
            obs::counter_add("faults_injected_corrupt_total", 1);
            buf[col] = f64::NAN;
        }
        Ok(true)
    }

    fn rewind(&mut self) -> Result<()> {
        self.inner.rewind()?;
        self.position = 0;
        // Truncation re-arms only if it never fired; once the crash has
        // "happened", later passes see the whole stream (the recovery
        // scenario). Fired transients likewise stay fired.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MatrixSource;
    use linalg::Matrix;

    fn data(n: usize) -> Matrix {
        Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64)
    }

    fn drain<S: RowSource>(src: &mut S) -> (Vec<Vec<f64>>, Vec<DatasetError>) {
        let mut buf = vec![0.0; src.n_cols()];
        let mut rows = Vec::new();
        let mut errs = Vec::new();
        loop {
            match src.next_row(&mut buf) {
                Ok(true) => rows.push(buf.clone()),
                Ok(false) => break,
                Err(e) => {
                    errs.push(e);
                    if errs.len() > 10_000 {
                        panic!("fault stream never terminates");
                    }
                }
            }
        }
        (rows, errs)
    }

    #[test]
    fn zero_rate_plan_is_identity() {
        let m = data(20);
        let mut src = FaultyRowSource::new(MatrixSource::new(&m), FaultPlan::none(7));
        let collected = src.collect_matrix().unwrap();
        assert_eq!(collected, m);
        assert_eq!(src.log(), FaultLog::default());
    }

    #[test]
    fn faults_are_deterministic_across_instances() {
        let m = data(200);
        let plan = FaultPlan {
            seed: 42,
            transient_rate: 0.05,
            corrupt_rate: 0.05,
            arity_rate: 0.05,
            truncate_after: None,
        };
        let mut a = FaultyRowSource::new(MatrixSource::new(&m), plan);
        let mut b = FaultyRowSource::new(MatrixSource::new(&m), plan);
        let (rows_a, errs_a) = drain(&mut a);
        let (rows_b, errs_b) = drain(&mut b);
        // Bit-level comparison: corrupted cells are NaN, and NaN != NaN
        // under ==.
        assert_eq!(rows_a.len(), rows_b.len());
        for (ra, rb) in rows_a.iter().zip(&rows_b) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(errs_a.len(), errs_b.len());
        assert_eq!(a.log(), b.log());
        assert!(a.log().total() > 0, "5% rates over 200 rows should fire");
    }

    #[test]
    fn transient_fault_is_one_shot_and_preserves_row() {
        let m = data(50);
        let plan = FaultPlan {
            seed: 3,
            transient_rate: 0.2,
            corrupt_rate: 0.0,
            arity_rate: 0.0,
            truncate_after: None,
        };
        let mut src = FaultyRowSource::new(MatrixSource::new(&m), plan);
        let mut buf = [0.0; 3];
        let mut rows = Vec::new();
        while rows.len() < 50 {
            match src.next_row(&mut buf) {
                Ok(true) => rows.push(buf.to_vec()),
                Ok(false) => break,
                // Immediate retry after a transient must succeed and
                // deliver the row that was "in flight".
                Err(e) => assert!(e.is_transient()),
            }
        }
        assert!(src.log().transient > 0, "20% over 50 rows should fire");
        let expected: Vec<Vec<f64>> = (0..50).map(|i| m.row(i).to_vec()).collect();
        assert_eq!(rows, expected, "no row lost or reordered by transients");
    }

    #[test]
    fn rewind_after_faults_yields_full_clean_stream() {
        // Satellite guarantee at the injector level: once the one-shot
        // faults have fired, a rewind replays the entire clean stream.
        let m = data(30);
        let plan = FaultPlan {
            seed: 11,
            transient_rate: 0.3,
            corrupt_rate: 0.0,
            arity_rate: 0.0,
            truncate_after: Some(12),
        };
        let mut src = FaultyRowSource::new(MatrixSource::new(&m), plan);
        let (first_pass, errs) = drain(&mut src);
        assert_eq!(first_pass.len(), 12, "first pass truncated");
        assert!(!errs.is_empty() || src.log().transient == 0);
        let fired_in_pass_one = src.log().transient;
        src.rewind().unwrap();
        let (second_pass, errs2) = drain(&mut src);
        // Transients at positions the truncated pass visited must not
        // re-fire; only never-visited positions (>= 12) may still pop.
        assert!(errs2.iter().all(|e| e.is_transient()));
        assert_eq!(
            src.log().transient - fired_in_pass_one,
            errs2.len(),
            "pass-two errors are exactly the not-yet-fired transients"
        );
        for pos in 0..12 {
            assert!(
                !plan.transient_at(pos) || fired_in_pass_one > 0,
                "visited transients fired in pass one"
            );
        }
        let expected: Vec<Vec<f64>> = (0..30).map(|i| m.row(i).to_vec()).collect();
        assert_eq!(second_pass, expected, "full clean stream after rewind");
    }

    #[test]
    fn persistent_faults_match_plan_predicates() {
        let m = data(300);
        let plan = FaultPlan {
            seed: 99,
            transient_rate: 0.0,
            corrupt_rate: 0.1,
            arity_rate: 0.1,
            truncate_after: None,
        };
        let mut src = FaultyRowSource::new(MatrixSource::new(&m), plan);
        let mut buf = [0.0; 3];
        for pos in 0..300 {
            match src.next_row(&mut buf) {
                Ok(true) => {
                    assert!(!plan.arity_at(pos));
                    match plan.corrupt_at(pos, 3) {
                        Some(col) => assert!(buf[col].is_nan()),
                        None => {
                            assert!(buf.iter().all(|v| v.is_finite()));
                            assert!(plan.row_is_clean(pos, 3));
                            assert_eq!(&buf[..], m.row(pos));
                        }
                    }
                }
                Ok(false) => panic!("stream ended early at {pos}"),
                Err(e) => {
                    assert!(plan.arity_at(pos), "unexpected error at {pos}: {e}");
                    assert!(matches!(e, DatasetError::RaggedRows { .. }));
                }
            }
        }
        assert!(!src.next_row(&mut buf).unwrap());
        assert!(src.log().corrupt > 0 && src.log().arity > 0);
    }

    #[test]
    fn truncation_fires_once_then_stream_recovers() {
        let m = data(10);
        let plan = FaultPlan {
            seed: 1,
            transient_rate: 0.0,
            corrupt_rate: 0.0,
            arity_rate: 0.0,
            truncate_after: Some(4),
        };
        let mut src = FaultyRowSource::new(MatrixSource::new(&m), plan);
        let (first, _) = drain(&mut src);
        assert_eq!(first.len(), 4);
        assert_eq!(src.log().truncations, 1);
        src.rewind().unwrap();
        let (second, _) = drain(&mut src);
        assert_eq!(second.len(), 10);
        assert_eq!(src.log().truncations, 1, "truncation is one-shot");
    }
}
