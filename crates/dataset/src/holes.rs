//! Hole masks and hole-set sampling for the guessing-error metric.
//!
//! Definition 2 of the paper averages over "some subset of the (M choose h)
//! combinations" of `h`-hole sets. This module provides that machinery:
//! deterministic enumeration for small `M`, seeded sampling otherwise, and
//! the [`HoledRow`] view used by the reconstruction code.

use crate::{DatasetError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A set of hole positions `H` within a row of width `m`.
///
/// Invariant: indices are strictly increasing and `< m`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HoleSet {
    indices: Vec<usize>,
    m: usize,
}

impl HoleSet {
    /// Builds a hole set, validating and sorting the indices.
    pub fn new(mut indices: Vec<usize>, m: usize) -> Result<Self> {
        indices.sort_unstable();
        indices.dedup();
        if indices.len() >= m {
            return Err(DatasetError::Invalid(format!(
                "{} holes leaves no known values in a width-{m} row",
                indices.len()
            )));
        }
        if let Some(&max) = indices.last() {
            if max >= m {
                return Err(DatasetError::Invalid(format!(
                    "hole index {max} >= width {m}"
                )));
            }
        }
        if indices.is_empty() {
            return Err(DatasetError::Invalid("empty hole set".into()));
        }
        Ok(HoleSet { indices, m })
    }

    /// Hole positions, ascending.
    pub fn holes(&self) -> &[usize] {
        &self.indices
    }

    /// Number of holes `h`.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Always false (construction rejects empty sets) — provided for
    /// clippy-friendliness alongside `len`.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Row width `M`.
    pub fn width(&self) -> usize {
        self.m
    }

    /// The complement: indices of *known* positions, ascending. These are
    /// the rows kept by the paper's elimination matrix `E_H`.
    pub fn known(&self) -> Vec<usize> {
        (0..self.m).filter(|i| !self.indices.contains(i)).collect()
    }

    /// True if `j` is a hole.
    pub fn contains(&self, j: usize) -> bool {
        self.indices.binary_search(&j).is_ok()
    }

    /// Punches the holes into a row, producing a [`HoledRow`].
    pub fn apply(&self, row: &[f64]) -> Result<HoledRow> {
        if row.len() != self.m {
            return Err(DatasetError::Invalid(format!(
                "row width {} != hole-set width {}",
                row.len(),
                self.m
            )));
        }
        let values = row
            .iter()
            .enumerate()
            .map(|(j, &v)| if self.contains(j) { None } else { Some(v) })
            .collect();
        Ok(HoledRow { values })
    }
}

/// A row vector with holes: the paper's `b_H` ("?" entries are `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct HoledRow {
    /// `None` marks a hole.
    pub values: Vec<Option<f64>>,
}

impl HoledRow {
    /// Builds directly from optional values.
    pub fn new(values: Vec<Option<f64>>) -> Self {
        HoledRow { values }
    }

    /// Row width `M`.
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// Indices of holes, ascending.
    pub fn hole_indices(&self) -> Vec<usize> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(j, v)| v.is_none().then_some(j))
            .collect()
    }

    /// Indices of known values, ascending.
    pub fn known_indices(&self) -> Vec<usize> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(j, v)| v.is_some().then_some(j))
            .collect()
    }

    /// The known values, in index order (the paper's `b' = E_H b_H^t`).
    pub fn known_values(&self) -> Vec<f64> {
        self.values.iter().flatten().copied().collect()
    }
}

/// Enumerates *all* `h`-hole subsets of `{0..m}` in lexicographic order.
///
/// Use only for small `(m, h)`; the count is `C(m, h)`.
pub fn enumerate_hole_sets(m: usize, h: usize) -> Result<Vec<HoleSet>> {
    if h == 0 || h >= m {
        return Err(DatasetError::Invalid(format!(
            "need 0 < h < m, got h={h}, m={m}"
        )));
    }
    let mut out = Vec::new();
    let mut combo: Vec<usize> = (0..h).collect();
    loop {
        out.push(HoleSet::new(combo.clone(), m)?);
        // Next combination.
        let mut i = h;
        loop {
            if i == 0 {
                return Ok(out);
            }
            i -= 1;
            if combo[i] != i + m - h {
                break;
            }
        }
        combo[i] += 1;
        for j in (i + 1)..h {
            combo[j] = combo[j - 1] + 1;
        }
    }
}

/// Samples `count` distinct `h`-hole sets uniformly (seeded). Falls back to
/// full enumeration when `C(m, h)` is small enough to enumerate exactly.
pub fn sample_hole_sets(m: usize, h: usize, count: usize, seed: u64) -> Result<Vec<HoleSet>> {
    if h == 0 || h >= m {
        return Err(DatasetError::Invalid(format!(
            "need 0 < h < m, got h={h}, m={m}"
        )));
    }
    // If the exact number of combinations is small, enumerate and subsample.
    if let Some(total) = binomial(m, h) {
        if total <= count.max(64) {
            let mut all = enumerate_hole_sets(m, h)?;
            if all.len() > count {
                let mut rng = StdRng::seed_from_u64(seed);
                all.shuffle(&mut rng);
                all.truncate(count);
            }
            return Ok(all);
        }
    }
    // Otherwise sample without replacement via rejection.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(count);
    let mut indices: Vec<usize> = (0..m).collect();
    while out.len() < count {
        indices.shuffle(&mut rng);
        let mut pick: Vec<usize> = indices[..h].to_vec();
        pick.sort_unstable();
        if seen.insert(pick.clone()) {
            out.push(HoleSet::new(pick, m)?);
        }
    }
    Ok(out)
}

/// `C(n, k)` with overflow detection.
fn binomial(n: usize, k: usize) -> Option<usize> {
    let k = k.min(n - k);
    let mut acc: usize = 1;
    for i in 0..k {
        acc = acc.checked_mul(n - i)?;
        acc /= i + 1;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hole_set_validation() {
        assert!(HoleSet::new(vec![], 5).is_err());
        assert!(HoleSet::new(vec![5], 5).is_err());
        assert!(HoleSet::new(vec![0, 1, 2], 3).is_err()); // no known values left
        let h = HoleSet::new(vec![3, 1, 1], 5).unwrap(); // dedup + sort
        assert_eq!(h.holes(), &[1, 3]);
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
    }

    #[test]
    fn known_is_complement() {
        let h = HoleSet::new(vec![1, 3], 5).unwrap();
        assert_eq!(h.known(), vec![0, 2, 4]);
        assert!(h.contains(3));
        assert!(!h.contains(2));
    }

    #[test]
    fn apply_punches_holes() {
        let h = HoleSet::new(vec![1, 3], 5).unwrap();
        let row = [10.0, 20.0, 30.0, 40.0, 50.0];
        let holed = h.apply(&row).unwrap();
        assert_eq!(
            holed.values,
            vec![Some(10.0), None, Some(30.0), None, Some(50.0)]
        );
        assert_eq!(holed.hole_indices(), vec![1, 3]);
        assert_eq!(holed.known_indices(), vec![0, 2, 4]);
        assert_eq!(holed.known_values(), vec![10.0, 30.0, 50.0]);
        assert_eq!(holed.width(), 5);
        assert!(h.apply(&row[..4]).is_err());
    }

    #[test]
    fn paper_example_2hole_vector() {
        // The paper's example: b_{2,4} = [b1, ?, b3, ?, b5] (1-indexed)
        // == holes at 0-indexed {1, 3} of a width-5 row.
        let h = HoleSet::new(vec![1, 3], 5).unwrap();
        let holed = h.apply(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        // E_H b^t keeps (b1, b3, b5) in paper terms.
        assert_eq!(holed.known_values(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn enumeration_counts_match_binomial() {
        let sets = enumerate_hole_sets(5, 2).unwrap();
        assert_eq!(sets.len(), 10);
        // All distinct.
        let uniq: std::collections::HashSet<_> = sets.iter().collect();
        assert_eq!(uniq.len(), 10);
        // Lexicographically first and last.
        assert_eq!(sets[0].holes(), &[0, 1]);
        assert_eq!(sets[9].holes(), &[3, 4]);

        assert!(enumerate_hole_sets(5, 0).is_err());
        assert!(enumerate_hole_sets(5, 5).is_err());
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let a = sample_hole_sets(20, 3, 25, 99).unwrap();
        let b = sample_hole_sets(20, 3, 25, 99).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
        let uniq: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(uniq.len(), 25);
    }

    #[test]
    fn sampling_small_space_enumerates() {
        // C(4,2) = 6 < requested 10 -> must return all 6.
        let sets = sample_hole_sets(4, 2, 10, 1).unwrap();
        assert_eq!(sets.len(), 6);
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(10, 0), Some(1));
        assert_eq!(binomial(52, 5), Some(2598960));
    }
}
