//! Holed rows from JSON — the prediction-service wire format.
//!
//! A row is a JSON array with one entry per attribute; a hole is `null`
//! or the CSV-style `"?"` marker, and every known cell must be a finite
//! number (the same rule the CSV readers enforce — one `NaN` silently
//! poisons every downstream sum).

use crate::error::DatasetError;
use crate::holes::HoledRow;
use obs::json::JsonValue;

fn cell(v: &JsonValue, row: usize, column: usize) -> Result<Option<f64>, DatasetError> {
    match v {
        JsonValue::Null => Ok(None),
        JsonValue::Str(s) if s == "?" => Ok(None),
        JsonValue::Num(x) if x.is_finite() => Ok(Some(*x)),
        JsonValue::Num(x) => Err(DatasetError::NonFinite {
            line: row + 1,
            column,
            token: format!("{x}"),
        }),
        other => Err(DatasetError::Invalid(format!(
            "row {row}, cell {column}: expected a number, null, or \"?\", got {}",
            other.write(false)
        ))),
    }
}

/// Decodes one row: `[1.5, null, "?", 3.0]` → knowns and holes.
///
/// # Errors
/// Fails when the value is not an array, or any cell is neither a
/// finite number, `null`, nor `"?"`.
pub fn holed_row_from_json(v: &JsonValue) -> Result<HoledRow, DatasetError> {
    row_at(v, 0)
}

fn row_at(v: &JsonValue, row: usize) -> Result<HoledRow, DatasetError> {
    let cells = v
        .as_arr()
        .ok_or_else(|| DatasetError::Invalid(format!("row {row}: expected a JSON array")))?;
    let values = cells
        .iter()
        .enumerate()
        .map(|(j, c)| cell(c, row, j))
        .collect::<Result<Vec<Option<f64>>, DatasetError>>()?;
    Ok(HoledRow::new(values))
}

/// Decodes an array of rows, all `width` columns wide.
///
/// # Errors
/// Fails when the value is not an array of arrays, any cell is invalid,
/// or any row's width differs from `width` (reported like the CSV
/// reader's ragged-row error, with the 1-based row number).
pub fn holed_rows_from_json(v: &JsonValue, width: usize) -> Result<Vec<HoledRow>, DatasetError> {
    let rows = v
        .as_arr()
        .ok_or_else(|| DatasetError::Invalid("expected a JSON array of rows".into()))?;
    rows.iter()
        .enumerate()
        .map(|(i, r)| {
            let row = row_at(r, i)?;
            if row.width() != width {
                return Err(DatasetError::RaggedRows {
                    line: i + 1,
                    expected: width,
                    actual: row.width(),
                });
            }
            Ok(row)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> JsonValue {
        obs::json::parse(s).unwrap()
    }

    #[test]
    fn decodes_numbers_nulls_and_question_marks() {
        let row = holed_row_from_json(&parse(r#"[1.5, null, "?", -3.0]"#)).unwrap();
        assert_eq!(row.values, vec![Some(1.5), None, None, Some(-3.0)]);
        assert_eq!(row.hole_indices(), vec![1, 2]);
    }

    #[test]
    fn rejects_non_numeric_cells_and_non_arrays() {
        assert!(holed_row_from_json(&parse(r#"["abc"]"#)).is_err());
        assert!(holed_row_from_json(&parse(r#"[true]"#)).is_err());
        assert!(holed_row_from_json(&parse(r#"{"a": 1}"#)).is_err());
    }

    #[test]
    fn batch_decoding_enforces_width() {
        let rows = holed_rows_from_json(&parse(r#"[[1, null], [2, 3]]"#), 2).unwrap();
        assert_eq!(rows.len(), 2);
        let err = holed_rows_from_json(&parse(r#"[[1, null], [2]]"#), 2).unwrap_err();
        assert!(err.to_string().contains("expected 2 fields"), "{err}");
    }

    #[test]
    fn values_round_trip_bit_exactly_through_json() {
        // Shortest-roundtrip printing means a served fill can be compared
        // bit-for-bit against an in-process one.
        let vals = [0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300];
        for v in vals {
            let doc = JsonValue::Arr(vec![JsonValue::Num(v)]).write(false);
            let row = holed_row_from_json(&parse(&doc)).unwrap();
            assert_eq!(row.values[0], Some(v), "{doc}");
        }
    }
}
