//! Data layer for the Ratio Rules reproduction.
//!
//! Provides the `N x M` data matrices the paper mines (customers x
//! products, players x statistics, ...), plus everything around them:
//!
//! * [`DataMatrix`] — a [`linalg::Matrix`] with row/column labels.
//! * [`csv`] — minimal CSV persistence.
//! * [`stats`] — two-pass column statistics used as the numerical oracle
//!   for the single-pass covariance in the core crate.
//! * [`split`] — seeded 90/10 train/test splits (paper Sec. 4.3/5).
//! * [`source`] — the [`source::RowSource`] streaming abstraction: the
//!   paper's algorithm reads the matrix one row at a time from disk, and
//!   this trait models exactly that access pattern.
//! * [`columnar`] — the `RRCB` binary block format: CSV converted once,
//!   then scanned as raw row-major `f64` blocks sized for the core
//!   crate's blocked covariance kernel.
//! * [`fault`] — deterministic, seeded fault injection over any row
//!   source (transient errors, corrupt cells, arity mismatches,
//!   truncation) for chaos-testing the single-pass scan.
//! * [`retry`] — retry-with-backoff adapter absorbing transient source
//!   failures, with an injectable clock so tests run instantly.
//! * [`holes`] — hole masks and hole-set sampling for the `GE_h` metric.
//! * [`synth`] — synthetic stand-ins for the paper's datasets (`nba`,
//!   `baseball`, `abalone`) and the Quest-style scale-up workload; see
//!   DESIGN.md for the substitution rationale.
//! * [`categorical`] — one-hot encoding of mixed tables (the paper's
//!   Sec. 7 future-work item).
//!
//! # Example
//!
//! ```
//! use dataset::{DataMatrix, split::train_test_split, holes::HoleSet};
//! use linalg::Matrix;
//!
//! let data = DataMatrix::new(Matrix::from_fn(100, 4, |i, j| (i + j) as f64));
//! // The paper's 90/10 protocol, seeded for reproducibility.
//! let split = train_test_split(&data, 0.9, 42)?;
//! assert_eq!(split.train.n_rows(), 90);
//!
//! // Punch two holes into a test row (Definition 2's h = 2 case).
//! let holes = HoleSet::new(vec![1, 3], 4)?;
//! let holed = holes.apply(split.test.row(0))?;
//! assert_eq!(holed.hole_indices(), vec![1, 3]);
//! # Ok::<(), dataset::DatasetError>(())
//! ```

#![warn(missing_docs)]

pub mod categorical;
pub mod columnar;
pub mod csv;
pub mod data_matrix;
pub mod error;
pub mod fault;
pub mod holes;
pub mod jsonrow;
pub mod retry;
pub mod source;
pub mod split;
pub mod stats;
pub mod synth;

pub use data_matrix::DataMatrix;
pub use error::DatasetError;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DatasetError>;
