//! Retry-with-backoff for transient [`RowSource`] failures.
//!
//! Disk hiccups, interrupted syscalls, and the injected faults of
//! [`crate::fault::FaultyRowSource`] share a property: the same read,
//! re-issued, usually succeeds. [`RetryingSource`] absorbs exactly that
//! class — errors for which [`DatasetError::is_transient`] is true —
//! re-issuing the read up to a budget with exponential backoff, and
//! passes every permanent error (corrupt cells, ragged rows, missing
//! files) straight through untouched.
//!
//! Sleeping is routed through the [`Sleeper`] trait so tests can inject
//! a recording no-op clock and run instantly while still asserting the
//! exact backoff schedule.

use crate::{DatasetError, Result, source::RowSource};
use std::time::Duration;

/// Abstracts "wait this long" so tests don't. The production
/// implementation is [`ThreadSleeper`]; tests use a recording fake.
pub trait Sleeper {
    /// Blocks (or pretends to) for `d`.
    fn sleep(&mut self, d: Duration);
}

/// Real wall-clock sleeper backed by [`std::thread::sleep`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&mut self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Exponential backoff schedule: attempt `i` (0-based retry index)
/// waits `base * multiplier^i`, capped at `max_delay`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Total attempts per read, including the first (must be >= 1).
    pub max_attempts: usize,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Multiplier applied per subsequent retry.
    pub multiplier: f64,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_secs(1),
        }
    }
}

impl BackoffPolicy {
    /// A policy that never retries (single attempt).
    pub fn no_retries() -> Self {
        BackoffPolicy {
            max_attempts: 1,
            ..BackoffPolicy::default()
        }
    }

    /// `attempts` total tries with zero delay — the test workhorse.
    pub fn immediate(attempts: usize) -> Self {
        BackoffPolicy {
            max_attempts: attempts.max(1),
            base_delay: Duration::ZERO,
            multiplier: 1.0,
            max_delay: Duration::ZERO,
        }
    }

    /// Delay before retry number `retry` (0-based), saturating at
    /// `max_delay`. `multiplier^retry` overflows to `inf` for large
    /// retry indices (and `retry as i32` would wrap beyond `i32::MAX`);
    /// both paths clamp to the cap instead of sneaking `inf * 0 = NaN`
    /// through the min/max chain.
    pub fn delay_for(&self, retry: usize) -> Duration {
        let base = self.base_delay.as_secs_f64();
        if base <= 0.0 {
            // A zero base stays zero at every retry index; without this
            // early-out, `0.0 * inf` is NaN and NaN.min(cap) == cap.
            return Duration::ZERO;
        }
        let factor = i32::try_from(retry).map_or(f64::INFINITY, |r| self.multiplier.powi(r));
        let scaled = base * factor;
        if !scaled.is_finite() {
            return self.max_delay;
        }
        Duration::from_secs_f64(scaled.clamp(0.0, self.max_delay.as_secs_f64().max(0.0)))
    }
}

/// A [`RowSource`] adapter that retries transient failures of the inner
/// source per a [`BackoffPolicy`]. Permanent errors pass through on the
/// first occurrence.
#[derive(Debug)]
pub struct RetryingSource<S, C = ThreadSleeper> {
    inner: S,
    policy: BackoffPolicy,
    sleeper: C,
    retries: u64,
    give_ups: u64,
}

impl<S: RowSource> RetryingSource<S, ThreadSleeper> {
    /// Wraps `inner` with a real wall-clock sleeper.
    pub fn new(inner: S, policy: BackoffPolicy) -> Self {
        RetryingSource::with_sleeper(inner, policy, ThreadSleeper)
    }
}

impl<S: RowSource, C: Sleeper> RetryingSource<S, C> {
    /// Wraps `inner` with an explicit sleeper (tests pass a fake).
    pub fn with_sleeper(inner: S, policy: BackoffPolicy, sleeper: C) -> Self {
        RetryingSource {
            inner,
            policy,
            sleeper,
            retries: 0,
            give_ups: 0,
        }
    }

    /// Transient errors absorbed by retries so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reads that exhausted the attempt budget and surfaced the error.
    pub fn give_ups(&self) -> u64 {
        self.give_ups
    }

    /// Unwraps the adapter, returning the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn run<T>(&mut self, mut op: impl FnMut(&mut S) -> Result<T>) -> Result<T> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last: Option<DatasetError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let d = self.policy.delay_for(attempt - 1);
                self.sleeper.sleep(d);
                self.retries += 1;
                obs::counter_add("source_retries_total", 1);
            }
            match op(&mut self.inner) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        self.give_ups += 1;
        obs::counter_add("source_retry_give_ups_total", 1);
        Err(last.unwrap_or_else(|| {
            DatasetError::Transient("retry budget exhausted with no recorded error".into())
        }))
    }
}

impl<S: RowSource, C: Sleeper> RowSource for RetryingSource<S, C> {
    fn n_cols(&self) -> usize {
        self.inner.n_cols()
    }

    fn next_row(&mut self, buf: &mut [f64]) -> Result<bool> {
        self.run(|s| s.next_row(buf))
    }

    fn rewind(&mut self) -> Result<()> {
        self.run(|s| s.rewind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyRowSource};
    use crate::source::MatrixSource;
    use linalg::Matrix;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records requested delays instead of sleeping.
    #[derive(Debug, Clone, Default)]
    struct FakeSleeper(Rc<RefCell<Vec<Duration>>>);

    impl Sleeper for FakeSleeper {
        fn sleep(&mut self, d: Duration) {
            self.0.borrow_mut().push(d);
        }
    }

    fn data(n: usize) -> Matrix {
        Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64)
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = BackoffPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            multiplier: 3.0,
            max_delay: Duration::from_millis(50),
        };
        assert_eq!(p.delay_for(0), Duration::from_millis(10));
        assert_eq!(p.delay_for(1), Duration::from_millis(30));
        assert_eq!(p.delay_for(2), Duration::from_millis(50), "capped");
        assert_eq!(p.delay_for(3), Duration::from_millis(50), "still capped");
    }

    #[test]
    fn huge_retry_indices_saturate_at_max_delay() {
        // 2^1000 overflows f64 to inf; the schedule must cap at
        // max_delay, not collapse to zero or NaN.
        let p = BackoffPolicy::default();
        assert_eq!(p.delay_for(1000), p.max_delay);
        // Beyond i32 range the exponent cannot even be computed; still
        // the cap, never a wrapped exponent.
        assert_eq!(p.delay_for(usize::MAX), p.max_delay);
        // A zero base delay stays zero at every index (0 * inf is NaN;
        // NaN.min(cap) would silently return the cap).
        let zero_base = BackoffPolicy {
            base_delay: Duration::ZERO,
            ..BackoffPolicy::default()
        };
        assert_eq!(zero_base.delay_for(1000), Duration::ZERO);
        // Sub-unit multipliers decay toward zero without underflow
        // surprises.
        let decay = BackoffPolicy {
            multiplier: 0.5,
            ..BackoffPolicy::default()
        };
        assert_eq!(decay.delay_for(1000), Duration::ZERO);
    }

    #[test]
    fn retrying_source_absorbs_injected_transients() {
        let m = data(100);
        let plan = FaultPlan {
            seed: 5,
            transient_rate: 0.3,
            corrupt_rate: 0.0,
            arity_rate: 0.0,
            truncate_after: None,
        };
        let delays = FakeSleeper::default();
        let faulty = FaultyRowSource::new(MatrixSource::new(&m), plan);
        let mut src =
            RetryingSource::with_sleeper(faulty, BackoffPolicy::default(), delays.clone());
        // The whole stream collects with zero surfaced errors.
        let collected = src.collect_matrix().unwrap();
        assert_eq!(collected, m);
        assert!(src.retries() > 0, "30% transient rate must trigger retries");
        assert_eq!(src.give_ups(), 0);
        // Injected one-shot faults need exactly one retry each, at the
        // base delay.
        let ds = delays.0.borrow();
        assert_eq!(ds.len() as u64, src.retries());
        assert!(ds.iter().all(|d| *d == Duration::from_millis(10)));
        assert_eq!(src.into_inner().log().transient as u64, ds.len() as u64);
    }

    #[test]
    fn permanent_errors_pass_through_without_retry() {
        let m = data(50);
        let plan = FaultPlan {
            seed: 5,
            transient_rate: 0.0,
            corrupt_rate: 0.0,
            arity_rate: 0.2,
            truncate_after: None,
        };
        let delays = FakeSleeper::default();
        let faulty = FaultyRowSource::new(MatrixSource::new(&m), plan);
        let mut src =
            RetryingSource::with_sleeper(faulty, BackoffPolicy::default(), delays.clone());
        let mut buf = [0.0; 3];
        let mut errors = 0;
        loop {
            match src.next_row(&mut buf) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    assert!(matches!(e, DatasetError::RaggedRows { .. }));
                    errors += 1;
                }
            }
        }
        assert!(errors > 0, "20% arity rate must fire");
        assert_eq!(src.retries(), 0, "permanent errors are not retried");
        assert!(delays.0.borrow().is_empty());
    }

    #[test]
    fn budget_exhaustion_surfaces_last_transient() {
        /// A source whose every read fails transiently.
        struct AlwaysTorn;
        impl RowSource for AlwaysTorn {
            fn n_cols(&self) -> usize {
                1
            }
            fn next_row(&mut self, _buf: &mut [f64]) -> Result<bool> {
                Err(DatasetError::Transient("torn read".into()))
            }
            fn rewind(&mut self) -> Result<()> {
                Ok(())
            }
        }
        let mut src = RetryingSource::with_sleeper(
            AlwaysTorn,
            BackoffPolicy::immediate(4),
            FakeSleeper::default(),
        );
        let mut buf = [0.0; 1];
        let err = src.next_row(&mut buf).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(src.retries(), 3, "4 attempts = 1 initial + 3 retries");
        assert_eq!(src.give_ups(), 1);
    }

    #[test]
    fn rewind_is_also_retried() {
        struct FlakyRewind {
            inner_pos: usize,
            rewind_failures: usize,
        }
        impl RowSource for FlakyRewind {
            fn n_cols(&self) -> usize {
                1
            }
            fn next_row(&mut self, buf: &mut [f64]) -> Result<bool> {
                if self.inner_pos < 3 {
                    buf[0] = self.inner_pos as f64;
                    self.inner_pos += 1;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            fn rewind(&mut self) -> Result<()> {
                if self.rewind_failures > 0 {
                    self.rewind_failures -= 1;
                    return Err(DatasetError::Transient("seek interrupted".into()));
                }
                self.inner_pos = 0;
                Ok(())
            }
        }
        let mut src = RetryingSource::with_sleeper(
            FlakyRewind {
                inner_pos: 0,
                rewind_failures: 2,
            },
            BackoffPolicy::immediate(3),
            FakeSleeper::default(),
        );
        let collected = src.collect_matrix().unwrap();
        assert_eq!(collected.rows(), 3);
        assert_eq!(src.retries(), 2);
    }
}
